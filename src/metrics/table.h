// Fixed-width console tables for the benchmark harness. Every bench prints
// the same rows/series the paper's figures plot, via this formatter.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace agb::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; the cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows (fixed precision).
  void add_numeric_row(const std::vector<double>& values, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string fmt(double value, int precision = 2);

}  // namespace agb::metrics
