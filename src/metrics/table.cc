#include "metrics/table.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace agb::metrics {

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values,
                            int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < columns_.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace agb::metrics
