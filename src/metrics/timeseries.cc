#include "metrics/timeseries.h"

#include <algorithm>

namespace agb::metrics {

double TimeSeries::mean_in(TimeMs from, TimeMs to) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& [t, v] : points_) {
    if (t < from || t >= to) continue;
    sum += v;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double TimeSeries::value_at(TimeMs t, double fallback) const {
  double value = fallback;
  for (const auto& [pt, pv] : points_) {
    if (pt > t) break;
    value = pv;
  }
  return value;
}

void write_csv(std::ostream& os,
               const std::vector<const TimeSeries*>& series) {
  if (series.empty()) return;
  os << "time_ms";
  for (const TimeSeries* s : series) os << "," << s->name();
  os << "\n";
  for (const auto& [t, v] : series[0]->points()) {
    os << t << "," << v;
    for (std::size_t i = 1; i < series.size(); ++i) {
      os << "," << series[i]->value_at(t);
    }
    os << "\n";
  }
}

}  // namespace agb::metrics
