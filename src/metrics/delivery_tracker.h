// Ground-truth delivery accounting for experiments.
//
// The tracker observes every broadcast and every per-node delivery in a run
// and computes the paper's evaluation metrics:
//   * average % of receivers per message            (Fig. 8(a));
//   * atomicity: % of messages delivered to more than a configurable
//     fraction (95 %) of the group                  (Figs. 2, 8(b), 9(b));
//   * input rate (admitted broadcasts) and output rate (atomic messages)
//                                                   (Figs. 6, 7(a), 7(b));
//   * dissemination latency percentiles (extra: not in the paper, useful).
// Only messages created inside the evaluation window [from, to) are counted,
// so warm-up transients and the not-yet-disseminated tail are excluded.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace agb::metrics {

struct DeliveryReport {
  std::uint64_t messages = 0;         // evaluated broadcasts
  double window_s = 0.0;              // evaluation window length
  double input_rate = 0.0;            // evaluated broadcasts per second
  double output_rate = 0.0;           // atomic messages per second
  double avg_receiver_pct = 0.0;      // mean % of group reached
  double atomicity_pct = 0.0;         // % messages reaching > threshold
  double latency_p50_ms = 0.0;        // time to reach the threshold
  double latency_p99_ms = 0.0;
};

class DeliveryTracker {
 public:
  /// `group_size` includes origins (the origin's local delivery counts, as
  /// in the paper's "% of participant processes").
  /// `atomic_fraction`: a message is atomic when delivered to strictly more
  /// than this fraction of the group (paper: >95 %).
  DeliveryTracker(std::size_t group_size, double atomic_fraction = 0.95);

  void on_broadcast(const EventId& id, NodeId origin, TimeMs now);
  void on_delivery(const EventId& id, NodeId node, TimeMs now);

  /// Metrics over messages created in [from, to).
  [[nodiscard]] DeliveryReport report(TimeMs from, TimeMs to) const;

  /// Atomicity per time bucket of `bucket_ms`, over [from, to): pairs of
  /// (bucket start time, atomicity % of messages created in that bucket).
  [[nodiscard]] std::vector<std::pair<TimeMs, double>> atomicity_series(
      TimeMs from, TimeMs to, DurationMs bucket_ms) const;

  /// Messages-per-second admitted, bucketed the same way.
  [[nodiscard]] std::vector<std::pair<TimeMs, double>> input_rate_series(
      TimeMs from, TimeMs to, DurationMs bucket_ms) const;

  /// Receiver fraction of one message (for tests); 0 if unknown.
  [[nodiscard]] double receiver_fraction(const EventId& id) const;

  /// One 64-bit fingerprint per node over its delivered-event *set*:
  /// XOR of a per-(event, created_at) hash across every event the node saw.
  /// Commutative by construction, so the value is independent of delivery
  /// order and of the tracker's internal map order — two runs delivered the
  /// same events to the same nodes iff the vectors match (modulo hash
  /// collisions). The sharded determinism suite compares these across
  /// engines, shard counts and worker counts.
  [[nodiscard]] std::vector<std::uint64_t> per_node_fingerprints() const;

  [[nodiscard]] std::size_t group_size() const noexcept { return group_size_; }

 private:
  struct Record {
    TimeMs created_at = 0;
    std::uint32_t receivers = 0;
    TimeMs atomic_at = -1;           // first time the threshold was crossed
    std::vector<bool> seen;          // per-node delivery bit
  };

  [[nodiscard]] std::uint32_t atomic_threshold() const noexcept;

  std::size_t group_size_;
  double atomic_fraction_;
  std::unordered_map<EventId, Record> records_;
};

}  // namespace agb::metrics
