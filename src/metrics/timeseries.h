// Simple (time, value) series with CSV export; used by the dynamic-buffer
// experiment (paper Fig. 9) and example programs.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace agb::metrics {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(TimeMs t, double value) { points_.emplace_back(t, value); }

  [[nodiscard]] const std::vector<std::pair<TimeMs, double>>& points()
      const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Mean of values with t in [from, to).
  [[nodiscard]] double mean_in(TimeMs from, TimeMs to) const;

  /// Last value at or before `t`; `fallback` when none.
  [[nodiscard]] double value_at(TimeMs t, double fallback = 0.0) const;

 private:
  std::string name_;
  std::vector<std::pair<TimeMs, double>> points_;
};

/// Writes aligned-column series to a stream: "t,series1,series2,..." with
/// one row per distinct timestamp of the first series.
void write_csv(std::ostream& os, const std::vector<const TimeSeries*>& series);

}  // namespace agb::metrics
