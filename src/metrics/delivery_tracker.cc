#include "metrics/delivery_tracker.h"

#include <algorithm>
#include <cmath>

namespace agb::metrics {

DeliveryTracker::DeliveryTracker(std::size_t group_size,
                                 double atomic_fraction)
    : group_size_(group_size), atomic_fraction_(atomic_fraction) {}

std::uint32_t DeliveryTracker::atomic_threshold() const noexcept {
  // Strictly more than fraction*n receivers, matching ">95% of receivers".
  return static_cast<std::uint32_t>(
      std::floor(atomic_fraction_ * static_cast<double>(group_size_))) + 1;
}

void DeliveryTracker::on_broadcast(const EventId& id, NodeId /*origin*/,
                                   TimeMs now) {
  auto [it, inserted] = records_.try_emplace(id);
  if (!inserted) return;  // duplicate broadcast id: keep first record
  it->second.created_at = now;
  it->second.seen.assign(group_size_, false);
}

void DeliveryTracker::on_delivery(const EventId& id, NodeId node, TimeMs now) {
  auto it = records_.find(id);
  if (it == records_.end()) return;  // delivery for an untracked message
  Record& rec = it->second;
  if (node >= rec.seen.size() || rec.seen[node]) return;
  rec.seen[node] = true;
  ++rec.receivers;
  if (rec.atomic_at < 0 && rec.receivers >= atomic_threshold()) {
    rec.atomic_at = now;
  }
}

DeliveryReport DeliveryTracker::report(TimeMs from, TimeMs to) const {
  DeliveryReport report;
  report.window_s = static_cast<double>(to - from) / 1000.0;
  RunningStats receiver_pct;
  SampleSet latencies;
  std::uint64_t atomic = 0;

  for (const auto& [id, rec] : records_) {
    if (rec.created_at < from || rec.created_at >= to) continue;
    ++report.messages;
    receiver_pct.add(100.0 * static_cast<double>(rec.receivers) /
                     static_cast<double>(group_size_));
    if (rec.atomic_at >= 0) {
      ++atomic;
      latencies.add(static_cast<double>(rec.atomic_at - rec.created_at));
    }
  }

  report.avg_receiver_pct = receiver_pct.mean();
  if (report.messages > 0) {
    report.atomicity_pct =
        100.0 * static_cast<double>(atomic) /
        static_cast<double>(report.messages);
  }
  if (report.window_s > 0.0) {
    report.input_rate =
        static_cast<double>(report.messages) / report.window_s;
    report.output_rate = static_cast<double>(atomic) / report.window_s;
  }
  report.latency_p50_ms = latencies.quantile(0.5);
  report.latency_p99_ms = latencies.quantile(0.99);
  return report;
}

std::vector<std::pair<TimeMs, double>> DeliveryTracker::atomicity_series(
    TimeMs from, TimeMs to, DurationMs bucket_ms) const {
  const auto buckets =
      static_cast<std::size_t>((to - from + bucket_ms - 1) / bucket_ms);
  std::vector<std::uint64_t> total(buckets, 0);
  std::vector<std::uint64_t> atomic(buckets, 0);
  for (const auto& [id, rec] : records_) {
    if (rec.created_at < from || rec.created_at >= to) continue;
    const auto b = static_cast<std::size_t>((rec.created_at - from) /
                                            bucket_ms);
    ++total[b];
    if (rec.atomic_at >= 0) ++atomic[b];
  }
  std::vector<std::pair<TimeMs, double>> series;
  series.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    const double pct =
        total[b] == 0 ? 100.0
                      : 100.0 * static_cast<double>(atomic[b]) /
                            static_cast<double>(total[b]);
    series.emplace_back(from + static_cast<TimeMs>(b) * bucket_ms, pct);
  }
  return series;
}

std::vector<std::pair<TimeMs, double>> DeliveryTracker::input_rate_series(
    TimeMs from, TimeMs to, DurationMs bucket_ms) const {
  const auto buckets =
      static_cast<std::size_t>((to - from + bucket_ms - 1) / bucket_ms);
  std::vector<std::uint64_t> total(buckets, 0);
  for (const auto& [id, rec] : records_) {
    if (rec.created_at < from || rec.created_at >= to) continue;
    ++total[static_cast<std::size_t>((rec.created_at - from) / bucket_ms)];
  }
  std::vector<std::pair<TimeMs, double>> series;
  series.reserve(buckets);
  const double bucket_s = static_cast<double>(bucket_ms) / 1000.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    series.emplace_back(from + static_cast<TimeMs>(b) * bucket_ms,
                        static_cast<double>(total[b]) / bucket_s);
  }
  return series;
}

double DeliveryTracker::receiver_fraction(const EventId& id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return 0.0;
  return static_cast<double>(it->second.receivers) /
         static_cast<double>(group_size_);
}

std::vector<std::uint64_t> DeliveryTracker::per_node_fingerprints() const {
  std::vector<std::uint64_t> fingerprints(group_size_, 0x5ba7f00dull);
  for (const auto& [id, rec] : records_) {
    // splitmix64-style avalanche over the event identity; XOR-combined per
    // node so iteration order (an unordered_map's) cannot leak into the
    // result.
    std::uint64_t h = (static_cast<std::uint64_t>(id.origin) << 32) ^
                      id.sequence ^
                      (static_cast<std::uint64_t>(rec.created_at) *
                       0x9e3779b97f4a7c15ull);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    for (std::size_t node = 0; node < rec.seen.size(); ++node) {
      if (rec.seen[node]) fingerprints[node] ^= h;
    }
  }
  return fingerprints;
}

}  // namespace agb::metrics
