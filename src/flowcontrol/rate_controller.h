// Sender-side rate controllers.
//
// RateController abstracts "what rate is this sender currently allowed to
// inject at". The paper's adaptive controller lives in src/adaptive
// (adaptive::RateAdapter); this header provides the interface plus two
// reference controllers used as baselines and in ablation benches:
// StaticRate (the non-adaptive lpbcast configuration) and AimdController
// (TCP-style additive-increase/multiplicative-decrease on a binary
// congestion bit, to contrast with the paper's age-threshold rule).
#pragma once

#include <algorithm>

#include "common/types.h"

namespace agb::flowcontrol {

class RateController {
 public:
  virtual ~RateController() = default;

  /// Allowed injection rate in msg/s at time `now`.
  [[nodiscard]] virtual double allowed_rate() const = 0;
};

/// Fixed rate; what a statically configured deployment does.
class StaticRate final : public RateController {
 public:
  explicit StaticRate(double rate) noexcept : rate_(rate) {}
  [[nodiscard]] double allowed_rate() const override { return rate_; }
  void set_rate(double rate) noexcept { rate_ = rate; }

 private:
  double rate_;
};

/// Classic AIMD over a boolean congestion signal. Used in ablations to show
/// why the paper uses *two* age thresholds plus usage gating instead of a
/// single binary signal.
class AimdController final : public RateController {
 public:
  struct Params {
    double additive_increase = 0.5;     // msg/s per update when uncongested
    double multiplicative_decrease = 0.5;
    double min_rate = 0.5;
    double max_rate = 1000.0;
  };

  AimdController(Params params, double initial_rate) noexcept
      : params_(params), rate_(initial_rate) {}

  void update(bool congested) noexcept {
    if (congested) {
      rate_ *= params_.multiplicative_decrease;
    } else {
      rate_ += params_.additive_increase;
    }
    rate_ = std::clamp(rate_, params_.min_rate, params_.max_rate);
  }

  [[nodiscard]] double allowed_rate() const override { return rate_; }

 private:
  Params params_;
  double rate_;
};

}  // namespace agb::flowcontrol
