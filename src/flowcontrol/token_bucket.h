// Token bucket bounding a sender's input rate (paper Fig. 3).
//
// The paper restores one token every 1000/rate ms up to `max`; we implement
// the continuous-time equivalent (fractional refill at `rate` tokens per
// second, capped at `capacity`), which behaves identically at the
// granularity the protocol observes and avoids a per-token timer.
#pragma once

#include <algorithm>

#include "common/types.h"

namespace agb::flowcontrol {

class TokenBucket {
 public:
  /// Starts full, which matches the paper ("Initially: tokens = max").
  TokenBucket(double rate_per_sec, double capacity, TimeMs now) noexcept
      : rate_(rate_per_sec),
        capacity_(capacity),
        tokens_(capacity),
        last_refill_(now) {}

  /// Consumes one token if available. `now` must be monotone.
  bool try_take(TimeMs now) noexcept {
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Current fill level (after refill). Drives the paper's avgTokens.
  [[nodiscard]] double level(TimeMs now) noexcept {
    refill(now);
    return tokens_;
  }

  /// Changes the refill rate (the adaptive mechanism's output). Refills at
  /// the old rate first so past time is accounted at the rate it ran under.
  void set_rate(double rate_per_sec, TimeMs now) noexcept {
    refill(now);
    rate_ = rate_per_sec;
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }

  void set_capacity(double capacity, TimeMs now) noexcept {
    refill(now);
    capacity_ = capacity;
    tokens_ = std::min(tokens_, capacity_);
  }

 private:
  void refill(TimeMs now) noexcept {
    if (now <= last_refill_) return;
    const double elapsed_s =
        static_cast<double>(now - last_refill_) / 1000.0;
    // The grant itself is clamped to one bucketful BEFORE being applied:
    // the first refill after an arbitrarily long wall-clock stall (a
    // suspended process, a scheduler hiccup, a clock step) tops the bucket
    // up at most to `capacity_`, never manufactures a burst beyond it. A
    // non-finite or negative grant (rate poisoned by NaN, or a negative
    // rate) grants nothing instead of draining or corrupting the level.
    double grant = elapsed_s * rate_;
    if (!(grant > 0.0)) grant = 0.0;
    tokens_ = std::min(capacity_, tokens_ + std::min(grant, capacity_));
    last_refill_ = now;
  }

  double rate_;
  double capacity_;
  double tokens_;
  TimeMs last_refill_;
};

}  // namespace agb::flowcontrol
