// Move-only callable for simulator events with small-buffer storage.
//
// The event queue schedules millions of short-lived closures; std::function
// would pay a heap allocation for anything beyond its tiny SSO buffer and a
// virtual copy for every pop. EventCallback inlines captures up to
// kInlineSize bytes directly in the queue entry (zero heap traffic on the
// steady-state round path) and falls back to a single heap allocation for
// larger closures. Move-only: queue entries are never copied.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace agb::sim {

class EventCallback {
 public:
  /// Sized for the hot closures in this codebase: the SimNetwork delivery
  /// lambda (targets vector + SharedBytes + sender) is the largest frequent
  /// capture and fits with room to spare.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the held callable (if any), leaving the callback empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move-constructs into `to` and destroys `from` (storage relocation;
    /// both sides are raw buffers owned by EventCallback objects).
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* storage) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* from, unsigned char* to) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* s) noexcept {
        std::launder(reinterpret_cast<Fn*>(s))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](unsigned char* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](unsigned char* from, unsigned char* to) noexcept {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* s) noexcept { delete *reinterpret_cast<Fn**>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace agb::sim
