#include "sim/network.h"

#include <algorithm>
#include <cmath>

namespace agb::sim {

namespace {

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

DurationMs LatencyModel::sample(Rng& rng) const {
  double delay = 0.0;
  switch (kind) {
    case Kind::kFixed:
      delay = a;
      break;
    case Kind::kUniform:
      delay = a + (b - a) * rng.uniform();
      break;
    case Kind::kNormal:
      delay = rng.normal(a, b);
      break;
  }
  return static_cast<DurationMs>(std::llround(std::max(delay, 0.0)));
}

SimNetwork::SimNetwork(Simulator& sim, NetworkParams params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

void SimNetwork::attach(NodeId node, DatagramHandler handler) {
  handlers_[node] = std::move(handler);
}

void SimNetwork::detach(NodeId node) { handlers_.erase(node); }

bool SimNetwork::loss_drop() {
  switch (params_.loss.kind) {
    case LossModel::Kind::kNone:
      return false;
    case LossModel::Kind::kIid:
      return rng_.bernoulli(params_.loss.p);
    case LossModel::Kind::kBurst: {
      // Advance the Gilbert-Elliott chain once per packet, then sample the
      // state-conditional drop probability.
      if (burst_bad_) {
        if (rng_.bernoulli(params_.loss.p_bg)) burst_bad_ = false;
      } else {
        if (rng_.bernoulli(params_.loss.p_gb)) burst_bad_ = true;
      }
      return rng_.bernoulli(burst_bad_ ? params_.loss.p_bad
                                       : params_.loss.p_good);
    }
  }
  return false;
}

void SimNetwork::send(Datagram datagram) {
  ++stats_.sent;
  if (down_.contains(datagram.from) || down_.contains(datagram.to)) {
    ++stats_.dropped_down;
    return;
  }
  if (partitioned(datagram.from, datagram.to)) {
    ++stats_.dropped_partition;
    return;
  }
  if (loss_drop()) {
    ++stats_.dropped_loss;
    return;
  }
  // Latency selection: explicit per-link override > cluster rule > default.
  const LatencyModel* latency = &params_.latency;
  if (params_.clusters > 1 &&
      datagram.from % params_.clusters != datagram.to % params_.clusters) {
    latency = &params_.wan_latency;
  }
  if (!link_latency_.empty()) {
    auto it = link_latency_.find(ordered(datagram.from, datagram.to));
    if (it != link_latency_.end()) latency = &it->second;
  }
  const DurationMs delay = latency->sample(rng_);
  sim_.after(delay, [this, d = std::move(datagram)]() mutable {
    if (down_.contains(d.to)) {
      ++stats_.dropped_down;
      return;
    }
    auto it = handlers_.find(d.to);
    if (it == handlers_.end()) {
      ++stats_.dropped_detached;
      return;
    }
    ++stats_.delivered;
    stats_.bytes_delivered += d.payload.size();
    it->second(d, sim_.now());
  });
}

void SimNetwork::set_node_up(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool SimNetwork::node_up(NodeId node) const { return !down_.contains(node); }

void SimNetwork::partition(NodeId a, NodeId b) {
  partitions_.insert(ordered(a, b));
}

void SimNetwork::heal(NodeId a, NodeId b) { partitions_.erase(ordered(a, b)); }

void SimNetwork::heal_all() { partitions_.clear(); }

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  return partitions_.contains(ordered(a, b));
}

void SimNetwork::set_link_latency(NodeId a, NodeId b, LatencyModel model) {
  link_latency_[ordered(a, b)] = model;
}

void SimNetwork::clear_link_latencies() { link_latency_.clear(); }

}  // namespace agb::sim
