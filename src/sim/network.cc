#include "sim/network.h"

#include <algorithm>

namespace agb::sim {

SimNetwork::SimNetwork(Simulator& sim, NetworkParams params, Rng rng)
    : sim_(sim),
      params_(params),
      rng_(rng),
      sampler_(params.latency, params.clusters, params.wan_latency) {}

void SimNetwork::attach(NodeId node, DatagramHandler handler) {
  handlers_[node] = std::move(handler);
}

void SimNetwork::detach(NodeId node) { handlers_.erase(node); }

bool SimNetwork::loss_drop() {
  switch (params_.loss.kind) {
    case LossModel::Kind::kNone:
      return false;
    case LossModel::Kind::kIid:
      return rng_.bernoulli(params_.loss.p);
    case LossModel::Kind::kBurst: {
      // Advance the Gilbert-Elliott chain once per packet, then sample the
      // state-conditional drop probability.
      if (burst_bad_) {
        if (rng_.bernoulli(params_.loss.p_bg)) burst_bad_ = false;
      } else {
        if (rng_.bernoulli(params_.loss.p_gb)) burst_bad_ = true;
      }
      return rng_.bernoulli(burst_bad_ ? params_.loss.p_bad
                                       : params_.loss.p_good);
    }
  }
  return false;
}

void SimNetwork::send_batch(Multicast batch) {
  ++stats_.batches;
  stats_.sent += batch.targets.size();
  const bool sender_down = down_.contains(batch.from);

  // Per-target loss/latency sampling, grouped by sampled delay so every
  // group rides one simulator event. Groups keep first-appearance order
  // (and targets within a group keep batch order), so delivery order and
  // RNG draw order match the old per-datagram path exactly.
  struct DelayGroup {
    DurationMs delay;
    std::vector<NodeId> targets;
  };
  std::vector<DelayGroup> groups;
  // Fault-plane specials (mutated payload, duplicates, reorder delay) each
  // ride their own event: they cannot share the batch payload or a group's
  // common delay. Clean runs never touch this path.
  struct SpecialDelivery {
    DurationMs delay;
    NodeId to;
    SharedBytes payload;
  };
  std::vector<SpecialDelivery> specials;
  for (NodeId to : batch.targets) {
    // The intra/cross split mirrors `sent`: counted per addressed target,
    // before any drop, so the WAN-traffic share reflects what the sender
    // put on the wire.
    const bool cross_cluster = sampler_.cross_cluster(batch.from, to);
    ++(cross_cluster ? stats_.sent_cross_cluster : stats_.sent_intra_cluster);
    if (sender_down || down_.contains(to)) {
      ++stats_.dropped_down;
      continue;
    }
    if (partitioned(batch.from, to)) {
      ++stats_.dropped_partition;
      continue;
    }
    if (loss_drop()) {
      ++stats_.dropped_loss;
      continue;
    }
    fault::FaultAction action;
    if (fault_plane_) action = fault_plane_->sample(batch.from, to, sim_.now());
    if (action.drop) {
      ++stats_.dropped_chaos;
      continue;
    }
    // Latency selection (inside the sampler): explicit per-link override >
    // cluster rule > default.
    const DurationMs delay = sampler_.sample(batch.from, to, rng_);
    if (action.special()) {
      SharedBytes payload = (action.corrupt || action.truncate)
                                ? fault_plane_->mutate(batch.payload, action)
                                : batch.payload;
      for (int copy = 0; copy <= action.duplicates; ++copy) {
        specials.push_back(
            SpecialDelivery{delay + action.extra_delay, to, payload});
      }
      continue;
    }
    auto group = std::find_if(groups.begin(), groups.end(),
                              [delay](const DelayGroup& g) {
                                return g.delay == delay;
                              });
    if (group == groups.end()) {
      groups.push_back(DelayGroup{delay, {to}});
    } else {
      group->targets.push_back(to);
    }
  }

  for (auto& group : groups) {
    ++stats_.events_scheduled;
    sim_.after(group.delay, [this, from = batch.from,
                             targets = std::move(group.targets),
                             payload = batch.payload]() {
      for (NodeId to : targets) {
        if (down_.contains(to)) {
          ++stats_.dropped_down;
          continue;
        }
        auto it = handlers_.find(to);
        if (it == handlers_.end()) {
          ++stats_.dropped_detached;
          continue;
        }
        ++stats_.delivered;
        stats_.bytes_delivered += payload.size();
        // Every target's Datagram aliases the batch payload — refcount
        // bumps only, no byte copies anywhere on the delivery path.
        const Datagram d{from, to, payload};
        it->second(d, sim_.now());
      }
    });
  }

  for (auto& special : specials) {
    ++stats_.events_scheduled;
    sim_.after(special.delay, [this, from = batch.from, to = special.to,
                               payload = std::move(special.payload)]() {
      if (down_.contains(to)) {
        ++stats_.dropped_down;
        return;
      }
      auto it = handlers_.find(to);
      if (it == handlers_.end()) {
        ++stats_.dropped_detached;
        return;
      }
      ++stats_.delivered;
      stats_.bytes_delivered += payload.size();
      const Datagram d{from, to, payload};
      it->second(d, sim_.now());
    });
  }
}

void SimNetwork::set_node_up(NodeId node, bool up) {
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool SimNetwork::node_up(NodeId node) const { return !down_.contains(node); }

void SimNetwork::partition(NodeId a, NodeId b) {
  partitions_.insert(symmetric_link_key(a, b));
}

void SimNetwork::heal(NodeId a, NodeId b) {
  partitions_.erase(symmetric_link_key(a, b));
}

void SimNetwork::heal_all() { partitions_.clear(); }

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  return partitions_.contains(symmetric_link_key(a, b));
}

void SimNetwork::set_link_latency(NodeId a, NodeId b, LatencyModel model) {
  sampler_.set_link_override(a, b, model);
}

void SimNetwork::clear_link_latencies() { sampler_.clear_link_overrides(); }

}  // namespace agb::sim
