#include "sim/simulator.h"

#include <algorithm>

namespace agb::sim {

EventHandle Simulator::at(TimeMs at, EventCallback fn) {
  return queue_.schedule(std::max(at, now_), std::move(fn));
}

EventHandle Simulator::after(DurationMs delay, EventCallback fn) {
  return at(now_ + std::max<DurationMs>(delay, 0), std::move(fn));
}

bool Simulator::step() {
  auto fired = queue_.pop();
  if (!fired) return false;
  // Advance the clock before invoking: callbacks scheduling relative
  // delays must observe the time they fired at, not the previous event's.
  now_ = std::max(now_, fired->at);
  fired->fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_) {
    if (!step()) break;
  }
}

void Simulator::run_until(TimeMs deadline) {
  stopped_ = false;
  while (!stopped_) {
    auto next = queue_.peek_time();
    if (!next || *next > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::run_for(DurationMs duration) { run_until(now_ + duration); }

PeriodicTimer::PeriodicTimer(Simulator& sim, TimeMs start, DurationMs period,
                             std::function<void(TimeMs)> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  arm(start);
}

void PeriodicTimer::cancel() noexcept {
  active_ = false;
  handle_.cancel();
}

void PeriodicTimer::arm(TimeMs at) {
  handle_ = sim_.at(at, [this] {
    if (!active_) return;
    const TimeMs fired = sim_.now();
    arm(fired + period_);
    fn_(fired);
  });
}

}  // namespace agb::sim
