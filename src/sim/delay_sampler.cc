#include "sim/delay_sampler.h"

#include <algorithm>
#include <cmath>

namespace agb::sim {

DurationMs LatencyModel::sample(Rng& rng) const {
  double delay = 0.0;
  switch (kind) {
    case Kind::kFixed:
      delay = a;
      break;
    case Kind::kUniform:
      delay = a + (b - a) * rng.uniform();
      break;
    case Kind::kNormal:
      delay = rng.normal(a, b);
      break;
  }
  return static_cast<DurationMs>(std::llround(std::max(delay, 0.0)));
}

}  // namespace agb::sim
