#include "sim/sharded_engine.h"

#include <algorithm>
#include <barrier>
#include <thread>

namespace agb::sim {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineParams params) {
  const std::size_t shard_count =
      round_up_pow2(std::max<std::size_t>(1, params.shards));
  mask_ = shard_count - 1;
  lookahead_ = std::max<DurationMs>(1, params.lookahead);
  sims_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  channels_.resize(shard_count * shard_count);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_ = params.workers == 0 ? std::min(shard_count, hw)
                                 : std::min(params.workers, shard_count);
}

ShardedEngine::~ShardedEngine() = default;

std::optional<TimeMs> ShardedEngine::global_next_event() {
  std::optional<TimeMs> t;
  for (auto& sim : sims_) {
    const auto e = sim->next_event_time();
    if (e && (!t || *e < *t)) t = e;
  }
  return t;
}

TimeMs ShardedEngine::window_end_for(TimeMs start, TimeMs deadline) const {
  TimeMs end = start + lookahead_;
  if (boundary_) {
    // Land the barrier exactly one tick past the boundary, so shards have
    // fully executed time B when the serial phase samples.
    const TimeMs b = boundary_(start);
    if (b >= start && b + 1 < end) end = b + 1;
  }
  return std::min(end, deadline + 1);
}

void ShardedEngine::run_window(TimeMs window_end, std::size_t worker) {
  // Static shard -> worker assignment: outcome-neutral (all communication
  // rides the channels), chosen so a shard's cache state stays with one
  // thread across windows.
  for (std::size_t s = worker; s < sims_.size(); s += workers_) {
    sims_[s]->run_until(window_end - 1);
  }
}

void ShardedEngine::close_window(TimeMs window_end) {
  batch_.clear();
  // Fixed (producer, consumer) drain order; irrelevant to outcomes because
  // of the canonical sort, but it keeps the FIFO witness per channel cheap.
  for (ShardChannel& channel : channels_) {
    channel.drain(window_end, batch_);
  }
  // (at, from, seq, to) is a total order — (from, seq) is unique per
  // datagram — so plain sort yields one run-invariant sequence no matter
  // which worker produced which entry.
  std::sort(batch_.begin(), batch_.end(), canonical_before);
  if (hook_) hook_(window_end, batch_);
  ++windows_;
}

void ShardedEngine::run_windows_single(TimeMs deadline) {
  while (true) {
    const auto t = global_next_event();
    if (!t || *t > deadline) break;
    const TimeMs end = window_end_for(*t, deadline);
    run_window(end, 0);
    close_window(end);
  }
}

void ShardedEngine::run_windows_threaded(TimeMs deadline) {
  const std::size_t workers = workers_;
  // Two-gate fork-join: the main thread (worker 0) computes the window in
  // the serial phase, releases the pool through `start`, joins the parallel
  // phase itself, then collects everyone at `done` before touching shared
  // state. The barriers publish window_end / stop to the pool and every
  // shard's mutations back to the serial phase.
  std::barrier start_gate(static_cast<std::ptrdiff_t>(workers));
  std::barrier done_gate(static_cast<std::ptrdiff_t>(workers));
  TimeMs window_end = 0;
  bool stop = false;

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([this, w, &start_gate, &done_gate, &window_end, &stop] {
      while (true) {
        start_gate.arrive_and_wait();
        if (stop) return;
        run_window(window_end, w);
        done_gate.arrive_and_wait();
      }
    });
  }

  while (true) {
    const auto t = global_next_event();
    if (!t || *t > deadline) break;
    window_end = window_end_for(*t, deadline);
    start_gate.arrive_and_wait();
    run_window(window_end, 0);
    done_gate.arrive_and_wait();
    close_window(window_end);
  }

  stop = true;
  start_gate.arrive_and_wait();
  for (std::thread& worker : pool) worker.join();
}

void ShardedEngine::run_until(TimeMs deadline) {
  if (workers_ <= 1 || sims_.size() <= 1) {
    run_windows_single(deadline);
  } else {
    run_windows_threaded(deadline);
  }
  // No shard holds an event with timestamp <= deadline any more; advance
  // every clock to the deadline (runs nothing, mirrors Simulator::run_until
  // semantics for the whole engine).
  for (auto& sim : sims_) sim->run_until(deadline);
}

std::size_t ShardedEngine::peak_pending_events() const {
  std::size_t sum = 0;
  for (const auto& sim : sims_) sum += sim->peak_pending_events();
  return sum;
}

}  // namespace agb::sim
