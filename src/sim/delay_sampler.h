// Pluggable per-hop delay sampling, shared by the simulator's SimNetwork and
// the wall-clock InMemoryFabric.
//
// A DelaySampler owns the full latency topology of a run: a default
// (intra-cluster) LatencyModel, the cluster rule with its WAN model, and an
// optional per-link override table. Both harnesses resolve a (from, to) pair
// through the same precedence — explicit per-link override > cluster rule >
// default — and sample the resolved model with the caller's Rng, so a preset
// that says `latency=normal:5:2` or pins one slow link means the same thing
// on the simulator and on real threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"
#include "common/types.h"

namespace agb::sim {

/// Latency distribution for one datagram hop.
struct LatencyModel {
  enum class Kind { kFixed, kUniform, kNormal };
  Kind kind = Kind::kFixed;
  double a = 1.0;  // fixed: delay; uniform: lo; normal: mean
  double b = 0.0;  // uniform: hi; normal: stddev

  static LatencyModel fixed(double delay_ms) {
    return {Kind::kFixed, delay_ms, 0.0};
  }
  static LatencyModel uniform(double lo_ms, double hi_ms) {
    return {Kind::kUniform, lo_ms, hi_ms};
  }
  static LatencyModel normal(double mean_ms, double stddev_ms) {
    return {Kind::kNormal, mean_ms, stddev_ms};
  }

  [[nodiscard]] DurationMs sample(Rng& rng) const;

  /// True when every sample is guaranteed to be 0 ms — the gate for the
  /// fabric's zero-delay fast path (which skips the delay queue and its RNG
  /// draw entirely).
  [[nodiscard]] bool always_zero() const noexcept {
    switch (kind) {
      case Kind::kFixed:
        return a <= 0.0;
      case Kind::kUniform:
        return a <= 0.0 && b <= 0.0;
      case Kind::kNormal:
        return false;
    }
    return false;
  }
};

/// Canonical key for a symmetric (unordered) node pair. Partition sets and
/// per-link latency tables index on this, so (a,b) and (b,a) spellings always
/// hit the same entry.
[[nodiscard]] constexpr std::pair<NodeId, NodeId> symmetric_link_key(
    NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

class DelaySampler {
 public:
  DelaySampler() = default;
  DelaySampler(LatencyModel default_latency, std::size_t clusters,
               LatencyModel wan_latency)
      : default_(default_latency),
        wan_(wan_latency),
        clusters_(clusters == 0 ? 1 : clusters) {}

  void set_link_override(NodeId a, NodeId b, LatencyModel model) {
    overrides_[symmetric_link_key(a, b)] = model;
  }
  void clear_link_overrides() { overrides_.clear(); }
  [[nodiscard]] bool has_link_overrides() const noexcept {
    return !overrides_.empty();
  }

  /// The cluster rule (directional gossip, paper §5): node i belongs to
  /// cluster i % clusters; a link crossing a boundary is a WAN hop.
  [[nodiscard]] bool cross_cluster(NodeId from, NodeId to) const noexcept {
    return clusters_ > 1 && from % clusters_ != to % clusters_;
  }

  /// Precedence: explicit per-link override > cluster rule > default.
  [[nodiscard]] const LatencyModel& model_for(NodeId from, NodeId to) const {
    if (!overrides_.empty()) {
      auto it = overrides_.find(symmetric_link_key(from, to));
      if (it != overrides_.end()) return it->second;
    }
    return cross_cluster(from, to) ? wan_ : default_;
  }

  /// One delay draw for one (from, to) hop. Exactly the draws the resolved
  /// LatencyModel makes: 0 for fixed, 1 for uniform/normal — callers that
  /// pin seeded traces rely on this.
  [[nodiscard]] DurationMs sample(NodeId from, NodeId to, Rng& rng) const {
    return model_for(from, to).sample(rng);
  }

  /// True when no hop can ever be delayed.
  [[nodiscard]] bool always_zero() const noexcept {
    if (!default_.always_zero()) return false;
    if (clusters_ > 1 && !wan_.always_zero()) return false;
    for (const auto& [key, model] : overrides_) {
      if (!model.always_zero()) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t clusters() const noexcept { return clusters_; }

 private:
  LatencyModel default_ = LatencyModel::fixed(1.0);
  LatencyModel wan_ = LatencyModel::uniform(20.0, 60.0);
  std::size_t clusters_ = 1;
  std::map<std::pair<NodeId, NodeId>, LatencyModel> overrides_;
};

}  // namespace agb::sim
