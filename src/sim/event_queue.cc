#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace agb::sim {

EventQueue::EventQueue()
    : head_(kRingSize, kNil),
      tail_(kRingSize, kNil),
      tag_(std::make_shared<detail::QueueTag>()) {
  tag_->queue = this;
}

EventQueue::~EventQueue() { tag_->queue = nullptr; }

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Entry& e = pool_[slot];
  e.fn.reset();
  ++e.gen;  // outstanding handles to this slot become inert
  e.cancelled = false;
  e.next = free_head_;
  free_head_ = slot;
}

void EventQueue::mark_bucket(std::size_t b) noexcept {
  occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  summary_ |= std::uint64_t{1} << (b >> 6);
}

void EventQueue::clear_bucket_if_empty(std::size_t b) noexcept {
  if (head_[b] != kNil) return;
  tail_[b] = kNil;
  occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  if (occupied_[b >> 6] == 0) summary_ &= ~(std::uint64_t{1} << (b >> 6));
}

void EventQueue::push_ring(std::uint32_t slot) {
  Entry& e = pool_[slot];
  // A pre-cursor timestamp (causality violation tolerated by contract) maps
  // to the cursor bucket: it fires promptly, FIFO behind entries already
  // scheduled there, reporting its own timestamp.
  const TimeMs eff = e.at < cursor_ ? cursor_ : e.at;
  const std::size_t b = static_cast<std::size_t>(eff) & kRingMask;
  e.next = kNil;
  if (tail_[b] == kNil) {
    head_[b] = tail_[b] = slot;
  } else {
    pool_[tail_[b]].next = slot;
    tail_[b] = slot;
  }
  mark_bucket(b);
}

void EventQueue::migrate_overflow() {
  const OverflowLater later{&pool_};
  while (!overflow_.empty()) {
    const std::uint32_t top = overflow_.front();
    Entry& e = pool_[top];
    if (!e.cancelled &&
        e.at >= cursor_ + static_cast<TimeMs>(kRingSize)) {
      break;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), later);
    overflow_.pop_back();
    if (e.cancelled) {
      release_slot(top);
    } else {
      push_ring(top);
    }
  }
}

EventHandle EventQueue::schedule(TimeMs at, EventCallback fn) {
  const std::uint32_t slot = acquire_slot();
  Entry& e = pool_[slot];
  e.at = at;
  e.seq = next_seq_++;
  e.cancelled = false;
  e.fn = std::move(fn);
  if (at < cursor_ + static_cast<TimeMs>(kRingSize)) {
    push_ring(slot);
  } else {
    overflow_.push_back(slot);
    std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{&pool_});
  }
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return EventHandle{tag_, slot, e.gen};
}

std::size_t EventQueue::find_occupied(std::size_t from) const noexcept {
  if (summary_ == 0) return kRingSize;
  std::size_t w = from >> 6;
  // Word containing `from`, restricted to bits at or after it.
  std::uint64_t bits = occupied_[w] & (~std::uint64_t{0} << (from & 63));
  if (bits != 0) return (w << 6) + std::countr_zero(bits);
  for (std::size_t i = 1; i <= kWords; ++i) {
    w = (from >> 6) + i >= kWords ? ((from >> 6) + i) - kWords
                                  : (from >> 6) + i;
    bits = occupied_[w];
    if (i == kWords) bits &= (std::uint64_t{1} << (from & 63)) - 1;
    if (bits != 0) return (w << 6) + std::countr_zero(bits);
  }
  return kRingSize;
}

std::uint32_t EventQueue::pop_next_live() {
  const OverflowLater later{&pool_};
  for (;;) {
    migrate_overflow();
    if (summary_ != 0) {
      std::size_t b = find_occupied(static_cast<std::size_t>(cursor_) &
                                    kRingMask);
      while (b != kRingSize) {
        std::uint32_t slot = head_[b];
        while (slot != kNil && pool_[slot].cancelled) {
          head_[b] = pool_[slot].next;
          release_slot(slot);
          slot = head_[b];
        }
        if (slot == kNil) {
          clear_bucket_if_empty(b);
          b = summary_ != 0 ? find_occupied((b + 1) & kRingMask) : kRingSize;
          continue;
        }
        head_[b] = pool_[slot].next;
        clear_bucket_if_empty(b);
        Entry& e = pool_[slot];
        if (e.at > cursor_) {
          // Advancing the cursor widens the ring horizon; migrate before
          // returning so the caller's callback never schedules a ring entry
          // that has an earlier-seq twin stranded in the overflow heap.
          cursor_ = e.at;
          migrate_overflow();
        }
        return slot;
      }
      continue;  // ring held only cancelled entries; re-examine overflow
    }
    while (!overflow_.empty() && pool_[overflow_.front()].cancelled) {
      const std::uint32_t top = overflow_.front();
      std::pop_heap(overflow_.begin(), overflow_.end(), later);
      overflow_.pop_back();
      release_slot(top);
    }
    if (overflow_.empty()) return kNil;
    // Ring is empty: jump the cursor to the earliest far-future event and
    // let migration pull it (and its cohort) into the ring.
    cursor_ = pool_[overflow_.front()].at;
  }
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  if (live_ == 0) return std::nullopt;
  const std::uint32_t slot = pop_next_live();
  assert(slot != kNil);
  Entry& e = pool_[slot];
  Fired fired{e.at, std::move(e.fn)};
  release_slot(slot);  // fired events cannot be cancelled retroactively
  --live_;
  return fired;
}

std::optional<TimeMs> EventQueue::peek_time() {
  if (live_ == 0) return std::nullopt;
  migrate_overflow();
  // Non-destructive scan (cancelled entries encountered on the way are
  // collected, live ones stay put; the cursor does not move).
  std::size_t b = summary_ != 0
                      ? find_occupied(static_cast<std::size_t>(cursor_) &
                                      kRingMask)
                      : kRingSize;
  while (b != kRingSize) {
    std::uint32_t slot = head_[b];
    while (slot != kNil && pool_[slot].cancelled) {
      head_[b] = pool_[slot].next;
      release_slot(slot);
      slot = head_[b];
    }
    if (slot != kNil) return pool_[slot].at;
    clear_bucket_if_empty(b);
    b = summary_ != 0 ? find_occupied((b + 1) & kRingMask) : kRingSize;
  }
  const OverflowLater later{&pool_};
  while (!overflow_.empty() && pool_[overflow_.front()].cancelled) {
    const std::uint32_t top = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), later);
    overflow_.pop_back();
    release_slot(top);
  }
  if (overflow_.empty()) return std::nullopt;
  return pool_[overflow_.front()].at;
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) noexcept {
  if (slot >= pool_.size()) return;
  Entry& e = pool_[slot];
  if (e.gen != gen || e.cancelled) return;
  e.cancelled = true;
  e.fn.reset();  // release captured resources eagerly
  --live_;
}

bool EventQueue::slot_pending(std::uint32_t slot,
                              std::uint32_t gen) const noexcept {
  return slot < pool_.size() && pool_[slot].gen == gen &&
         !pool_[slot].cancelled;
}

}  // namespace agb::sim
