#include "sim/event_queue.h"

#include <optional>

namespace agb::sim {

EventHandle EventQueue::schedule(TimeMs at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{alive};
  heap_.push(Entry{at, next_seq_++, std::move(fn), std::move(alive)});
  return handle;
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
  }
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  // priority_queue::top() is const, so take a copy (the callable is a
  // shared-state std::function; the copy is cheap relative to event cost).
  Entry entry = heap_.top();
  heap_.pop();
  *entry.alive = false;  // fired events cannot be cancelled retroactively
  return Fired{entry.at, std::move(entry.fn)};
}

std::optional<TimeMs> EventQueue::peek_time() {
  drop_dead();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().at;
}

bool EventQueue::empty() {
  drop_dead();
  return heap_.empty();
}

}  // namespace agb::sim
