// Discrete-event simulator: a virtual clock plus an event queue.
//
// All protocol experiments in bench/ run on this simulator. Determinism
// contract: given the same seed and schedule of calls, two runs produce
// byte-identical traces (stable tie-breaking in EventQueue, no wall-clock
// reads anywhere in the stack).
#pragma once

#include <functional>
#include <optional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace agb::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimeMs now() const noexcept { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now()).
  /// Captures up to EventCallback::kInlineSize bytes are stored inline in
  /// the queue entry — no heap allocation per event.
  EventHandle at(TimeMs at, EventCallback fn);

  /// Schedules `fn` after `delay` ms (clamped to 0).
  EventHandle after(DurationMs delay, EventCallback fn);

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs events with timestamp <= deadline; advances the clock to
  /// `deadline` even if the queue empties earlier.
  void run_until(TimeMs deadline);

  /// Convenience: run_until(now() + duration).
  void run_for(DurationMs duration);

  /// Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Timestamp of the earliest pending event, or nullopt when the queue is
  /// empty. The sharded engine's serial phase reads this across all shards
  /// to pick the next conservative window.
  [[nodiscard]] std::optional<TimeMs> next_event_time() {
    return queue_.peek_time();
  }

  /// High-water mark of pending_events() over the run (capacity receipt for
  /// the scale presets).
  [[nodiscard]] std::size_t peak_pending_events() const {
    return queue_.peak_size();
  }

 private:
  EventQueue queue_;
  TimeMs now_ = 0;
  bool stopped_ = false;
};

/// Repeating timer bound to a Simulator. Fires first at `start`, then every
/// `period` until cancelled or the owner is destroyed.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, TimeMs start, DurationMs period,
                std::function<void(TimeMs)> fn);
  ~PeriodicTimer() { cancel(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void cancel() noexcept;
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Changes the period; takes effect from the next firing.
  void set_period(DurationMs period) noexcept { period_ = period; }

 private:
  void arm(TimeMs at);

  Simulator& sim_;
  DurationMs period_;
  std::function<void(TimeMs)> fn_;
  EventHandle handle_;
  bool active_ = true;
};

}  // namespace agb::sim
