// Simulated best-effort datagram network.
//
// Substitutes for the paper's Ethernet LAN of 60 workstations: point-to-point
// datagrams with a pluggable latency distribution, a pluggable loss process
// (i.i.d. or bursty Gilbert-Elliott, since the paper notes that correlated
// loss hurts gossip), pairwise partitions and per-node crash/recover. All
// randomness is drawn from one seeded Rng, so runs are deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/datagram.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plane.h"
#include "sim/delay_sampler.h"
#include "sim/simulator.h"

namespace agb::sim {

/// Loss process for datagrams. kBurst is a two-state Gilbert-Elliott chain:
/// in the good state packets drop with p_good, in the bad state with p_bad;
/// transitions good->bad with p_gb and bad->good with p_bg per packet.
struct LossModel {
  enum class Kind { kNone, kIid, kBurst };
  Kind kind = Kind::kNone;
  double p = 0.0;      // iid drop probability
  double p_good = 0.0;
  double p_bad = 0.9;
  double p_gb = 0.01;
  double p_bg = 0.2;

  static LossModel none() { return {}; }
  static LossModel iid(double drop_probability) {
    LossModel m;
    m.kind = Kind::kIid;
    m.p = drop_probability;
    return m;
  }
  static LossModel burst(double p_good, double p_bad, double p_gb,
                         double p_bg) {
    LossModel m;
    m.kind = Kind::kBurst;
    m.p_good = p_good;
    m.p_bad = p_bad;
    m.p_gb = p_gb;
    m.p_bg = p_bg;
    return m;
  }
};

struct NetworkParams {
  LatencyModel latency = LatencyModel::fixed(1.0);
  LossModel loss = LossModel::none();

  /// WAN topology (the setting of directional gossip, paper §5): when
  /// clusters > 1, node i belongs to cluster i % clusters and every link
  /// crossing a cluster boundary samples `wan_latency` instead of
  /// `latency` (which keeps modelling the intra-cluster LAN hop). A plain
  /// membership rule, not a per-pair table — O(1) per send at any n.
  std::size_t clusters = 1;
  LatencyModel wan_latency = LatencyModel::uniform(20.0, 60.0);
};

/// Counters exposed for tests and benches.
struct NetworkStats {
  std::uint64_t sent = 0;        // one per (batch, target) pair
  /// `sent`, split by the cluster rule: a (batch, target) pair whose
  /// endpoints share a cluster counts as intra, one that crosses a
  /// boundary as cross. With clusters <= 1 everything is intra. These are
  /// the WAN-traffic receipts of locality-biased target selection
  /// (directional gossip, paper §5).
  std::uint64_t sent_intra_cluster = 0;
  std::uint64_t sent_cross_cluster = 0;
  std::uint64_t batches = 0;     // send_batch calls (a fan-out counts once)
  /// Simulator events scheduled for deliveries: same-delay targets of one
  /// batch share one event, so a fixed-latency fan-out of F costs 1, not F.
  std::uint64_t events_scheduled = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_detached = 0;
  /// Dropped by a fault-plane one-way partition rule (asymmetric: the
  /// reverse direction keeps flowing, unlike `dropped_partition`).
  std::uint64_t dropped_chaos = 0;
  std::uint64_t bytes_delivered = 0;
};

class SimNetwork final : public DatagramNetwork {
 public:
  SimNetwork(Simulator& sim, NetworkParams params, Rng rng);

  void attach(NodeId node, DatagramHandler handler) override;
  void detach(NodeId node) override;

  /// Loss/latency are sampled per target (per-target RNG draw order matches
  /// the old per-datagram path, so seeded runs are unchanged); stats run
  /// once per batch, and all targets that sampled the same delay are
  /// delivered by one simulator event.
  void send_batch(Multicast batch) override;

  /// Crash/recover: a down node neither sends nor receives.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Symmetric pairwise partition control.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void heal_all();
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  /// Topology: overrides the default latency for one (symmetric) link —
  /// e.g. WAN links between clusters vs LAN links within them (the setting
  /// of directional gossip, paper §5). clear_link_latencies() reverts all.
  void set_link_latency(NodeId a, NodeId b, LatencyModel model);
  void clear_link_latencies();

  /// Fault injection (non-owning; may be null = clean run). A clean run
  /// takes the exact pre-fault code path — no extra RNG draws — so seeded
  /// traces and golden fingerprints are unchanged.
  void set_fault_plane(fault::FaultPlane* plane) noexcept {
    fault_plane_ = plane;
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const DelaySampler& delay_sampler() const noexcept {
    return sampler_;
  }

 private:
  [[nodiscard]] bool loss_drop();

  Simulator& sim_;
  NetworkParams params_;
  Rng rng_;
  /// Latency topology (default model, cluster rule, per-link overrides);
  /// shares precedence and draw semantics with InMemoryFabric.
  DelaySampler sampler_;
  std::unordered_map<NodeId, DatagramHandler> handlers_;
  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  bool burst_bad_ = false;
  fault::FaultPlane* fault_plane_ = nullptr;
  NetworkStats stats_;
};

}  // namespace agb::sim
