// Multi-core sharded discrete-event engine: conservative window-synchronized
// parallel simulation over the calendar-queue Simulator.
//
// Layout: `shards` (rounded up to a power of two) independent sim::Simulator
// instances, each owning its own event queue and clock. Node n lives on
// shard `n & (shards - 1)` — the same mask trick InMemoryFabric uses — so
// ownership is a bit-and, never a lookup.
//
// Time advances in lookahead windows:
//
//       serial phase                parallel phase             serial phase
//   T = min(next event   ----->   every shard runs    ----->  drain channels,
//       over all shards)          run_until(T+L-1)            canonical sort,
//   window = [T, T+L)             emitting datagrams          barrier hook
//                                 into ShardChannels          schedules them
//
// L (the lookahead) is a lower bound on network delay, so nothing emitted
// inside a window can be due before the window ends — shards never need to
// see each other's state mid-window, only at barriers. Worker threads (a
// fork-join pool with a static shard -> worker assignment) execute the
// parallel phase; with workers == 1 the same loop runs inline, bit-identical
// to the threaded run because no observable state depends on interleaving:
// every datagram — same-shard or cross-shard — travels through the channels
// and is canonically sorted before the barrier hook sees it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/shard_channel.h"
#include "sim/simulator.h"

namespace agb::sim {

struct ShardedEngineParams {
  /// Requested shard count; rounded up to a power of two, minimum 1.
  std::size_t shards = 1;
  /// Worker threads for the parallel phase; 0 = min(shards, hardware
  /// concurrency). Never affects outcomes, only wall-clock.
  std::size_t workers = 0;
  /// Conservative lookahead L in virtual ms (window length). Must be a
  /// lower bound on every datagram's delay; clamped to >= 1.
  DurationMs lookahead = 1;
};

class ShardedEngine {
 public:
  /// Serial-phase callback at the end of every window: `batch` holds every
  /// datagram emitted during the window, already in canonical
  /// (at, from, seq, to) order; the hook turns them into simulator events
  /// (and does any other shared-state bookkeeping — tracker merges,
  /// samplers). Runs with all workers parked.
  using BarrierHook =
      std::function<void(TimeMs window_end,
                         std::vector<CrossShardDatagram>& batch)>;

  /// Optional window clamp: given the window start T, return a time B >= T
  /// that the next window must not run past (the window closes at B+1), or
  /// any value < T for "no constraint". Scenarios use it to land barriers
  /// exactly on sampler bucket boundaries.
  using BoundaryFn = std::function<TimeMs(TimeMs window_start)>;

  explicit ShardedEngine(ShardedEngineParams params);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return sims_.size(); }
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] DurationMs lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] std::size_t shard_of(NodeId id) const noexcept {
    return static_cast<std::size_t>(id) & mask_;
  }
  [[nodiscard]] Simulator& shard(std::size_t s) noexcept { return *sims_[s]; }

  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }
  void set_boundary(BoundaryFn fn) { boundary_ = std::move(fn); }

  /// Producer side, called from shard `from_shard`'s window execution (the
  /// worker that owns it): routes `d` to the channel feeding the owner of
  /// `d.to`. `d.at` must be >= the running window's end (delay >= L).
  void push(std::size_t from_shard, CrossShardDatagram d) {
    channels_[from_shard * sims_.size() + shard_of(d.to)].push(std::move(d));
  }

  /// Runs conservative windows until no shard holds an event with
  /// timestamp <= deadline, then advances every shard clock to `deadline`.
  void run_until(TimeMs deadline);

  [[nodiscard]] std::uint64_t windows_run() const noexcept { return windows_; }

  /// Sum of the per-shard event-queue high-water marks. Not comparable
  /// across shard counts (each shard peaks at a different moment); reported
  /// as a capacity receipt, excluded from determinism comparisons.
  [[nodiscard]] std::size_t peak_pending_events() const;

 private:
  [[nodiscard]] std::optional<TimeMs> global_next_event();
  [[nodiscard]] TimeMs window_end_for(TimeMs start, TimeMs deadline) const;
  void run_window(TimeMs window_end, std::size_t worker);
  void close_window(TimeMs window_end);
  void run_windows_single(TimeMs deadline);
  void run_windows_threaded(TimeMs deadline);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<ShardChannel> channels_;  // [producer * shards + consumer]
  std::vector<CrossShardDatagram> batch_;  // barrier scratch, reused
  std::size_t mask_ = 0;
  std::size_t workers_ = 1;
  DurationMs lookahead_ = 1;
  BarrierHook hook_;
  BoundaryFn boundary_;
  std::uint64_t windows_ = 0;
};

}  // namespace agb::sim
