// Cross-shard datagram exchange for the sharded simulator.
//
// Under conservative time-window synchronization every shard runs the window
// [T, T+L) against its private event queue, and every datagram it emits —
// cross-shard *and* same-shard — is pushed into a ShardChannel instead of
// being scheduled directly. The channels are drained in the serial barrier
// phase that ends the window, where the whole batch is put into one
// canonical order before any of it is turned back into simulator events.
// That canonical order, not thread arrival order, is what makes scenario
// outcomes independent of shard count and worker count.
//
// Each channel is single-producer (the worker executing the producing
// shard's window) / single-consumer (the serial barrier phase); the window
// barrier is the only synchronization it needs. drain() enforces the two
// invariants the engine's correctness rests on, every pop:
//   * the lookahead horizon: no datagram may be timestamped inside the
//     window that produced it (senders clamp delay to >= L, so everything
//     lands at or after the window barrier that schedules it);
//   * per-sender FIFO: a sender's send sequence numbers arrive strictly
//     increasing, which implies per-(sender, receiver) FIFO and gives the
//     canonical sort a total, run-invariant tie-break.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/shared_bytes.h"
#include "common/types.h"

namespace agb::sim {

/// One datagram crossing a window barrier: absolute delivery time, the
/// (sender, send-sequence) pair that makes its identity unique and
/// canonically sortable, and the shared payload bytes.
struct CrossShardDatagram {
  TimeMs at = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Per-sender monotone send counter (one tick per emitted copy, including
  /// fault-plane duplicates), so (from, seq) is unique run-wide.
  std::uint64_t seq = 0;
  SharedBytes payload;
};

/// The canonical delivery order: (deliver time, sender, send seq, receiver).
/// Total (no two datagrams share (from, seq)), and independent of which
/// shard/worker produced the entries — the determinism suite's bedrock.
[[nodiscard]] inline bool canonical_before(const CrossShardDatagram& a,
                                           const CrossShardDatagram& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.from != b.from) return a.from < b.from;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.to < b.to;
}

class ShardChannel {
 public:
  /// Producer side (window execution). Appends in emission order.
  void push(CrossShardDatagram d) { buffer_.push_back(std::move(d)); }

  /// Consumer side (serial barrier phase). Moves everything into `out`,
  /// validating the lookahead horizon and per-sender FIFO on every entry;
  /// throws std::logic_error on a violation (an engine bug, never a
  /// recoverable condition). `horizon` is the closing window's end: every
  /// datagram produced inside [T, horizon) must deliver at >= horizon.
  void drain(TimeMs horizon, std::vector<CrossShardDatagram>& out) {
    for (CrossShardDatagram& d : buffer_) {
      if (d.at < horizon) {
        throw std::logic_error(
            "ShardChannel: datagram below the lookahead horizon (at=" +
            std::to_string(d.at) + " < " + std::to_string(horizon) + ")");
      }
      auto [it, inserted] = last_seq_.try_emplace(d.from, d.seq);
      if (!inserted) {
        if (d.seq <= it->second) {
          throw std::logic_error(
              "ShardChannel: per-sender FIFO violated (from=" +
              std::to_string(d.from) + " seq=" + std::to_string(d.seq) +
              " after seq=" + std::to_string(it->second) + ")");
        }
        it->second = d.seq;
      }
      out.push_back(std::move(d));
    }
    buffer_.clear();
  }

  [[nodiscard]] std::size_t pending() const noexcept { return buffer_.size(); }

 private:
  std::vector<CrossShardDatagram> buffer_;
  /// Highest send sequence seen per sender, across the channel's lifetime —
  /// the FIFO witness spans windows, not just one drain.
  std::unordered_map<NodeId, std::uint64_t> last_seq_;
};

}  // namespace agb::sim
