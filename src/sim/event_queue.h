// Priority queue of timestamped callbacks for the discrete-event simulator.
//
// Events at equal timestamps fire in scheduling order (stable), which keeps
// simulations deterministic. Cancellation is O(1) via a shared tombstone
// flag; cancelled entries are skipped at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace agb::sim {

/// Handle returned by EventQueue::schedule; cancel() is idempotent and safe
/// after the event has fired (it becomes a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running if it has not run yet.
  void cancel() noexcept {
    if (auto alive = alive_.lock()) *alive = false;
  }

  [[nodiscard]] bool pending() const noexcept {
    auto alive = alive_.lock();
    return alive && *alive;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class EventQueue {
 public:
  /// Enqueues `fn` to run at absolute time `at` (must be >= the time of the
  /// last popped event for causality; enforced by Simulator, not here).
  EventHandle schedule(TimeMs at, std::function<void()> fn);

  /// A popped event, ready to invoke. The queue has already marked it as
  /// fired; the caller advances its clock to `at` *before* calling `fn` so
  /// that callbacks observe the correct current time.
  struct Fired {
    TimeMs at;
    std::function<void()> fn;
  };

  /// Pops the next live event without running it; std::nullopt when empty.
  std::optional<Fired> pop();

  /// Timestamp of the next live event without running it.
  [[nodiscard]] std::optional<TimeMs> peek_time();

  [[nodiscard]] bool empty();
  /// Upper bound on pending events (cancelled entries are lazily collected).
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    TimeMs at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace agb::sim
