// Calendar queue of timestamped callbacks for the discrete-event simulator.
//
// Events at equal timestamps fire in scheduling order (stable), which keeps
// simulations deterministic — the contract is identical to the original
// binary-heap implementation, but the cost model is built for 10^5-10^6
// node runs:
//
//   - Near-future events (within kRingSize ms of the cursor) go into a
//     power-of-two ring of 1 ms buckets; each bucket is an intrusive FIFO,
//     so schedule and pop are O(1) plus a two-level-bitmap scan to the next
//     occupied bucket. Far-future events wait in a small overflow min-heap
//     and migrate into the ring as the cursor approaches them.
//   - Entries live in a freelist-recycled pool: steady-state scheduling
//     performs zero heap allocations, and callbacks with captures up to
//     EventCallback::kInlineSize bytes are stored inline in the entry.
//   - Cancellation is O(1) via a generation counter on the pooled entry
//     (no shared_ptr<bool> tombstone per event).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/event_callback.h"

namespace agb::sim {

class EventQueue;

namespace detail {
/// Per-queue control block handles lock to check the queue is still alive.
/// One allocation per queue, not per event.
struct QueueTag {
  EventQueue* queue = nullptr;
};
}  // namespace detail

/// Handle returned by EventQueue::schedule; cancel() is idempotent and safe
/// after the event has fired (it becomes a no-op). Copyable; a generation
/// counter makes handles to recycled entries inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running if it has not run yet.
  void cancel() noexcept;

  [[nodiscard]] bool pending() const noexcept;

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::QueueTag> tag, std::uint32_t slot,
              std::uint32_t gen)
      : tag_(std::move(tag)), slot_(slot), gen_(gen) {}

  std::weak_ptr<detail::QueueTag> tag_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` to run at absolute time `at` (must be >= the time of the
  /// last popped event for causality; enforced by Simulator, not here — a
  /// violating entry fires promptly, reporting its own timestamp).
  EventHandle schedule(TimeMs at, EventCallback fn);

  /// A popped event, ready to invoke. The queue has already marked it as
  /// fired; the caller advances its clock to `at` *before* calling `fn` so
  /// that callbacks observe the correct current time.
  struct Fired {
    TimeMs at;
    EventCallback fn;
  };

  /// Pops the next live event without running it; std::nullopt when empty.
  std::optional<Fired> pop();

  /// Timestamp of the next live event without running it. Does not advance
  /// the cursor: callers may still schedule earlier-but->=now events after
  /// peeking (run_until relies on this).
  [[nodiscard]] std::optional<TimeMs> peek_time();

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  /// Exact number of live (scheduled, not cancelled, not fired) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// High-water mark of size() over the queue's lifetime.
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_live_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kRingBits = 12;       // 4096 ms horizon
  static constexpr std::size_t kRingSize = std::size_t{1} << kRingBits;
  static constexpr std::size_t kRingMask = kRingSize - 1;
  static constexpr std::size_t kWords = kRingSize / 64;

  struct Entry {
    TimeMs at = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  // bucket FIFO link / freelist link
    std::uint32_t gen = 0;      // bumped on release; stale handles are inert
    bool cancelled = false;
    EventCallback fn;
  };

  /// Orders overflow-heap slots so the earliest (at, seq) is on top.
  struct OverflowLater {
    const std::vector<Entry>* pool;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      const Entry& ea = (*pool)[a];
      const Entry& eb = (*pool)[b];
      if (ea.at != eb.at) return ea.at > eb.at;
      return ea.seq > eb.seq;
    }
  };

  friend class EventHandle;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  void push_ring(std::uint32_t slot);
  /// Moves overflow entries whose time entered the ring horizon into their
  /// buckets. Must run whenever the cursor may have advanced, *before* any
  /// direct ring insert at the same timestamp could land — that keeps
  /// (at, seq) FIFO order global across both tiers.
  void migrate_overflow();
  void cancel_slot(std::uint32_t slot, std::uint32_t gen) noexcept;
  [[nodiscard]] bool slot_pending(std::uint32_t slot,
                                  std::uint32_t gen) const noexcept;
  /// Unlinks and returns the next live slot in time order, advancing the
  /// cursor; kNil when the queue is empty. Cancelled entries encountered on
  /// the way are released.
  std::uint32_t pop_next_live();
  /// First occupied bucket at or after `from` in circular cursor order, or
  /// kRingSize when the ring is empty.
  [[nodiscard]] std::size_t find_occupied(std::size_t from) const noexcept;
  void mark_bucket(std::size_t b) noexcept;
  void clear_bucket_if_empty(std::size_t b) noexcept;

  std::vector<Entry> pool_;
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> head_;  // per-bucket FIFO head / tail
  std::vector<std::uint32_t> tail_;
  std::uint64_t occupied_[kWords] = {};
  std::uint64_t summary_ = 0;  // bit w set iff occupied_[w] != 0
  std::vector<std::uint32_t> overflow_;  // heap of slots beyond the horizon
  TimeMs cursor_ = 0;  // ring entries satisfy at ∈ [cursor_, cursor_+kRingSize)
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::shared_ptr<detail::QueueTag> tag_;
};

inline void EventHandle::cancel() noexcept {
  if (auto tag = tag_.lock(); tag && tag->queue != nullptr) {
    tag->queue->cancel_slot(slot_, gen_);
  }
}

inline bool EventHandle::pending() const noexcept {
  const auto tag = tag_.lock();
  return tag && tag->queue != nullptr && tag->queue->slot_pending(slot_, gen_);
}

}  // namespace agb::sim
