// Deterministic fault injection for all three datagram fabrics.
//
// The FaultPlane is to faults what sim::DelaySampler is to latency: one
// shared component, consulted by SimNetwork, InMemoryFabric and UdpTransport
// at the send_batch choke point, so every fabric misbehaves the same way
// from the same seed. It injects the impolite failures the polite schedules
// (clean crashes, symmetric loss, churn) never produce:
//
//   - payload corruption / truncation — random byte flips and cuts that feed
//     the fuzz-hardened codec in live runs (decode must answer monostate,
//     never crash);
//   - datagram duplication and reordering (an extra delivery delay);
//   - asymmetric partitions — A→B dead while B→A lives, the case that
//     stresses suspicion timeouts hardest;
//   - gray failures on the wall-clock runtime — injected handler stalls and
//     skewed round clocks, so a node is slow-but-up and membership must not
//     flap. (No-ops on the simulator: virtual time cannot stall.)
//
// Faults are declared as a ChaosSchedule of windowed rules
// (`chaos=corrupt:0.05@5s-15s`-style registry keys, see
// core::parse_chaos_spec) and sampled from the plane's own Rng, seeded from
// the scenario seed — never from the master Rng split sequence, so a clean
// run (null plane) draws exactly the same random stream as before the plane
// existed and the golden trace fingerprints stay byte-identical.
//
// Threading: sample()/mutate() serialise on an internal mutex (the Rng is
// shared); window checks and the gray-failure probes are lock-free. On the
// single-threaded simulator the draw order — and therefore the whole faulted
// trace — is deterministic per seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/shared_bytes.h"
#include "common/types.h"

namespace agb::fault {

enum class FaultKind : std::uint8_t {
  kCorrupt,    // flip 1..4 random payload bytes with probability `rate`
  kTruncate,   // cut the payload at a random earlier length
  kDuplicate,  // deliver an extra copy
  kReorder,    // add a random extra delay in (0, amount] ms
  kOneWay,     // drop a→b silently while b→a lives (asymmetric partition)
  kStall,      // sleep the receive handler of node `a` for `amount` ms
  kSkew,       // advance node `a`'s runtime clock by `amount` ms
};

/// Wildcard for FaultRule::b — "every target".
inline constexpr NodeId kAnyNode = kInvalidNode;

/// Open-ended rule window sentinel.
inline constexpr TimeMs kNoEnd = std::numeric_limits<TimeMs>::max();

/// One windowed fault rule. Which fields matter depends on `kind`:
/// probability kinds (corrupt/truncate/dup/reorder) use `rate`; link kinds
/// (oneway) use `a`→`b`; node kinds (stall/skew) use `a`; reorder/stall/skew
/// use `amount` (ms). The rule is live for now ∈ [start, end).
struct FaultRule {
  FaultKind kind = FaultKind::kCorrupt;
  double rate = 0.0;
  NodeId a = kAnyNode;
  NodeId b = kAnyNode;
  DurationMs amount = 0;
  TimeMs start = 0;
  TimeMs end = kNoEnd;
};

struct ChaosSchedule {
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

  /// Latest bounded rule end — the moment the network is clean again and
  /// the self-healing clock starts. 0 if every rule is open-ended or the
  /// schedule is empty.
  [[nodiscard]] TimeMs last_window_end() const noexcept;

  /// Any corruption/truncation rule present (decode-drop counters are
  /// expected to rise exactly when this is true).
  [[nodiscard]] bool corrupts() const noexcept;
  /// Any stall/skew rule present (wall-clock gray failures).
  [[nodiscard]] bool gray() const noexcept;
  /// Any oneway rule present (asymmetric partition).
  [[nodiscard]] bool asymmetric() const noexcept;
};

/// What the plane decided for one (from, to, now) datagram copy.
struct FaultAction {
  bool drop = false;       // one-way partition: silently dropped at send
  bool corrupt = false;
  bool truncate = false;
  int duplicates = 0;      // extra copies to deliver
  DurationMs extra_delay = 0;  // reorder: added to the sampled link delay

  /// True when the datagram cannot ride the fabric's shared fast path
  /// (payload mutation, extra copies or extra delay).
  [[nodiscard]] bool special() const noexcept {
    return drop || corrupt || truncate || duplicates > 0 || extra_delay > 0;
  }
};

/// Injection totals, snapshotted by stats().
struct FaultStats {
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t dropped_oneway = 0;
  std::uint64_t stalls = 0;      // handler stalls served (wall-clock only)
  std::uint64_t skew_reads = 0;  // clock reads answered with a skew

  [[nodiscard]] std::uint64_t mutations() const noexcept {
    return corrupted + truncated;
  }
};

/// The plane's seed derivation from the scenario seed — a fixed xor (the
/// splitmix64 golden-ratio increment), NOT a master-RNG split, so both
/// harnesses build identical planes for a seed without consuming a draw
/// from the protocol's own random stream.
[[nodiscard]] inline std::uint64_t chaos_seed(
    std::uint64_t scenario_seed) noexcept {
  return scenario_seed ^ 0x9e3779b97f4a7c15ull;
}

class FaultPlane {
 public:
  FaultPlane(ChaosSchedule schedule, std::uint64_t seed);

  /// Per-target verdict at the send_batch choke point. Thread-safe;
  /// deterministic draw order on a single-threaded caller.
  FaultAction sample(NodeId from, NodeId to, TimeMs now);

  /// Copy-then-mutate: returns a *fresh* buffer with the action's
  /// truncation/byte-flips applied. The original SharedBytes — aliased
  /// across the rest of the fan-out — is never touched.
  SharedBytes mutate(const SharedBytes& payload, const FaultAction& action);

  /// Gray failure probe: how long node `node`'s receive handler must sleep
  /// right now (0 = no stall rule live). Lock-free.
  DurationMs stall_for(NodeId node, TimeMs now);

  /// Gray failure probe: skew to add to node `node`'s clock read at `now`
  /// (0 = none). Lock-free.
  DurationMs clock_skew(NodeId node, TimeMs now);

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const ChaosSchedule& schedule() const noexcept {
    return schedule_;
  }

  /// Bounded sample of the mutated payloads this plane produced, for
  /// replaying through the codec as a regression corpus (the
  /// codec-robustness suite decodes every entry under ASan/UBSan).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> corpus() const;

 private:
  ChaosSchedule schedule_;
  mutable std::mutex mutex_;  // guards rng_ and corpus_
  Rng rng_;
  std::vector<std::vector<std::uint8_t>> corpus_;

  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> dropped_oneway_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> skew_reads_{0};
};

}  // namespace agb::fault
