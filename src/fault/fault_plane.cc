#include "fault/fault_plane.h"

#include <algorithm>
#include <utility>

namespace agb::fault {
namespace {

constexpr std::size_t kCorpusCap = 64;

bool in_window(const FaultRule& rule, TimeMs now) noexcept {
  return now >= rule.start && now < rule.end;
}

}  // namespace

TimeMs ChaosSchedule::last_window_end() const noexcept {
  TimeMs latest = 0;
  for (const FaultRule& rule : rules) {
    if (rule.end != kNoEnd) latest = std::max(latest, rule.end);
  }
  return latest;
}

bool ChaosSchedule::corrupts() const noexcept {
  return std::any_of(rules.begin(), rules.end(), [](const FaultRule& r) {
    return r.kind == FaultKind::kCorrupt || r.kind == FaultKind::kTruncate;
  });
}

bool ChaosSchedule::gray() const noexcept {
  return std::any_of(rules.begin(), rules.end(), [](const FaultRule& r) {
    return r.kind == FaultKind::kStall || r.kind == FaultKind::kSkew;
  });
}

bool ChaosSchedule::asymmetric() const noexcept {
  return std::any_of(rules.begin(), rules.end(), [](const FaultRule& r) {
    return r.kind == FaultKind::kOneWay;
  });
}

FaultPlane::FaultPlane(ChaosSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed) {}

FaultAction FaultPlane::sample(NodeId from, NodeId to, TimeMs now) {
  FaultAction action;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultRule& rule : schedule_.rules) {
    if (!in_window(rule, now)) continue;
    switch (rule.kind) {
      case FaultKind::kOneWay:
        if (rule.a == from && (rule.b == kAnyNode || rule.b == to)) {
          action.drop = true;
        }
        break;
      case FaultKind::kCorrupt:
        if (rng_.bernoulli(rule.rate)) action.corrupt = true;
        break;
      case FaultKind::kTruncate:
        if (rng_.bernoulli(rule.rate)) action.truncate = true;
        break;
      case FaultKind::kDuplicate:
        if (rng_.bernoulli(rule.rate)) ++action.duplicates;
        break;
      case FaultKind::kReorder:
        if (rng_.bernoulli(rule.rate)) {
          const DurationMs cap = std::max<DurationMs>(1, rule.amount);
          action.extra_delay +=
              1 + static_cast<DurationMs>(
                      rng_.next_below(static_cast<std::uint64_t>(cap)));
        }
        break;
      case FaultKind::kStall:
      case FaultKind::kSkew:
        break;  // gray failures are probed per node, not per datagram
    }
  }
  // A one-way drop wins: the datagram never leaves, so nothing else that was
  // sampled for it can be observed.
  if (action.drop) {
    dropped_oneway_.fetch_add(1, std::memory_order_relaxed);
    return FaultAction{.drop = true};
  }
  if (action.corrupt) corrupted_.fetch_add(1, std::memory_order_relaxed);
  if (action.truncate) truncated_.fetch_add(1, std::memory_order_relaxed);
  if (action.duplicates > 0) {
    duplicated_.fetch_add(static_cast<std::uint64_t>(action.duplicates),
                          std::memory_order_relaxed);
  }
  if (action.extra_delay > 0) {
    reordered_.fetch_add(1, std::memory_order_relaxed);
  }
  return action;
}

SharedBytes FaultPlane::mutate(const SharedBytes& payload,
                               const FaultAction& action) {
  std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
  std::lock_guard<std::mutex> lock(mutex_);
  if (action.truncate && !bytes.empty()) {
    bytes.resize(static_cast<std::size_t>(rng_.next_below(bytes.size())));
  }
  if (action.corrupt && !bytes.empty()) {
    const std::uint64_t flips = 1 + rng_.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng_.next_below(bytes.size()));
      // XOR with a non-zero mask so every flip really changes the byte.
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng_.next_below(255));
    }
  }
  if (corpus_.size() < kCorpusCap) corpus_.push_back(bytes);
  return SharedBytes(std::move(bytes));
}

DurationMs FaultPlane::stall_for(NodeId node, TimeMs now) {
  DurationMs total = 0;
  for (const FaultRule& rule : schedule_.rules) {
    if (rule.kind == FaultKind::kStall && rule.a == node &&
        in_window(rule, now)) {
      total += rule.amount;
    }
  }
  if (total > 0) stalls_.fetch_add(1, std::memory_order_relaxed);
  return total;
}

DurationMs FaultPlane::clock_skew(NodeId node, TimeMs now) {
  DurationMs total = 0;
  for (const FaultRule& rule : schedule_.rules) {
    if (rule.kind == FaultKind::kSkew && rule.a == node &&
        in_window(rule, now)) {
      total += rule.amount;
    }
  }
  if (total > 0) skew_reads_.fetch_add(1, std::memory_order_relaxed);
  return total;
}

FaultStats FaultPlane::stats() const {
  FaultStats s;
  s.corrupted = corrupted_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.duplicated = duplicated_.load(std::memory_order_relaxed);
  s.reordered = reordered_.load(std::memory_order_relaxed);
  s.dropped_oneway = dropped_oneway_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.skew_reads = skew_reads_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::vector<std::uint8_t>> FaultPlane::corpus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corpus_;
}

}  // namespace agb::fault
