// Immutable, reference-counted byte buffer for the datagram pipeline.
//
// A gossip round sends *the same encoded message* to `fanout` targets, and
// each copy may additionally sit in a delay queue before delivery. Carrying
// the payload as a SharedBytes means the bytes are produced once (one
// GossipMessage::encode) and every Datagram — across fan-out targets, delay
// queues and delivery callbacks — shares the same heap buffer; copying a
// SharedBytes is a reference-count bump, never a byte copy.
//
// The buffer is strictly immutable: there is no mutating accessor, so a
// payload aliased across fan-out targets, delay queues and receive paths
// can never be edited out from under a reader. (An earlier copy-on-write
// escape hatch, mutate(), was removed unused — per-target payload variants
// never materialised; re-adding CoW is trivial if they ever do.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace agb {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Takes ownership of `bytes` without copying them. Implicit on purpose:
  /// codec output (`std::vector<std::uint8_t>`) flows into Datagrams
  /// directly.
  SharedBytes(std::vector<std::uint8_t> bytes)
      : buf_(std::make_shared<std::vector<std::uint8_t>>(std::move(bytes))) {}

  SharedBytes(std::initializer_list<std::uint8_t> bytes)
      : SharedBytes(std::vector<std::uint8_t>(bytes)) {}

  /// Copies `bytes` into a fresh buffer (for callers holding a borrowed
  /// span, e.g. a socket receive buffer).
  static SharedBytes copy_of(std::span<const std::uint8_t> bytes) {
    return SharedBytes(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  }

  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return buf_ ? buf_->data() : nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return {data(), size()};
  }
  operator std::span<const std::uint8_t>() const noexcept { return view(); }

  [[nodiscard]] const std::uint8_t* begin() const noexcept { return data(); }
  [[nodiscard]] const std::uint8_t* end() const noexcept {
    return data() + size();
  }

  /// How many SharedBytes instances share this buffer (0 for empty). The
  /// zero-copy pipeline tests assert on this.
  [[nodiscard]] long use_count() const noexcept { return buf_.use_count(); }

  /// Byte-wise equality (not buffer identity). A bare vector converts
  /// implicitly, so `payload == std::vector<std::uint8_t>{...}` works too.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::shared_ptr<std::vector<std::uint8_t>> buf_;  // immutable once built
};

}  // namespace agb
