// Minimal key=value configuration registry.
//
// Examples and benches accept "key=value" command-line overrides; this
// registry parses them, offers typed getters with defaults, and records
// which keys were consumed so that a typo in an override is reported rather
// than silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace agb {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens (e.g. argv). Tokens without '=' are rejected.
  /// Returns false and fills `error` on malformed input.
  bool parse_args(int argc, const char* const* argv, std::string* error);

  /// Parses a single "key=value" pair.
  bool parse_pair(std::string_view token, std::string* error);

  void set(std::string key, std::string value);

  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were set but never read; useful to detect typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace agb
