// Exponential and windowed moving averages.
//
// The adaptation mechanism (paper §3.2, §3.3) smooths two signals with an
// exponentially weighted moving average: the age of virtually-dropped
// messages (avgAge) and the token-bucket fill level (avgTokens). The paper's
// update rule is  avg <- alpha * avg + (1 - alpha) * sample  with alpha
// "close to 1" (0.9 in their experiments).
#pragma once

#include <cstddef>
#include <deque>

namespace agb {

/// Exponentially weighted moving average, seeded with an initial value so
/// the controller has a sane estimate before the first sample arrives.
class Ewma {
 public:
  /// alpha is the weight of history; must be in [0, 1].
  Ewma(double alpha, double initial) noexcept
      : alpha_(alpha), value_(initial) {}

  void add(double sample) noexcept {
    value_ = alpha_ * value_ + (1.0 - alpha_) * sample;
    ++count_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] std::size_t samples() const noexcept { return count_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Re-seeds the average (used when reconfiguring a running node).
  void reset(double value) noexcept {
    value_ = value;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_;
  std::size_t count_ = 0;
};

/// Fixed-size sliding-window mean; used by metrics and ablation benches to
/// compare against the EWMA the paper prescribes.
class WindowedAverage {
 public:
  explicit WindowedAverage(std::size_t capacity) : capacity_(capacity) {}

  void add(double sample) {
    window_.push_back(sample);
    sum_ += sample;
    if (window_.size() > capacity_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

  [[nodiscard]] double value() const noexcept {
    return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
  }
  [[nodiscard]] std::size_t size() const noexcept { return window_.size(); }
  [[nodiscard]] bool full() const noexcept {
    return window_.size() == capacity_;
  }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace agb
