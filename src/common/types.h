// Core identifier and time types shared by every layer of the library.
//
// All simulated time is expressed in integer milliseconds (TimeMs). Virtual
// time starts at zero when a Simulator (or runtime driver) is created.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace agb {

/// Identifies a member of a broadcast group. Dense, assigned at join time.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Virtual (or wall-clock) time in milliseconds.
using TimeMs = std::int64_t;

/// A duration in milliseconds.
using DurationMs = std::int64_t;

/// Index of a gossip round at a given node (monotone per node).
using Round = std::uint64_t;

/// Sample-period index used by the minBuff estimator (paper Fig. 5(a), `s`).
using PeriodId = std::uint64_t;

/// Identifies a broadcast event uniquely across the group: the id of the
/// original sender plus a per-sender sequence number.
struct EventId {
  NodeId origin = kInvalidNode;
  std::uint64_t sequence = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
  friend auto operator<=>(const EventId&, const EventId&) = default;
};

/// Renders "origin:sequence", e.g. "12:345".
std::string to_string(const EventId& id);

}  // namespace agb

template <>
struct std::hash<agb::EventId> {
  std::size_t operator()(const agb::EventId& id) const noexcept {
    // splitmix-style mix of the two halves; cheap and well distributed.
    std::uint64_t x =
        (static_cast<std::uint64_t>(id.origin) << 48) ^ id.sequence;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
