// Tiny leveled logger.
//
// The protocol stack never logs on hot paths; logging exists for examples,
// failure-injection tests and debugging. A single global level keeps the
// dependency surface minimal (no external logging library offline), and
// printf-style formatting keeps us off C++20 <format>, which the offline
// toolchain does not ship.
#pragma once

#include <cstdarg>
#include <string_view>

namespace agb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold. Thread-safe (relaxed atomic).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, std::string_view message);

/// printf-style counterpart of log_line.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void log_fmt(LogLevel level, const char* fmt, ...);

#define AGB_LOG_DEBUG(...) ::agb::log_fmt(::agb::LogLevel::kDebug, __VA_ARGS__)
#define AGB_LOG_INFO(...) ::agb::log_fmt(::agb::LogLevel::kInfo, __VA_ARGS__)
#define AGB_LOG_WARN(...) ::agb::log_fmt(::agb::LogLevel::kWarn, __VA_ARGS__)
#define AGB_LOG_ERROR(...) ::agb::log_fmt(::agb::LogLevel::kError, __VA_ARGS__)

}  // namespace agb
