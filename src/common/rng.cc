#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace agb {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept : state_{} {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift with rejection on the low product half.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  // Sparse regime (large population, small sample): Floyd's algorithm is
  // O(k) in time and memory where the partial Fisher-Yates below is O(n) —
  // at n=10^5 the per-node partial-view bootstrap would otherwise cost
  // O(n^2) overall. The threshold keeps every small-population call (all
  // existing presets and FullMembership::targets at paper scale) on the
  // Fisher-Yates draw sequence, so historical seeds reproduce their exact
  // traces.
  if (n >= 2048 && k < n / 16) {
    std::vector<std::size_t> sample;
    sample.reserve(k);
    for (std::size_t i = n - k; i < n; ++i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      // k is small: linear membership test beats a hash set.
      if (std::find(sample.begin(), sample.end(), j) == sample.end()) {
        sample.push_back(j);
      } else {
        sample.push_back(i);
      }
    }
    return sample;
  }
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    using std::swap;
    swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::split() noexcept { return Rng{next()}; }

}  // namespace agb
