// Deterministic random number generation.
//
// Experiments must be exactly reproducible from a seed, so the library never
// touches std::random_device or global generators. Rng wraps xoshiro256**
// seeded via splitmix64, and offers the handful of distributions the
// protocols need (uniform ints/doubles, Bernoulli, exponential inter-arrival
// times, shuffles and k-out-of-n sampling without replacement).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace agb {

/// splitmix64 step; used for seeding and as a standalone hash-like stream.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xa5b35705u) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire-style
  /// rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Gaussian via Box-Muller (no cached spare: stateless per call pair).
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). If k >= n, returns all
  /// n indices (shuffled). Uses a partial Fisher-Yates over an index vector:
  /// O(n) but n is a group size (small) in all call sites.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator (for per-node streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace agb
