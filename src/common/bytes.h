// Byte-level serialization primitives for the wire codec.
//
// The runtime layer exchanges real datagrams, so every protocol message has
// a binary encoding. ByteWriter appends little-endian fixed-width integers
// and LEB128 varints to a growable buffer; ByteReader consumes them with
// explicit bounds checking (a malformed datagram must never crash a node —
// decode failures surface as std::nullopt / false, never UB).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace agb {

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 double, bit-copied little-endian.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }

  /// Unsigned LEB128 varint (1..10 bytes).
  void varint(std::uint64_t v);

  /// Length-prefixed (varint) byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const& {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> u8();
  [[nodiscard]] std::optional<std::uint16_t> u16();
  [[nodiscard]] std::optional<std::uint32_t> u32();
  [[nodiscard]] std::optional<std::uint64_t> u64();
  [[nodiscard]] std::optional<std::int64_t> i64();
  [[nodiscard]] std::optional<double> f64();
  [[nodiscard]] std::optional<std::uint64_t> varint();
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> bytes();
  [[nodiscard]] std::optional<std::string> str();

  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  std::optional<T> read_le() {
    if (remaining() < sizeof(T)) return std::nullopt;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace agb
