#include "common/types.h"

namespace agb {

std::string to_string(const EventId& id) {
  return std::to_string(id.origin) + ":" + std::to_string(id.sequence);
}

}  // namespace agb
