// Summary statistics used by the metrics layer and the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace agb {

/// Streaming accumulator: count, mean, variance (Welford), min, max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : mean_;
  }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept {
    return count_ == 0 ? 0.0 : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ == 0 ? 0.0 : max_;
  }
  [[nodiscard]] double sum() const noexcept { return mean_ * count_; }

  /// Merges another accumulator into this one (parallel aggregation).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains all samples; supports exact quantiles. Only used offline
/// (experiment post-processing), never on protocol hot paths.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Quantile in [0, 1] with linear interpolation. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. Used by benches to show age distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace agb
