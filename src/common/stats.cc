#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace agb {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) return samples_.back();
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<long>((x - lo_) / width_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace agb
