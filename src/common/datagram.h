// Datagram abstraction shared by the simulated network and the real
// transports.
//
// Protocol nodes are sans-I/O state machines; a *driver* (simulation harness
// or runtime) moves serialized datagrams between them. Both the simulator
// (src/sim) and the real transports (src/runtime) implement DatagramNetwork,
// so the exact same protocol code and wire codec run in both worlds.
//
// The interface is batch-first: a gossip round is inherently fan-out shaped
// (the *same* encoded message to F targets), so the one virtual send entry
// point is send_batch(Multicast). Fabrics amortise whatever is expensive for
// them — locking, stats, simulator events, syscalls — across the whole
// batch; the per-datagram send() is a non-virtual convenience wrapper over a
// one-target batch, so there is exactly one code path to test and tune.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/shared_bytes.h"
#include "common/types.h"

namespace agb {

/// An unreliable, unordered, point-to-point message (UDP semantics).
///
/// The payload is a SharedBytes: a batch fanned out to F targets encodes
/// once and every copy of the datagram — in flight, queued, delivered —
/// aliases the same buffer. Networks must never mutate it.
struct Datagram {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  SharedBytes payload;
};

/// One encoded payload addressed to many targets — a whole gossip fan-out.
/// Loss, latency and delivery stay *per target* (UDP semantics are
/// unchanged); only the bookkeeping around them is amortised.
struct Multicast {
  NodeId from = kInvalidNode;
  std::vector<NodeId> targets;
  SharedBytes payload;
};

/// Receives datagrams addressed to one node.
using DatagramHandler =
    std::function<void(const Datagram& datagram, TimeMs now)>;

/// Receives a whole inbound burst for one node: `count >= 1` datagrams, all
/// with the same `to`, in arrival order. The array is only valid for the
/// duration of the call. Fabrics with a batched receive path (recvmmsg
/// drains, sharded dispatch) hand a burst over in one call so the receiver
/// pays its per-delivery costs (state lock, wakeup) once per burst instead
/// of once per datagram.
using BatchHandler = std::function<void(const Datagram* batch,
                                        std::size_t count, TimeMs now)>;

/// Best-effort datagram fabric. Implementations: sim::SimNetwork (virtual
/// time, latency/loss/partition models) and runtime transports (in-memory
/// threaded fabric, UDP sockets).
class DatagramNetwork {
 public:
  virtual ~DatagramNetwork() = default;

  /// Registers the handler invoked when a datagram arrives for `node`.
  /// A node must be attached before anyone sends to it.
  virtual void attach(NodeId node, DatagramHandler handler) = 0;

  /// Batch counterpart of attach(): the handler sees whole inbound bursts.
  /// The default adapter delivers every datagram as a burst of one through
  /// attach(), preserving per-datagram semantics on fabrics without native
  /// batch ingestion (e.g. the simulator); the runtime fabrics override it.
  virtual void attach_batch(NodeId node, BatchHandler handler) {
    attach(node, [handler = std::move(handler)](const Datagram& datagram,
                                                TimeMs now) {
      handler(&datagram, 1, now);
    });
  }

  /// Removes a node; datagrams in flight to it are dropped.
  virtual void detach(NodeId node) = 0;

  /// Sends `batch.payload` best-effort to every target; any target's copy
  /// may be silently dropped (loss, partition, detach). The single virtual
  /// send entry point.
  virtual void send_batch(Multicast batch) = 0;

  /// Point-to-point convenience: a one-target batch.
  void send(Datagram datagram) {
    send_batch(Multicast{datagram.from,
                         std::vector<NodeId>{datagram.to},
                         std::move(datagram.payload)});
  }
};

}  // namespace agb
