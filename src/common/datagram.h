// Datagram abstraction shared by the simulated network and the real
// transports.
//
// Protocol nodes are sans-I/O state machines; a *driver* (simulation harness
// or runtime) moves serialized datagrams between them. Both the simulator
// (src/sim) and the real transports (src/runtime) implement DatagramNetwork,
// so the exact same protocol code and wire codec run in both worlds.
#pragma once

#include <cstdint>
#include <functional>

#include "common/shared_bytes.h"
#include "common/types.h"

namespace agb {

/// An unreliable, unordered, point-to-point message (UDP semantics).
///
/// The payload is a SharedBytes: a batch fanned out to F targets encodes
/// once and every copy of the datagram — in flight, queued, delivered —
/// aliases the same buffer. Networks must never mutate it.
struct Datagram {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  SharedBytes payload;
};

/// Receives datagrams addressed to one node.
using DatagramHandler =
    std::function<void(const Datagram& datagram, TimeMs now)>;

/// Best-effort datagram fabric. Implementations: sim::SimNetwork (virtual
/// time, latency/loss/partition models) and runtime transports (in-memory
/// threaded fabric, UDP sockets).
class DatagramNetwork {
 public:
  virtual ~DatagramNetwork() = default;

  /// Registers the handler invoked when a datagram arrives for `node`.
  /// A node must be attached before anyone sends to it.
  virtual void attach(NodeId node, DatagramHandler handler) = 0;

  /// Removes a node; datagrams in flight to it are dropped.
  virtual void detach(NodeId node) = 0;

  /// Sends best-effort; may be silently dropped (loss, partition, detach).
  virtual void send(Datagram datagram) = 0;
};

}  // namespace agb
