#include "common/config.h"

#include <algorithm>
#include <cstdlib>

namespace agb {

bool Config::parse_args(int argc, const char* const* argv,
                        std::string* error) {
  for (int i = 1; i < argc; ++i) {
    if (!parse_pair(argv[i], error)) return false;
  }
  return true;
}

bool Config::parse_pair(std::string_view token, std::string* error) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    if (error) *error = "expected key=value, got '" + std::string(token) + "'";
    return false;
  }
  set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
  return true;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(key);
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               std::string fallback) const {
  auto v = raw(key);
  return v ? *v : fallback;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace agb
