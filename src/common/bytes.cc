#include "common/bytes.h"

namespace agb {

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::optional<std::uint8_t> ByteReader::u8() { return read_le<std::uint8_t>(); }
std::optional<std::uint16_t> ByteReader::u16() {
  return read_le<std::uint16_t>();
}
std::optional<std::uint32_t> ByteReader::u32() {
  return read_le<std::uint32_t>();
}
std::optional<std::uint64_t> ByteReader::u64() {
  return read_le<std::uint64_t>();
}
std::optional<std::int64_t> ByteReader::i64() {
  auto raw = read_le<std::uint64_t>();
  if (!raw) return std::nullopt;
  return static_cast<std::int64_t>(*raw);
}
std::optional<double> ByteReader::f64() {
  auto raw = read_le<std::uint64_t>();
  if (!raw) return std::nullopt;
  double v;
  std::memcpy(&v, &*raw, sizeof(v));
  return v;
}

std::optional<std::uint64_t> ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 63 && (byte & 0x7f) > 1) return std::nullopt;  // overflow
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::vector<std::uint8_t>> ByteReader::bytes() {
  auto len = varint();
  if (!len || *len > remaining()) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + *len));
  pos_ += static_cast<std::size_t>(*len);
  return out;
}

std::optional<std::string> ByteReader::str() {
  auto len = varint();
  if (!len || *len > remaining()) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_,
                  static_cast<std::size_t>(*len));
  pos_ += static_cast<std::size_t>(*len);
  return out;
}

}  // namespace agb
