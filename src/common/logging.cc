#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace agb {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

void log_fmt(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log_line(level, buf);
}

}  // namespace agb
