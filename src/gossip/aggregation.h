// Periodic gossip aggregation — the general mechanism behind minBuff.
//
// The paper computes the group-wide minimum buffer size by folding a value
// into every gossip header and keeping per-sample-period state (footnote 3:
// "this is similar to an aggregation function", citing Gupta et al.). This
// header generalises that pattern: a PeriodicAggregator<Op> maintains, per
// sample period, the fold of the local contribution with every remote
// contribution observed in that period, with a sliding window over
// completed periods and the same loose period synchronisation
// (fast-forward on later-period headers).
//
// Ops provided: Min, Max, Sum-with-count (mean), Bool-Or. Sum/mean is only
// an *approximation* under gossip (values are folded per message and
// re-folding double-counts), so SumOp folds per-node last-writer state
// instead — see the class comment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>

#include "common/types.h"

namespace agb::gossip {

/// Fold-based aggregate over values that form a semilattice (idempotent,
/// commutative, associative folds: min, max, or). Safe to fold the same
/// information any number of times, which is exactly what gossip does.
template <typename T, typename Fold>
class PeriodicAggregator {
 public:
  /// `window` counts the current period plus completed ones (>= 1).
  PeriodicAggregator(std::size_t window, T local, Fold fold = Fold{})
      : window_(std::max<std::size_t>(window, 1)),
        fold_(fold),
        local_(local),
        running_(local) {}

  void set_local(T value) {
    local_ = value;
    running_ = fold_(running_, value);
  }

  void advance_to(PeriodId p) {
    while (period_ < p) {
      history_.push_front(running_);
      while (history_.size() > window_ - 1) history_.pop_back();
      ++period_;
      running_ = local_;
    }
  }

  /// Folds a header value stamped with period `p`.
  void on_header(PeriodId p, T value) {
    if (p > period_) advance_to(p);
    if (p == period_) running_ = fold_(running_, value);
  }

  /// Value to stamp on outgoing headers (the running fold of this period).
  [[nodiscard]] T header_value() const { return running_; }

  /// The windowed estimate: fold of the running period and history.
  [[nodiscard]] T estimate() const {
    T acc = running_;
    for (const T& v : history_) acc = fold_(acc, v);
    return acc;
  }

  [[nodiscard]] PeriodId period() const noexcept { return period_; }

 private:
  std::size_t window_;
  Fold fold_;
  T local_;
  PeriodId period_ = 0;
  T running_;
  std::deque<T> history_;
};

struct MinFold {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

struct MaxFold {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

struct OrFold {
  bool operator()(bool a, bool b) const { return a || b; }
};

template <typename T>
using MinAggregator = PeriodicAggregator<T, MinFold>;
template <typename T>
using MaxAggregator = PeriodicAggregator<T, MaxFold>;
using FlagAggregator = PeriodicAggregator<bool, OrFold>;

/// Non-semilattice aggregates (sum, mean) cannot be folded per message —
/// gossip re-delivers information and a plain fold double-counts. This
/// aggregator keeps last-writer-wins per-node state instead: every node
/// contributes (node, value, version) tuples, receivers keep the highest
/// version per node, and sum/mean are computed over the node map. State is
/// O(group size), which the paper's minimum deliberately avoids — provided
/// for completeness and for small groups (it powers no core mechanism).
template <typename T>
class NodeMapAggregator {
 public:
  explicit NodeMapAggregator(NodeId self, T local)
      : self_(self) {
    entries_[self_] = {local, 1};
  }

  void set_local(T value) {
    auto& entry = entries_[self_];
    entry.value = value;
    ++entry.version;
  }

  struct Share {
    NodeId node;
    T value;
    std::uint64_t version;
  };

  /// Entries to piggyback (callers may sample a subset for large groups).
  [[nodiscard]] std::vector<Share> shares() const {
    std::vector<Share> out;
    out.reserve(entries_.size());
    for (const auto& [node, entry] : entries_) {
      out.push_back({node, entry.value, entry.version});
    }
    return out;
  }

  void on_share(const Share& share) {
    auto [it, inserted] =
        entries_.try_emplace(share.node, Entry{share.value, share.version});
    if (!inserted && share.version > it->second.version) {
      it->second = {share.value, share.version};
    }
  }

  /// Forgets a departed node's contribution.
  void forget(NodeId node) {
    if (node != self_) entries_.erase(node);
  }

  [[nodiscard]] T sum() const {
    T acc{};
    for (const auto& [node, entry] : entries_) acc += entry.value;
    return acc;
  }

  [[nodiscard]] double mean() const {
    return entries_.empty()
               ? 0.0
               : static_cast<double>(sum()) /
                     static_cast<double>(entries_.size());
  }

  [[nodiscard]] std::size_t known_nodes() const { return entries_.size(); }

 private:
  struct Entry {
    T value;
    std::uint64_t version;
  };
  NodeId self_;
  std::map<NodeId, Entry> entries_;
};

}  // namespace agb::gossip
