#include "gossip/event_buffer.h"

#include <algorithm>

namespace agb::gossip {

bool EventBuffer::insert(Event event) {
  if (index_.contains(event.id)) return false;
  index_.emplace(event.id, slots_.size());
  slots_.push_back(Slot{std::move(event), next_seq_++});
  return true;
}

void EventBuffer::bump_age(const EventId& id, std::uint32_t age) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  auto& stored = slots_[it->second].event;
  stored.age = std::max(stored.age, age);
}

void EventBuffer::increment_ages() noexcept {
  for (auto& slot : slots_) ++slot.event.age;
}

std::vector<Event> EventBuffer::purge_age_limit(std::uint32_t max_age) {
  std::vector<Event> removed;
  for (std::size_t i = 0; i < slots_.size();) {
    if (slots_[i].event.age > max_age) {
      removed.push_back(std::move(slots_[i].event));
      erase_slot(i);
    } else {
      ++i;
    }
  }
  return removed;
}

std::vector<Event> EventBuffer::purge_superseded() {
  // Pass 1: per (origin, stream), the highest sequence carrying the
  // supersedes flag. Pass 2: evict everything older in that stream.
  std::unordered_map<std::uint64_t, std::uint64_t> horizon;
  auto key = [](const Event& e) {
    return (static_cast<std::uint64_t>(e.id.origin) << 32) | e.stream;
  };
  for (const auto& slot : slots_) {
    const Event& e = slot.event;
    if (!e.supersedes) continue;
    auto [it, inserted] = horizon.try_emplace(key(e), e.id.sequence);
    if (!inserted) it->second = std::max(it->second, e.id.sequence);
  }
  std::vector<Event> removed;
  if (horizon.empty()) return removed;
  for (std::size_t i = 0; i < slots_.size();) {
    const Event& e = slots_[i].event;
    auto it = horizon.find(key(e));
    if (it != horizon.end() && e.id.sequence < it->second) {
      removed.push_back(std::move(slots_[i].event));
      erase_slot(i);
    } else {
      ++i;
    }
  }
  return removed;
}

std::size_t EventBuffer::oldest_slot_index(
    const std::unordered_set<EventId>* excluded) const {
  std::size_t best = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (excluded && excluded->contains(slots_[i].event.id)) continue;
    if (best == slots_.size()) {
      best = i;
      continue;
    }
    const auto& cand = slots_[i];
    const auto& cur = slots_[best];
    if (cand.event.age > cur.event.age ||
        (cand.event.age == cur.event.age && cand.fifo_seq < cur.fifo_seq)) {
      best = i;
    }
  }
  return best;
}

void EventBuffer::erase_slot(std::size_t idx) {
  index_.erase(slots_[idx].event.id);
  if (idx != slots_.size() - 1) {
    slots_[idx] = std::move(slots_.back());
    index_[slots_[idx].event.id] = idx;
  }
  slots_.pop_back();
}

std::vector<Event> EventBuffer::shrink_to(std::size_t capacity) {
  std::vector<Event> removed;
  while (slots_.size() > capacity) {
    const std::size_t idx = oldest_slot_index(nullptr);
    removed.push_back(slots_[idx].event);
    erase_slot(idx);
  }
  return removed;
}

const Event* EventBuffer::oldest_excluding(
    const std::unordered_set<EventId>& excluded) const {
  const std::size_t idx = oldest_slot_index(&excluded);
  return idx == slots_.size() ? nullptr : &slots_[idx].event;
}

std::size_t EventBuffer::count_excluding(
    const std::unordered_set<EventId>& excluded) const {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (!excluded.contains(slot.event.id)) ++count;
  }
  return count;
}

std::vector<Event> EventBuffer::snapshot() const {
  std::vector<Event> out;
  out.reserve(slots_.size());
  // Emit in insertion order for deterministic wire images.
  std::vector<const Slot*> ordered;
  ordered.reserve(slots_.size());
  for (const auto& slot : slots_) ordered.push_back(&slot);
  std::sort(ordered.begin(), ordered.end(),
            [](const Slot* a, const Slot* b) { return a->fifo_seq < b->fifo_seq; });
  for (const Slot* slot : ordered) out.push_back(slot->event);
  return out;
}

void EventBuffer::for_each(
    const std::function<void(const Event&)>& fn) const {
  for (const auto& slot : slots_) fn(slot.event);
}

bool EventIdBuffer::insert(const EventId& id) {
  if (set_.contains(id)) return false;
  set_.insert(id);
  fifo_.push_back(id);
  evict_to_capacity();
  return true;
}

void EventIdBuffer::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  evict_to_capacity();
}

void EventIdBuffer::evict_to_capacity() {
  while (set_.size() > capacity_ && head_ < fifo_.size()) {
    set_.erase(fifo_[head_]);
    ++head_;
  }
  // Compact the fifo vector once the dead prefix dominates.
  if (head_ > fifo_.size() / 2 && head_ > 64) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<long>(head_));
    head_ = 0;
  }
}

}  // namespace agb::gossip
