#include "gossip/message.h"

namespace agb::gossip {

namespace {

// Decoded containers are size-checked against what the remaining bytes could
// possibly hold, so a forged count cannot trigger a huge allocation.
bool plausible_count(std::uint64_t count, std::size_t remaining,
                     std::size_t min_element_size) {
  return count <= remaining / min_element_size + 1;
}

void write_preamble(ByteWriter& w, MessageType type, NodeId sender) {
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(sender);
}

/// Consumes the shared preamble; returns the sender or nullopt on mismatch.
std::optional<NodeId> read_preamble(ByteReader& r, MessageType expected) {
  auto magic = r.u16();
  auto version = r.u8();
  auto type = r.u8();
  auto sender = r.u32();
  if (!magic || *magic != kWireMagic) return std::nullopt;
  if (!version || *version != kWireVersion) return std::nullopt;
  if (!type || *type != static_cast<std::uint8_t>(expected)) {
    return std::nullopt;
  }
  return sender;
}

void write_event(ByteWriter& w, const Event& e) {
  w.u32(e.id.origin);
  w.varint(e.id.sequence);
  w.varint(e.age);
  w.i64(e.created_at);
  w.varint(e.stream);
  w.u8(e.supersedes ? 1 : 0);
  if (e.payload) {
    w.bytes(*e.payload);
  } else {
    w.varint(0);
  }
}

std::optional<Event> read_event(ByteReader& r) {
  Event e;
  auto origin = r.u32();
  auto sequence = r.varint();
  auto age = r.varint();
  auto created_at = r.i64();
  auto stream = r.varint();
  auto flags = r.u8();
  auto payload = r.bytes();
  if (!origin || !sequence || !age || !created_at || !stream || !flags ||
      !payload) {
    return std::nullopt;
  }
  if (*age > 0xffffffffull || *stream > 0xffffffffull) return std::nullopt;
  if ((*flags & ~1u) != 0) return std::nullopt;  // unknown flag bits
  e.id = EventId{*origin, *sequence};
  e.age = static_cast<std::uint32_t>(*age);
  e.created_at = *created_at;
  e.stream = static_cast<std::uint32_t>(*stream);
  e.supersedes = (*flags & 1u) != 0;
  if (!payload->empty()) e.payload = make_payload(std::move(*payload));
  return e;
}

bool write_events(ByteWriter& w, const std::vector<Event>& events) {
  w.varint(events.size());
  for (const Event& e : events) write_event(w, e);
  return true;
}

bool read_events(ByteReader& r, std::vector<Event>* out) {
  auto count = r.varint();
  if (!count || !plausible_count(*count, r.remaining(), 8)) return false;
  out->reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto e = read_event(r);
    if (!e) return false;
    out->push_back(std::move(*e));
  }
  return true;
}

void write_event_ids(ByteWriter& w, const std::vector<EventId>& ids) {
  w.varint(ids.size());
  for (const EventId& id : ids) {
    w.u32(id.origin);
    w.varint(id.sequence);
  }
}

bool read_event_ids(ByteReader& r, std::vector<EventId>* out) {
  auto count = r.varint();
  if (!count || !plausible_count(*count, r.remaining(), 5)) return false;
  out->reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto origin = r.u32();
    auto sequence = r.varint();
    if (!origin || !sequence) return false;
    out->push_back(EventId{*origin, *sequence});
  }
  return true;
}

void write_member_records(
    ByteWriter& w, const std::vector<membership::MemberRecord>& records) {
  // Tail-optional section: a message with no membership digest encodes
  // byte-identically to the pre-membership wire format, so turning the
  // feature off costs nothing and old traffic decodes as "no records".
  if (records.empty()) return;
  w.varint(records.size());
  for (const membership::MemberRecord& record : records) {
    w.u32(record.node);
    w.varint(record.revision);
    w.varint(record.heartbeat);
    w.u8(static_cast<std::uint8_t>(record.state));
    w.u32(record.binding.host);
    w.u16(record.binding.port);
  }
}

bool read_member_records(ByteReader& r,
                         std::vector<membership::MemberRecord>* out) {
  if (r.exhausted()) return true;  // tail section absent: no digest rode along
  auto count = r.varint();
  // Smallest record: 4 (node) + 1 + 1 (varints) + 1 (state) + 4 + 2.
  if (!count || !plausible_count(*count, r.remaining(), 13)) return false;
  out->reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto node = r.u32();
    auto revision = r.varint();
    auto heartbeat = r.varint();
    auto state = r.u8();
    auto host = r.u32();
    auto port = r.u16();
    if (!node || !revision || !heartbeat || !state || !host || !port) {
      return false;
    }
    if (*state > static_cast<std::uint8_t>(membership::LivenessState::kDown)) {
      return false;  // unknown liveness state
    }
    membership::MemberRecord record;
    record.node = *node;
    record.revision = *revision;
    record.heartbeat = *heartbeat;
    record.state = static_cast<membership::LivenessState>(*state);
    record.binding = membership::EndpointBinding{*host, *port};
    out->push_back(record);
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> GossipMessage::encode() const {
  ByteWriter w;
  write_preamble(w, MessageType::kGossip, sender);
  w.varint(round);
  w.varint(period);
  w.varint(min_buff);

  w.varint(min_set.size());
  for (const MinSetEntry& entry : min_set) {
    w.u32(entry.node);
    w.varint(entry.capacity);
  }

  w.varint(membership.subs.size());
  for (NodeId node : membership.subs) w.u32(node);
  w.varint(membership.unsubs.size());
  for (NodeId node : membership.unsubs) w.u32(node);

  write_events(w, events);
  write_event_ids(w, seen_ids);
  write_member_records(w, member_records);
  return std::move(w).take();
}

std::optional<GossipMessage> GossipMessage::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto sender = read_preamble(r, MessageType::kGossip);
  if (!sender) return std::nullopt;

  GossipMessage m;
  m.sender = *sender;
  auto round = r.varint();
  auto period = r.varint();
  auto min_buff = r.varint();
  if (!round || !period || !min_buff) return std::nullopt;
  if (*min_buff > 0xffffffffull) return std::nullopt;
  m.round = *round;
  m.period = *period;
  m.min_buff = static_cast<std::uint32_t>(*min_buff);

  auto min_set_count = r.varint();
  if (!min_set_count || !plausible_count(*min_set_count, r.remaining(), 5)) {
    return std::nullopt;
  }
  m.min_set.reserve(static_cast<std::size_t>(*min_set_count));
  for (std::uint64_t i = 0; i < *min_set_count; ++i) {
    auto node = r.u32();
    auto capacity = r.varint();
    if (!node || !capacity.has_value() || *capacity > 0xffffffffull) {
      return std::nullopt;
    }
    m.min_set.push_back(
        MinSetEntry{*node, static_cast<std::uint32_t>(*capacity)});
  }

  auto subs_count = r.varint();
  if (!subs_count || !plausible_count(*subs_count, r.remaining(), 4)) {
    return std::nullopt;
  }
  m.membership.subs.reserve(static_cast<std::size_t>(*subs_count));
  for (std::uint64_t i = 0; i < *subs_count; ++i) {
    auto node = r.u32();
    if (!node) return std::nullopt;
    m.membership.subs.push_back(*node);
  }

  auto unsubs_count = r.varint();
  if (!unsubs_count || !plausible_count(*unsubs_count, r.remaining(), 4)) {
    return std::nullopt;
  }
  m.membership.unsubs.reserve(static_cast<std::size_t>(*unsubs_count));
  for (std::uint64_t i = 0; i < *unsubs_count; ++i) {
    auto node = r.u32();
    if (!node) return std::nullopt;
    m.membership.unsubs.push_back(*node);
  }

  if (!read_events(r, &m.events)) return std::nullopt;
  if (!read_event_ids(r, &m.seen_ids)) return std::nullopt;
  if (!read_member_records(r, &m.member_records)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;  // trailing garbage
  return m;
}

std::vector<std::uint8_t> RepairRequest::encode() const {
  ByteWriter w;
  write_preamble(w, MessageType::kRepairRequest, sender);
  write_event_ids(w, ids);
  return std::move(w).take();
}

std::optional<RepairRequest> RepairRequest::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto sender = read_preamble(r, MessageType::kRepairRequest);
  if (!sender) return std::nullopt;
  RepairRequest m;
  m.sender = *sender;
  if (!read_event_ids(r, &m.ids)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> RepairReply::encode() const {
  ByteWriter w;
  write_preamble(w, MessageType::kRepairReply, sender);
  write_events(w, events);
  return std::move(w).take();
}

std::optional<RepairReply> RepairReply::decode(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto sender = read_preamble(r, MessageType::kRepairReply);
  if (!sender) return std::nullopt;
  RepairReply m;
  m.sender = *sender;
  if (!read_events(r, &m.events)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  return m;
}

WireMessage decode_any(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return std::monostate{};
  switch (static_cast<MessageType>(bytes[3])) {
    case MessageType::kGossip:
      if (auto m = GossipMessage::decode(bytes)) return std::move(*m);
      break;
    case MessageType::kRepairRequest:
      if (auto m = RepairRequest::decode(bytes)) return std::move(*m);
      break;
    case MessageType::kRepairReply:
      if (auto m = RepairReply::decode(bytes)) return std::move(*m);
      break;
  }
  return std::monostate{};
}

}  // namespace agb::gossip
