// Configuration of the baseline gossip algorithm (paper Fig. 1).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace agb::gossip {

/// Pull-based loss recovery (the retrieval phase of lpbcast, DSN 2001):
/// gossip messages piggyback a digest of recently seen event ids; a node
/// that learns of an id it never received asks the advertising peer for the
/// event directly. Recovery repairs *past* omissions; the adaptive
/// mechanism prevents *future* ones (paper §6) — they compose.
struct RecoveryParams {
  bool enabled = false;
  /// How many recently-seen ids each gossip message advertises.
  std::size_t seen_ids_per_gossip = 48;
  /// How many ids the advertisement samples from (memory of recent ids).
  std::size_t seen_ids_memory = 512;
  /// Rounds to wait before asking — normal gossip usually fills the gap.
  Round repair_after_rounds = 2;
  /// Rounds after which an unanswered missing id is abandoned.
  Round give_up_after_rounds = 8;
  /// Bound on ids per repair-request message.
  std::size_t max_ids_per_request = 32;
  /// Events evicted from the live buffer stay retrievable (for answering
  /// repairs only — they are not gossiped) for this many further rounds,
  /// the long-term recovery buffering of Ozkasap et al. that the paper's
  /// §5 discusses. 0 disables the retrieval store.
  Round retrieve_rounds = 6;
  /// Bound on the retrieval store (events).
  std::size_t max_retrieve_events = 512;
};

struct GossipParams {
  /// F: number of random targets per gossip round.
  std::size_t fanout = 4;
  /// T: interval between gossip rounds, in (virtual) milliseconds.
  DurationMs gossip_period = 1000;
  /// |events|max: bound on the buffered events; the resource the adaptive
  /// mechanism reasons about. Changeable at runtime (dynamic resources).
  std::size_t max_events = 60;
  /// |eventIds|max: bound on the duplicate-suppression digest.
  std::size_t max_event_ids = 400;
  /// k: events older than this many hops are purged (assumed disseminated).
  std::uint32_t max_age = 12;
  /// Optional pull-based repair of missed events.
  RecoveryParams recovery;
  /// Semantic obsolescence (Pereira et al., paper §5): when enforcing the
  /// buffer bound, evict events superseded by a newer buffered event of
  /// their (origin, stream) *before* falling back to oldest-first. Focuses
  /// scarce buffer space on messages that still carry meaning.
  bool semantic_purge = false;
};

}  // namespace agb::gossip
