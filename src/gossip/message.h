// Gossip wire message and its binary codec.
//
// One message type carries everything, exactly as the paper prescribes: the
// buffered events, the lpbcast membership digest, and the two adaptation
// header fields (sample period `s` and the sender's running minBuff
// estimate) — adaptation adds *no* extra messages, only a few header bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/shared_bytes.h"
#include "common/types.h"
#include "gossip/event.h"
#include "membership/gossip_membership.h"
#include "membership/partial_view.h"

namespace agb::gossip {

inline constexpr std::uint16_t kWireMagic = 0xa64b;
// v2 appended the anti-entropy member_records section to kGossip.
inline constexpr std::uint8_t kWireVersion = 2;

enum class MessageType : std::uint8_t {
  kGossip = 1,
  kRepairRequest = 2,
  kRepairReply = 3,
};

/// One entry of the robust minimum set (paper §6 extension): a node and the
/// buffer capacity it advertised. Identities matter — computing "the k-th
/// smallest buffer" requires deduplicating by node.
struct MinSetEntry {
  NodeId node = kInvalidNode;
  std::uint32_t capacity = 0;
  friend bool operator==(const MinSetEntry&, const MinSetEntry&) = default;
};

struct GossipMessage {
  NodeId sender = kInvalidNode;
  Round round = 0;

  // Adaptation header (paper Fig. 5(a)): the sender's current sample period
  // and its running estimate of the smallest buffer in the group.
  PeriodId period = 0;
  std::uint32_t min_buff = 0;

  /// Robust-minimum extension (paper §6): the k smallest (node, capacity)
  /// pairs known for `period`. Empty unless AdaptiveParams::robust_k > 1.
  std::vector<MinSetEntry> min_set;

  membership::MembershipDigest membership;
  std::vector<Event> events;

  /// Recovery digest (lpbcast): a sample of recently *seen* event ids, so
  /// receivers can detect events they missed entirely and request repair.
  /// Empty unless GossipParams::recovery.enabled.
  std::vector<EventId> seen_ids;

  /// Anti-entropy membership digest: per-node {revision, heartbeat, state}
  /// records plus endpoint bindings, freshest-first within the sender's
  /// byte budget. Empty unless the node runs membership::GossipMembership.
  std::vector<membership::MemberRecord> member_records;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// encode() wrapped in a SharedBytes — the entry point for drivers that
  /// fan one encoded message out to several Datagrams without re-copying.
  [[nodiscard]] SharedBytes encode_shared() const { return encode(); }
  /// Returns std::nullopt on any malformed input (wrong magic/version/type,
  /// truncation, overlong counts). Never throws.
  static std::optional<GossipMessage> decode(
      std::span<const std::uint8_t> bytes);
};

/// Directed request for events the sender believes it missed (it saw their
/// ids in a peer's recovery digest but never received the events).
struct RepairRequest {
  NodeId sender = kInvalidNode;
  std::vector<EventId> ids;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] SharedBytes encode_shared() const { return encode(); }
  static std::optional<RepairRequest> decode(
      std::span<const std::uint8_t> bytes);
};

/// Directed answer carrying the still-buffered events a repair asked for.
struct RepairReply {
  NodeId sender = kInvalidNode;
  std::vector<Event> events;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] SharedBytes encode_shared() const { return encode(); }
  static std::optional<RepairReply> decode(
      std::span<const std::uint8_t> bytes);
};

/// Any message the protocol can receive. std::monostate = malformed.
using WireMessage =
    std::variant<std::monostate, GossipMessage, RepairRequest, RepairReply>;

/// Decodes any protocol message by its type byte.
[[nodiscard]] WireMessage decode_any(std::span<const std::uint8_t> bytes);

}  // namespace agb::gossip
