// The baseline gossip-based broadcast node (lpbcast, paper Fig. 1).
//
// LpbcastNode is a *sans-I/O* state machine: it never touches sockets,
// clocks or threads. A driver (simulation harness or runtime) calls
// on_round() every gossip period and on_gossip() for each received message,
// and routes the returned Outgoing batches through whatever network it owns.
// This is what lets the exact same protocol code run under the discrete-
// event simulator and over real UDP datagrams.
//
// The adaptive variant (adaptive::AdaptiveLpbcastNode) subclasses this and
// fills in the protected hooks — the paper's Fig. 5 touches the base
// algorithm in exactly those three places (outgoing header, incoming header,
// pre-GC congestion accounting).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/datagram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "gossip/event.h"
#include "gossip/event_buffer.h"
#include "gossip/message.h"
#include "gossip/params.h"
#include "membership/gossip_membership.h"
#include "membership/membership.h"
#include "membership/partial_view.h"

namespace agb::membership {
class LocalityView;
}  // namespace agb::membership

namespace agb::gossip {

/// Per-node protocol counters, exposed for tests and metrics.
struct NodeCounters {
  std::uint64_t broadcasts = 0;
  std::uint64_t rounds = 0;
  std::uint64_t gossips_sent = 0;      // one per (message, target) pair
  std::uint64_t gossips_received = 0;
  std::uint64_t events_received = 0;   // novel events buffered + delivered
  std::uint64_t duplicates = 0;        // suppressed by the eventIds digest
  std::uint64_t deliveries = 0;        // includes local deliveries
  std::uint64_t drops_overflow = 0;    // evicted by the |events| bound
  std::uint64_t drops_age_limit = 0;   // purged by the age limit k
  std::uint64_t drops_obsolete = 0;    // superseded (semantic purge)
  RunningStats overflow_drop_age;      // ages of overflow-evicted events

  // Recovery (when GossipParams::recovery.enabled):
  std::uint64_t missing_detected = 0;   // ids learned only from digests
  std::uint64_t repair_requests = 0;    // request messages sent
  std::uint64_t repair_replies = 0;     // reply messages sent
  std::uint64_t events_recovered = 0;   // deliveries that came via repair
  std::uint64_t missing_abandoned = 0;  // gave up waiting

  /// Malformed wire input handed to on_wire (std::monostate after decode).
  /// Zero in clean runs; rises under fault-plane corruption.
  std::uint64_t decode_drops = 0;
};

class LpbcastNode {
 public:
  using DeliverFn = std::function<void(const Event& event, TimeMs now)>;
  using DropFn =
      std::function<void(const Event& event, DropReason reason, TimeMs now)>;

  /// `membership` decides gossip targets (full directory or partial view,
  /// optionally under a membership::LocalityView decorator); if it is — or
  /// wraps — a membership::PartialView, subs/unsubs digests are exchanged.
  LpbcastNode(NodeId self, GossipParams params,
              std::unique_ptr<membership::Membership> membership, Rng rng);
  virtual ~LpbcastNode() = default;

  LpbcastNode(const LpbcastNode&) = delete;
  LpbcastNode& operator=(const LpbcastNode&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] const GossipParams& params() const noexcept { return params_; }
  [[nodiscard]] Round round() const noexcept { return round_; }

  /// Observers. Deliver fires once per event per node (including the
  /// origin's local delivery); drop fires for real buffer evictions only.
  void set_deliver_handler(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_drop_handler(DropFn fn) { drop_ = std::move(fn); }

  /// Changes the event-buffer bound at runtime (the "dynamic resources"
  /// scenario of paper §4). Excess events are evicted immediately.
  void set_max_events(std::size_t max_events, TimeMs now);

  /// Application-level broadcast: assigns an id, delivers locally, buffers
  /// the event for dissemination in subsequent rounds.
  EventId broadcast(Payload payload, TimeMs now);

  /// Broadcast with semantic metadata (see Event::stream/supersedes): the
  /// event belongs to `stream` and, if `supersedes`, makes every earlier
  /// event this node sent on that stream obsolete.
  EventId broadcast_on_stream(Payload payload, TimeMs now,
                              std::uint32_t stream, bool supersedes);

  /// One message replicated to several targets; the driver encodes the
  /// message once and sends the same bytes to every target.
  struct Outgoing {
    std::vector<NodeId> targets;
    GossipMessage message;

    /// Packages the round as one network batch: encodes the message once
    /// and addresses the shared bytes to every target. An empty round
    /// (no targets) yields an empty batch with no encode at all. The
    /// rvalue overload steals the target list — drivers call it on their
    /// way to send_batch, once per round, so the hot path never copies it.
    [[nodiscard]] Multicast to_multicast(NodeId from) const&;
    [[nodiscard]] Multicast to_multicast(NodeId from) &&;
  };

  /// Executes one gossip round: age update, age-limit purge, emission.
  [[nodiscard]] Outgoing on_round(TimeMs now);

  /// Processes one received (already decoded) gossip message.
  void on_gossip(const GossipMessage& message, TimeMs now);

  /// Recovery control plane (no-ops unless recovery is enabled).
  void on_repair_request(const RepairRequest& request, TimeMs now);
  void on_repair_reply(const RepairReply& reply, TimeMs now);

  /// Dispatches any decoded wire message to the right entry point; returns
  /// false (and does nothing) for std::monostate (malformed input).
  bool on_wire(const WireMessage& message, TimeMs now);

  /// Directed control traffic (repair requests/replies) produced by the
  /// last on_round/on_gossip/on_repair_* call. Drivers must drain this
  /// after every protocol call and transmit each datagram to its target.
  /// Payloads are pre-encoded SharedBytes, ready to drop into a Datagram.
  struct ControlDatagram {
    NodeId target;
    SharedBytes payload;
  };
  [[nodiscard]] std::vector<ControlDatagram> take_outbox();

  [[nodiscard]] const NodeCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const EventBuffer& events() const noexcept { return events_; }
  [[nodiscard]] const EventIdBuffer& event_ids() const noexcept {
    return event_ids_;
  }
  [[nodiscard]] membership::Membership& membership() noexcept {
    return *membership_;
  }

  /// The anti-entropy membership layer, when the node runs one (possibly
  /// under a LocalityView decorator); nullptr otherwise. Embedders use it
  /// to wire binding listeners and restart bumps — calls must arrive
  /// through the driver's serialisation, like every membership call.
  [[nodiscard]] membership::GossipMembership* gossip_membership() noexcept {
    return gossip_membership_;
  }

  /// The locality decorator, when the membership is one; nullptr otherwise.
  /// The control plane steers its p_local through this.
  [[nodiscard]] membership::LocalityView* locality_view() noexcept {
    return locality_view_;
  }

  /// The fanout the next round will actually use. Equals params().fanout
  /// until a control plane rescales it per congestion regime.
  [[nodiscard]] std::size_t effective_fanout() const noexcept {
    return effective_fanout_;
  }

 protected:
  /// Called at the start of every round, before aging/emission. The adaptive
  /// node advances its sample period and runs the rate controller here.
  virtual void on_round_start(TimeMs /*now*/) {}

  /// Fills the adaptation header of an outgoing message (Fig. 5(a)).
  virtual void augment_header(GossipMessage& /*message*/,
                              TimeMs /*now*/) {}

  /// Reads the adaptation header of a received message (Fig. 5(a)).
  virtual void process_header(const GossipMessage& /*message*/,
                              TimeMs /*now*/) {}

  /// Called after new events were inserted and ages bumped, but before the
  /// real buffer bound is enforced; the congestion estimator performs its
  /// virtual minBuff-sized drop accounting here (Fig. 5(b)).
  virtual void before_shrink(TimeMs /*now*/) {}

  /// Called after garbage collection; estimators prune dead state here.
  virtual void after_gc(TimeMs /*now*/) {}

  /// Called once per *novel* event the node learns from a peer (gossip or
  /// repair — never its own broadcasts, never duplicates), right after the
  /// local delivery. The control plane's starvation signal counts
  /// remote-origin novelty here.
  virtual void on_event_ingested(const Event& /*event*/, TimeMs /*now*/) {}

  /// Fanout actuator (per-regime scaling). Clamped to >= 1; affects target
  /// selection only — message contents and headers never see it.
  void set_effective_fanout(std::size_t fanout) noexcept {
    effective_fanout_ = fanout == 0 ? 1 : fanout;
  }

  [[nodiscard]] EventBuffer& mutable_events() noexcept { return events_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  void record_drops(const std::vector<Event>& dropped, DropReason reason,
                    TimeMs now);
  void enforce_buffer_bound(TimeMs now);
  void ingest_event(const Event& incoming, TimeMs now, bool via_repair);
  void note_seen_id(const EventId& id);
  void process_seen_digest(const GossipMessage& message);
  void fill_seen_digest(GossipMessage& message);
  void emit_repair_requests();
  void retain_for_retrieval(const std::vector<Event>& evicted);
  void expire_retrieve_store();
  [[nodiscard]] const Event* find_retrievable(const EventId& id) const;

  NodeId self_;
  GossipParams params_;
  std::unique_ptr<membership::Membership> membership_;
  membership::PartialView* partial_view_ = nullptr;  // non-owning downcast
  membership::GossipMembership* gossip_membership_ = nullptr;  // ditto
  membership::LocalityView* locality_view_ = nullptr;          // ditto
  std::size_t effective_fanout_;
  Rng rng_;
  EventBuffer events_;
  EventIdBuffer event_ids_;
  Round round_ = 0;
  std::uint64_t next_sequence_ = 0;
  NodeCounters counters_;
  DeliverFn deliver_;
  DropFn drop_;

  // Recovery state (empty unless enabled).
  struct MissingEntry {
    NodeId heard_from = kInvalidNode;
    Round heard_round = 0;
    bool requested = false;
  };
  struct RetrievableEvent {
    Event event;
    Round evicted_round = 0;
  };
  std::unordered_map<EventId, MissingEntry> missing_;
  std::deque<EventId> recent_ids_;  // advertisement memory (FIFO)
  std::deque<RetrievableEvent> retrieve_store_;  // answers repairs only
  std::vector<ControlDatagram> outbox_;
};

}  // namespace agb::gossip
