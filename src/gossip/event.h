// Broadcast events and their ages.
//
// An event's *age* is the number of gossip rounds it has been held/forwarded
// (paper [7]): every holder increments the age of all buffered events once
// per round, and a receiver that sees a higher age for a known event adopts
// it. Age is therefore a cheap, local, monotone estimate of how widely the
// event has already been disseminated — the signal the adaptive mechanism is
// built on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace agb::gossip {

using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Creates a shared payload from raw bytes.
inline Payload make_payload(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

struct Event {
  EventId id;
  std::uint32_t age = 0;
  /// Virtual time at which the origin broadcast the event; carried on the
  /// wire so receivers can measure dissemination latency.
  TimeMs created_at = 0;

  /// Semantic-obsolescence extension (Pereira et al., discussed in the
  /// paper's §5): events within the same (origin, stream) form a sequence;
  /// an event with `supersedes` set makes every earlier event of its
  /// stream obsolete — buffers may discard those first under pressure,
  /// concentrating reliability on the *recent* state. stream 0 with
  /// supersedes=false (the default) opts out entirely.
  std::uint32_t stream = 0;
  bool supersedes = false;

  Payload payload;  // may be null (empty payload)

  [[nodiscard]] std::size_t payload_size() const noexcept {
    return payload ? payload->size() : 0;
  }
};

/// Why an event left a buffer; reported to drop observers for metrics.
enum class DropReason {
  kBufferOverflow,  // |events| exceeded the bound (paper: "remove oldest")
  kAgeLimit,        // age exceeded k (fully disseminated with high prob.)
  kObsolete,        // superseded by a newer event of its stream
};

}  // namespace agb::gossip
