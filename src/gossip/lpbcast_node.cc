#include "gossip/lpbcast_node.h"

#include <utility>

#include "membership/locality_view.h"

namespace agb::gossip {

LpbcastNode::LpbcastNode(NodeId self, GossipParams params,
                         std::unique_ptr<membership::Membership> membership,
                         Rng rng)
    : self_(self),
      params_(params),
      membership_(std::move(membership)),
      effective_fanout_(params.fanout),
      rng_(rng),
      event_ids_(params.max_event_ids) {
  // Digest exchange binds to the PartialView even when it sits under a
  // LocalityView decorator: locality only biases *targets*, the subs/unsubs
  // traffic must keep flowing through the wrapped view.
  membership::Membership* base = membership_.get();
  if (auto* locality = dynamic_cast<membership::LocalityView*>(base)) {
    locality_view_ = locality;
    base = &locality->inner();
  }
  partial_view_ = dynamic_cast<membership::PartialView*>(base);
  gossip_membership_ = dynamic_cast<membership::GossipMembership*>(base);
}

void LpbcastNode::set_max_events(std::size_t max_events, TimeMs now) {
  params_.max_events = max_events;
  enforce_buffer_bound(now);
}

EventId LpbcastNode::broadcast(Payload payload, TimeMs now) {
  return broadcast_on_stream(std::move(payload), now, /*stream=*/0,
                             /*supersedes=*/false);
}

EventId LpbcastNode::broadcast_on_stream(Payload payload, TimeMs now,
                                         std::uint32_t stream,
                                         bool supersedes) {
  Event event;
  event.id = EventId{self_, next_sequence_++};
  event.age = 0;
  event.created_at = now;
  event.stream = stream;
  event.supersedes = supersedes;
  event.payload = std::move(payload);

  event_ids_.insert(event.id);
  ++counters_.broadcasts;
  ++counters_.deliveries;
  if (params_.recovery.enabled) note_seen_id(event.id);
  if (deliver_) deliver_(event, now);

  events_.insert(std::move(event));
  enforce_buffer_bound(now);
  return EventId{self_, next_sequence_ - 1};
}

Multicast LpbcastNode::Outgoing::to_multicast(NodeId from) const& {
  Multicast batch;
  batch.from = from;
  batch.targets = targets;
  if (!targets.empty()) batch.payload = message.encode_shared();
  return batch;
}

Multicast LpbcastNode::Outgoing::to_multicast(NodeId from) && {
  Multicast batch;
  batch.from = from;
  if (!targets.empty()) batch.payload = message.encode_shared();
  batch.targets = std::move(targets);
  return batch;
}

LpbcastNode::Outgoing LpbcastNode::on_round(TimeMs now) {
  on_round_start(now);
  // Repair bookkeeping counts *completed* rounds of waiting, so it runs
  // before this round is counted.
  if (params_.recovery.enabled) {
    emit_repair_requests();
    expire_retrieve_store();
  }
  ++round_;
  ++counters_.rounds;

  // "Update ages": one hop of age for everything held, then purge events
  // that have been around long enough to be considered disseminated.
  events_.increment_ages();
  auto expired = events_.purge_age_limit(params_.max_age);
  record_drops(expired, DropReason::kAgeLimit, now);

  Outgoing out;
  out.message.sender = self_;
  out.message.round = round_;
  out.message.min_buff =
      static_cast<std::uint32_t>(params_.max_events);  // base default
  augment_header(out.message, now);
  if (partial_view_ != nullptr) {
    out.message.membership = partial_view_->make_digest();
  }
  if (gossip_membership_ != nullptr) {
    // Advance suspicion *before* target selection so a peer crossing its
    // timeout this round is excluded from this round's fanout already.
    gossip_membership_->tick(now);
    out.message.member_records = gossip_membership_->make_digest();
  }
  out.message.events = events_.snapshot();
  fill_seen_digest(out.message);
  out.targets = membership_->targets(effective_fanout_);
  counters_.gossips_sent += out.targets.size();
  return out;
}

void LpbcastNode::on_gossip(const GossipMessage& message, TimeMs now) {
  ++counters_.gossips_received;
  process_header(message, now);
  if (partial_view_ != nullptr) {
    partial_view_->apply_digest(message.sender, message.membership);
  }
  if (gossip_membership_ != nullptr) {
    gossip_membership_->on_heard_from(message.sender, now);
    gossip_membership_->apply_digest(message.member_records, now);
  }

  for (const Event& incoming : message.events) {
    ingest_event(incoming, now, /*via_repair=*/false);
  }
  if (params_.recovery.enabled) process_seen_digest(message);

  before_shrink(now);
  enforce_buffer_bound(now);
  after_gc(now);
}

void LpbcastNode::ingest_event(const Event& incoming, TimeMs now,
                               bool via_repair) {
  if (event_ids_.insert(incoming.id)) {
    ++counters_.events_received;
    ++counters_.deliveries;
    if (via_repair) ++counters_.events_recovered;
    if (deliver_) deliver_(incoming, now);
    on_event_ingested(incoming, now);
    events_.insert(incoming);
    if (params_.recovery.enabled) {
      missing_.erase(incoming.id);
      note_seen_id(incoming.id);
    }
  } else {
    ++counters_.duplicates;
    // Known event: adopt the higher age so the dissemination estimate
    // keeps progressing (paper Fig. 1, "Update events and ages").
    events_.bump_age(incoming.id, incoming.age);
  }
}

void LpbcastNode::note_seen_id(const EventId& id) {
  recent_ids_.push_back(id);
  while (recent_ids_.size() > params_.recovery.seen_ids_memory) {
    recent_ids_.pop_front();
  }
}

void LpbcastNode::process_seen_digest(const GossipMessage& message) {
  for (const EventId& id : message.seen_ids) {
    if (event_ids_.contains(id) || missing_.contains(id)) continue;
    ++counters_.missing_detected;
    missing_.emplace(id, MissingEntry{message.sender, round_, false});
  }
}

void LpbcastNode::fill_seen_digest(GossipMessage& message) {
  if (!params_.recovery.enabled || recent_ids_.empty()) return;
  const std::size_t want = params_.recovery.seen_ids_per_gossip;
  if (recent_ids_.size() <= want) {
    message.seen_ids.assign(recent_ids_.begin(), recent_ids_.end());
    return;
  }
  // Random sample across the memory, so both fresh and about-to-expire ids
  // are advertised (the old ones are exactly the ones a receiver can no
  // longer obtain through normal gossip).
  auto indices = rng_.sample_indices(recent_ids_.size(), want);
  message.seen_ids.reserve(want);
  for (std::size_t idx : indices) message.seen_ids.push_back(recent_ids_[idx]);
}

void LpbcastNode::emit_repair_requests() {
  const auto& recovery = params_.recovery;
  // Group overdue ids by the peer that advertised them.
  std::unordered_map<NodeId, std::vector<EventId>> by_peer;
  for (auto it = missing_.begin(); it != missing_.end();) {
    auto& [id, entry] = *it;
    const Round waited = round_ - entry.heard_round;
    if (waited >= recovery.give_up_after_rounds) {
      ++counters_.missing_abandoned;
      it = missing_.erase(it);
      continue;
    }
    if (!entry.requested && waited >= recovery.repair_after_rounds) {
      auto& batch = by_peer[entry.heard_from];
      if (batch.size() < recovery.max_ids_per_request) {
        batch.push_back(id);
        entry.requested = true;
      }
    }
    ++it;
  }
  for (auto& [peer, ids] : by_peer) {
    RepairRequest request;
    request.sender = self_;
    request.ids = std::move(ids);
    ++counters_.repair_requests;
    outbox_.push_back(ControlDatagram{peer, request.encode_shared()});
  }
}

void LpbcastNode::retain_for_retrieval(const std::vector<Event>& evicted) {
  if (params_.recovery.retrieve_rounds == 0) return;
  for (const Event& event : evicted) {
    retrieve_store_.push_back(RetrievableEvent{event, round_});
  }
  while (retrieve_store_.size() > params_.recovery.max_retrieve_events) {
    retrieve_store_.pop_front();
  }
}

void LpbcastNode::expire_retrieve_store() {
  while (!retrieve_store_.empty() &&
         round_ - retrieve_store_.front().evicted_round >
             params_.recovery.retrieve_rounds) {
    retrieve_store_.pop_front();
  }
}

const Event* LpbcastNode::find_retrievable(const EventId& id) const {
  // Newest first: a re-evicted event's most recent copy wins.
  for (auto it = retrieve_store_.rbegin(); it != retrieve_store_.rend();
       ++it) {
    if (it->event.id == id) return &it->event;
  }
  return nullptr;
}

void LpbcastNode::on_repair_request(const RepairRequest& request,
                                    TimeMs /*now*/) {
  if (!params_.recovery.enabled) return;
  RepairReply reply;
  reply.sender = self_;
  for (const EventId& id : request.ids) {
    // Serve from the live buffer first, then from the retrieval store; an
    // empty reply is not sent.
    if (const Event* event = events_.find(id)) {
      reply.events.push_back(*event);
    } else if (const Event* retained = find_retrievable(id)) {
      reply.events.push_back(*retained);
    }
  }
  if (reply.events.empty()) return;
  ++counters_.repair_replies;
  outbox_.push_back(ControlDatagram{request.sender, reply.encode_shared()});
}

void LpbcastNode::on_repair_reply(const RepairReply& reply, TimeMs now) {
  if (!params_.recovery.enabled) return;
  for (const Event& event : reply.events) {
    ingest_event(event, now, /*via_repair=*/true);
  }
  before_shrink(now);
  enforce_buffer_bound(now);
  after_gc(now);
}

bool LpbcastNode::on_wire(const WireMessage& message, TimeMs now) {
  if (const auto* gossip = std::get_if<GossipMessage>(&message)) {
    on_gossip(*gossip, now);
    return true;
  }
  if (const auto* request = std::get_if<RepairRequest>(&message)) {
    on_repair_request(*request, now);
    return true;
  }
  if (const auto* reply = std::get_if<RepairReply>(&message)) {
    on_repair_reply(*reply, now);
    return true;
  }
  // std::monostate: the datagram did not survive decoding. Count it — a
  // corrupted wire must be observable, not silently discarded.
  ++counters_.decode_drops;
  return false;
}

std::vector<LpbcastNode::ControlDatagram> LpbcastNode::take_outbox() {
  return std::exchange(outbox_, {});
}

void LpbcastNode::record_drops(const std::vector<Event>& dropped,
                               DropReason reason, TimeMs now) {
  if (params_.recovery.enabled) retain_for_retrieval(dropped);
  for (const Event& event : dropped) {
    switch (reason) {
      case DropReason::kBufferOverflow:
        ++counters_.drops_overflow;
        counters_.overflow_drop_age.add(static_cast<double>(event.age));
        break;
      case DropReason::kAgeLimit:
        ++counters_.drops_age_limit;
        break;
      case DropReason::kObsolete:
        ++counters_.drops_obsolete;
        break;
    }
    if (drop_) drop_(event, reason, now);
  }
}

void LpbcastNode::enforce_buffer_bound(TimeMs now) {
  if (params_.semantic_purge && events_.size() > params_.max_events) {
    // Space is needed: spend obsolete events first — they carry no meaning
    // anymore, so evicting them costs nothing (semantic reliability).
    auto obsolete = events_.purge_superseded();
    record_drops(obsolete, DropReason::kObsolete, now);
  }
  auto dropped = events_.shrink_to(params_.max_events);
  record_drops(dropped, DropReason::kBufferOverflow, now);
}

}  // namespace agb::gossip
