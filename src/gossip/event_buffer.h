// The bounded event buffer at the heart of lpbcast (paper Fig. 1).
//
// Semantics:
//  * insert() dedupes by id;
//  * increment_ages() adds one round of age to every stored event;
//  * bump_age() adopts a higher age learned from a peer;
//  * purge_age_limit() removes events older than k (the paper's "e.age > k");
//  * shrink_to() removes the *oldest* events (highest age, FIFO tie-break)
//    until the buffer fits its bound — the age-based purging of [7] that the
//    adaptive mechanism observes.
//
// Buffer sizes are small (tens to hundreds), so a flat vector with linear
// scans beats node-based containers; operations are O(n) worst case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gossip/event.h"

namespace agb::gossip {

class EventBuffer {
 public:
  /// `fifo_seq` orders events by insertion for stable oldest-selection.
  struct Slot {
    Event event;
    std::uint64_t fifo_seq;
  };

  /// Returns false (and keeps the existing slot) when the id is present.
  bool insert(Event event);

  [[nodiscard]] bool contains(const EventId& id) const {
    return index_.contains(id);
  }

  /// Stored event with this id, or nullptr. The pointer is invalidated by
  /// any mutating call.
  [[nodiscard]] const Event* find(const EventId& id) const {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &slots_[it->second].event;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  /// Adopts `age` for `id` if it is higher than the stored age.
  void bump_age(const EventId& id, std::uint32_t age);

  /// One gossip round passed: every stored event gets one hop older.
  void increment_ages() noexcept;

  /// Removes events with age > max_age; returns them (for drop accounting).
  std::vector<Event> purge_age_limit(std::uint32_t max_age);

  /// Removes events made obsolete by a buffered superseding event: e is
  /// obsolete iff some e' with the same (origin, stream), e'.sequence >
  /// e.sequence and e'.supersedes is also buffered. Returns the removals.
  std::vector<Event> purge_superseded();

  /// Removes oldest events until size() <= capacity; returns them in removal
  /// order. "Oldest" = highest age; ties broken by earliest insertion.
  std::vector<Event> shrink_to(std::size_t capacity);

  /// The oldest event whose id is NOT in `excluded`, or nullptr. Used by the
  /// congestion estimator to simulate drops at a virtual minBuff-sized
  /// buffer (paper Fig. 5(b): "select oldest element e from events - lost").
  [[nodiscard]] const Event* oldest_excluding(
      const std::unordered_set<EventId>& excluded) const;

  /// Number of stored events whose id is not in `excluded`.
  [[nodiscard]] std::size_t count_excluding(
      const std::unordered_set<EventId>& excluded) const;

  /// Copies of all stored events (what a gossip message carries).
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Visits every stored event.
  void for_each(const std::function<void(const Event&)>& fn) const;

 private:
  std::size_t oldest_slot_index(
      const std::unordered_set<EventId>* excluded) const;
  void erase_slot(std::size_t idx);

  std::vector<Slot> slots_;
  std::unordered_map<EventId, std::size_t> index_;  // id -> slot position
  std::uint64_t next_seq_ = 0;
};

/// Bounded FIFO set of event ids (paper's `eventIds` with "remove oldest
/// element" garbage collection).
class EventIdBuffer {
 public:
  explicit EventIdBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Returns true if newly inserted; false if already known. Evicts the
  /// oldest id when the bound is exceeded.
  bool insert(const EventId& id);

  [[nodiscard]] bool contains(const EventId& id) const {
    return set_.contains(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void set_capacity(std::size_t capacity);

 private:
  void evict_to_capacity();

  std::size_t capacity_;
  std::unordered_set<EventId> set_;
  std::vector<EventId> fifo_;  // insertion order; head = fifo_[head_]
  std::size_t head_ = 0;
};

}  // namespace agb::gossip
