#include "adaptive/adaptive_node.h"

namespace agb::adaptive {

AdaptiveLpbcastNode::AdaptiveLpbcastNode(
    NodeId self, gossip::GossipParams gossip_params,
    AdaptiveParams adaptive_params,
    std::unique_ptr<membership::Membership> membership, Rng rng)
    : gossip::LpbcastNode(self, gossip_params, std::move(membership), rng),
      params_(adaptive_params),
      min_buff_(adaptive_params.min_buff_window,
                static_cast<std::uint32_t>(gossip_params.max_events)),
      congestion_(adaptive_params.alpha, adaptive_params.critical_age),
      adapter_(adaptive_params, this->rng().split()),
      bucket_(adaptive_params.initial_rate, adaptive_params.bucket_capacity,
              0),
      avg_tokens_(adaptive_params.alpha, adaptive_params.bucket_capacity) {
  if (params_.robust_k > 1) {
    robust_ = std::make_unique<RobustMinEstimator>(
        params_.robust_k, params_.robust_floor, params_.min_buff_window,
        self, static_cast<std::uint32_t>(gossip_params.max_events));
  }
  if (params_.control.enabled) {
    // The control plane anchors on the same L/H marks the RateAdapter
    // throttles on, and starts its actuators at the configured values (the
    // LocalityView's p_local, the base fanout) so an idle plane is a no-op.
    auto* view = locality_view();
    control_ = std::make_unique<ControlPlane>(
        params_.control, params_.low_age_mark, params_.high_age_mark,
        gossip_params.fanout,
        view != nullptr ? view->p_local() : params_.control.p_local_max);
  }
}

bool AdaptiveLpbcastNode::try_broadcast(gossip::Payload payload, TimeMs now,
                                        EventId* out_id) {
  return try_broadcast_on_stream(std::move(payload), now, /*stream=*/0,
                                 /*supersedes=*/false, out_id);
}

bool AdaptiveLpbcastNode::try_broadcast_on_stream(gossip::Payload payload,
                                                  TimeMs now,
                                                  std::uint32_t stream,
                                                  bool supersedes,
                                                  EventId* out_id) {
  if (!bucket_.try_take(now)) return false;
  const EventId id =
      broadcast_on_stream(std::move(payload), now, stream, supersedes);
  if (out_id != nullptr) *out_id = id;
  return true;
}

void AdaptiveLpbcastNode::set_capacity(std::size_t max_events, TimeMs now) {
  set_max_events(max_events, now);
  min_buff_.set_local_capacity(static_cast<std::uint32_t>(max_events));
  if (robust_) {
    robust_->set_local_capacity(static_cast<std::uint32_t>(max_events));
  }
}

PeriodId AdaptiveLpbcastNode::period_for(TimeMs now) const {
  return static_cast<PeriodId>(now / params_.sample_period);
}

void AdaptiveLpbcastNode::on_round_start(TimeMs now) {
  // Clock-driven period advance; message-driven advance happens in
  // process_header when a later-period header arrives first.
  min_buff_.advance_to(period_for(now));
  if (robust_) robust_->advance_to(period_for(now));

  // A full round without any virtual drop is evidence of spare capacity:
  // count it as a maximally-old sample so avgAge can rise above the high
  // mark and unlock rate increases (see AdaptiveParams::idle_age_boost).
  if (params_.idle_age_boost &&
      congestion_.observations() == observations_at_last_round_) {
    congestion_.idle_sample(static_cast<double>(params().max_age));
  }
  observations_at_last_round_ = congestion_.observations();

  // Sample the token level, then run one adaptation step (Fig. 5(c)).
  avg_tokens_.add(bucket_.level(now));
  const double new_rate =
      adapter_.update(congestion_.avg_age(), avg_tokens_.value());
  bucket_.set_rate(new_rate, now);

  // One control-plane step on the same signals: classify the regime, steer
  // p_local and the effective fanout (no-op while control.enabled = false).
  if (control_) {
    auto* view = locality_view();
    const ControlPlane::Actions actions = control_->tick(
        ControlPlane::Signals{congestion_.avg_age(), remote_novel_round_,
                              view != nullptr});
    remote_novel_round_ = 0.0;
    set_effective_fanout(actions.fanout);
    if (view != nullptr) view->set_p_local(actions.p_local);
  }
}

void AdaptiveLpbcastNode::augment_header(gossip::GossipMessage& message,
                                         TimeMs now) {
  min_buff_.advance_to(period_for(now));
  message.period = min_buff_.period();
  // The header advertises the *running* minimum for the current period, not
  // the windowed operational estimate: periods must stay independent so
  // obsolete constraints can expire (paper §3.1).
  message.min_buff = min_buff_.running_minimum();
  if (robust_) {
    robust_->advance_to(period_for(now));
    message.min_set = robust_->header_entries();
  }
}

void AdaptiveLpbcastNode::process_header(const gossip::GossipMessage& message,
                                         TimeMs now) {
  min_buff_.advance_to(period_for(now));
  min_buff_.on_header(message.period, message.min_buff);
  if (robust_) {
    robust_->advance_to(period_for(now));
    robust_->on_entries(message.period, message.min_set);
  }
}

void AdaptiveLpbcastNode::before_shrink(TimeMs /*now*/) {
  congestion_.observe(events(), min_buff());
}

void AdaptiveLpbcastNode::after_gc(TimeMs /*now*/) {
  congestion_.prune(events());
}

void AdaptiveLpbcastNode::on_event_ingested(const gossip::Event& event,
                                            TimeMs /*now*/) {
  if (!control_) return;
  // Starvation signal: count novel events whose *origin* lives outside the
  // home cluster (with no locality view there is no cluster to starve, but
  // the count is still maintained so introspection stays meaningful).
  auto* view = locality_view();
  if (view == nullptr ||
      view->clusters().cluster_of(event.id.origin) != view->home_cluster()) {
    remote_novel_round_ += 1.0;
  }
}

}  // namespace agb::adaptive
