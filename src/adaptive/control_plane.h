// Self-tuning control plane: one per-node feedback layer driving the knobs
// that the paper's rate adaptation (Fig. 5) leaves static.
//
// The paper adapts exactly one actuator — the sender's token refill rate —
// from one signal, avgAge. The ControlPlane generalises that loop: it
// consumes the congestion signals the adaptive node already maintains
// (avgAge from the CongestionEstimator, the robust-min buffer estimate) plus
// a locality signal (per-round novel events of remote-cluster origin) and
// drives two more actuators each round:
//
//   signal                          regime        actuator
//   ------------------------------  ------------  --------------------------
//   avgAge < L  (drops die young)   kCongested    p_local steps UP toward
//                                                 p_local_max (keep traffic
//                                                 off the WAN links); fanout
//                                                 scaled by
//                                                 fanout_congested_scale
//   avgAge > H  (spare capacity)    kSpare        fanout scaled by
//                                                 fanout_spare_scale; if the
//                                                 remote-novelty EWMA shows
//                                                 the cluster starving,
//                                                 p_local steps DOWN toward
//                                                 p_local_min (open the WAN),
//                                                 otherwise it relaxes toward
//                                                 base like kNominal
//   otherwise                       kNominal      base fanout; p_local
//                                                 relaxes toward its
//                                                 configured base value
//
// Hysteresis: the regime is a latched state, not a per-round threshold
// test — entering kCongested requires avgAge < L but leaving it requires
// avgAge > L + hysteresis (symmetrically for kSpare around H), so a signal
// hovering at a mark cannot flap the actuators.
//
// Determinism: the ControlPlane is pure arithmetic on its inputs — it owns
// no RNG, draws nothing, and its actuators change no message content, so a
// node with the control plane disabled is byte-identical on the wire (and
// in seeded traces) to a node built before this class existed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "adaptive/params.h"
#include "common/moving_average.h"

namespace agb::adaptive {

enum class Regime { kCongested, kNominal, kSpare };

[[nodiscard]] constexpr const char* regime_name(Regime regime) noexcept {
  switch (regime) {
    case Regime::kCongested:
      return "congested";
    case Regime::kNominal:
      return "nominal";
    case Regime::kSpare:
      return "spare";
  }
  return "?";
}

class ControlPlane {
 public:
  /// `low_mark`/`high_mark` are the L/H avgAge marks (normally
  /// AdaptiveParams::low_age_mark/high_age_mark — the same marks the
  /// RateAdapter throttles on, so the two control loops agree about what
  /// congestion means). `base_fanout` and `base_p_local` are the configured
  /// values the actuators start from and relax back to.
  ControlPlane(ControlPlaneParams params, double low_mark, double high_mark,
               std::size_t base_fanout, double base_p_local)
      : params_(params),
        low_mark_(low_mark),
        high_mark_(high_mark),
        base_fanout_(base_fanout == 0 ? 1 : base_fanout),
        base_p_local_(std::clamp(base_p_local, params.p_local_min,
                                 params.p_local_max)),
        p_local_(base_p_local_),
        fanout_(base_fanout_),
        remote_novelty_(params.starve_alpha, /*initial=*/1.0) {}

  /// Per-round inputs, read off the adaptive node's estimators.
  struct Signals {
    double avg_age = 0.0;       // CongestionEstimator::avg_age()
    double remote_novel = 0.0;  // novel remote-origin events this round
    bool has_locality = false;  // node runs under a LocalityView
  };

  /// One feedback step (called once per gossip round, before emission).
  /// Returns the actuator outputs; callers apply them to the LocalityView
  /// and the node's effective fanout.
  struct Actions {
    double p_local = 0.0;
    std::size_t fanout = 0;
  };
  Actions tick(const Signals& signals) {
    update_regime(signals.avg_age);
    remote_novelty_.add(signals.remote_novel);

    switch (regime_) {
      case Regime::kCongested:
        // WAN links congest: bias harder toward the local cluster.
        p_local_ = std::min(params_.p_local_max,
                            p_local_ + params_.p_local_step);
        fanout_ = scaled_fanout(params_.fanout_congested_scale);
        break;
      case Regime::kSpare:
        fanout_ = scaled_fanout(params_.fanout_spare_scale);
        if (signals.has_locality && starving()) {
          // Capacity to spare and no remote news arriving: the cluster is
          // cut off — open the WAN back up (this may push below base).
          p_local_ = std::max(params_.p_local_min,
                              p_local_ - params_.p_local_step);
        } else {
          // Spare capacity is no reason to keep the WAN biased either:
          // relax home like kNominal does, or a system that idles in
          // kSpare (avgAge boosted to the age limit) would freeze p_local
          // wherever the last congestion excursion left it.
          relax_toward_base();
        }
        break;
      case Regime::kNominal:
        fanout_ = base_fanout_;
        relax_toward_base();
        break;
    }
    return Actions{p_local_, fanout_};
  }

  [[nodiscard]] Regime regime() const noexcept { return regime_; }
  [[nodiscard]] double p_local() const noexcept { return p_local_; }
  [[nodiscard]] std::size_t fanout() const noexcept { return fanout_; }
  [[nodiscard]] double remote_novelty() const noexcept {
    return remote_novelty_.value();
  }
  [[nodiscard]] bool starving() const noexcept {
    return remote_novelty_.value() < params_.starve_threshold;
  }
  [[nodiscard]] const ControlPlaneParams& params() const noexcept {
    return params_;
  }

 private:
  void update_regime(double avg_age) {
    // Latched classification with a hysteresis band: thresholds to LEAVE a
    // regime sit `hysteresis` beyond the thresholds to ENTER it.
    switch (regime_) {
      case Regime::kCongested:
        if (avg_age > low_mark_ + params_.hysteresis) regime_ = Regime::kNominal;
        break;
      case Regime::kSpare:
        if (avg_age < high_mark_ - params_.hysteresis) regime_ = Regime::kNominal;
        break;
      case Regime::kNominal:
        break;
    }
    if (regime_ == Regime::kNominal) {
      if (avg_age < low_mark_) {
        regime_ = Regime::kCongested;
      } else if (avg_age > high_mark_) {
        regime_ = Regime::kSpare;
      }
    }
  }

  // Relax toward the configured base at half speed, so a recovered system
  // drifts home without fighting the next excursion.
  void relax_toward_base() {
    if (p_local_ > base_p_local_) {
      p_local_ =
          std::max(base_p_local_, p_local_ - params_.p_local_step / 2.0);
    } else if (p_local_ < base_p_local_) {
      p_local_ =
          std::min(base_p_local_, p_local_ + params_.p_local_step / 2.0);
    }
  }

  [[nodiscard]] std::size_t scaled_fanout(double scale) const {
    const double scaled =
        std::llround(static_cast<double>(base_fanout_) * scale);
    return scaled < 1.0 ? 1 : static_cast<std::size_t>(scaled);
  }

  ControlPlaneParams params_;
  double low_mark_;
  double high_mark_;
  std::size_t base_fanout_;
  double base_p_local_;
  Regime regime_ = Regime::kNominal;
  double p_local_;
  std::size_t fanout_;
  Ewma remote_novelty_;
};

}  // namespace agb::adaptive
