// Local estimation of congestion (paper Fig. 5(b)).
//
// Given minBuff (the estimated size of the smallest buffer in the group),
// each node simulates the drops that a node with *exactly* minBuff slots
// would be performing on the node's own traffic: whenever the set of
// buffered events not yet accounted as "lost" exceeds minBuff, the oldest
// such events are virtually discarded and their ages folded into the EWMA
// avgAge. The node keeps using its full real buffer — the virtual drops are
// pure accounting — so reliability still benefits from larger local buffers
// (paper §3.2, validated by the dynamic-buffer experiment).
#pragma once

#include <unordered_set>

#include "common/moving_average.h"
#include "common/types.h"
#include "gossip/event_buffer.h"

namespace agb::adaptive {

class CongestionEstimator {
 public:
  /// `alpha` weights history in the EWMA (paper: 0.9); `initial_age` seeds
  /// avgAge so the controller is neutral before the first observation.
  CongestionEstimator(double alpha, double initial_age);

  /// Performs the virtual-drop accounting against the current buffer
  /// contents. Call after inserting the events of a received gossip message
  /// and before enforcing the real buffer bound.
  void observe(const gossip::EventBuffer& events, std::size_t min_buff);

  /// Forgets `lost` entries whose events are no longer buffered; call after
  /// real garbage collection so the set stays bounded by the buffer size.
  void prune(const gossip::EventBuffer& events);

  /// Folds an "uncongested" pseudo-sample into avgAge. The paper's update
  /// rule only fires on virtual drops, so a system with *no* drops at all
  /// (deep under capacity) would freeze avgAge and never allow the rate to
  /// grow; drivers call this once per drop-free round with the age-limit k
  /// ("everything lives to full dissemination") to restore liveness. See
  /// AdaptiveParams::idle_age_boost.
  void idle_sample(double age) { avg_age_.add(age); }

  [[nodiscard]] double avg_age() const noexcept { return avg_age_.value(); }
  [[nodiscard]] std::size_t observations() const noexcept {
    return avg_age_.samples();
  }
  [[nodiscard]] const std::unordered_set<EventId>& lost() const noexcept {
    return lost_;
  }

  void reset(double initial_age) { avg_age_.reset(initial_age); }

 private:
  Ewma avg_age_;
  std::unordered_set<EventId> lost_;
};

}  // namespace agb::adaptive
