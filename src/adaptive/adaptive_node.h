// The adaptive gossip-based broadcast node — the paper's contribution
// (Fig. 5), assembled from the three mechanisms:
//
//   MinBuffEstimator     distributed discovery of the smallest buffer,
//   CongestionEstimator  local virtual-drop accounting against minBuff,
//   RateAdapter          threshold/usage-gated multiplicative rate control,
//
// layered onto the baseline gossip::LpbcastNode via its protocol hooks. The
// sender side is gated by a token bucket whose refill rate is the adapter's
// output; try_broadcast() is the rate-limited entry point (the paper's
// BROADCAST blocks on tokens; drivers queue instead of blocking).
#pragma once

#include <memory>

#include "adaptive/congestion_estimator.h"
#include "adaptive/control_plane.h"
#include "adaptive/minbuff_estimator.h"
#include "adaptive/params.h"
#include "adaptive/rate_adapter.h"
#include "adaptive/robust_min_estimator.h"
#include "common/moving_average.h"
#include "flowcontrol/token_bucket.h"
#include "gossip/lpbcast_node.h"
#include "membership/locality_view.h"

namespace agb::adaptive {

class AdaptiveLpbcastNode final : public gossip::LpbcastNode {
 public:
  AdaptiveLpbcastNode(NodeId self, gossip::GossipParams gossip_params,
                      AdaptiveParams adaptive_params,
                      std::unique_ptr<membership::Membership> membership,
                      Rng rng);

  /// Rate-gated broadcast: consumes a token or refuses. Callers queue
  /// refused messages and retry (see core::Sender).
  bool try_broadcast(gossip::Payload payload, TimeMs now,
                     EventId* out_id = nullptr);

  /// Rate-gated broadcast with semantic metadata (see Event::stream).
  bool try_broadcast_on_stream(gossip::Payload payload, TimeMs now,
                               std::uint32_t stream, bool supersedes,
                               EventId* out_id = nullptr);

  /// True when try_broadcast would be admitted right now (a whole token is
  /// available). Non-consuming: pending-queue drivers use it to avoid
  /// moving a payload into a call that would refuse it.
  [[nodiscard]] bool tokens_available(TimeMs now) noexcept {
    return bucket_.level(now) >= 1.0;
  }

  /// Dynamic resources: updates both the real bound and the running
  /// per-period minimum the node advertises.
  void set_capacity(std::size_t max_events, TimeMs now);

  // Introspection for metrics, tests and benches.
  [[nodiscard]] double allowed_rate() const noexcept {
    return adapter_.rate();
  }
  [[nodiscard]] double avg_age() const noexcept {
    return congestion_.avg_age();
  }
  [[nodiscard]] double avg_tokens() const noexcept {
    return avg_tokens_.value();
  }
  /// The adaptation threshold actually in use: the plain group minimum, or
  /// the robust k-th smallest when robust_k > 1.
  [[nodiscard]] std::uint32_t min_buff() const {
    return robust_ ? robust_->estimate() : min_buff_.estimate();
  }
  [[nodiscard]] PeriodId sample_period() const noexcept {
    return min_buff_.period();
  }
  [[nodiscard]] const AdaptiveParams& adaptive_params() const noexcept {
    return params_;
  }

  /// The feedback layer, when AdaptiveParams::control.enabled; nullptr
  /// otherwise (and then nothing else in the node behaves differently).
  [[nodiscard]] const ControlPlane* control_plane() const noexcept {
    return control_.get();
  }

  /// The live p_local of the node's LocalityView, or -1 when the node runs
  /// without locality (no cluster bias to steer).
  [[nodiscard]] double p_local() noexcept {
    auto* view = locality_view();
    return view != nullptr ? view->p_local() : -1.0;
  }

 protected:
  void on_round_start(TimeMs now) override;
  void augment_header(gossip::GossipMessage& message, TimeMs now) override;
  void process_header(const gossip::GossipMessage& message,
                      TimeMs now) override;
  void before_shrink(TimeMs now) override;
  void after_gc(TimeMs now) override;
  void on_event_ingested(const gossip::Event& event, TimeMs now) override;

 private:
  [[nodiscard]] PeriodId period_for(TimeMs now) const;

  AdaptiveParams params_;
  MinBuffEstimator min_buff_;
  std::unique_ptr<RobustMinEstimator> robust_;  // only when robust_k > 1
  CongestionEstimator congestion_;
  RateAdapter adapter_;
  flowcontrol::TokenBucket bucket_;
  Ewma avg_tokens_;
  std::size_t observations_at_last_round_ = 0;
  std::unique_ptr<ControlPlane> control_;  // only when control.enabled
  /// Novel remote-cluster-origin events seen since the last round started
  /// (the control plane's starvation signal; reset every tick).
  double remote_novel_round_ = 0.0;
};

}  // namespace agb::adaptive
