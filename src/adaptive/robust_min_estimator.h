// Robust group-minimum discovery — the paper's §6 extension.
//
// Adapting to the single smallest buffer lets one pathological node drag
// the whole group's throughput down. The paper proposes computing "not
// only the smallest, but the k smaller buffers in the system (or the k
// smaller buffers above a minimum threshold)". This estimator gossips the
// k smallest (node, capacity) pairs per sample period — identities matter,
// otherwise one node's value would be counted k times — and adapts to the
// k-th smallest capacity, optionally ignoring capacities below a floor.
// k = 1 and floor = 0 degenerate to the plain minimum of Fig. 5(a).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/types.h"
#include "gossip/message.h"

namespace agb::adaptive {

class RobustMinEstimator {
 public:
  /// `k`: adapt to the k-th smallest distinct-node capacity (>= 1).
  /// `floor`: capacities strictly below this are treated as outliers and
  /// ignored (0 = no floor). `window`: periods considered (current + W-1).
  RobustMinEstimator(std::size_t k, std::uint32_t floor, std::size_t window,
                     NodeId self, std::uint32_t local_capacity);

  void set_local_capacity(std::uint32_t capacity);
  void advance_to(PeriodId p);

  /// Folds the min-set of a received header into the current period
  /// (fast-forwarding to `p` if it is ahead; ignoring stale periods).
  void on_entries(PeriodId p, std::span<const gossip::MinSetEntry> entries);

  /// Entries to advertise in an outgoing header: the k smallest known for
  /// the *current* period, always including this node itself.
  [[nodiscard]] std::vector<gossip::MinSetEntry> header_entries() const;

  /// The adaptation threshold: k-th smallest distinct-node capacity across
  /// the window, after dropping below-floor outliers. Falls back to the
  /// largest known (or the local capacity) when fewer than k are known.
  [[nodiscard]] std::uint32_t estimate() const;

  [[nodiscard]] PeriodId period() const noexcept { return period_; }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  using Entries = std::vector<gossip::MinSetEntry>;  // sorted by capacity

  void merge_entry(Entries& entries, const gossip::MinSetEntry& entry) const;
  void trim(Entries& entries) const;

  std::size_t k_;
  std::uint32_t floor_;
  std::size_t window_;
  NodeId self_;
  std::uint32_t local_;
  PeriodId period_ = 0;
  Entries current_;
  std::deque<Entries> history_;  // most recent completed first
};

}  // namespace agb::adaptive
