// Sender rate adjustment (paper Fig. 5(c)).
//
// Once per gossip round the sender compares the smoothed age of virtually
// dropped messages (avgAge) with two marks around the critical age:
//
//   avgAge < L            -> congestion: multiplicative decrease by Δd.
//   avgTokens high        -> allowance unused: decrease too, so an idle
//                            sender cannot bank an inflated allowance and
//                            later burst with it (paper §3.3).
//   avgAge > H and
//   avgTokens low         -> spare capacity and full usage: multiplicative
//                            increase by Δi, taken only with probability γ
//                            so that a large sender population does not
//                            stampede from L to H and oscillate.
#pragma once

#include <algorithm>

#include "adaptive/params.h"
#include "common/rng.h"

namespace agb::adaptive {

class RateAdapter {
 public:
  RateAdapter(const AdaptiveParams& params, Rng rng) noexcept
      : params_(params), rng_(rng), rate_(params.initial_rate) {}

  /// One adaptation step; returns the new allowed rate (msg/s).
  double update(double avg_age, double avg_tokens) noexcept {
    const bool allowance_unused =
        avg_tokens >= params_.token_high_frac * params_.bucket_capacity;
    const bool allowance_fully_used =
        avg_tokens <= params_.token_low_frac * params_.bucket_capacity;

    if (avg_age < params_.low_age_mark || allowance_unused) {
      rate_ *= (1.0 - params_.decrease_factor);
      last_action_ = Action::kDecrease;
    } else if (avg_age > params_.high_age_mark && allowance_fully_used &&
               rng_.bernoulli(params_.increase_probability)) {
      rate_ *= (1.0 + params_.increase_factor);
      last_action_ = Action::kIncrease;
    } else {
      last_action_ = Action::kHold;
    }
    rate_ = std::clamp(rate_, params_.min_rate, params_.max_rate);
    return rate_;
  }

  enum class Action { kHold, kDecrease, kIncrease };

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] Action last_action() const noexcept { return last_action_; }
  void set_rate(double rate) noexcept {
    rate_ = std::clamp(rate, params_.min_rate, params_.max_rate);
  }

 private:
  AdaptiveParams params_;
  Rng rng_;
  double rate_;
  Action last_action_ = Action::kHold;
};

}  // namespace agb::adaptive
