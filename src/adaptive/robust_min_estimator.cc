#include "adaptive/robust_min_estimator.h"

#include <algorithm>
#include <map>

namespace agb::adaptive {

RobustMinEstimator::RobustMinEstimator(std::size_t k, std::uint32_t floor,
                                       std::size_t window, NodeId self,
                                       std::uint32_t local_capacity)
    : k_(std::max<std::size_t>(k, 1)),
      floor_(floor),
      window_(std::max<std::size_t>(window, 1)),
      self_(self),
      local_(local_capacity) {
  current_.push_back({self_, local_});
}

void RobustMinEstimator::merge_entry(
    Entries& entries, const gossip::MinSetEntry& entry) const {
  for (auto& existing : entries) {
    if (existing.node == entry.node) {
      existing.capacity = std::min(existing.capacity, entry.capacity);
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) {
                  return a.capacity < b.capacity;
                });
      return;
    }
  }
  entries.push_back(entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.capacity < b.capacity;
            });
  trim(entries);
}

void RobustMinEstimator::trim(Entries& entries) const {
  // Keep the k smallest *usable* entries (at or above the floor — slots
  // spent on ignored outliers would starve the information that matters),
  // plus always this node's own entry so it keeps circulating.
  Entries kept;
  std::size_t usable = 0;
  for (const auto& entry : entries) {  // sorted by capacity ascending
    if (entry.node == self_) {
      kept.push_back(entry);
      continue;
    }
    if (floor_ > 0 && entry.capacity < floor_) continue;
    if (usable < k_) {
      kept.push_back(entry);
      ++usable;
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) {
              return a.capacity < b.capacity;
            });
  entries = std::move(kept);
}

void RobustMinEstimator::set_local_capacity(std::uint32_t capacity) {
  local_ = capacity;
  bool found = false;
  for (auto& entry : current_) {
    if (entry.node == self_) {
      // Shrinks apply immediately; growth shows when the window rolls over,
      // mirroring MinBuffEstimator's semantics.
      entry.capacity = std::min(entry.capacity, capacity);
      found = true;
    }
  }
  if (!found) merge_entry(current_, {self_, capacity});
}

void RobustMinEstimator::advance_to(PeriodId p) {
  while (period_ < p) {
    history_.push_front(current_);
    while (history_.size() > window_ - 1) history_.pop_back();
    ++period_;
    current_.clear();
    current_.push_back({self_, local_});
  }
}

void RobustMinEstimator::on_entries(
    PeriodId p, std::span<const gossip::MinSetEntry> entries) {
  if (p > period_) advance_to(p);
  if (p != period_) return;  // stale
  for (const auto& entry : entries) {
    if (entry.node == kInvalidNode) continue;
    merge_entry(current_, entry);
  }
}

std::vector<gossip::MinSetEntry> RobustMinEstimator::header_entries() const {
  return current_;
}

std::uint32_t RobustMinEstimator::estimate() const {
  // Merge all window periods: per node, its smallest advertised capacity.
  std::map<NodeId, std::uint32_t> merged;
  auto fold = [&](const Entries& entries) {
    for (const auto& entry : entries) {
      auto [it, inserted] = merged.try_emplace(entry.node, entry.capacity);
      if (!inserted) it->second = std::min(it->second, entry.capacity);
    }
  };
  fold(current_);
  for (const auto& entries : history_) fold(entries);

  std::vector<std::uint32_t> capacities;
  capacities.reserve(merged.size());
  for (const auto& [node, capacity] : merged) {
    if (floor_ > 0 && capacity < floor_) continue;  // outlier: ignored
    capacities.push_back(capacity);
  }
  if (capacities.empty()) return local_;
  std::sort(capacities.begin(), capacities.end());
  const std::size_t idx = std::min(k_ - 1, capacities.size() - 1);
  return capacities[idx];
}

}  // namespace agb::adaptive
