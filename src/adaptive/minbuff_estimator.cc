#include "adaptive/minbuff_estimator.h"

#include <algorithm>

namespace agb::adaptive {

MinBuffEstimator::MinBuffEstimator(std::size_t window,
                                   std::uint32_t local_capacity)
    : window_(std::max<std::size_t>(window, 1)),
      local_(local_capacity),
      running_(local_capacity) {}

void MinBuffEstimator::set_local_capacity(std::uint32_t capacity) {
  local_ = capacity;
  running_ = std::min(running_, capacity);
}

void MinBuffEstimator::advance_to(PeriodId p) {
  while (period_ < p) {
    history_.push_front(running_);
    while (history_.size() > window_ - 1) history_.pop_back();
    ++period_;
    // A fresh period starts from local knowledge only; remote minima must be
    // re-learned, which is exactly what lets obsolete constraints expire.
    running_ = local_;
  }
}

void MinBuffEstimator::on_header(PeriodId p, std::uint32_t remote_min) {
  if (p > period_) advance_to(p);
  if (p == period_) running_ = std::min(running_, remote_min);
  // p < period_: stale header, ignore.
}

std::uint32_t MinBuffEstimator::estimate() const {
  std::uint32_t best = running_;
  for (std::uint32_t v : history_) best = std::min(best, v);
  return best;
}

}  // namespace agb::adaptive
