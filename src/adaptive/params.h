// Configuration of the adaptation mechanism (paper §3.4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace agb::adaptive {

struct AdaptiveParams {
  /// τ: length of a minBuff sample period. The paper recommends >= a_r * T
  /// when a single node may hold the minimum; we default to 2*T (their
  /// experimental choice scaled to our round length).
  DurationMs sample_period = 2000;
  /// W: number of sample periods (current included) whose minima are folded
  /// into the operational minBuff estimate.
  std::size_t min_buff_window = 2;
  /// α: EWMA history weight for avgAge and avgTokens ("close to 1").
  double alpha = 0.9;
  /// a_r: the critical age — average drop age observed at the congestion
  /// knee (paper: 5.3 hops in their setup; measured by bench/fig4_max_rate
  /// for ours). Used to seed avgAge and to place the marks by default.
  double critical_age = 4.5;
  /// L: below this avgAge the system is congested -> decrease.
  double low_age_mark = 4.0;
  /// H: above this avgAge spare capacity exists -> increase (if used).
  double high_age_mark = 5.0;
  /// Δd: relative rate decrease per congested round.
  double decrease_factor = 0.1;
  /// Δi: relative rate increase per uncongested round.
  double increase_factor = 0.1;
  /// γ: probability a sender takes an allowed increase this round
  /// (desynchronises simultaneous increases; paper: 0.1).
  double increase_probability = 0.1;
  /// avgTokens <= token_low_frac * capacity counts as "allowance fully
  /// used" (precondition for increasing).
  double token_low_frac = 0.5;
  /// avgTokens >= token_high_frac * capacity counts as "allowance unused"
  /// (forces a decrease, preventing inflated-allowance bursts).
  double token_high_frac = 0.9;
  /// Token bucket: initial allowed rate (msg/s) and burst capacity.
  double initial_rate = 10.0;
  double bucket_capacity = 8.0;
  /// Clamp on the allowed rate.
  double min_rate = 0.25;
  double max_rate = 10000.0;
  /// Robust-minimum extension (paper §6): adapt to the k-th smallest
  /// distinct-node buffer instead of the absolute minimum, so one
  /// pathological node cannot throttle the whole group. 1 = the paper's
  /// baseline behaviour (plain minimum). Values > 1 add (node, capacity)
  /// pairs to gossip headers (a few bytes per entry).
  std::size_t robust_k = 1;
  /// With robust_k > 1: capacities strictly below this are ignored as
  /// outliers ("the k smaller buffers above a minimum threshold"). 0 = off.
  std::uint32_t robust_floor = 0;

  /// Liveness extension (not in the paper): when a whole gossip round
  /// passes without a single virtual drop, feed the age limit k into avgAge
  /// as an "uncongested" sample. Without it, a sender that never observes
  /// drops (system deep below capacity) can never learn that the rate may
  /// grow. Ablated in bench/ablation_adaptation.
  bool idle_age_boost = true;
};

}  // namespace agb::adaptive
