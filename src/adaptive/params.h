// Configuration of the adaptation mechanism (paper §3.4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace agb::adaptive {

/// Configuration of the self-tuning control plane (adaptive::ControlPlane):
/// the feedback layer that generalises the paper's rate adaptation to the
/// knobs outside the buffer/rate path. Regimes are classified on the same
/// avgAge signal the RateAdapter uses (low avgAge = drops die young =
/// congestion; high avgAge = spare capacity), against the L/H marks of
/// AdaptiveParams, widened by a hysteresis band so the classification
/// cannot oscillate when avgAge hovers at a mark.
struct ControlPlaneParams {
  /// Master switch. Off by default: a disabled control plane changes no
  /// behaviour, no RNG draw and no wire byte — seeded traces of every
  /// pre-existing preset are pinned on this.
  bool enabled = false;
  /// Hysteresis half-band (in avgAge hops) around the L/H marks: the
  /// congested regime is entered at avgAge < L but only left at
  /// avgAge > L + hysteresis; the spare regime enters at avgAge > H and
  /// leaves at avgAge < H - hysteresis.
  double hysteresis = 0.25;
  /// p_local actuation bounds and per-round step. Congestion pushes
  /// p_local up (keep traffic off the WAN links), a starving cluster pulls
  /// it down (open the WAN up), the nominal regime relaxes it back toward
  /// the configured base value.
  double p_local_min = 0.50;
  double p_local_max = 0.98;
  double p_local_step = 0.02;
  /// Per-regime fanout scaling applied to the configured base fanout:
  /// congested rounds gossip to fewer peers (less redundant load on a
  /// saturated group), spare rounds to more (faster dissemination while
  /// capacity is free). Nominal uses the base fanout. Results are rounded
  /// and clamped to >= 1.
  double fanout_congested_scale = 0.75;
  double fanout_spare_scale = 1.25;
  /// Starvation detector: EWMA (weight `starve_alpha`) over the per-round
  /// count of novel events originating OUTSIDE the node's home cluster.
  /// When it sinks below `starve_threshold` while capacity is spare, the
  /// cluster is cut off from remote traffic and p_local steps down.
  double starve_alpha = 0.9;
  double starve_threshold = 0.05;
};

struct AdaptiveParams {
  /// τ: length of a minBuff sample period. The paper recommends >= a_r * T
  /// when a single node may hold the minimum; we default to 2*T (their
  /// experimental choice scaled to our round length).
  DurationMs sample_period = 2000;
  /// W: number of sample periods (current included) whose minima are folded
  /// into the operational minBuff estimate.
  std::size_t min_buff_window = 2;
  /// α: EWMA history weight for avgAge and avgTokens ("close to 1").
  double alpha = 0.9;
  /// a_r: the critical age — average drop age observed at the congestion
  /// knee (paper: 5.3 hops in their setup; measured by bench/fig4_max_rate
  /// for ours). Used to seed avgAge and to place the marks by default.
  double critical_age = 4.5;
  /// L: below this avgAge the system is congested -> decrease.
  double low_age_mark = 4.0;
  /// H: above this avgAge spare capacity exists -> increase (if used).
  double high_age_mark = 5.0;
  /// Δd: relative rate decrease per congested round.
  double decrease_factor = 0.1;
  /// Δi: relative rate increase per uncongested round.
  double increase_factor = 0.1;
  /// γ: probability a sender takes an allowed increase this round
  /// (desynchronises simultaneous increases; paper: 0.1).
  double increase_probability = 0.1;
  /// avgTokens <= token_low_frac * capacity counts as "allowance fully
  /// used" (precondition for increasing).
  double token_low_frac = 0.5;
  /// avgTokens >= token_high_frac * capacity counts as "allowance unused"
  /// (forces a decrease, preventing inflated-allowance bursts).
  double token_high_frac = 0.9;
  /// Token bucket: initial allowed rate (msg/s) and burst capacity.
  double initial_rate = 10.0;
  double bucket_capacity = 8.0;
  /// Clamp on the allowed rate.
  double min_rate = 0.25;
  double max_rate = 10000.0;
  /// Robust-minimum extension (paper §6): adapt to the k-th smallest
  /// distinct-node buffer instead of the absolute minimum, so one
  /// pathological node cannot throttle the whole group. 1 = the paper's
  /// baseline behaviour (plain minimum). Values > 1 add (node, capacity)
  /// pairs to gossip headers (a few bytes per entry).
  std::size_t robust_k = 1;
  /// With robust_k > 1: capacities strictly below this are ignored as
  /// outliers ("the k smaller buffers above a minimum threshold"). 0 = off.
  std::uint32_t robust_floor = 0;

  /// Liveness extension (not in the paper): when a whole gossip round
  /// passes without a single virtual drop, feed the age limit k into avgAge
  /// as an "uncongested" sample. Without it, a sender that never observes
  /// drops (system deep below capacity) can never learn that the rate may
  /// grow. Ablated in bench/ablation_adaptation.
  bool idle_age_boost = true;

  /// The self-tuning control plane riding on the signals above (disabled
  /// by default; see ControlPlaneParams).
  ControlPlaneParams control;
};

}  // namespace agb::adaptive
