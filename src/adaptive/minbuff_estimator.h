// Distributed discovery of resource availability (paper Fig. 5(a)).
//
// Time is divided into sample periods of length τ. Within period s, every
// node maintains minBuff_s — the minimum of its own buffer bound and every
// value it has seen in gossip headers stamped with period s. The operational
// estimate is the minimum over the current running period and the last W-1
// completed ones, which smooths the beginning-of-period blind spot and lets
// stale minima age out when the constrained node leaves or grows.
//
// Period synchronisation is loose: receiving a header from a *later* period
// fast-forwards the local period counter (the paper's "advance s upon
// reception of a gossip message from a later sample period").
#pragma once

#include <cstdint>
#include <deque>

#include "common/types.h"

namespace agb::adaptive {

class MinBuffEstimator {
 public:
  /// `window` is W (total periods considered, current one included; >= 1).
  /// `local_capacity` seeds the per-period minimum.
  MinBuffEstimator(std::size_t window, std::uint32_t local_capacity);

  /// Local resources changed (dynamic buffers). Takes effect on the running
  /// period immediately (a shrink lowers the running minimum; a growth only
  /// shows after constrained periods leave the window).
  void set_local_capacity(std::uint32_t capacity);

  /// Advances to period `p` if it is ahead of the current one. Completed
  /// periods are pushed into the history window; periods skipped entirely
  /// (e.g. after a long stall) are filled with the local capacity, since no
  /// remote information exists for them.
  void advance_to(PeriodId p);

  /// Folds a received gossip header into the estimate. Headers from later
  /// periods fast-forward the local period first; headers from periods
  /// older than the current one are ignored (their information is already
  /// reflected in history, or too stale to trust).
  void on_header(PeriodId p, std::uint32_t remote_min);

  /// minBuff: the minimum across the running period and the last W-1
  /// completed periods.
  [[nodiscard]] std::uint32_t estimate() const;

  [[nodiscard]] PeriodId period() const noexcept { return period_; }
  [[nodiscard]] std::uint32_t running_minimum() const noexcept {
    return running_;
  }
  [[nodiscard]] std::uint32_t local_capacity() const noexcept {
    return local_;
  }

 private:
  std::size_t window_;
  std::uint32_t local_;
  PeriodId period_ = 0;
  std::uint32_t running_;                // minBuff for the current period
  std::deque<std::uint32_t> history_;    // most recent completed first
};

}  // namespace agb::adaptive
