#include "adaptive/congestion_estimator.h"

#include <vector>

namespace agb::adaptive {

CongestionEstimator::CongestionEstimator(double alpha, double initial_age)
    : avg_age_(alpha, initial_age) {}

void CongestionEstimator::observe(const gossip::EventBuffer& events,
                                  std::size_t min_buff) {
  // "while |events - lost| > minBuff: select oldest element e from
  //  events - lost; avgAge <- alpha*avgAge + (1-alpha)*e.age; lost += {e}"
  while (events.count_excluding(lost_) > min_buff) {
    const gossip::Event* oldest = events.oldest_excluding(lost_);
    if (oldest == nullptr) break;  // defensive; cannot happen if count > 0
    avg_age_.add(static_cast<double>(oldest->age));
    lost_.insert(oldest->id);
  }
}

void CongestionEstimator::prune(const gossip::EventBuffer& events) {
  std::vector<EventId> dead;
  dead.reserve(lost_.size());
  for (const EventId& id : lost_) {
    if (!events.contains(id)) dead.push_back(id);
  }
  for (const EventId& id : dead) lost_.erase(id);
}

}  // namespace agb::adaptive
