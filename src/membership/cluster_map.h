// NodeId → cluster assignment, the topology knowledge behind locality-aware
// gossip (the directional setting of paper §5).
//
// A ClusterMap answers one question — which LAN island does a node live
// on? — and deliberately knows nothing about liveness or membership; those
// stay with the Membership implementations. Two sources feed it:
// ModuloClusterMap mirrors sim::NetworkParams.clusters (node i lives in
// cluster i % clusters, the same O(1) rule SimNetwork prices links with),
// and TableClusterMap carries an explicit assignment, e.g. built from
// runtime::EndpointDirectory host grouping (nodes sharing a host share a
// cluster).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace agb::membership {

/// Identifies one LAN island. Dense, starting at zero.
using ClusterId = std::uint32_t;

/// Sentinel for "no known cluster" (e.g. a node missing from a table).
inline constexpr ClusterId kUnknownCluster = 0xffffffffu;

class ClusterMap {
 public:
  virtual ~ClusterMap() = default;

  [[nodiscard]] virtual ClusterId cluster_of(NodeId node) const = 0;
};

/// The simulation rule: node i belongs to cluster i % clusters (one flat
/// cluster when clusters <= 1). Matches sim::NetworkParams, so a
/// LocalityView fed by this map agrees with SimNetwork about which links
/// are WAN links.
class ModuloClusterMap final : public ClusterMap {
 public:
  explicit ModuloClusterMap(std::size_t clusters) : clusters_(clusters) {}

  [[nodiscard]] ClusterId cluster_of(NodeId node) const override {
    if (clusters_ <= 1) return 0;
    return static_cast<ClusterId>(node % clusters_);
  }

 private:
  std::size_t clusters_;
};

/// An explicit NodeId → ClusterId table; unknown nodes map to
/// kUnknownCluster (a LocalityView treats them as one shared remote
/// island). Built in code or by runtime::cluster_map_from_directory.
class TableClusterMap final : public ClusterMap {
 public:
  void assign(NodeId node, ClusterId cluster) { table_[node] = cluster; }

  [[nodiscard]] ClusterId cluster_of(NodeId node) const override {
    auto it = table_.find(node);
    return it == table_.end() ? kUnknownCluster : it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  std::unordered_map<NodeId, ClusterId> table_;
};

}  // namespace agb::membership
