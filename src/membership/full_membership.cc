#include "membership/full_membership.h"

#include <algorithm>

namespace agb::membership {

FullMembership::FullMembership(NodeId self, Rng rng)
    : self_(self), rng_(rng) {}

std::vector<NodeId> FullMembership::targets(std::size_t fanout) {
  const auto indices = rng_.sample_indices(members_.size(), fanout);
  std::vector<NodeId> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(members_[idx]);
  return out;
}

void FullMembership::add(NodeId node) {
  if (node == self_) return;
  auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) members_.insert(it, node);
}

void FullMembership::remove(NodeId node) {
  auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it != members_.end() && *it == node) members_.erase(it);
}

bool FullMembership::contains(NodeId node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::size_t FullMembership::size() const { return members_.size(); }

std::vector<NodeId> FullMembership::snapshot() const { return members_; }

}  // namespace agb::membership
