// In-protocol anti-entropy membership: liveness and endpoint knowledge as
// gossip state instead of an oracle.
//
// Every node keeps one MemberRecord per known member — {revision, heartbeat,
// state ∈ up/suspect/down} plus an optional endpoint binding — and
// piggybacks a freshest-first digest of its table on the regular gossip
// messages (GossipMessage::member_records). Receivers merge record-by-record
// under a total freshness order: higher revision wins, then higher
// heartbeat, then the state closer to down (so a locally raised suspicion
// propagates against the same-heartbeat "up" everyone else still holds).
// Silent peers are promoted up → suspect → down on configurable timeouts,
// and because targets()/snapshot() expose only up members, a decorating
// LocalityView re-elects bridges from suspicion alone — no failure-detector
// flag, no scheduler-driven add/remove.
//
// Rejoin and migration are revision bumps: a restarted process increments
// its revision (on_restart), a process that moved host/port re-announces a
// new binding under a bumped revision (set_self_binding), and either beats
// every record the group still holds about its previous incarnation —
// including a "down" tombstone. This is the classic gossip membership
// design (the nodemcu gossip.lua module is a compact exemplar), grafted
// onto lpbcast's existing message stream.
//
// Threading: like every Membership, GossipMembership is not internally
// synchronised — the simulator's event loop or runtime::NodeRuntime's node
// lock serialises all calls. The binding listener fires inside that
// serialisation; it must not call back into the node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "membership/membership.h"

namespace agb::membership {

/// Liveness of one member as currently believed. Wire-stable values: the
/// codec writes the enum byte as-is.
enum class LivenessState : std::uint8_t {
  kUp = 0,
  kSuspect = 1,
  kDown = 2,
};

/// Where a member can be reached (IPv4 + UDP port, host byte order).
/// port == 0 means "unbound" — sim nodes and in-memory fabrics never bind.
struct EndpointBinding {
  std::uint32_t host = 0;
  std::uint16_t port = 0;

  [[nodiscard]] bool bound() const noexcept { return port != 0; }
  friend bool operator==(const EndpointBinding&,
                         const EndpointBinding&) = default;
};

/// One gossiped membership fact. The (revision, heartbeat, state) triple is
/// the freshness key; the binding rides along and is only meaningful under
/// the revision that announced it.
struct MemberRecord {
  NodeId node = kInvalidNode;
  std::uint64_t revision = 0;
  std::uint64_t heartbeat = 0;
  LivenessState state = LivenessState::kUp;
  EndpointBinding binding;

  friend bool operator==(const MemberRecord&, const MemberRecord&) = default;
};

/// The freshness total order: revision, then heartbeat, then state —
/// states closer to down win ties, so suspicion raised at heartbeat h
/// overrides the "up at h" everyone else holds, and a down tombstone can
/// only be revived by a genuinely newer heartbeat or revision. A total
/// order is what makes the merge commutative: any permutation of the same
/// record sets converges to the same table.
[[nodiscard]] bool fresher_than(const MemberRecord& a, const MemberRecord& b);

/// Exact wire size of one record in the GossipMessage member_records
/// section (gossip/message.cc writes u32 node, varint revision, varint
/// heartbeat, u8 state, u32 host, u16 port). The digest budget is enforced
/// against this, so "bytes on the wire" is what the knob bounds.
[[nodiscard]] std::size_t encoded_record_size(const MemberRecord& record);

struct GossipMembershipParams {
  /// Silence (no fresher record, no direct datagram) before a peer is
  /// suspected, and before a suspect is declared down. Both measured from
  /// the last freshness evidence; down_after must exceed suspect_after
  /// (enforced at construction).
  DurationMs suspect_after = 6'000;
  DurationMs down_after = 12'000;

  /// Byte budget for the per-message record digest. The self record is
  /// always included; the freshest-recently-updated peers fill the rest.
  std::size_t digest_budget_bytes = 256;

  /// Revision this incarnation starts at. A restarted process passes its
  /// previous revision + 1 (or calls on_restart()).
  std::uint64_t initial_revision = 0;
};

/// Lifetime liveness-transition tally for one membership instance. The
/// flap detector for fault-injection runs: a gray failure (node slow but
/// up) must leave `downs` at zero, an asymmetric partition must push
/// `suspicions` above it, and `revivals` counts suspicions retracted by
/// later evidence (datagram in hand or a fresher record).
struct MembershipCounters {
  std::uint64_t suspicions = 0;  // up → suspect promotions (local timeouts)
  std::uint64_t downs = 0;       // suspect → down promotions (local timeouts)
  std::uint64_t revivals = 0;    // suspect/down → up via fresher evidence
};

class GossipMembership final : public Membership {
 public:
  /// Fires when a merge learns a new (or changed) bound endpoint for a
  /// peer — the hook a runtime::DynamicDirectory subscribes to.
  using BindingListener = std::function<void(NodeId, EndpointBinding)>;

  GossipMembership(NodeId self, GossipMembershipParams params, Rng rng);

  // Membership: targets/snapshot/size expose *up* members only, which is
  // exactly what drives suspicion-based bridge re-election through a
  // LocalityView decorator. contains() admits suspects (they are still
  // members, just not gossip-worthy); down members are invisible.
  std::vector<NodeId> targets(std::size_t fanout) override;
  void add(NodeId node) override;
  void remove(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::vector<NodeId> snapshot() const override;

  /// Once per gossip round: advances the local heartbeat and promotes
  /// silent peers (up → suspect at suspect_after, suspect → down at
  /// down_after). The first tick baselines every seed peer's silence clock
  /// to its `now` — a process only counts silence for time it was running,
  /// so a node started against a wall clock far past zero still grants its
  /// seed list the full suspicion grace period.
  void tick(TimeMs now);

  /// The outgoing digest: self record first, then peers freshest-first
  /// (most recently updated), cut off at the byte budget.
  [[nodiscard]] std::vector<MemberRecord> make_digest();

  /// Merges a received digest record-by-record under fresher_than. A
  /// record about *self* that is fresher than our own is a stale-ghost
  /// claim (we restarted, or someone suspects us): we refute it by jumping
  /// our revision past it.
  void apply_digest(const std::vector<MemberRecord>& records, TimeMs now);

  /// Direct liveness evidence: a datagram from `sender` just arrived.
  /// Refreshes its silence clock and clears a local suspicion; a down
  /// tombstone needs record-level freshness (rejoin bumps) to revive.
  void on_heard_from(NodeId sender, TimeMs now);

  /// Restart semantics: bump the revision so this incarnation's records
  /// beat everything the group holds about the previous one, and reset all
  /// local peer verdicts to up (fresh silence clocks) — a rebooted process
  /// trusts its seed list until gossip or timeouts say otherwise. Ties
  /// break towards down, so the reset cannot overwrite the group's fresher
  /// tombstones about genuinely dead peers.
  void on_restart();

  /// Announce (or change) where this node can be reached. Bumps the
  /// revision: a binding is only trusted under the revision that announced
  /// it, so movers always win over their stale address.
  void set_self_binding(EndpointBinding binding);

  void set_binding_listener(BindingListener listener);

  // Introspection (tests, directories, metrics).
  [[nodiscard]] std::optional<LivenessState> state_of(NodeId node) const;
  [[nodiscard]] const MemberRecord& self_record() const noexcept {
    return self_;
  }
  [[nodiscard]] EndpointBinding binding_of(NodeId node) const;
  /// Every record held (peers only, self excluded), sorted by node id —
  /// the object the permutation-convergence property compares.
  [[nodiscard]] std::vector<MemberRecord> table() const;
  /// Liveness transitions this instance has performed (see
  /// MembershipCounters). Chaos invariants read this after a run.
  [[nodiscard]] const MembershipCounters& counters() const noexcept {
    return counters_;
  }

 private:
  struct PeerEntry {
    MemberRecord record;
    TimeMs last_update = 0;  // local receipt time of the freshest evidence
  };

  void merge_record(const MemberRecord& incoming, TimeMs now);
  void refute_self_claim(const MemberRecord& claim);

  NodeId id_;
  GossipMembershipParams params_;
  Rng rng_;
  MemberRecord self_;
  std::unordered_map<NodeId, PeerEntry> peers_;
  TimeMs now_ = 0;  // last time seen by tick/apply_digest/on_heard_from
  bool ticked_ = false;  // first tick baselines seed peers' silence clocks
  BindingListener binding_listener_;
  MembershipCounters counters_;
};

}  // namespace agb::membership
