#include "membership/gossip_membership.h"

#include <algorithm>

namespace agb::membership {

namespace {

/// Rank in the "closer to down" direction; ties in revision and heartbeat
/// are broken towards the terminal state so claims never flap backwards.
int state_rank(LivenessState state) noexcept {
  return static_cast<int>(state);
}

std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

bool fresher_than(const MemberRecord& a, const MemberRecord& b) {
  if (a.revision != b.revision) return a.revision > b.revision;
  if (a.heartbeat != b.heartbeat) return a.heartbeat > b.heartbeat;
  return state_rank(a.state) > state_rank(b.state);
}

std::size_t encoded_record_size(const MemberRecord& record) {
  // u32 node + varint revision + varint heartbeat + u8 state + u32 host +
  // u16 port — must mirror the member_records section in gossip/message.cc.
  return 4 + varint_size(record.revision) + varint_size(record.heartbeat) +
         1 + 4 + 2;
}

GossipMembership::GossipMembership(NodeId self, GossipMembershipParams params,
                                   Rng rng)
    : id_(self), params_(params), rng_(rng) {
  // A suspect must outlive the suspicion threshold before dying, whatever
  // the caller configured.
  params_.suspect_after = std::max<DurationMs>(params_.suspect_after, 1);
  params_.down_after =
      std::max(params_.down_after, params_.suspect_after + 1);
  self_.node = id_;
  self_.revision = params_.initial_revision;
  self_.state = LivenessState::kUp;
}

std::vector<NodeId> GossipMembership::targets(std::size_t fanout) {
  std::vector<NodeId> live = snapshot();
  if (live.empty()) {
    // Total isolation: every peer timed out while we could not be heard
    // (an asymmetric partition mutes our outbound; by the time it heals,
    // our own silence clocks have condemned the whole group). Going quiet
    // now would make the exclusion permanent — nobody gossips to a
    // suspect, so nobody would ever carry our revision-bumped self record
    // back out. Keep probing the suspects instead (or, with only
    // tombstones left, the tombstones): one delivered digest restarts the
    // exchange and the group revives us from its fresher records.
    for (const auto& [node, entry] : peers_) {
      if (entry.record.state == LivenessState::kSuspect) live.push_back(node);
    }
    if (live.empty()) {
      for (const auto& [node, entry] : peers_) live.push_back(node);
    }
    std::sort(live.begin(), live.end());
  }
  if (live.size() <= fanout) return live;
  std::vector<NodeId> out;
  out.reserve(fanout);
  for (std::size_t idx : rng_.sample_indices(live.size(), fanout)) {
    out.push_back(live[idx]);
  }
  return out;
}

void GossipMembership::add(NodeId node) {
  if (node == id_) return;
  auto [it, inserted] = peers_.try_emplace(node);
  if (inserted) {
    it->second.record.node = node;
    it->second.last_update = now_;
    return;
  }
  // Oracle/bootstrap re-add of a known member: revive it locally without
  // touching the gossiped freshness key (we fabricate no heartbeats).
  if (it->second.record.state != LivenessState::kUp) {
    it->second.record.state = LivenessState::kUp;
    it->second.last_update = now_;
  }
}

void GossipMembership::remove(NodeId node) {
  auto it = peers_.find(node);
  if (it == peers_.end()) return;
  // A local down verdict at the current freshness key. Ties in
  // revision/heartbeat resolve towards down, so this verdict propagates —
  // the in-protocol analogue of an lpbcast unsubscription.
  it->second.record.state = LivenessState::kDown;
}

bool GossipMembership::contains(NodeId node) const {
  auto it = peers_.find(node);
  return it != peers_.end() &&
         it->second.record.state != LivenessState::kDown;
}

std::size_t GossipMembership::size() const {
  std::size_t n = 0;
  for (const auto& [node, entry] : peers_) {
    if (entry.record.state == LivenessState::kUp) ++n;
  }
  return n;
}

std::vector<NodeId> GossipMembership::snapshot() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [node, entry] : peers_) {
    if (entry.record.state == LivenessState::kUp) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void GossipMembership::tick(TimeMs now) {
  now_ = std::max(now_, now);
  ++self_.heartbeat;
  if (!ticked_) {
    // First tick: baseline every seed peer's silence clock to "now". A
    // process can't accuse peers of silence for time it wasn't running —
    // without this, a node (re)started against a wall clock far past zero
    // walks its whole seed list up → suspect → down in two ticks, gossips
    // to nobody, and the group deadlocks in mutual tombstones.
    ticked_ = true;
    for (auto& [node, entry] : peers_) entry.last_update = now_;
  }
  for (auto& [node, entry] : peers_) {
    const DurationMs silent = now_ - entry.last_update;
    switch (entry.record.state) {
      case LivenessState::kUp:
        if (silent >= params_.suspect_after) {
          entry.record.state = LivenessState::kSuspect;
          ++counters_.suspicions;
        }
        break;
      case LivenessState::kSuspect:
        if (silent >= params_.down_after) {
          entry.record.state = LivenessState::kDown;
          ++counters_.downs;
        }
        break;
      case LivenessState::kDown:
        break;  // tombstones persist; only fresher records revive them
    }
  }
}

std::vector<MemberRecord> GossipMembership::make_digest() {
  std::vector<MemberRecord> out;
  out.push_back(self_);
  std::size_t spent = encoded_record_size(self_);

  // Freshest-first: most recently refreshed peers carry the news; node id
  // breaks ties so the selection is deterministic.
  std::vector<const PeerEntry*> order;
  order.reserve(peers_.size());
  for (const auto& [node, entry] : peers_) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const PeerEntry* a, const PeerEntry* b) {
              if (a->last_update != b->last_update) {
                return a->last_update > b->last_update;
              }
              return a->record.node < b->record.node;
            });
  for (const PeerEntry* entry : order) {
    const std::size_t cost = encoded_record_size(entry->record);
    if (spent + cost > params_.digest_budget_bytes) break;
    out.push_back(entry->record);
    spent += cost;
  }
  return out;
}

void GossipMembership::apply_digest(const std::vector<MemberRecord>& records,
                                    TimeMs now) {
  now_ = std::max(now_, now);
  for (const MemberRecord& record : records) {
    if (record.node == id_) {
      refute_self_claim(record);
    } else if (record.node != kInvalidNode) {
      merge_record(record, now_);
    }
  }
}

void GossipMembership::merge_record(const MemberRecord& incoming,
                                    TimeMs now) {
  auto [it, inserted] = peers_.try_emplace(incoming.node);
  PeerEntry& entry = it->second;
  if (!inserted && !fresher_than(incoming, entry.record)) return;

  if (!inserted && entry.record.state != LivenessState::kUp &&
      incoming.state == LivenessState::kUp) {
    ++counters_.revivals;  // fresher record retracts a suspicion/tombstone
  }
  const EndpointBinding previous = entry.record.binding;
  entry.record = incoming;
  // An unbound record must not erase a known address: binding knowledge is
  // monotone within a revision, movers re-announce under a bumped one.
  if (!incoming.binding.bound()) entry.record.binding = previous;
  entry.last_update = now;

  if (binding_listener_ && entry.record.binding.bound() &&
      entry.record.binding != previous) {
    binding_listener_(incoming.node, entry.record.binding);
  }
}

void GossipMembership::refute_self_claim(const MemberRecord& claim) {
  if (!fresher_than(claim, self_)) return;
  // The group holds a fresher record about us than our own — a previous
  // incarnation's ghost, or somebody's suspicion outrunning our heartbeat.
  // Jump past it so our next digest re-asserts this incarnation as up.
  self_.revision = std::max(self_.revision, claim.revision) + 1;
  self_.heartbeat = std::max(self_.heartbeat, claim.heartbeat) + 1;
  self_.state = LivenessState::kUp;
}

void GossipMembership::on_heard_from(NodeId sender, TimeMs now) {
  if (sender == id_) return;
  now_ = std::max(now_, now);
  auto [it, inserted] = peers_.try_emplace(sender);
  PeerEntry& entry = it->second;
  if (inserted) entry.record.node = sender;
  entry.last_update = now_;
  // A datagram in hand beats a timeout-based suspicion; a down tombstone
  // stays until the sender's own (revision-bumped) record revives it.
  if (entry.record.state == LivenessState::kSuspect) {
    entry.record.state = LivenessState::kUp;
    ++counters_.revivals;
  }
}

void GossipMembership::on_restart() {
  ++self_.revision;
  self_.state = LivenessState::kUp;
  // A restarted process trusts its seed list again: local suspicions and
  // tombstones accumulated while isolated (we heard nobody, so we declared
  // everybody dead) are wiped, silence clocks restart now. Without this a
  // node down past down_after would come back believing the whole group is
  // gone — empty targets — while the group believes the same of it: mutual
  // silence that no revision bump can break. Verdicts stay at their old
  // freshness keys, so genuinely-down peers are re-learned from gossip
  // (their tombstones are fresher) or re-suspected on timeout.
  for (auto& [node, entry] : peers_) {
    if (entry.record.state != LivenessState::kUp) {
      entry.record.state = LivenessState::kUp;
    }
    entry.last_update = now_;
  }
}

void GossipMembership::set_self_binding(EndpointBinding binding) {
  self_.binding = binding;
  on_restart();
}

void GossipMembership::set_binding_listener(BindingListener listener) {
  binding_listener_ = std::move(listener);
}

std::optional<LivenessState> GossipMembership::state_of(NodeId node) const {
  if (node == id_) return self_.state;
  auto it = peers_.find(node);
  if (it == peers_.end()) return std::nullopt;
  return it->second.record.state;
}

EndpointBinding GossipMembership::binding_of(NodeId node) const {
  if (node == id_) return self_.binding;
  auto it = peers_.find(node);
  return it == peers_.end() ? EndpointBinding{} : it->second.record.binding;
}

std::vector<MemberRecord> GossipMembership::table() const {
  std::vector<MemberRecord> out;
  out.reserve(peers_.size());
  for (const auto& [node, entry] : peers_) out.push_back(entry.record);
  std::sort(out.begin(), out.end(),
            [](const MemberRecord& a, const MemberRecord& b) {
              return a.node < b.node;
            });
  return out;
}

}  // namespace agb::membership
