#include "membership/locality_view.h"

#include <algorithm>
#include <unordered_map>

namespace agb::membership {

LocalityView::LocalityView(NodeId self, LocalityParams params,
                           std::shared_ptr<const ClusterMap> clusters,
                           std::unique_ptr<Membership> inner, Rng rng)
    : self_(self),
      params_(params),
      clusters_(std::move(clusters)),
      inner_(std::move(inner)),
      rng_(rng),
      home_(clusters_->cluster_of(self)) {}

void LocalityView::rebuild_pools() {
  local_pool_.clear();
  bridge_pool_.clear();

  auto peers = inner_->snapshot();
  // The Membership contract leaves snapshot order open; bridge election is
  // "lowest ids per cluster", so pin the order here.
  std::sort(peers.begin(), peers.end());

  std::unordered_map<ClusterId, std::size_t> bridges_taken;
  for (NodeId peer : peers) {
    const ClusterId cluster = clusters_->cluster_of(peer);
    if (cluster == home_) {
      local_pool_.push_back(peer);
      continue;
    }
    // Ascending iteration makes "the first bridges_per_cluster seen" the
    // lowest ids of that cluster.
    if (bridges_taken[cluster] < params_.bridges_per_cluster) {
      ++bridges_taken[cluster];
      bridge_pool_.push_back(peer);
    }
  }
}

std::vector<NodeId> LocalityView::targets(std::size_t fanout) {
  rebuild_pools();

  std::vector<NodeId> out;
  out.reserve(std::min(fanout, local_pool_.size() + bridge_pool_.size()));
  for (std::size_t slot = 0; slot < fanout; ++slot) {
    if (local_pool_.empty() && bridge_pool_.empty()) break;
    bool pick_local;
    if (bridge_pool_.empty()) {
      pick_local = true;
    } else if (local_pool_.empty()) {
      pick_local = false;
    } else {
      pick_local = rng_.bernoulli(params_.p_local);
    }
    // Swap-remove keeps the targets of one round distinct without
    // re-sampling; pools never contain the owner, so neither does out.
    auto& pool = pick_local ? local_pool_ : bridge_pool_;
    const auto idx = static_cast<std::size_t>(rng_.next_below(pool.size()));
    out.push_back(pool[idx]);
    pool[idx] = pool.back();
    pool.pop_back();
  }
  return out;
}

std::vector<NodeId> LocalityView::bridges_of(ClusterId cluster) const {
  std::vector<NodeId> members;
  for (NodeId peer : inner_->snapshot()) {
    if (clusters_->cluster_of(peer) == cluster) members.push_back(peer);
  }
  // The owner is a member of its home cluster too and takes part in its
  // own election (everyone must agree on who bridges each island).
  if (cluster == home_) members.push_back(self_);
  std::sort(members.begin(), members.end());
  if (members.size() > params_.bridges_per_cluster) {
    members.resize(params_.bridges_per_cluster);
  }
  return members;
}

}  // namespace agb::membership
