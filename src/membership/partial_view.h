// lpbcast-style partial view maintenance (Eugster et al., DSN 2001).
//
// Each node keeps three bounded sets: `view` (gossip targets), `subs`
// (recently seen subscriptions to propagate) and `unsubs` (recently seen
// unsubscriptions). Gossip messages piggyback samples of subs/unsubs; on
// reception the view is updated and truncated by *random* replacement, which
// is what gives lpbcast views their uniform-random quality.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "membership/membership.h"

namespace agb::membership {

struct PartialViewParams {
  std::size_t max_view = 12;    // |view| bound (lpbcast's l)
  std::size_t max_subs = 12;    // |subs| bound
  std::size_t max_unsubs = 12;  // |unsubs| bound
};

/// Membership data piggybacked on one gossip message.
struct MembershipDigest {
  std::vector<NodeId> subs;
  std::vector<NodeId> unsubs;
};

class PartialView final : public Membership {
 public:
  PartialView(NodeId self, PartialViewParams params, Rng rng);

  // Membership interface. add() corresponds to observing a subscription;
  // remove() to observing an unsubscription.
  std::vector<NodeId> targets(std::size_t fanout) override;
  void add(NodeId node) override;
  void remove(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::vector<NodeId> snapshot() const override;

  /// Builds the digest to embed in an outgoing gossip message. The sender
  /// always includes itself in subs so that its subscription keeps
  /// circulating (lpbcast rule).
  [[nodiscard]] MembershipDigest make_digest();

  /// Applies the digest from a received gossip message sent by `from`.
  void apply_digest(NodeId from, const MembershipDigest& digest);

  [[nodiscard]] const std::vector<NodeId>& view() const noexcept {
    return view_;
  }

 private:
  void insert_bounded(std::vector<NodeId>& set, NodeId node,
                      std::size_t bound);
  static bool contains_in(const std::vector<NodeId>& set, NodeId node);
  static void erase_from(std::vector<NodeId>& set, NodeId node);

  NodeId self_;
  PartialViewParams params_;
  Rng rng_;
  std::vector<NodeId> view_;
  std::vector<NodeId> subs_;
  std::vector<NodeId> unsubs_;
};

}  // namespace agb::membership
