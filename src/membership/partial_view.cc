#include "membership/partial_view.h"

#include <algorithm>

namespace agb::membership {

PartialView::PartialView(NodeId self, PartialViewParams params, Rng rng)
    : self_(self), params_(params), rng_(rng) {}

bool PartialView::contains_in(const std::vector<NodeId>& set, NodeId node) {
  return std::find(set.begin(), set.end(), node) != set.end();
}

void PartialView::erase_from(std::vector<NodeId>& set, NodeId node) {
  set.erase(std::remove(set.begin(), set.end(), node), set.end());
}

void PartialView::insert_bounded(std::vector<NodeId>& set, NodeId node,
                                 std::size_t bound) {
  if (node == self_ || contains_in(set, node)) return;
  set.push_back(node);
  while (set.size() > bound) {
    // Random replacement keeps the retained sample uniform over what was
    // offered, the property lpbcast's analysis relies on.
    const auto victim = static_cast<std::size_t>(rng_.next_below(set.size()));
    set.erase(set.begin() + static_cast<long>(victim));
  }
}

std::vector<NodeId> PartialView::targets(std::size_t fanout) {
  const auto indices = rng_.sample_indices(view_.size(), fanout);
  std::vector<NodeId> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(view_[idx]);
  return out;
}

void PartialView::add(NodeId node) {
  insert_bounded(view_, node, params_.max_view);
  insert_bounded(subs_, node, params_.max_subs);
}

void PartialView::remove(NodeId node) {
  erase_from(view_, node);
  erase_from(subs_, node);
  insert_bounded(unsubs_, node, params_.max_unsubs);
}

bool PartialView::contains(NodeId node) const {
  return contains_in(view_, node);
}

std::size_t PartialView::size() const { return view_.size(); }

std::vector<NodeId> PartialView::snapshot() const {
  auto sorted = view_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

MembershipDigest PartialView::make_digest() {
  MembershipDigest digest;
  digest.subs = subs_;
  digest.subs.push_back(self_);
  digest.unsubs = unsubs_;
  return digest;
}

void PartialView::apply_digest(NodeId from, const MembershipDigest& digest) {
  // Unsubscriptions first: they must win over stale subscriptions carried in
  // the same message.
  for (NodeId node : digest.unsubs) {
    if (node == self_) continue;
    erase_from(view_, node);
    erase_from(subs_, node);
    insert_bounded(unsubs_, node, params_.max_unsubs);
  }
  for (NodeId node : digest.subs) {
    if (node == self_ || contains_in(unsubs_, node)) continue;
    insert_bounded(view_, node, params_.max_view);
    insert_bounded(subs_, node, params_.max_subs);
  }
  // The sender itself is a live member by construction.
  if (from != self_ && !contains_in(unsubs_, from)) {
    insert_bounded(view_, from, params_.max_view);
  }
}

}  // namespace agb::membership
