// Group membership abstraction used to choose gossip targets.
//
// The paper's experiments use a static 60-member group; lpbcast itself is
// defined over *partial* views. We provide both: FullMembership (a complete
// directory, matching the paper's evaluation setup) and PartialView (the
// lpbcast subs/unsubs view maintenance, so the adaptive mechanism can be run
// over partial knowledge exactly as §5 claims it can).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace agb::membership {

class Membership {
 public:
  virtual ~Membership() = default;

  /// Up to `fanout` distinct gossip targets, never including the owner.
  virtual std::vector<NodeId> targets(std::size_t fanout) = 0;

  /// Records that `node` is (or claims to be) a member.
  virtual void add(NodeId node) = 0;

  /// Records that `node` left the group.
  virtual void remove(NodeId node) = 0;

  [[nodiscard]] virtual bool contains(NodeId node) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Current known members (unordered contract; sorted in practice for
  /// determinism of iteration-driven logic).
  [[nodiscard]] virtual std::vector<NodeId> snapshot() const = 0;
};

}  // namespace agb::membership
