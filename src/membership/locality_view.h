// Locality-aware target selection: a Membership decorator that biases
// gossip towards the owner's own cluster and funnels the cross-cluster
// share through per-cluster bridge nodes (directional gossip, paper §5).
//
// LocalityView wraps any Membership (full directory or lpbcast partial
// view) and re-implements only targets(): each fanout slot picks a
// same-cluster peer with probability p_local, otherwise one of the remote
// clusters' bridges. Bridges are elected deterministically — the lowest
// `bridges_per_cluster` NodeIds currently known per cluster — so every
// node that shares the same membership knowledge agrees on them without
// any coordination, and the election self-heals on churn: when the
// membership layer learns a bridge left, the next-lowest id takes over on
// the very next round. Everything else (add/remove/contains/size/
// snapshot) forwards to the wrapped view, so the lpbcast subs/unsubs
// machinery keeps working underneath.
//
// Threading: LocalityView is not internally synchronised — like every
// Membership it relies on its driver's serialisation. Under the simulator
// that is the single event loop; on the wall-clock path every call
// (targets() on the round thread, add/remove from the failure-detector
// scheduler, digest updates on dispatcher threads) arrives through
// runtime::NodeRuntime, whose node lock serialises them — which is also
// what makes bridge re-election atomic with the membership change that
// triggered it.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "membership/cluster_map.h"
#include "membership/membership.h"

namespace agb::membership {

struct LocalityParams {
  /// Master switch, carried here so one struct travels through configs.
  bool enabled = false;
  /// Probability that a fanout slot stays inside the owner's cluster.
  double p_local = 0.85;
  /// How many bridges (lowest known NodeIds) each remote cluster exposes.
  std::size_t bridges_per_cluster = 1;
};

class LocalityView final : public Membership {
 public:
  /// Wraps `inner`; `clusters` says where every node lives, `self` fixes
  /// the home cluster. `rng` drives the biased selection (and nothing
  /// else), so seeded runs stay deterministic.
  LocalityView(NodeId self, LocalityParams params,
               std::shared_ptr<const ClusterMap> clusters,
               std::unique_ptr<Membership> inner, Rng rng);

  /// Biased selection. Targets are distinct and never the owner; slots
  /// whose preferred pool is empty fall back to the other one (an
  /// all-local island still reaches remote clusters, and a node with no
  /// local peers gossips through bridges only).
  std::vector<NodeId> targets(std::size_t fanout) override;

  void add(NodeId node) override { inner_->add(node); }
  void remove(NodeId node) override { inner_->remove(node); }
  [[nodiscard]] bool contains(NodeId node) const override {
    return inner_->contains(node);
  }
  [[nodiscard]] std::size_t size() const override { return inner_->size(); }
  [[nodiscard]] std::vector<NodeId> snapshot() const override {
    return inner_->snapshot();
  }

  /// The decorated membership — e.g. for digest exchange when it is a
  /// PartialView (gossip::LpbcastNode looks through the decorator).
  [[nodiscard]] Membership& inner() noexcept { return *inner_; }

  [[nodiscard]] ClusterId home_cluster() const noexcept { return home_; }
  [[nodiscard]] const LocalityParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] double p_local() const noexcept { return params_.p_local; }

  /// Control-plane actuator (adaptive::ControlPlane): retunes the
  /// local-vs-bridge bias live. Takes effect on the next targets() call and
  /// changes no RNG draw structure — each fanout slot still costs exactly
  /// one bernoulli (when both pools are non-empty) plus one index draw, so
  /// seeded runs with a constant p_local are byte-identical to before this
  /// setter existed.
  void set_p_local(double p) noexcept {
    params_.p_local = std::clamp(p, 0.0, 1.0);
  }

  /// Where every node lives — lets the control plane classify an event's
  /// origin as home or remote without holding its own copy of the map.
  [[nodiscard]] const ClusterMap& clusters() const noexcept {
    return *clusters_;
  }

  /// The current bridges of `cluster`: the lowest known NodeIds there
  /// (the owner itself included for its home cluster). Recomputed from
  /// the live membership, so it reflects churn immediately.
  [[nodiscard]] std::vector<NodeId> bridges_of(ClusterId cluster) const;

 private:
  /// Splits the current membership snapshot into the same-cluster pool and
  /// the remote-bridge pool. Rebuilt per call: the wrapped view can change
  /// underneath us (partial-view digests bypass add/remove), and snapshots
  /// are group-sized, so recomputing is cheaper than staying correct with
  /// invalidation hooks.
  void rebuild_pools();

  NodeId self_;
  LocalityParams params_;
  std::shared_ptr<const ClusterMap> clusters_;
  std::unique_ptr<Membership> inner_;
  Rng rng_;
  ClusterId home_;

  // Scratch reused across targets() calls to avoid reallocation.
  std::vector<NodeId> local_pool_;
  std::vector<NodeId> bridge_pool_;
};

}  // namespace agb::membership
