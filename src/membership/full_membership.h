// Complete group directory with uniform random target selection.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "membership/membership.h"

namespace agb::membership {

class FullMembership final : public Membership {
 public:
  /// `self` is excluded from target selection. `rng` drives sampling.
  FullMembership(NodeId self, Rng rng);

  std::vector<NodeId> targets(std::size_t fanout) override;
  void add(NodeId node) override;
  void remove(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::vector<NodeId> snapshot() const override;

 private:
  NodeId self_;
  Rng rng_;
  std::vector<NodeId> members_;  // sorted, excludes self_
};

}  // namespace agb::membership
