#include "runtime/dynamic_directory.h"

#include <utility>

namespace agb::runtime {

DynamicDirectory::DynamicDirectory(
    std::shared_ptr<const EndpointDirectory> fallback)
    : fallback_(std::move(fallback)) {}

void DynamicDirectory::update(NodeId node, UdpEndpoint endpoint) {
  std::lock_guard lock(mutex_);
  overrides_[node] = endpoint;
}

void DynamicDirectory::forget(NodeId node) {
  std::lock_guard lock(mutex_);
  overrides_.erase(node);
}

bool DynamicDirectory::resolve(NodeId node, UdpEndpoint* out) const {
  {
    std::lock_guard lock(mutex_);
    auto it = overrides_.find(node);
    if (it != overrides_.end()) {
      *out = it->second;
      return true;
    }
  }
  return fallback_ != nullptr && fallback_->resolve(node, out);
}

std::size_t DynamicDirectory::overrides() const {
  std::lock_guard lock(mutex_);
  return overrides_.size();
}

void wire_membership_bindings(membership::GossipMembership& source,
                              std::shared_ptr<DynamicDirectory> directory) {
  source.set_binding_listener(
      [directory = std::move(directory)](NodeId node,
                                         membership::EndpointBinding b) {
        directory->update(node, UdpEndpoint{b.host, b.port});
      });
}

}  // namespace agb::runtime
