#include "runtime/inmemory_fabric.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace agb::runtime {

namespace {

/// Distinct per-shard RNG streams from one user seed (splitmix64 step).
std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard) {
  return seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
}

/// Lifts the legacy integer delay fields into the shared sampler form:
/// min == max collapses to a fixed model, otherwise a uniform range.
sim::LatencyModel range_model(DurationMs lo, DurationMs hi) {
  const auto a = static_cast<double>(lo);
  const auto b = static_cast<double>(hi);
  return lo >= hi ? sim::LatencyModel::fixed(a)
                  : sim::LatencyModel::uniform(a, b);
}

sim::DelaySampler resolve_sampler(const InMemoryFabric::Params& params) {
  if (params.sampler) return *params.sampler;
  return sim::DelaySampler(
      range_model(params.min_delay, params.max_delay), params.clusters,
      range_model(params.wan_min_delay, params.wan_max_delay));
}

}  // namespace

InMemoryFabric::InMemoryFabric(Params params, std::uint64_t seed)
    : params_(params),
      sampler_(resolve_sampler(params)),
      zero_delay_(sampler_.always_zero()),
      has_loss_(params.loss_probability > 0.0 || params.burst_loss),
      epoch_(std::chrono::steady_clock::now()) {
  // Round the shard count up to a power of two so node -> shard/slot is a
  // mask and a shift instead of a division.
  std::size_t count = 1;
  while (count < params_.shards) count <<= 1;
  shard_mask_ = count - 1;
  shard_shift_ = 0;
  while ((std::size_t{1} << shard_shift_) < count) ++shard_shift_;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng = Rng(shard_seed(seed, i));
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->dispatcher = std::thread([this, raw] { dispatch_loop(*raw); });
  }
}

InMemoryFabric::~InMemoryFabric() { shutdown(); }

TimeMs InMemoryFabric::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void InMemoryFabric::attach(NodeId node, DatagramHandler handler) {
  // Stored as a burst handler that replays per datagram: one internal
  // delivery path, per-datagram semantics preserved for classic callers.
  attach_batch(node, [handler = std::move(handler)](const Datagram* batch,
                                                    std::size_t count,
                                                    TimeMs now) {
    for (std::size_t i = 0; i < count; ++i) handler(batch[i], now);
  });
}

void InMemoryFabric::attach_batch(NodeId node, BatchHandler handler) {
  Shard& shard = shard_of(node);
  const std::size_t slot = slot_of(node);
  std::lock_guard lock(shard.mutex);
  if (shard.handlers.size() <= slot) shard.handlers.resize(slot + 1);
  shard.handlers[slot] = std::move(handler);
}

void InMemoryFabric::detach(NodeId node) {
  Shard& shard = shard_of(node);
  const std::size_t slot = slot_of(node);
  std::unique_lock lock(shard.mutex);
  if (slot < shard.handlers.size()) shard.handlers[slot] = nullptr;
  // Wait out an in-flight delivery to this node: once detach returns, the
  // caller may free whatever state the handler captured. A handler that
  // detaches its own node must not wait for itself.
  if (std::this_thread::get_id() != shard.dispatcher_id) {
    shard.idle_cv.wait(lock, [&] { return shard.in_flight != node; });
  }
}

bool InMemoryFabric::loss_drop(Shard& shard) {
  if (!params_.burst_loss) {
    return shard.rng.bernoulli(params_.loss_probability);
  }
  // Advance the shard's Gilbert-Elliott chain once per datagram, then
  // sample the state-conditional drop probability (sim::SimNetwork's rule,
  // one chain per shard instead of one global chain).
  if (shard.burst_bad) {
    if (shard.rng.bernoulli(params_.loss_p_bg)) shard.burst_bad = false;
  } else {
    if (shard.rng.bernoulli(params_.loss_p_gb)) shard.burst_bad = true;
  }
  return shard.rng.bernoulli(shard.burst_bad ? params_.loss_p_bad
                                             : params_.loss_p_good);
}

bool InMemoryFabric::is_down(NodeId node) const {
  std::lock_guard lock(down_mutex_);
  return down_.contains(node);
}

void InMemoryFabric::set_node_up(NodeId node, bool up) {
  std::lock_guard lock(down_mutex_);
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
  down_count_.store(down_.size(), std::memory_order_release);
}

bool InMemoryFabric::node_up(NodeId node) const {
  if (down_count_.load(std::memory_order_acquire) == 0) return true;
  return !is_down(node);
}

void InMemoryFabric::send_batch(Multicast batch) {
  const std::size_t count = shards_.size();
  // The intra/cross split mirrors sim::NetworkStats.sent: counted per
  // addressed target, before any drop, so the WAN-traffic share reflects
  // what the sender put on the wire.
  if (sampler_.clusters() > 1) {
    std::size_t cross = 0;
    for (NodeId to : batch.targets) {
      if (sampler_.cross_cluster(batch.from, to)) ++cross;
    }
    sent_cross_cluster_.fetch_add(cross, std::memory_order_relaxed);
    sent_intra_cluster_.fetch_add(batch.targets.size() - cross,
                                  std::memory_order_relaxed);
  } else {
    sent_intra_cluster_.fetch_add(batch.targets.size(),
                                  std::memory_order_relaxed);
  }

  // Liveness filter (only when anyone is down at all): a down sender's
  // whole fan-out is suppressed; down receivers are filtered per target.
  // The snapshot is sorted (std::set order), so the per-target probe is a
  // binary search without re-taking the mutex.
  thread_local std::vector<NodeId> down_snapshot;
  down_snapshot.clear();
  if (down_count_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(down_mutex_);
    if (down_.contains(batch.from)) {
      dropped_down_.fetch_add(batch.targets.size(),
                              std::memory_order_relaxed);
      return;
    }
    down_snapshot.assign(down_.begin(), down_.end());
  }
  const auto target_down = [&](NodeId to) {
    return !down_snapshot.empty() &&
           std::binary_search(down_snapshot.begin(), down_snapshot.end(), to);
  };

  // Fault-plane pre-pass, outside any shard lock: peel off targets whose
  // datagram cannot ride the shared fast path (mutated payload, duplicate
  // copies, reorder delay) and enqueue them separately below. Clean runs
  // (null plane) skip this entirely — no extra draws, no copies.
  struct SpecialSend {
    NodeId to;
    DurationMs extra_delay;
    SharedBytes payload;
  };
  std::vector<SpecialSend> specials;
  if (fault_plane_) {
    const TimeMs stamp = now();
    std::size_t kept = 0;
    for (NodeId to : batch.targets) {
      const fault::FaultAction action =
          fault_plane_->sample(batch.from, to, stamp);
      if (action.drop) {
        dropped_chaos_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (action.special()) {
        SharedBytes payload = (action.corrupt || action.truncate)
                                  ? fault_plane_->mutate(batch.payload, action)
                                  : batch.payload;
        for (int copy = 0; copy <= action.duplicates; ++copy) {
          specials.push_back(SpecialSend{to, action.extra_delay, payload});
        }
        continue;
      }
      batch.targets[kept++] = to;
    }
    batch.targets.resize(kept);
  }

  // Split the fan-out per shard in ONE pass over the targets, outside any
  // lock. The scratch sublists are thread-local so a steady-state sender
  // allocates nothing here.
  thread_local std::vector<std::vector<NodeId>> scratch;
  if (count > 1) {
    if (scratch.size() < count) scratch.resize(count);
    for (std::size_t i = 0; i < count; ++i) scratch[i].clear();
    for (NodeId to : batch.targets) {
      if (target_down(to)) {
        dropped_down_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      scratch[static_cast<std::size_t>(to) & shard_mask_].push_back(to);
    }
  } else if (!down_snapshot.empty()) {
    std::size_t kept = 0;
    for (NodeId to : batch.targets) {
      if (target_down(to)) {
        dropped_down_.fetch_add(1, std::memory_order_relaxed);
      } else {
        batch.targets[kept++] = to;
      }
    }
    batch.targets.resize(kept);
  }
  for (std::size_t i = 0; i < count; ++i) {
    Shard& shard = *shards_[i];
    // This shard's share of the fan-out (owned: the queue entry keeps it).
    std::vector<NodeId> sub = count == 1 ? std::move(batch.targets)
                                         : std::vector<NodeId>(scratch[i]);
    if (sub.empty()) continue;

    bool queued = false;
    bool notify = false;
    {
      std::lock_guard lock(shard.mutex);
      send_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (shard.stopping) continue;
      if (has_loss_) {
        std::size_t kept = 0;
        for (NodeId to : sub) {
          if (loss_drop(shard)) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
          } else {
            sub[kept++] = to;
          }
        }
        sub.resize(kept);
      }
      if (!sub.empty()) {
        if (zero_delay_) {
          // Due immediately: ONE queue entry and one payload refcount
          // bump for this whole shard's share, expanded at dispatch.
          shard.ready_count += sub.size();
          shard.ready.push_back(
              ReadyBatch{batch.from, batch.payload, std::move(sub)});
        } else {
          const TimeMs base = now();
          for (NodeId to : sub) {
            // Shared latency selection (per-link override > cluster rule >
            // default), sampled from this shard's Rng — the wall-clock twin
            // of SimNetwork's selection, including normal distributions and
            // pinned per-link models.
            const DurationMs delay =
                sampler_.sample(batch.from, to, shard.rng);
            // Each entry aliases the batch payload: a refcount bump per
            // target. Equal due times keep insertion order (multimap),
            // preserving per-receiver FIFO.
            shard.delayed.emplace(base + delay,
                                  Datagram{batch.from, to, batch.payload});
          }
        }
        queued = true;
        if (shard.depth() > shard.max_depth) shard.max_depth = shard.depth();
      }
      // Wake the dispatcher only if it is actually asleep — when it is
      // mid-drain it re-checks the queues before ever waiting, and the
      // skipped futex syscall is most of a zero-delay send's cost.
      notify = queued && shard.waiting;
    }
    if (notify) shard.cv.notify_one();  // one wakeup per touched shard
  }

  // Fault-plane specials: each rides the delay queue as its own entry (the
  // delayed path is live even on a zero-delay fabric — the dispatcher
  // drains both queues), with the sampled link delay plus any reorder
  // delay, carrying its own (possibly mutated) payload.
  for (SpecialSend& special : specials) {
    if (target_down(special.to)) {
      dropped_down_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Shard& shard = shard_of(special.to);
    bool notify = false;
    {
      std::lock_guard lock(shard.mutex);
      send_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
      if (shard.stopping) continue;
      if (has_loss_ && loss_drop(shard)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const DurationMs delay =
          zero_delay_ ? 0 : sampler_.sample(batch.from, special.to, shard.rng);
      shard.delayed.emplace(
          now() + delay + special.extra_delay,
          Datagram{batch.from, special.to, std::move(special.payload)});
      if (shard.depth() > shard.max_depth) shard.max_depth = shard.depth();
      notify = shard.waiting;
    }
    if (notify) shard.cv.notify_one();
  }
}

std::size_t InMemoryFabric::max_queue_depth(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);  // throws for shard >= shard_count()
  std::lock_guard lock(s.mutex);
  return s.max_depth;
}

std::size_t InMemoryFabric::max_queue_depth() const {
  std::size_t depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    depth = std::max(depth, max_queue_depth(i));
  }
  return depth;
}

void InMemoryFabric::shutdown() {
  const auto self = std::this_thread::get_id();
  // A handler may call shutdown() from its own dispatcher thread (e.g.
  // reacting to a poison-pill datagram); that thread cannot join itself —
  // the destructor, running on another thread, performs that join later.
  std::vector<bool> self_is_dispatcher(shards_.size(), false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    {
      std::lock_guard lock(shard.mutex);
      shard.stopping = true;
      // Discard everything still queued: after shutdown() no handler runs
      // again, so a caller may tear down handler state right away.
      dropped_.fetch_add(shard.depth(), std::memory_order_relaxed);
      shard.delayed.clear();
      shard.ready.clear();
      shard.ready_count = 0;
      self_is_dispatcher[i] = shard.dispatcher_id == self;
    }
    shard.cv.notify_all();
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (self_is_dispatcher[i]) continue;
    Shard& shard = *shards_[i];
    // Join exactly once even when shutdown() races with itself (e.g. an
    // explicit call concurrent with the destructor).
    std::call_once(shard.join_once, [&shard] {
      if (shard.dispatcher.joinable()) shard.dispatcher.join();
    });
  }
}

void InMemoryFabric::dispatch_loop(Shard& shard) {
  const std::size_t max_burst =
      params_.max_burst > 0 ? params_.max_burst : 1;
  // Caps the datagrams drained (and so the lock hold) per dispatch cycle;
  // a deeper backlog is simply drained over several cycles.
  const std::size_t drain_cap = std::max<std::size_t>(1024, max_burst);
  std::unique_lock lock(shard.mutex);
  shard.dispatcher_id = std::this_thread::get_id();
  // Down-node snapshot for the current drain cycle (sorted: std::set
  // order), refreshed once per cycle below — so the per-datagram liveness
  // probe is a binary search, never a global mutex, and dispatchers don't
  // serialise on down_mutex_ during churn windows.
  std::vector<NodeId> down_now;
  auto bucket_push = [&](Datagram&& datagram) {
    // Sorts a drained datagram into its receiver's bucket — or drops it on
    // the floor right here when the receiver is unknown or detached.
    const std::size_t slot = slot_of(datagram.to);
    if (slot >= shard.handlers.size() || !shard.handlers[slot]) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Receiver crashed while the datagram was in flight: re-check at
    // delivery time, as the simulator does (granularity: one drain cycle).
    if (!down_now.empty() &&
        std::binary_search(down_now.begin(), down_now.end(), datagram.to)) {
      dropped_down_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<Datagram>& bucket = shard.buckets[slot];
    if (bucket.empty()) shard.active.push_back(slot);
    bucket.push_back(std::move(datagram));
  };
  while (true) {
    if (shard.stopping) return;
    if (shard.depth() == 0) {
      shard.waiting = true;
      shard.cv.wait(lock, [&] { return shard.stopping || shard.depth() > 0; });
      shard.waiting = false;
      continue;
    }
    const TimeMs current = now();
    if (shard.ready.empty()) {
      const TimeMs due = shard.delayed.begin()->first;
      if (due > current) {
        shard.waiting = true;
        shard.cv.wait_for(lock, std::chrono::milliseconds(due - current));
        shard.waiting = false;
        continue;
      }
    }
    // Refresh the liveness snapshot for this drain cycle: one mutex
    // acquisition per cycle (and none at all while nothing is down).
    down_now.clear();
    if (down_count_.load(std::memory_order_acquire) > 0) {
      std::lock_guard down_lock(down_mutex_);
      down_now.assign(down_.begin(), down_.end());
    }
    // Drain every currently-due entry in one pass (O(due), not O(queue)
    // per delivery) and group per receiver. Entries land in their
    // receiver's bucket in queue order, so per-receiver FIFO — including
    // among equal due times — is intact.
    if (shard.buckets.size() < shard.handlers.size()) {
      shard.buckets.resize(shard.handlers.size());
    }
    std::size_t expanded = 0;
    while (!shard.ready.empty() && expanded < drain_cap) {
      ReadyBatch batch = std::move(shard.ready.front());
      shard.ready.pop_front();
      expanded += batch.targets.size();
      shard.ready_count -= batch.targets.size();
      for (NodeId to : batch.targets) {
        bucket_push(Datagram{batch.from, to, batch.payload});
      }
    }
    while (!shard.delayed.empty() &&
           shard.delayed.begin()->first <= current &&
           expanded < drain_cap) {
      ++expanded;
      bucket_push(std::move(shard.delayed.begin()->second));
      shard.delayed.erase(shard.delayed.begin());
    }
    // One handler call (and one lock cycle) per receiver burst, not per
    // datagram. The handler slot is re-read per chunk under the lock: a
    // concurrent detach() between chunks must stop later deliveries, and
    // shutdown() must stop them all.
    for (const std::size_t slot : shard.active) {
      std::vector<Datagram>& burst = shard.buckets[slot];
      for (std::size_t offset = 0; offset < burst.size();
           offset += max_burst) {
        if (shard.stopping || !shard.handlers[slot]) {
          dropped_.fetch_add(burst.size() - offset,
                             std::memory_order_relaxed);
          break;
        }
        BatchHandler handler = shard.handlers[slot];  // copy: may detach
        const std::size_t count =
            std::min(max_burst, burst.size() - offset);
        delivered_.fetch_add(count, std::memory_order_relaxed);
        shard.in_flight = burst[offset].to;
        lock.unlock();
        handler(burst.data() + offset, count, now());
        lock.lock();
        shard.in_flight = kInvalidNode;
        shard.idle_cv.notify_all();
      }
      burst.clear();
    }
    shard.active.clear();
  }
}

}  // namespace agb::runtime
