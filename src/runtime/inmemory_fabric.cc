#include "runtime/inmemory_fabric.h"

#include <chrono>

namespace agb::runtime {

InMemoryFabric::InMemoryFabric(Params params, std::uint64_t seed)
    : params_(params),
      epoch_(std::chrono::steady_clock::now()),
      rng_(seed),
      dispatcher_([this] { dispatch_loop(); }),
      dispatcher_id_(dispatcher_.get_id()) {}

InMemoryFabric::~InMemoryFabric() { shutdown(); }

TimeMs InMemoryFabric::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void InMemoryFabric::attach(NodeId node, DatagramHandler handler) {
  std::lock_guard lock(mutex_);
  handlers_[node] = std::move(handler);
}

void InMemoryFabric::detach(NodeId node) {
  std::unique_lock lock(mutex_);
  handlers_.erase(node);
  // Wait out an in-flight delivery to this node: once detach returns, the
  // caller may free whatever state the handler captured. A handler that
  // detaches its own node must not wait for itself.
  if (std::this_thread::get_id() != dispatcher_id_) {
    idle_cv_.wait(lock, [&] { return in_flight_ != node; });
  }
}

void InMemoryFabric::send_batch(Multicast batch) {
  std::lock_guard lock(mutex_);
  ++send_lock_acquisitions_;
  if (stopping_) return;
  const TimeMs base = now();
  bool queued = false;
  for (NodeId to : batch.targets) {
    if (rng_.bernoulli(params_.loss_probability)) {
      ++dropped_;
      continue;
    }
    const DurationMs spread = params_.max_delay - params_.min_delay;
    const DurationMs delay =
        params_.min_delay +
        (spread > 0
             ? static_cast<DurationMs>(
                   rng_.next_below(static_cast<std::uint64_t>(spread) + 1))
             : 0);
    // Each queue entry aliases the batch payload: a refcount bump per
    // target, one heap buffer for the whole fan-out.
    queue_.emplace(base + delay, Datagram{batch.from, to, batch.payload});
    queued = true;
  }
  if (queued) cv_.notify_one();  // one wakeup for the whole batch
}

std::uint64_t InMemoryFabric::delivered() const {
  std::lock_guard lock(mutex_);
  return delivered_;
}

std::uint64_t InMemoryFabric::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t InMemoryFabric::send_lock_acquisitions() const {
  std::lock_guard lock(mutex_);
  return send_lock_acquisitions_;
}

void InMemoryFabric::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    // Discard everything still queued: after shutdown() no handler runs
    // again, so a caller may tear down handler state right away.
    dropped_ += queue_.size();
    queue_.clear();
  }
  cv_.notify_all();
  // A handler may call shutdown() from the dispatcher thread itself (e.g.
  // reacting to a poison-pill datagram); it cannot join itself — the
  // destructor, running on another thread, performs the join later.
  if (std::this_thread::get_id() == dispatcher_id_) return;
  // Join exactly once even when shutdown() races with itself (e.g. an
  // explicit call concurrent with the destructor).
  std::call_once(join_once_, [this] {
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

void InMemoryFabric::dispatch_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const TimeMs due = queue_.begin()->first;
    const TimeMs current = now();
    if (due > current) {
      cv_.wait_for(lock, std::chrono::milliseconds(due - current));
      continue;
    }
    Datagram datagram = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    auto it = handlers_.find(datagram.to);
    if (it == handlers_.end()) {
      ++dropped_;  // detached (or never attached): discard silently
      continue;
    }
    DatagramHandler handler = it->second;  // copy: handler may detach
    ++delivered_;
    in_flight_ = datagram.to;
    lock.unlock();
    handler(datagram, now());
    lock.lock();
    in_flight_ = kInvalidNode;
    idle_cv_.notify_all();
  }
}

}  // namespace agb::runtime
