#include "runtime/inmemory_fabric.h"

#include <chrono>

namespace agb::runtime {

InMemoryFabric::InMemoryFabric(Params params, std::uint64_t seed)
    : params_(params),
      epoch_(std::chrono::steady_clock::now()),
      rng_(seed),
      dispatcher_([this] { dispatch_loop(); }) {}

InMemoryFabric::~InMemoryFabric() { shutdown(); }

TimeMs InMemoryFabric::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void InMemoryFabric::attach(NodeId node, DatagramHandler handler) {
  std::lock_guard lock(mutex_);
  handlers_[node] = std::move(handler);
}

void InMemoryFabric::detach(NodeId node) {
  std::lock_guard lock(mutex_);
  handlers_.erase(node);
}

void InMemoryFabric::send(Datagram datagram) {
  std::lock_guard lock(mutex_);
  if (stopping_) return;
  if (rng_.bernoulli(params_.loss_probability)) {
    ++dropped_;
    return;
  }
  const DurationMs spread = params_.max_delay - params_.min_delay;
  const DurationMs delay =
      params_.min_delay +
      (spread > 0
           ? static_cast<DurationMs>(
                 rng_.next_below(static_cast<std::uint64_t>(spread) + 1))
           : 0);
  queue_.emplace(now() + delay, std::move(datagram));
  cv_.notify_one();
}

std::uint64_t InMemoryFabric::delivered() const {
  std::lock_guard lock(mutex_);
  return delivered_;
}

std::uint64_t InMemoryFabric::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void InMemoryFabric::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Already shut down; just make sure the thread is joined.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void InMemoryFabric::dispatch_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const TimeMs due = queue_.begin()->first;
    const TimeMs current = now();
    if (due > current) {
      cv_.wait_for(lock, std::chrono::milliseconds(due - current));
      continue;
    }
    Datagram datagram = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    auto it = handlers_.find(datagram.to);
    if (it == handlers_.end()) {
      ++dropped_;
      continue;
    }
    DatagramHandler handler = it->second;  // copy: handler may detach
    ++delivered_;
    lock.unlock();
    handler(datagram, now());
    lock.lock();
  }
}

}  // namespace agb::runtime
