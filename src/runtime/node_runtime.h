// Wall-clock driver for one protocol node over a real transport.
//
// NodeRuntime owns a gossip::LpbcastNode (baseline or adaptive), runs its
// gossip rounds on a dedicated thread, decodes incoming datagrams from the
// transport, and exposes a thread-safe broadcast entry point. It is the
// runtime counterpart of the simulation harness in src/core: same state
// machines, same codec, real time and threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "adaptive/adaptive_node.h"
#include "common/datagram.h"
#include "fault/fault_plane.h"
#include "gossip/lpbcast_node.h"

namespace agb::runtime {

class NodeRuntime {
 public:
  using Clock = std::function<TimeMs()>;
  using DeliverFn = gossip::LpbcastNode::DeliverFn;

  /// Takes ownership of `node`. `clock` must be monotone and shared by all
  /// runtimes on the fabric (e.g. InMemoryFabric::now). The runtime attaches
  /// itself to `network` under the node's id.
  NodeRuntime(std::unique_ptr<gossip::LpbcastNode> node,
              DatagramNetwork& network, Clock clock);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Must be called before start(); fires on the round/receive threads.
  void set_deliver_handler(DeliverFn fn);

  /// Starts the round thread.
  void start();

  /// Stops the round thread and detaches from the network.
  void stop();

  /// Baseline broadcast (always admitted). Thread-safe.
  EventId broadcast(gossip::Payload payload);

  /// Adaptive, token-gated broadcast. Returns false when the node is not
  /// adaptive-capable or out of tokens. Thread-safe.
  bool try_broadcast(gossip::Payload payload, EventId* out_id = nullptr);

  /// Blocking-BROADCAST semantics, the wall-clock twin of the simulator's
  /// sender path: an adaptive node out of tokens *queues* the payload (up
  /// to the pending cap) instead of refusing it, and the round thread
  /// retries the queue front as the token bucket refills (every
  /// min(gossip_period, 100 ms), matching the sim's retry timer). Returns
  /// false only when the pending queue is full — the same condition under
  /// which the simulator refuses a broadcast. Non-adaptive nodes admit
  /// immediately. Thread-safe.
  bool enqueue_broadcast(gossip::Payload payload);
  bool enqueue_broadcast_on_stream(gossip::Payload payload,
                                   std::uint32_t stream, bool supersedes);

  /// Pending-queue bound for enqueue_broadcast (the simulator's
  /// ScenarioParams::pending_cap twin). Call before start().
  void set_pending_cap(std::size_t cap);

  /// Gray-failure injection (non-owning; may be null): stall rules sleep
  /// the receive path before each burst, making this node slow-but-up —
  /// its round thread keeps gossiping, so membership must not flap. Call
  /// before start().
  void set_fault_plane(fault::FaultPlane* plane) noexcept {
    fault_plane_ = plane;
  }

  /// Malformed datagrams dropped at decode (std::monostate from
  /// decode_any). Zero in clean runs; rises under chaos corruption.
  [[nodiscard]] std::uint64_t decode_drops() const {
    return decode_drops_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] NodeId id() const { return node_->id(); }
  [[nodiscard]] bool adaptive() const { return adaptive_ != nullptr; }

  /// Snapshot accessors (lock internally).
  [[nodiscard]] gossip::NodeCounters counters() const;
  [[nodiscard]] double allowed_rate() const;
  [[nodiscard]] std::uint32_t min_buff() const;
  [[nodiscard]] double avg_age() const;

  /// Back-pressure introspection: current queue depth, its lifetime
  /// high-water mark, and the per-retry-tick depth samples (for depth
  /// percentiles in benches).
  [[nodiscard]] std::size_t pending_depth() const;
  [[nodiscard]] std::size_t max_pending_depth() const;
  [[nodiscard]] std::vector<std::size_t> pending_depth_samples() const;

  /// Control-plane actuator snapshots: the LocalityView's live p_local
  /// (-1 without locality / without an adaptive node) and the fanout the
  /// next round will use.
  [[nodiscard]] double p_local() const;
  [[nodiscard]] std::size_t effective_fanout() const;

  /// Runtime equivalent of the dynamic-resources experiment.
  void set_capacity(std::size_t max_events);

  /// Membership maintenance from outside the protocol: the wall-clock
  /// failure-detector path (core::WallclockScenario's scheduler thread)
  /// tells survivors about crashes/recoveries here, the same role
  /// FailureEvent + failure_detector plays under the simulator. Serialised
  /// with the round/receive paths by the node lock, so a LocalityView's
  /// bridge re-election sees the update atomically.
  void add_member(NodeId node);
  void remove_member(NodeId node);
  [[nodiscard]] std::size_t membership_size() const;

  /// Restart hook for nodes running membership::GossipMembership: bumps
  /// the node's own revision (rejoin semantics — its records beat every
  /// stale claim the group still holds), and with `migrate_binding` also
  /// rotates its advertised endpoint port, modelling a host move. No-op
  /// for oracle-driven membership. Serialised by the node lock.
  void on_recover(bool migrate_binding);

  /// Liveness verdict the node's gossip membership currently holds for
  /// `peer` (nullopt: unknown peer, or no gossip membership at all).
  [[nodiscard]] std::optional<membership::LivenessState> peer_state(
      NodeId peer) const;

  /// The node's own gossip-membership layer, or nullptr. Only safe to
  /// touch before start() (listener wiring) or after stop() (assertions):
  /// in between, the round and dispatcher threads own it via the lock.
  [[nodiscard]] membership::GossipMembership* gossip_membership();

 private:
  void round_loop();
  void on_datagram_batch(const Datagram* batch, std::size_t count,
                         TimeMs now);
  /// Admits queued broadcasts while tokens last, then samples the depth.
  /// Caller holds mutex_.
  void drain_pending_locked();

  std::unique_ptr<gossip::LpbcastNode> node_;
  adaptive::AdaptiveLpbcastNode* adaptive_;  // non-owning downcast
  DatagramNetwork& network_;
  Clock clock_;
  fault::FaultPlane* fault_plane_ = nullptr;
  std::atomic<std::uint64_t> decode_drops_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread round_thread_;

  /// Broadcasts waiting for tokens (blocking-BROADCAST back-pressure).
  struct PendingBroadcast {
    gossip::Payload payload;
    std::uint32_t stream = 0;
    bool supersedes = false;
  };
  std::deque<PendingBroadcast> pending_;
  std::size_t pending_cap_ = 64;
  std::size_t max_pending_depth_ = 0;
  std::vector<std::size_t> depth_samples_;
};

}  // namespace agb::runtime
