// NodeId → UDP endpoint resolution for runtime::UdpTransport.
//
// The paper validated its protocol on 60 physical workstations; our UDP
// transport stays host-agnostic by resolving every gossip target through
// this directory instead of hard-coding an address scheme.
// LoopbackDirectory preserves the classic single-host 127.0.0.1:(base+id)
// layout; StaticDirectory carries an explicit NodeId → host:port table,
// built in code or loaded from a config file, for multi-host deployments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "membership/cluster_map.h"

namespace agb::runtime {

/// An IPv4/UDP endpoint, both fields in host byte order.
struct UdpEndpoint {
  std::uint32_t ipv4 = 0;  // 127.0.0.1 == 0x7f000001
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) = default;
};

/// Maps NodeId → UdpEndpoint. Resolution sits on the transport's send path,
/// so implementations must be non-blocking (no DNS) and safe to call from
/// several threads concurrently once constructed.
class EndpointDirectory {
 public:
  virtual ~EndpointDirectory() = default;

  /// Returns false (leaving *out untouched) for unknown nodes.
  [[nodiscard]] virtual bool resolve(NodeId node, UdpEndpoint* out) const = 0;
};

/// The laptop-scale scheme: node i lives at 127.0.0.1:(base_port + i).
class LoopbackDirectory final : public EndpointDirectory {
 public:
  explicit LoopbackDirectory(std::uint16_t base_port)
      : base_port_(base_port) {}

  [[nodiscard]] bool resolve(NodeId node, UdpEndpoint* out) const override;

 private:
  std::uint16_t base_port_;
};

/// An explicit NodeId → endpoint table. Hosts are IPv4 dotted quads —
/// resolution must never block, so name lookup belongs to whoever builds
/// the table.
class StaticDirectory final : public EndpointDirectory {
 public:
  StaticDirectory() = default;

  void add(NodeId node, UdpEndpoint endpoint);

  /// Adds one "a.b.c.d:port" entry; returns false on malformed input.
  bool add_spec(NodeId node, const std::string& spec);

  /// Loads "node_id a.b.c.d:port" lines ('#' comments and blank lines are
  /// ignored). Returns nullopt if the file cannot be read, any line is
  /// malformed, or a node id appears twice — a half-loaded directory would
  /// misroute gossip silently, and a duplicate id means one of the two
  /// endpoints would win arbitrarily. When `error` is non-null it receives
  /// a one-line description of what was rejected.
  static std::optional<StaticDirectory> from_file(const std::string& path,
                                                  std::string* error = nullptr);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool resolve(NodeId node, UdpEndpoint* out) const override;

 private:
  std::unordered_map<NodeId, UdpEndpoint> entries_;
};

/// Parses "a.b.c.d:port" into an endpoint. Exposed for config plumbing and
/// tests; returns false (leaving *out untouched) on malformed input.
bool parse_endpoint_spec(const std::string& spec, UdpEndpoint* out);

/// Derives cluster structure from deployment layout: every node in `nodes`
/// whose endpoint resolves to the same IPv4 host lands in one cluster, and
/// cluster ids are assigned in ascending host order — deterministic, so
/// every process handed the same directory elects the same bridges.
/// Unresolvable nodes stay unmapped (membership::kUnknownCluster). This is
/// how a runtime deployment feeds membership::LocalityView the knowledge
/// that sim::NetworkParams.clusters provides in simulation.
[[nodiscard]] membership::TableClusterMap cluster_map_from_directory(
    const EndpointDirectory& directory, const std::vector<NodeId>& nodes);

}  // namespace agb::runtime
