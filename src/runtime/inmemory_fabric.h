// Threaded in-memory datagram fabric (wall-clock twin of sim::SimNetwork).
//
// The paper validates its simulations against a prototype running on 60
// workstations; our runtime substitutes an in-process fabric: real threads,
// real wall-clock timing, real serialized datagrams, optional loss and
// delay injection. The network models mirror the simulator's: i.i.d. or
// bursty Gilbert-Elliott loss, a WAN cluster rule (node i lives in cluster
// i % clusters; cross-cluster datagrams sample the wan delay range instead
// of the LAN one, and the intra/cross split is counted like
// sim::NetworkStats), and per-node crash/recover via set_node_up — so every
// scenario the simulator can price, the wall-clock path can run.
//
// The fabric is sharded by receiver: node n belongs to shard n % shards,
// and each shard owns its own delay-ordered queue and dispatcher thread.
// send_batch splits a fan-out across the shards it touches (one lock
// acquisition per touched shard, not per target), and dispatchers deliver
// independently — deliveries to receivers on different shards proceed in
// parallel. Within a shard, all currently-due datagrams for one receiver
// are handed to its handler as a single burst (BatchHandler), so a
// receiver pays its per-delivery cost once per burst. Same-due-time
// datagrams to one receiver are delivered in send order (a receiver maps
// to exactly one shard, and each shard's queue is FIFO among equal due
// times). Handlers run on dispatcher threads and must synchronise their
// own state (runtime::NodeRuntime does).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/datagram.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plane.h"
#include "sim/delay_sampler.h"

namespace agb::runtime {

class InMemoryFabric final : public DatagramNetwork {
 public:
  struct Params {
    double loss_probability = 0.0;
    /// Bursty Gilbert-Elliott loss (the correlated-loss regime the paper
    /// singles out): when enabled it replaces `loss_probability`. Each
    /// shard advances its own two-state chain — per-shard streams, the
    /// same statistics as the simulator's single chain.
    bool burst_loss = false;
    double loss_p_good = 0.0;
    double loss_p_bad = 0.9;
    double loss_p_gb = 0.01;
    double loss_p_bg = 0.2;
    DurationMs min_delay = 0;
    DurationMs max_delay = 2;
    /// WAN cluster rule, mirroring sim::NetworkParams: with clusters > 1,
    /// node i belongs to cluster i % clusters and a datagram crossing a
    /// cluster boundary samples [wan_min_delay, wan_max_delay] instead of
    /// [min_delay, max_delay].
    std::size_t clusters = 1;
    DurationMs wan_min_delay = 20;
    DurationMs wan_max_delay = 60;
    /// Receiver shards, each with its own delay queue + dispatcher thread.
    /// Rounded up to a power of two (shard addressing is a mask, not a
    /// division); 1 reproduces the classic single-dispatcher fabric.
    std::size_t shards = 4;
    /// Most datagrams handed to one handler call: bounds how long one
    /// receiver's burst can monopolise its shard's dispatcher when the
    /// queue is saturated. 1 reproduces per-datagram dispatch (the
    /// pre-sharding baseline, kept for A/B benchmarks); clamped to >= 1.
    std::size_t max_burst = 64;
    /// Full latency topology, shared with sim::SimNetwork: any
    /// sim::LatencyModel (fixed / uniform / normal) as the default and WAN
    /// models, plus per-link overrides. When set it replaces the integer
    /// delay fields above entirely (including the cluster rule used for
    /// latency and the intra/cross stats split); when empty the fabric
    /// builds an equivalent sampler from min/max_delay, clusters and
    /// wan_min/max_delay, so existing callers are unchanged.
    std::optional<sim::DelaySampler> sampler;
  };

  explicit InMemoryFabric(Params params, std::uint64_t seed = 1);
  ~InMemoryFabric() override;

  InMemoryFabric(const InMemoryFabric&) = delete;
  InMemoryFabric& operator=(const InMemoryFabric&) = delete;

  void attach(NodeId node, DatagramHandler handler) override;

  /// Native batch ingestion: the handler sees every currently-due burst
  /// for `node` in one call (all entries share `to == node`, send order
  /// preserved).
  void attach_batch(NodeId node, BatchHandler handler) override;

  /// Removes the node and blocks until any in-flight handler call for it
  /// has returned (unless called from that handler itself), so callers may
  /// destroy handler state immediately afterwards. Only the node's own
  /// shard is involved — a detach never stalls the other dispatchers.
  void detach(NodeId node) override;

  /// Splits the fan-out across receiver shards: one lock acquisition and
  /// at most one dispatcher wakeup per *touched shard*, never per target.
  /// Loss and delay are still sampled per target.
  void send_batch(Multicast batch) override;

  /// Crash/recover, the wall-clock twin of sim::SimNetwork::set_node_up: a
  /// down node neither sends nor receives (its handler stays attached, so
  /// recovery is just set_node_up(node, true)). Sends from a down node and
  /// deliveries to one are counted in dropped_down(); datagrams already in
  /// flight when the receiver goes down are re-checked at delivery time,
  /// like the simulator does. Thread-safe against concurrent senders and
  /// dispatchers.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Fault injection (non-owning; may be null = clean run), the wall-clock
  /// twin of sim::SimNetwork::set_fault_plane. Clean runs take the exact
  /// pre-fault path: no extra RNG draws, no payload copies. Set before
  /// traffic starts; the plane must outlive the fabric's send activity.
  void set_fault_plane(fault::FaultPlane* plane) noexcept {
    fault_plane_ = plane;
  }

  /// Milliseconds since the fabric was created (the runtime's clock).
  [[nodiscard]] TimeMs now() const;

  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Datagrams suppressed because an endpoint was down (set_node_up), kept
  /// apart from dropped() so churn runs can tell failure suppression from
  /// loss — the counter scenario churn conformance asserts on.
  [[nodiscard]] std::uint64_t dropped_down() const {
    return dropped_down_.load(std::memory_order_relaxed);
  }

  /// Datagrams suppressed by a fault-plane one-way partition rule — the
  /// asymmetric counterpart of dropped_down() (the reverse direction keeps
  /// flowing).
  [[nodiscard]] std::uint64_t dropped_chaos() const {
    return dropped_chaos_.load(std::memory_order_relaxed);
  }

  /// The `sent` split of sim::NetworkStats, counted per addressed target
  /// before any drop: with Params::clusters <= 1 everything is intra.
  [[nodiscard]] std::uint64_t sent_intra_cluster() const {
    return sent_intra_cluster_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sent_cross_cluster() const {
    return sent_cross_cluster_.load(std::memory_order_relaxed);
  }

  /// How many times the send path took a shard lock. A fan-out costs one
  /// acquisition per shard it touches — at most min(fan-out, shards), and
  /// exactly 1 when shards == 1. The batch micro-benchmarks report this
  /// per batch.
  [[nodiscard]] std::uint64_t send_lock_acquisitions() const {
    return send_lock_acquisitions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Lifetime high-water mark of `shard`'s delay queue (datagrams queued
  /// at once). The saturation gauge for sizing `Params::shards`. Throws
  /// std::out_of_range for shard >= shard_count().
  [[nodiscard]] std::size_t max_queue_depth(std::size_t shard) const;

  /// Max of max_queue_depth(shard) over all shards.
  [[nodiscard]] std::size_t max_queue_depth() const;

  /// Stops every dispatcher and joins its thread exactly once; queued
  /// datagrams are discarded without invoking any handler. Called by the
  /// destructor; safe to call repeatedly, from multiple threads, and from
  /// a handler (the destructor joins that handler's own dispatcher later).
  void shutdown();

 private:
  /// A zero-delay fan-out, stored unexpanded: one queue entry and ONE
  /// payload refcount bump per touched shard, however many targets.
  struct ReadyBatch {
    NodeId from = kInvalidNode;
    SharedBytes payload;
    std::vector<NodeId> targets;  // this shard's targets, in send order
  };

  /// Everything one dispatcher thread owns. Shards never take each
  /// other's locks. Receivers are slot-indexed (slot = node / shards —
  /// node ids are small dense integers throughout the repo), so the hot
  /// path does array lookups, never hashes.
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::condition_variable idle_cv;  // signals end of an in-flight handler
    /// Delay-ordered entries, keyed by due time (insertion order among
    /// equal keys = send order). Unused when the fabric is zero-delay.
    std::multimap<TimeMs, Datagram> delayed;
    /// FIFO fast path for a zero-delay fabric: everything is due the
    /// moment it is sent, so ordering is pure send order and enqueueing
    /// skips the multimap's per-entry allocation and rebalancing.
    std::deque<ReadyBatch> ready;
    std::size_t ready_count = 0;  // datagrams across `ready` batches
    std::vector<BatchHandler> handlers;  // slot-indexed; empty = detached
    Rng rng{1};
    /// Gilbert-Elliott chain state (Params::burst_loss): one chain per
    /// shard, advanced per datagram under `mutex`.
    bool burst_bad = false;
    bool stopping = false;
    /// True while the dispatcher sits in a cv wait: senders skip the
    /// notify (a futex syscall) when the dispatcher is awake anyway —
    /// it re-checks the queues before ever waiting.
    bool waiting = false;
    NodeId in_flight = kInvalidNode;  // node whose handler is executing
    std::size_t max_depth = 0;
    /// Dispatch scratch, slot-indexed like `handlers` (persistent so a
    /// dispatch cycle allocates nothing in steady state).
    std::vector<std::vector<Datagram>> buckets;
    std::vector<std::size_t> active;  // slots with a non-empty bucket
    std::once_flag join_once;
    std::thread dispatcher;
    /// Set by the dispatcher thread itself, under `mutex`, before its
    /// first queue pop — so detach()/shutdown() comparisons are race-free.
    std::thread::id dispatcher_id;

    [[nodiscard]] std::size_t depth() const {
      return delayed.size() + ready_count;
    }
  };

  /// Node n lives on shard n & shard_mask_ at slot n >> shard_shift_ —
  /// two bit ops, no division on the hot path.
  Shard& shard_of(NodeId node) {
    return *shards_[static_cast<std::size_t>(node) & shard_mask_];
  }
  const Shard& shard_of(NodeId node) const {
    return *shards_[static_cast<std::size_t>(node) & shard_mask_];
  }
  [[nodiscard]] std::size_t slot_of(NodeId node) const {
    return static_cast<std::size_t>(node) >> shard_shift_;
  }

  void dispatch_loop(Shard& shard);

  /// Samples the loss process for one datagram (caller holds shard.mutex).
  [[nodiscard]] bool loss_drop(Shard& shard);

  /// Slow-path liveness probe, gated by `down_count_` at every call site so
  /// fabrics with no failures never touch the mutex.
  [[nodiscard]] bool is_down(NodeId node) const;

  Params params_;
  /// Resolved latency topology (Params::sampler, or the integer delay
  /// fields lifted into an equivalent sampler). Per-datagram draws come
  /// from the owning shard's Rng, so shard streams stay independent.
  sim::DelaySampler sampler_;
  /// No delay to model: every datagram goes through the Shard::ready FIFO.
  bool zero_delay_;
  bool has_loss_;
  std::size_t shard_mask_ = 0;
  unsigned shard_shift_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Crashed nodes (set_node_up). The atomic count lets the hot paths skip
  /// the mutex entirely while nothing is down — the common case. Leaf lock:
  /// taken inside shard mutexes (delivery-time re-check), never the other
  /// way around.
  mutable std::mutex down_mutex_;
  std::set<NodeId> down_;
  std::atomic<std::size_t> down_count_{0};
  fault::FaultPlane* fault_plane_ = nullptr;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> dropped_down_{0};
  std::atomic<std::uint64_t> dropped_chaos_{0};
  std::atomic<std::uint64_t> sent_intra_cluster_{0};
  std::atomic<std::uint64_t> sent_cross_cluster_{0};
  std::atomic<std::uint64_t> send_lock_acquisitions_{0};
};

}  // namespace agb::runtime
