// Threaded in-memory datagram fabric (wall-clock twin of sim::SimNetwork).
//
// The paper validates its simulations against a prototype running on 60
// workstations; our runtime substitutes an in-process fabric: real threads,
// real wall-clock timing, real serialized datagrams, optional loss and
// delay injection. A single dispatcher thread owns a delay-ordered queue
// and invokes receiver handlers; handlers run on the dispatcher thread and
// must synchronise their own state (runtime::NodeRuntime does).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/datagram.h"
#include "common/rng.h"
#include "common/types.h"

namespace agb::runtime {

class InMemoryFabric final : public DatagramNetwork {
 public:
  struct Params {
    double loss_probability = 0.0;
    DurationMs min_delay = 0;
    DurationMs max_delay = 2;
  };

  explicit InMemoryFabric(Params params, std::uint64_t seed = 1);
  ~InMemoryFabric() override;

  InMemoryFabric(const InMemoryFabric&) = delete;
  InMemoryFabric& operator=(const InMemoryFabric&) = delete;

  void attach(NodeId node, DatagramHandler handler) override;
  void detach(NodeId node) override;
  void send(Datagram datagram) override;

  /// Milliseconds since the fabric was created (the runtime's clock).
  [[nodiscard]] TimeMs now() const;

  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Stops the dispatcher; queued datagrams are discarded. Called by the
  /// destructor; safe to call more than once.
  void shutdown();

 private:
  void dispatch_loop();

  Params params_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<TimeMs, Datagram> queue_;  // keyed by due time
  std::unordered_map<NodeId, DatagramHandler> handlers_;
  Rng rng_;
  bool stopping_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;

  std::thread dispatcher_;
};

}  // namespace agb::runtime
