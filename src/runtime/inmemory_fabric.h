// Threaded in-memory datagram fabric (wall-clock twin of sim::SimNetwork).
//
// The paper validates its simulations against a prototype running on 60
// workstations; our runtime substitutes an in-process fabric: real threads,
// real wall-clock timing, real serialized datagrams, optional loss and
// delay injection. A single dispatcher thread owns a delay-ordered queue
// and invokes receiver handlers; handlers run on the dispatcher thread and
// must synchronise their own state (runtime::NodeRuntime does).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/datagram.h"
#include "common/rng.h"
#include "common/types.h"

namespace agb::runtime {

class InMemoryFabric final : public DatagramNetwork {
 public:
  struct Params {
    double loss_probability = 0.0;
    DurationMs min_delay = 0;
    DurationMs max_delay = 2;
  };

  explicit InMemoryFabric(Params params, std::uint64_t seed = 1);
  ~InMemoryFabric() override;

  InMemoryFabric(const InMemoryFabric&) = delete;
  InMemoryFabric& operator=(const InMemoryFabric&) = delete;

  void attach(NodeId node, DatagramHandler handler) override;

  /// Removes the node and blocks until any in-flight handler call for it
  /// has returned (unless called from that handler itself), so callers may
  /// destroy handler state immediately afterwards.
  void detach(NodeId node) override;

  /// Enqueues every target's datagram under ONE lock acquisition and wakes
  /// the dispatcher once — a fan-out of F costs one lock/wakeup, not F.
  /// Loss and delay are still sampled per target.
  void send_batch(Multicast batch) override;

  /// Milliseconds since the fabric was created (the runtime's clock).
  [[nodiscard]] TimeMs now() const;

  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// How many times the send path took the fabric lock (once per
  /// send_batch, whatever the fan-out). The batch micro-benchmarks report
  /// this per batch.
  [[nodiscard]] std::uint64_t send_lock_acquisitions() const;

  /// Stops the dispatcher and joins its thread exactly once; queued
  /// datagrams are discarded without invoking any handler. Called by the
  /// destructor; safe to call repeatedly and from multiple threads.
  void shutdown();

 private:
  void dispatch_loop();

  Params params_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;  // signals end of an in-flight handler
  std::multimap<TimeMs, Datagram> queue_;  // keyed by due time
  std::unordered_map<NodeId, DatagramHandler> handlers_;
  Rng rng_;
  bool stopping_ = false;
  NodeId in_flight_ = kInvalidNode;  // node whose handler is executing
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t send_lock_acquisitions_ = 0;

  std::once_flag join_once_;
  std::thread dispatcher_;
  /// Captured at construction: comparing against dispatcher_.get_id() later
  /// would race with a concurrent join() on the same std::thread object.
  std::thread::id dispatcher_id_;
};

}  // namespace agb::runtime
