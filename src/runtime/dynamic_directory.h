// Endpoint resolution that follows gossiped bindings at run time.
//
// UdpTransport resolves every send through an EndpointDirectory, so a
// directory whose table can change *while the transport runs* is all it
// takes for hosts to move mid-run: DynamicDirectory layers a mutable
// override table over any static fallback (LoopbackDirectory, a
// StaticDirectory loaded from config, ...), and update() swaps a node's
// endpoint atomically with respect to concurrent resolve() calls on the
// send paths. wire_membership_bindings() subscribes a directory to a
// membership::GossipMembership, completing the loop: a peer that rebinds
// announces its new endpoint under a bumped revision, the gossip merge
// fires the binding listener, and the very next datagram to that peer
// already goes to the new address — no restart, no config reload.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "membership/gossip_membership.h"
#include "runtime/endpoint_directory.h"

namespace agb::runtime {

class DynamicDirectory final : public EndpointDirectory {
 public:
  /// `fallback` answers for nodes with no override yet; it may be null
  /// (then only gossip-learned bindings resolve).
  explicit DynamicDirectory(std::shared_ptr<const EndpointDirectory> fallback);

  /// Installs (or replaces) `node`'s endpoint. Thread-safe against
  /// resolve(); last writer wins, which is correct because the membership
  /// merge already serialised bindings by revision freshness.
  void update(NodeId node, UdpEndpoint endpoint);

  /// Drops `node`'s override, falling back to the static table.
  void forget(NodeId node);

  [[nodiscard]] bool resolve(NodeId node, UdpEndpoint* out) const override;

  /// How many nodes currently resolve through a gossip-learned override.
  [[nodiscard]] std::size_t overrides() const;

 private:
  std::shared_ptr<const EndpointDirectory> fallback_;
  mutable std::mutex mutex_;
  std::unordered_map<NodeId, UdpEndpoint> overrides_;
};

/// Feeds every binding `source` learns from gossip into `directory`. The
/// listener fires under the node's serialisation (sim loop or NodeRuntime
/// lock) and only takes the directory's own mutex — safe against the
/// transport's send paths. Call before the node starts gossiping.
void wire_membership_bindings(membership::GossipMembership& source,
                              std::shared_ptr<DynamicDirectory> directory);

}  // namespace agb::runtime
