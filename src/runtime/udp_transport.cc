#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace agb::runtime {

namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in to_sockaddr(const UdpEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = htonl(endpoint.ipv4);
  return addr;
}

}  // namespace

struct UdpTransport::Endpoint {
  int fd = -1;
  NodeId node = kInvalidNode;
  DatagramHandler handler;
  std::thread rx_thread;
  std::atomic<bool> stopping{false};

  ~Endpoint() {
    stopping.store(true);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    if (rx_thread.joinable()) rx_thread.join();
  }
};

UdpTransport::UdpTransport(std::shared_ptr<const EndpointDirectory> directory)
    : directory_(std::move(directory)),
      epoch_(std::chrono::steady_clock::now()) {}

UdpTransport::UdpTransport(std::uint16_t base_port)
    : UdpTransport(std::make_shared<LoopbackDirectory>(base_port)) {}

UdpTransport::~UdpTransport() {
  std::lock_guard lock(mutex_);
  endpoints_.clear();
}

TimeMs UdpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UdpTransport::attach(NodeId node, DatagramHandler handler) {
  UdpEndpoint self{};
  if (!directory_->resolve(node, &self)) {
    throw std::runtime_error("udp: no directory entry for node " +
                             std::to_string(node));
  }

  auto endpoint = std::make_unique<Endpoint>();
  endpoint->node = node;
  endpoint->handler = std::move(handler);

  endpoint->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (endpoint->fd < 0) throw std::runtime_error("udp socket() failed");
  const int reuse = 1;
  ::setsockopt(endpoint->fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  // Bind the directory's port on every interface: the node's published
  // address may be a real NIC, loopback, or behind NAT — only the port is
  // ours to claim.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self.port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(endpoint->fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(endpoint->fd);
    throw std::runtime_error("udp bind() failed for node " +
                             std::to_string(node));
  }

  Endpoint* raw = endpoint.get();
  endpoint->rx_thread = std::thread([this, raw] {
    std::vector<std::uint8_t> buf(kMaxDatagram);
    while (!raw->stopping.load()) {
      const ssize_t got = ::recv(raw->fd, buf.data(), buf.size(), 0);
      if (got <= 0) {
        if (raw->stopping.load()) return;
        continue;  // transient error; sockets are closed only on detach
      }
      if (got < 4) continue;  // missing sender prefix: malformed
      NodeId from = 0;
      std::memcpy(&from, buf.data(), 4);
      Datagram datagram;
      datagram.from = from;
      datagram.to = raw->node;
      datagram.payload = SharedBytes::copy_of(
          {buf.data() + 4, static_cast<std::size_t>(got - 4)});
      raw->handler(datagram, now());
    }
  });

  std::lock_guard lock(mutex_);
  endpoints_[node] = std::move(endpoint);
}

void UdpTransport::detach(NodeId node) {
  std::unique_ptr<Endpoint> victim;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end()) return;
    victim = std::move(it->second);
    endpoints_.erase(it);
  }
  // Destructor closes the socket and joins the thread outside the lock.
}

void UdpTransport::send_batch(Multicast batch) {
  if (batch.targets.empty()) return;
  int fd = -1;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(batch.from);
    if (it == endpoints_.end()) {
      send_failures_.fetch_add(batch.targets.size());
      return;
    }
    fd = it->second->fd;
  }

  // Scatter-gather descriptor shared by every per-target message: the
  // 4-byte sender prefix and the SharedBytes payload go out as one datagram
  // per target without ever assembling a contiguous copy.
  NodeId from = batch.from;
  iovec iov[2];
  iov[0].iov_base = &from;
  iov[0].iov_len = 4;
  iov[1].iov_base = const_cast<std::uint8_t*>(batch.payload.data());
  iov[1].iov_len = batch.payload.size();
  const std::size_t iovlen = batch.payload.empty() ? 1 : 2;

  std::vector<sockaddr_in> addrs;
  addrs.reserve(batch.targets.size());
  for (NodeId to : batch.targets) {
    UdpEndpoint endpoint{};
    if (!directory_->resolve(to, &endpoint)) {
      send_failures_.fetch_add(1);
      continue;
    }
    addrs.push_back(to_sockaddr(endpoint));
  }
  if (addrs.empty()) return;

#if defined(__linux__)
  std::vector<mmsghdr> msgs(addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    msgs[i].msg_hdr.msg_iov = iov;
    msgs[i].msg_hdr.msg_iovlen = iovlen;
  }
  std::size_t done = 0;
  while (done < msgs.size()) {
    const int sent =
        ::sendmmsg(fd, msgs.data() + done,
                   static_cast<unsigned>(msgs.size() - done), 0);
    send_syscalls_.fetch_add(1);
    if (sent < 0) {
      if (errno == ENOSYS) break;  // ancient kernel: sendmsg loop below
      // Per-target error semantics, exactly like a sendmsg loop: one
      // failing target costs one failure, the rest of the batch still
      // goes out.
      send_failures_.fetch_add(1);
      ++done;
      continue;
    }
    done += static_cast<std::size_t>(sent);
  }
  if (done >= msgs.size()) return;
#else
  std::size_t done = 0;
#endif

  // Portable per-target path: fallback for non-Linux builds and ENOSYS.
  for (std::size_t i = done; i < addrs.size(); ++i) {
    msghdr msg{};
    msg.msg_name = &addrs[i];
    msg.msg_namelen = sizeof(addrs[i]);
    msg.msg_iov = iov;
    msg.msg_iovlen = iovlen;
    send_syscalls_.fetch_add(1);
    if (::sendmsg(fd, &msg, 0) < 0) send_failures_.fetch_add(1);
  }
}

}  // namespace agb::runtime
