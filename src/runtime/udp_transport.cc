#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace agb::runtime {

namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in loopback_address(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

struct UdpTransport::Endpoint {
  int fd = -1;
  NodeId node = kInvalidNode;
  DatagramHandler handler;
  std::thread rx_thread;
  std::atomic<bool> stopping{false};

  ~Endpoint() {
    stopping.store(true);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    if (rx_thread.joinable()) rx_thread.join();
  }
};

UdpTransport::UdpTransport(std::uint16_t base_port)
    : base_port_(base_port), epoch_(std::chrono::steady_clock::now()) {}

UdpTransport::~UdpTransport() {
  std::lock_guard lock(mutex_);
  endpoints_.clear();
}

TimeMs UdpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UdpTransport::attach(NodeId node, DatagramHandler handler) {
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->node = node;
  endpoint->handler = std::move(handler);

  endpoint->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (endpoint->fd < 0) throw std::runtime_error("udp socket() failed");
  const int reuse = 1;
  ::setsockopt(endpoint->fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  auto addr = loopback_address(static_cast<std::uint16_t>(base_port_ + node));
  if (::bind(endpoint->fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(endpoint->fd);
    throw std::runtime_error("udp bind() failed for node " +
                             std::to_string(node));
  }

  Endpoint* raw = endpoint.get();
  endpoint->rx_thread = std::thread([this, raw] {
    std::vector<std::uint8_t> buf(kMaxDatagram);
    while (!raw->stopping.load()) {
      const ssize_t got = ::recv(raw->fd, buf.data(), buf.size(), 0);
      if (got <= 0) {
        if (raw->stopping.load()) return;
        continue;  // transient error; sockets are closed only on detach
      }
      if (got < 4) continue;  // missing sender prefix: malformed
      NodeId from = 0;
      std::memcpy(&from, buf.data(), 4);
      Datagram datagram;
      datagram.from = from;
      datagram.to = raw->node;
      datagram.payload = SharedBytes::copy_of(
          {buf.data() + 4, static_cast<std::size_t>(got - 4)});
      raw->handler(datagram, now());
    }
  });

  std::lock_guard lock(mutex_);
  endpoints_[node] = std::move(endpoint);
}

void UdpTransport::detach(NodeId node) {
  std::unique_ptr<Endpoint> victim;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end()) return;
    victim = std::move(it->second);
    endpoints_.erase(it);
  }
  // Destructor closes the socket and joins the thread outside the lock.
}

void UdpTransport::send(Datagram datagram) {
  int fd = -1;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(datagram.from);
    if (it == endpoints_.end()) {
      send_failures_.fetch_add(1);
      return;
    }
    fd = it->second->fd;
  }
  // Scatter-gather send: the 4-byte sender prefix and the shared payload go
  // out as one datagram without assembling a contiguous copy, so even the
  // kernel handoff never duplicates the encoded message.
  NodeId from = datagram.from;
  iovec iov[2];
  iov[0].iov_base = &from;
  iov[0].iov_len = 4;
  iov[1].iov_base = const_cast<std::uint8_t*>(datagram.payload.data());
  iov[1].iov_len = datagram.payload.size();
  auto addr =
      loopback_address(static_cast<std::uint16_t>(base_port_ + datagram.to));
  msghdr msg{};
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov;
  msg.msg_iovlen = datagram.payload.empty() ? 1 : 2;
  const ssize_t sent = ::sendmsg(fd, &msg, 0);
  if (sent < 0) send_failures_.fetch_add(1);
}

}  // namespace agb::runtime
