#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace agb::runtime {

namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in to_sockaddr(const UdpEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = htonl(endpoint.ipv4);
  return addr;
}

}  // namespace

struct UdpTransport::Endpoint {
  int fd = -1;
  NodeId node = kInvalidNode;
  BatchHandler handler;
  std::thread rx_thread;
  std::atomic<bool> stopping{false};

  ~Endpoint() {
    stopping.store(true);
    // shutdown() wakes the rx thread out of its blocked receive syscall
    // (close() would not); the fd is closed only after the join, so no
    // thread ever touches a dead — or worse, recycled — descriptor.
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (rx_thread.joinable()) rx_thread.join();
    if (fd >= 0) ::close(fd);
  }
};

UdpTransport::UdpTransport(std::shared_ptr<const EndpointDirectory> directory,
                           std::size_t recv_batch)
    : directory_(std::move(directory)),
      recv_batch_(recv_batch > 0 ? recv_batch : 1),
      epoch_(std::chrono::steady_clock::now()) {}

UdpTransport::UdpTransport(std::uint16_t base_port, std::size_t recv_batch)
    : UdpTransport(std::make_shared<LoopbackDirectory>(base_port),
                   recv_batch) {}

UdpTransport::~UdpTransport() {
  std::lock_guard lock(mutex_);
  endpoints_.clear();
}

TimeMs UdpTransport::now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UdpTransport::attach(NodeId node, DatagramHandler handler) {
  // One internal delivery path: a per-datagram handler replays each burst
  // entry by entry, so classic callers keep their exact semantics.
  attach_batch(node, [handler = std::move(handler)](const Datagram* batch,
                                                    std::size_t count,
                                                    TimeMs now) {
    for (std::size_t i = 0; i < count; ++i) handler(batch[i], now);
  });
}

void UdpTransport::attach_batch(NodeId node, BatchHandler handler) {
  UdpEndpoint self{};
  if (!directory_->resolve(node, &self)) {
    throw std::runtime_error("udp: no directory entry for node " +
                             std::to_string(node));
  }

  auto endpoint = std::make_unique<Endpoint>();
  endpoint->node = node;
  endpoint->handler = std::move(handler);

  endpoint->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (endpoint->fd < 0) throw std::runtime_error("udp socket() failed");
  const int reuse = 1;
  ::setsockopt(endpoint->fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  // Batched draining means the socket rides out longer gaps between
  // syscalls; give the kernel room to absorb a whole fan-in burst instead
  // of dropping at the default rcvbuf (best effort — caps at the system
  // rmem_max).
  const int rcvbuf = 1 << 20;
  ::setsockopt(endpoint->fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  // Bind the directory's port on every interface: the node's published
  // address may be a real NIC, loopback, or behind NAT — only the port is
  // ours to claim.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(self.port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(endpoint->fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(endpoint->fd);
    endpoint->fd = -1;
    throw std::runtime_error("udp bind() failed for node " +
                             std::to_string(node));
  }

  start_rx_thread(endpoint.get());

  std::lock_guard lock(mutex_);
  endpoints_[node] = std::move(endpoint);
}

void UdpTransport::start_rx_thread(Endpoint* raw) {
  raw->rx_thread = std::thread([this, raw] {
    // Buffer pool reused across syscalls: the payload bytes are copied
    // into each Datagram's SharedBytes before the next drain overwrites
    // them.
    const std::size_t batch = recv_batch_;
    std::vector<std::vector<std::uint8_t>> bufs(
        batch, std::vector<std::uint8_t>(kMaxDatagram));
    std::vector<Datagram> burst;
    burst.reserve(batch);
    auto push = [&](const std::uint8_t* data, std::size_t len) {
      if (len < 4) return;  // missing sender prefix: malformed
      NodeId from = 0;
      std::memcpy(&from, data, 4);
      Datagram datagram;
      datagram.from = from;
      datagram.to = raw->node;
      datagram.payload = SharedBytes::copy_of({data + 4, len - 4});
      burst.push_back(std::move(datagram));
    };
#if defined(__linux__)
    std::vector<mmsghdr> msgs(batch);
    std::vector<iovec> iovs(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      iovs[i].iov_base = bufs[i].data();
      iovs[i].iov_len = bufs[i].size();
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    bool use_mmsg = true;
#endif
    while (!raw->stopping.load()) {
      burst.clear();
#if defined(__linux__)
      if (use_mmsg) {
        // MSG_WAITFORONE: block until the first datagram arrives, then
        // take whatever else is already queued without blocking again —
        // an inbound burst of F datagrams costs ~ceil(F/batch) syscalls.
        const int got = ::recvmmsg(raw->fd, msgs.data(),
                                   static_cast<unsigned>(batch),
                                   MSG_WAITFORONE, nullptr);
        recv_syscalls_.fetch_add(1);
        if (got <= 0) {
          if (got < 0 && errno == ENOSYS) {  // ancient kernel: recv loop
            use_mmsg = false;
            continue;
          }
          if (raw->stopping.load()) return;
          continue;  // transient error; sockets are closed only on detach
        }
        for (int i = 0; i < got; ++i) push(bufs[i].data(), msgs[i].msg_len);
      } else
#endif
      {
        // Portable per-datagram path: non-Linux builds and ENOSYS.
        const ssize_t got =
            ::recv(raw->fd, bufs[0].data(), bufs[0].size(), 0);
        recv_syscalls_.fetch_add(1);
        if (got <= 0) {
          if (raw->stopping.load()) return;
          continue;
        }
        push(bufs[0].data(), static_cast<std::size_t>(got));
      }
      if (!burst.empty()) raw->handler(burst.data(), burst.size(), now());
    }
  });
}

void UdpTransport::detach(NodeId node) {
  std::unique_ptr<Endpoint> victim;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end()) return;
    victim = std::move(it->second);
    endpoints_.erase(it);
  }
  // Destructor closes the socket and joins the thread outside the lock.
}

namespace {

/// Transient kernel pushback worth retrying with backoff; anything else
/// (EMSGSIZE, ENETUNREACH, ...) is a real per-message failure.
bool retryable_send_errno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK ||
         err == ENOBUFS;
}

constexpr int kMaxSendRetries = 4;  // 100us, 200us, 400us, 800us

void send_backoff(int attempt) {
  std::this_thread::sleep_for(std::chrono::microseconds(50 << attempt));
}

}  // namespace

void UdpTransport::send_batch(Multicast batch) {
  if (batch.targets.empty()) return;
  int fd = -1;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(batch.from);
    if (it == endpoints_.end()) {
      send_failures_.fetch_add(batch.targets.size());
      return;
    }
    fd = it->second->fd;
  }

  // Per-message plan: resolved address plus the payload this copy carries.
  // On the clean path every copy aliases the batch payload (refcount bump,
  // no byte copy); the fault plane may substitute a privately mutated
  // buffer, add duplicate copies, or push a "reordered" copy behind the
  // rest of its batch (real time offers no delay queue to borrow).
  struct Planned {
    sockaddr_in addr;
    SharedBytes payload;
  };
  std::vector<Planned> plan;
  plan.reserve(batch.targets.size());
  std::vector<Planned> deferred;  // reorder: sent after everything else
  const TimeMs stamp = fault_plane_ ? now() : 0;
  for (NodeId to : batch.targets) {
    UdpEndpoint endpoint{};
    if (!directory_->resolve(to, &endpoint)) {
      send_failures_.fetch_add(1);
      continue;
    }
    fault::FaultAction action;
    if (fault_plane_) action = fault_plane_->sample(batch.from, to, stamp);
    if (action.drop) continue;  // one-way partition: never hits the wire
    SharedBytes payload = (action.corrupt || action.truncate)
                              ? fault_plane_->mutate(batch.payload, action)
                              : batch.payload;
    auto& bucket = action.extra_delay > 0 ? deferred : plan;
    for (int copy = 0; copy <= action.duplicates; ++copy) {
      bucket.push_back(Planned{to_sockaddr(endpoint), payload});
    }
  }
  for (auto& late : deferred) plan.push_back(std::move(late));
  if (plan.empty()) return;

  // Scatter-gather descriptors: the shared 4-byte sender prefix plus each
  // message's payload — a contiguous copy is never assembled. Built after
  // `plan` is final so the iovec pointers stay stable.
  NodeId from = batch.from;
  std::vector<iovec> iovs(plan.size() * 2);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    iovs[2 * i].iov_base = &from;
    iovs[2 * i].iov_len = 4;
    iovs[2 * i + 1].iov_base =
        const_cast<std::uint8_t*>(plan[i].payload.data());
    iovs[2 * i + 1].iov_len = plan[i].payload.size();
  }

#if defined(__linux__)
  std::vector<mmsghdr> msgs(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name = &plan[i].addr;
    msgs[i].msg_hdr.msg_namelen = sizeof(plan[i].addr);
    msgs[i].msg_hdr.msg_iov = &iovs[2 * i];
    msgs[i].msg_hdr.msg_iovlen = plan[i].payload.empty() ? 1 : 2;
  }
  std::size_t done = 0;
  int attempts = 0;
  while (done < msgs.size()) {
    const int sent =
        ::sendmmsg(fd, msgs.data() + done,
                   static_cast<unsigned>(msgs.size() - done), 0);
    send_syscalls_.fetch_add(1);
    if (sent < 0) {
      if (errno == ENOSYS) break;  // ancient kernel: sendmsg loop below
      // Transient pushback (EINTR/EAGAIN/ENOBUFS): back off briefly and
      // retry from the same message instead of dropping it.
      if (retryable_send_errno(errno) && attempts < kMaxSendRetries) {
        send_retries_.fetch_add(1);
        send_backoff(attempts++);
        continue;
      }
      // A real failure poisons only the head message: count it, skip it,
      // and keep sending the rest of the batch.
      send_errors_.fetch_add(1);
      send_failures_.fetch_add(1);
      ++done;
      attempts = 0;
      continue;
    }
    // Partial completion is normal (the kernel sent `sent` of them):
    // resume from the first unsent message, never dropping the tail.
    done += static_cast<std::size_t>(sent);
    attempts = 0;
  }
  if (done >= msgs.size()) return;
#else
  std::size_t done = 0;
#endif

  // Portable per-target path: fallback for non-Linux builds and ENOSYS.
  for (std::size_t i = done; i < plan.size(); ++i) {
    msghdr msg{};
    msg.msg_name = &plan[i].addr;
    msg.msg_namelen = sizeof(plan[i].addr);
    msg.msg_iov = &iovs[2 * i];
    msg.msg_iovlen = plan[i].payload.empty() ? 1 : 2;
    int attempts = 0;
    while (true) {
      send_syscalls_.fetch_add(1);
      if (::sendmsg(fd, &msg, 0) >= 0) break;
      if (retryable_send_errno(errno) && attempts < kMaxSendRetries) {
        send_retries_.fetch_add(1);
        send_backoff(attempts++);
        continue;
      }
      send_errors_.fetch_add(1);
      send_failures_.fetch_add(1);
      break;
    }
  }
}

}  // namespace agb::runtime
