// UDP socket transport: the protocol over a real network stack.
//
// Each attached node gets its own datagram socket bound to
// 127.0.0.1:(base_port + node id) and a receive thread. A 4-byte
// little-endian sender id prefixes every payload so receivers know the
// gossip peer without trusting source addresses. This is the closest
// laptop-scale equivalent of the paper's 60-workstation Ethernet
// deployment; multi-host runs only need the address map generalised.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/datagram.h"
#include "common/types.h"

namespace agb::runtime {

class UdpTransport final : public DatagramNetwork {
 public:
  /// Node `i` is reachable at 127.0.0.1:(base_port + i).
  explicit UdpTransport(std::uint16_t base_port);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds the node's socket and starts its receive thread. Throws
  /// std::runtime_error if the port cannot be bound.
  void attach(NodeId node, DatagramHandler handler) override;
  void detach(NodeId node) override;
  void send(Datagram datagram) override;

  [[nodiscard]] TimeMs now() const;
  [[nodiscard]] std::uint64_t send_failures() const {
    return send_failures_.load();
  }

 private:
  struct Endpoint;

  std::uint16_t base_port_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<std::uint64_t> send_failures_{0};
};

}  // namespace agb::runtime
