// UDP socket transport: the protocol over a real network stack.
//
// Each attached node gets its own datagram socket and a receive thread. A
// 4-byte little-endian sender id prefixes every payload so receivers know
// the gossip peer without trusting source addresses. Targets (and the local
// bind port) are resolved through an EndpointDirectory: LoopbackDirectory
// reproduces the classic single-host 127.0.0.1:(base_port + id) layout, a
// StaticDirectory spreads the group over real hosts — the transport itself
// is host-agnostic, like the paper's 60-workstation deployment.
//
// Both directions are batch-first. Outbound: a whole fan-out goes to the
// kernel as ONE sendmmsg() syscall (chunked only if the batch exceeds the
// syscall's limit; a portable sendmsg loop is the non-Linux fallback),
// every per-target message sharing the same scatter-gather iovec — the
// encoded payload is never copied in user space. Inbound: each receive
// thread drains up to `recv_batch` datagrams per recvmmsg() syscall
// (MSG_WAITFORONE: block for the first, take the rest opportunistically)
// into a buffer pool reused across syscalls, and hands the whole burst to
// the node's BatchHandler in one call — an inbound burst of F datagrams
// costs ~ceil(F/recv_batch) syscalls instead of F, mirroring the send-side
// win. recv() is the portable per-datagram fallback.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/datagram.h"
#include "common/types.h"
#include "fault/fault_plane.h"
#include "runtime/endpoint_directory.h"

namespace agb::runtime {

class UdpTransport final : public DatagramNetwork {
 public:
  /// Default inbound drain: up to this many datagrams per recvmmsg().
  static constexpr std::size_t kDefaultRecvBatch = 16;

  /// Resolves every node — local binds and remote targets — through
  /// `directory`. `recv_batch` caps the datagrams drained per receive
  /// syscall (clamped to >= 1).
  explicit UdpTransport(std::shared_ptr<const EndpointDirectory> directory,
                        std::size_t recv_batch = kDefaultRecvBatch);

  /// Single-host convenience: node `i` is reachable at
  /// 127.0.0.1:(base_port + i).
  explicit UdpTransport(std::uint16_t base_port,
                        std::size_t recv_batch = kDefaultRecvBatch);

  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds the node's socket (on the directory's port for it) and starts
  /// its receive thread. Throws std::runtime_error if the node has no
  /// directory entry or the port cannot be bound.
  void attach(NodeId node, DatagramHandler handler) override;

  /// Batch attach: the handler sees each drained recvmmsg burst in one
  /// call instead of one call per datagram.
  void attach_batch(NodeId node, BatchHandler handler) override;

  void detach(NodeId node) override;

  /// One syscall per batch (sendmmsg), not one per target; unresolvable
  /// targets count as send failures and the rest of the batch still goes
  /// out.
  void send_batch(Multicast batch) override;

  /// Fault injection (non-owning; may be null = clean run), consulted per
  /// target at the send_batch choke point like the other two fabrics.
  /// One-way rules drop before the syscall; corruption mutates a private
  /// copy of the payload; duplicates add messages; reorder moves a message
  /// behind the rest of its batch (real time offers no delay queue).
  void set_fault_plane(fault::FaultPlane* plane) noexcept {
    fault_plane_ = plane;
  }

  [[nodiscard]] TimeMs now() const;
  [[nodiscard]] std::uint64_t send_failures() const {
    return send_failures_.load();
  }

  /// Errno-level send syscall failures (after bounded retries) — a subset
  /// of send_failures(), which also counts unresolvable targets. Pinned by
  /// test via an EMSGSIZE-sized payload.
  [[nodiscard]] std::uint64_t send_errors() const {
    return send_errors_.load();
  }

  /// Transient-error retries taken by the send path (EINTR / EAGAIN /
  /// ENOBUFS, each retried with bounded exponential backoff before the
  /// message is counted as failed).
  [[nodiscard]] std::uint64_t send_retries() const {
    return send_retries_.load();
  }

  /// Kernel round-trips taken by the send path (sendmmsg/sendmsg calls).
  /// The batch micro-benchmarks report this per fan-out batch.
  [[nodiscard]] std::uint64_t send_syscalls() const {
    return send_syscalls_.load();
  }

  /// Kernel round-trips taken by the receive path (recvmmsg/recv calls),
  /// across all attached nodes — the inbound mirror of send_syscalls().
  [[nodiscard]] std::uint64_t recv_syscalls() const {
    return recv_syscalls_.load();
  }

  [[nodiscard]] std::size_t recv_batch() const { return recv_batch_; }

 private:
  struct Endpoint;

  void start_rx_thread(Endpoint* endpoint);

  std::shared_ptr<const EndpointDirectory> directory_;
  std::size_t recv_batch_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  fault::FaultPlane* fault_plane_ = nullptr;
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> send_errors_{0};
  std::atomic<std::uint64_t> send_retries_{0};
  std::atomic<std::uint64_t> send_syscalls_{0};
  std::atomic<std::uint64_t> recv_syscalls_{0};
};

}  // namespace agb::runtime
