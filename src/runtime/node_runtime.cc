#include "runtime/node_runtime.h"

#include <chrono>

namespace agb::runtime {

NodeRuntime::NodeRuntime(std::unique_ptr<gossip::LpbcastNode> node,
                         DatagramNetwork& network, Clock clock)
    : node_(std::move(node)),
      adaptive_(dynamic_cast<adaptive::AdaptiveLpbcastNode*>(node_.get())),
      network_(network),
      clock_(std::move(clock)) {
  // Batch attach: fabrics with batched ingestion (recvmmsg drains, sharded
  // dispatch bursts) hand a whole inbound burst over in one call, and the
  // runtime takes its state lock once per burst instead of once per
  // datagram. Fabrics without native batching deliver bursts of one.
  network_.attach_batch(
      node_->id(), [this](const Datagram* batch, std::size_t count,
                          TimeMs now) { on_datagram_batch(batch, count, now); });
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::set_deliver_handler(DeliverFn fn) {
  std::lock_guard lock(mutex_);
  node_->set_deliver_handler(std::move(fn));
}

void NodeRuntime::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  round_thread_ = std::thread([this] { round_loop(); });
}

void NodeRuntime::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_.store(true);
  }
  cv_.notify_all();
  if (round_thread_.joinable()) round_thread_.join();
  // Never under mutex_: InMemoryFabric::detach blocks until any in-flight
  // delivery returns, and that delivery (on_datagram) needs mutex_.
  network_.detach(node_->id());
}

void NodeRuntime::round_loop() {
  const auto period =
      std::chrono::milliseconds(node_->params().gossip_period);
  std::unique_lock lock(mutex_);
  while (!stopping_.load()) {
    cv_.wait_for(lock, period, [this] { return stopping_.load(); });
    if (stopping_.load()) return;
    auto out = node_->on_round(clock_());
    auto controls = node_->take_outbox();
    // One Multicast per round: encoded once here, handed to the fabric as
    // a single batch (one lock acquisition / syscall on its side).
    Multicast batch = std::move(out).to_multicast(node_->id());
    const NodeId self = node_->id();
    lock.unlock();  // never hold the node lock across network calls
    if (!batch.targets.empty()) network_.send_batch(std::move(batch));
    for (auto& control : controls) {
      network_.send(Datagram{self, control.target,
                             std::move(control.payload)});
    }
    lock.lock();
  }
}

void NodeRuntime::on_datagram_batch(const Datagram* batch, std::size_t count,
                                    TimeMs now) {
  // Decode outside the state lock — the codec needs no node state — then
  // feed the whole burst through under ONE lock acquisition.
  std::vector<gossip::WireMessage> messages;
  messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    messages.push_back(gossip::decode_any(batch[i].payload));
  }
  std::vector<gossip::LpbcastNode::ControlDatagram> controls;
  const NodeId self = node_->id();
  {
    std::lock_guard lock(mutex_);
    bool handled = false;
    for (const auto& message : messages) {
      handled = node_->on_wire(message, now) || handled;
    }
    if (!handled) return;
    controls = node_->take_outbox();
  }
  for (auto& control : controls) {
    network_.send(Datagram{self, control.target, std::move(control.payload)});
  }
}

EventId NodeRuntime::broadcast(gossip::Payload payload) {
  std::lock_guard lock(mutex_);
  return node_->broadcast(std::move(payload), clock_());
}

bool NodeRuntime::try_broadcast(gossip::Payload payload, EventId* out_id) {
  std::lock_guard lock(mutex_);
  if (adaptive_ == nullptr) return false;
  return adaptive_->try_broadcast(std::move(payload), clock_(), out_id);
}

gossip::NodeCounters NodeRuntime::counters() const {
  std::lock_guard lock(mutex_);
  return node_->counters();
}

double NodeRuntime::allowed_rate() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->allowed_rate() : 0.0;
}

std::uint32_t NodeRuntime::min_buff() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->min_buff() : 0;
}

double NodeRuntime::avg_age() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->avg_age() : 0.0;
}

void NodeRuntime::add_member(NodeId node) {
  std::lock_guard lock(mutex_);
  node_->membership().add(node);
}

void NodeRuntime::remove_member(NodeId node) {
  std::lock_guard lock(mutex_);
  node_->membership().remove(node);
}

std::size_t NodeRuntime::membership_size() const {
  std::lock_guard lock(mutex_);
  return node_->membership().size();
}

void NodeRuntime::on_recover(bool migrate_binding) {
  std::lock_guard lock(mutex_);
  auto* gm = node_->gossip_membership();
  if (gm == nullptr) return;
  if (migrate_binding) {
    membership::EndpointBinding binding = gm->self_record().binding;
    ++binding.port;  // moved host: same node, next port
    gm->set_self_binding(binding);  // bumps the revision itself
  } else {
    gm->on_restart();
  }
}

std::optional<membership::LivenessState> NodeRuntime::peer_state(
    NodeId peer) const {
  std::lock_guard lock(mutex_);
  const auto* gm = node_->gossip_membership();
  return gm == nullptr ? std::nullopt : gm->state_of(peer);
}

membership::GossipMembership* NodeRuntime::gossip_membership() {
  return node_->gossip_membership();
}

void NodeRuntime::set_capacity(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  if (adaptive_ != nullptr) {
    adaptive_->set_capacity(max_events, clock_());
  } else {
    node_->set_max_events(max_events, clock_());
  }
}

}  // namespace agb::runtime
