#include "runtime/node_runtime.h"

#include <chrono>
#include <thread>
#include <variant>

namespace agb::runtime {

NodeRuntime::NodeRuntime(std::unique_ptr<gossip::LpbcastNode> node,
                         DatagramNetwork& network, Clock clock)
    : node_(std::move(node)),
      adaptive_(dynamic_cast<adaptive::AdaptiveLpbcastNode*>(node_.get())),
      network_(network),
      clock_(std::move(clock)) {
  // Batch attach: fabrics with batched ingestion (recvmmsg drains, sharded
  // dispatch bursts) hand a whole inbound burst over in one call, and the
  // runtime takes its state lock once per burst instead of once per
  // datagram. Fabrics without native batching deliver bursts of one.
  network_.attach_batch(
      node_->id(), [this](const Datagram* batch, std::size_t count,
                          TimeMs now) { on_datagram_batch(batch, count, now); });
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::set_deliver_handler(DeliverFn fn) {
  std::lock_guard lock(mutex_);
  node_->set_deliver_handler(std::move(fn));
}

void NodeRuntime::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  round_thread_ = std::thread([this] { round_loop(); });
}

void NodeRuntime::stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_.store(true);
  }
  cv_.notify_all();
  if (round_thread_.joinable()) round_thread_.join();
  // Never under mutex_: InMemoryFabric::detach blocks until any in-flight
  // delivery returns, and that delivery (on_datagram) needs mutex_.
  network_.detach(node_->id());
}

void NodeRuntime::round_loop() {
  const auto period =
      std::chrono::milliseconds(node_->params().gossip_period);
  // Pending-queue retry cadence: the wall-clock twin of the simulator's
  // 100 ms blocked-sender retry timer. Between rounds the thread wakes this
  // often to admit queued broadcasts as the token bucket refills.
  const auto retry = std::min(period, std::chrono::milliseconds(100));
  std::unique_lock lock(mutex_);
  auto next_round = std::chrono::steady_clock::now() + period;
  while (!stopping_.load()) {
    const auto wake =
        std::min(next_round, std::chrono::steady_clock::now() + retry);
    cv_.wait_until(lock, wake, [this] { return stopping_.load(); });
    if (stopping_.load()) return;
    // Token-refill back-pressure: drain whatever the bucket now allows
    // (and sample the depth) on every wakeup, round or retry alike.
    drain_pending_locked();
    if (std::chrono::steady_clock::now() < next_round) continue;
    next_round += period;
    auto out = node_->on_round(clock_());
    auto controls = node_->take_outbox();
    // One Multicast per round: encoded once here, handed to the fabric as
    // a single batch (one lock acquisition / syscall on its side).
    Multicast batch = std::move(out).to_multicast(node_->id());
    const NodeId self = node_->id();
    lock.unlock();  // never hold the node lock across network calls
    if (!batch.targets.empty()) network_.send_batch(std::move(batch));
    for (auto& control : controls) {
      network_.send(Datagram{self, control.target,
                             std::move(control.payload)});
    }
    lock.lock();
    // A stalled send (or a suspended process) must not make the loop spin
    // through a backlog of rounds; resume the cadence from now.
    const auto after_send = std::chrono::steady_clock::now();
    if (next_round < after_send) next_round = after_send + period;
  }
}

void NodeRuntime::drain_pending_locked() {
  if (adaptive_ != nullptr && !pending_.empty()) {
    const TimeMs now = clock_();
    // tokens_available is the non-consuming probe: a payload is only moved
    // into the node once its token is certain, so a refusal never eats it.
    while (!pending_.empty() && adaptive_->tokens_available(now)) {
      PendingBroadcast front = std::move(pending_.front());
      pending_.pop_front();
      adaptive_->try_broadcast_on_stream(std::move(front.payload), now,
                                         front.stream, front.supersedes);
    }
  }
  depth_samples_.push_back(pending_.size());
}

void NodeRuntime::on_datagram_batch(const Datagram* batch, std::size_t count,
                                    TimeMs now) {
  // Injected gray failure: a stall rule sleeps the receive path here — the
  // node is slow-but-up (its round thread keeps sending on cadence), which
  // is exactly the failure mode membership suspicion must ride out.
  if (fault_plane_ != nullptr) {
    const DurationMs stall = fault_plane_->stall_for(node_->id(), now);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
  }
  // Decode outside the state lock — the codec needs no node state — then
  // feed the whole burst through under ONE lock acquisition. Malformed
  // datagrams (corruption on the wire) are counted and dropped here, never
  // fed to the node.
  std::vector<gossip::WireMessage> messages;
  messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    gossip::WireMessage message = gossip::decode_any(batch[i].payload);
    if (std::holds_alternative<std::monostate>(message)) {
      decode_drops_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    messages.push_back(std::move(message));
  }
  if (messages.empty()) return;
  std::vector<gossip::LpbcastNode::ControlDatagram> controls;
  const NodeId self = node_->id();
  {
    std::lock_guard lock(mutex_);
    bool handled = false;
    for (const auto& message : messages) {
      handled = node_->on_wire(message, now) || handled;
    }
    if (!handled) return;
    controls = node_->take_outbox();
  }
  for (auto& control : controls) {
    network_.send(Datagram{self, control.target, std::move(control.payload)});
  }
}

EventId NodeRuntime::broadcast(gossip::Payload payload) {
  std::lock_guard lock(mutex_);
  return node_->broadcast(std::move(payload), clock_());
}

bool NodeRuntime::try_broadcast(gossip::Payload payload, EventId* out_id) {
  std::lock_guard lock(mutex_);
  if (adaptive_ == nullptr) return false;
  return adaptive_->try_broadcast(std::move(payload), clock_(), out_id);
}

bool NodeRuntime::enqueue_broadcast(gossip::Payload payload) {
  return enqueue_broadcast_on_stream(std::move(payload), /*stream=*/0,
                                     /*supersedes=*/false);
}

bool NodeRuntime::enqueue_broadcast_on_stream(gossip::Payload payload,
                                              std::uint32_t stream,
                                              bool supersedes) {
  std::lock_guard lock(mutex_);
  if (adaptive_ == nullptr) {
    // Baseline nodes have no rate gate: admitted immediately, exactly like
    // the simulator's non-adaptive sender path.
    node_->broadcast_on_stream(std::move(payload), clock_(), stream,
                               supersedes);
    return true;
  }
  const TimeMs now = clock_();
  if (pending_.empty() && adaptive_->tokens_available(now)) {
    adaptive_->try_broadcast_on_stream(std::move(payload), now, stream,
                                       supersedes);
    return true;
  }
  if (pending_.size() >= pending_cap_) return false;  // refused (queue full)
  pending_.push_back(PendingBroadcast{std::move(payload), stream, supersedes});
  if (pending_.size() > max_pending_depth_) {
    max_pending_depth_ = pending_.size();
  }
  return true;
}

void NodeRuntime::set_pending_cap(std::size_t cap) {
  std::lock_guard lock(mutex_);
  pending_cap_ = cap;
}

gossip::NodeCounters NodeRuntime::counters() const {
  std::lock_guard lock(mutex_);
  return node_->counters();
}

double NodeRuntime::allowed_rate() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->allowed_rate() : 0.0;
}

std::uint32_t NodeRuntime::min_buff() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->min_buff() : 0;
}

double NodeRuntime::avg_age() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->avg_age() : 0.0;
}

std::size_t NodeRuntime::pending_depth() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t NodeRuntime::max_pending_depth() const {
  std::lock_guard lock(mutex_);
  return max_pending_depth_;
}

std::vector<std::size_t> NodeRuntime::pending_depth_samples() const {
  std::lock_guard lock(mutex_);
  return depth_samples_;
}

double NodeRuntime::p_local() const {
  std::lock_guard lock(mutex_);
  return adaptive_ ? adaptive_->p_local() : -1.0;
}

std::size_t NodeRuntime::effective_fanout() const {
  std::lock_guard lock(mutex_);
  return node_->effective_fanout();
}

void NodeRuntime::add_member(NodeId node) {
  std::lock_guard lock(mutex_);
  node_->membership().add(node);
}

void NodeRuntime::remove_member(NodeId node) {
  std::lock_guard lock(mutex_);
  node_->membership().remove(node);
}

std::size_t NodeRuntime::membership_size() const {
  std::lock_guard lock(mutex_);
  return node_->membership().size();
}

void NodeRuntime::on_recover(bool migrate_binding) {
  std::lock_guard lock(mutex_);
  auto* gm = node_->gossip_membership();
  if (gm == nullptr) return;
  if (migrate_binding) {
    membership::EndpointBinding binding = gm->self_record().binding;
    ++binding.port;  // moved host: same node, next port
    gm->set_self_binding(binding);  // bumps the revision itself
  } else {
    gm->on_restart();
  }
}

std::optional<membership::LivenessState> NodeRuntime::peer_state(
    NodeId peer) const {
  std::lock_guard lock(mutex_);
  const auto* gm = node_->gossip_membership();
  return gm == nullptr ? std::nullopt : gm->state_of(peer);
}

membership::GossipMembership* NodeRuntime::gossip_membership() {
  return node_->gossip_membership();
}

void NodeRuntime::set_capacity(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  if (adaptive_ != nullptr) {
    adaptive_->set_capacity(max_events, clock_());
  } else {
    node_->set_max_events(max_events, clock_());
  }
}

}  // namespace agb::runtime
