#include "runtime/endpoint_directory.h"

#include <arpa/inet.h>

#include <cctype>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

namespace agb::runtime {

namespace {

constexpr std::uint32_t kLoopbackHost = 0x7f000001;  // 127.0.0.1

}  // namespace

bool LoopbackDirectory::resolve(NodeId node, UdpEndpoint* out) const {
  const std::uint32_t port = base_port_ + node;
  if (port > 0xffff) return false;  // would wrap past the port space
  *out = UdpEndpoint{kLoopbackHost, static_cast<std::uint16_t>(port)};
  return true;
}

void StaticDirectory::add(NodeId node, UdpEndpoint endpoint) {
  entries_[node] = endpoint;
}

bool StaticDirectory::add_spec(NodeId node, const std::string& spec) {
  UdpEndpoint endpoint;
  if (!parse_endpoint_spec(spec, &endpoint)) return false;
  add(node, endpoint);
  return true;
}

std::optional<StaticDirectory> StaticDirectory::from_file(
    const std::string& path, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot read '" + path + "'");
  StaticDirectory directory;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string at =
        "'" + path + "' line " + std::to_string(line_no) + ": ";
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream fields(line);
    std::string id_token;
    std::string spec;
    std::string trailing;
    if (!(fields >> id_token)) continue;  // blank or comment-only line
    // Any non-blank line must parse completely — a skipped entry would
    // misroute gossip silently. The id must be a bare decimal NodeId
    // (stoul alone would wrap "-1" through unsigned conversion).
    if (!(fields >> spec) || (fields >> trailing)) {
      return fail(at + "expected 'node_id host:port'");
    }
    if (!std::isdigit(static_cast<unsigned char>(id_token.front()))) {
      return fail(at + "node id '" + id_token + "' is not a bare decimal");
    }
    unsigned long node = 0;
    try {
      std::size_t used = 0;
      node = std::stoul(id_token, &used);
      if (used != id_token.size()) {
        return fail(at + "node id '" + id_token + "' is not a bare decimal");
      }
    } catch (const std::exception&) {
      return fail(at + "node id '" + id_token + "' is not a bare decimal");
    }
    if (node > std::numeric_limits<NodeId>::max()) {
      return fail(at + "node id " + id_token + " exceeds the NodeId range");
    }
    // A repeated id would make one of the two endpoints win arbitrarily —
    // reject it instead of silently letting the last line shadow the first.
    if (directory.entries_.contains(static_cast<NodeId>(node))) {
      return fail(at + "duplicate node id " + id_token +
                  " (already mapped earlier in the file)");
    }
    if (!directory.add_spec(static_cast<NodeId>(node), spec)) {
      return fail(at + "malformed endpoint '" + spec +
                  "' (expected a.b.c.d:port)");
    }
  }
  return directory;
}

bool StaticDirectory::resolve(NodeId node, UdpEndpoint* out) const {
  auto it = entries_.find(node);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

membership::TableClusterMap cluster_map_from_directory(
    const EndpointDirectory& directory, const std::vector<NodeId>& nodes) {
  // host → members; std::map orders hosts, which fixes the cluster ids.
  std::map<std::uint32_t, std::vector<NodeId>> by_host;
  for (NodeId node : nodes) {
    UdpEndpoint endpoint;
    if (directory.resolve(node, &endpoint)) {
      by_host[endpoint.ipv4].push_back(node);
    }
  }
  membership::TableClusterMap map;
  membership::ClusterId next = 0;
  for (const auto& entry : by_host) {
    for (NodeId node : entry.second) map.assign(node, next);
    ++next;
  }
  return map;
}

bool parse_endpoint_spec(const std::string& spec, UdpEndpoint* out) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  const std::string host = spec.substr(0, colon);
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) return false;
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(spec.substr(colon + 1), &used);
    if (used != spec.size() - colon - 1) return false;
  } catch (const std::exception&) {
    return false;
  }
  if (port == 0 || port > 0xffff) return false;
  *out = UdpEndpoint{ntohl(addr.s_addr), static_cast<std::uint16_t>(port)};
  return true;
}

}  // namespace agb::runtime
