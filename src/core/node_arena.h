// Contiguous per-node state storage for large simulated groups.
//
// A scenario's group is homogeneous (all baseline or all adaptive nodes),
// so node state can live in one flat allocation instead of n individually
// heap-allocated objects behind unique_ptrs. At 10^5-10^6 nodes this cuts
// allocator overhead and keeps the per-round sweep walking sequential
// memory.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace agb::core {

/// Type-erased owner: Scenario holds one of these plus a flat vector of raw
/// pointers into it, keeping the node type out of the scenario interface.
class NodeArenaBase {
 public:
  virtual ~NodeArenaBase() = default;
};

/// Fixed-capacity typed arena: one contiguous capacity*sizeof(T) block,
/// objects placement-new'ed in build order and destroyed in reverse. Nodes
/// are neither copyable nor movable, so contiguity is decided at build time.
template <typename T>
class NodeArena final : public NodeArenaBase {
 public:
  explicit NodeArena(std::size_t capacity)
      : storage_(static_cast<std::byte*>(::operator new(
            capacity * sizeof(T), std::align_val_t{alignof(T)}))),
        capacity_(capacity) {}

  ~NodeArena() override {
    for (std::size_t i = size_; i-- > 0;) ptr(i)->~T();
    ::operator delete(storage_, std::align_val_t{alignof(T)});
  }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  template <typename... Args>
  T* emplace(Args&&... args) {
    assert(size_ < capacity_);
    T* obj =
        ::new (static_cast<void*>(raw(size_))) T(std::forward<Args>(args)...);
    ++size_;
    return obj;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  [[nodiscard]] std::byte* raw(std::size_t i) noexcept {
    return storage_ + i * sizeof(T);
  }
  [[nodiscard]] T* ptr(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(raw(i)));
  }

  std::byte* storage_;
  std::size_t capacity_;
  std::size_t size_ = 0;
};

}  // namespace agb::core
