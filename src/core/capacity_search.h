// Maximum sustainable input rate search (paper Fig. 4 and §2.3).
//
// For a buffer configuration, the paper experimentally determines the
// largest offered load for which messages still reach at least 95 % of the
// group on average, and records the drop age observed at that knee — the
// critical age a_r that the adaptive mechanism targets. This helper
// reproduces that calibration by bisection over offered load using the
// baseline (non-adaptive) scenario.
#pragma once

#include "core/scenario.h"

namespace agb::core {

struct CapacitySearchResult {
  double max_rate = 0.0;        // highest feasible aggregate load (msg/s)
  double knee_drop_age = 0.0;   // avg overflow-drop age at that load
  double metric_at_knee = 0.0;  // the reliability metric at that load
};

struct CapacitySearchOptions {
  double lo = 1.0;    // known-feasible lower bound (msg/s)
  double hi = 80.0;   // upper bound for the search (msg/s)
  double tol = 1.0;   // stop when hi - lo <= tol

  /// Which reliability standard defines "sustainable".
  enum class Criterion {
    /// Average % of receivers >= threshold — the paper's §2.3 calibration
    /// ("deliver messages to at least an average of 95% of participant
    /// processes"). The laxer standard: tolerates a tail of messages that
    /// miss a few nodes.
    kAvgReceivers,
    /// % of messages delivered to >95 % of the group >= threshold — the
    /// bimodal-atomicity standard of Figs. 2/8(b). Stricter; this is the
    /// level the shipped adaptive marks are calibrated against.
    kAtomicity,
  };
  Criterion criterion = Criterion::kAvgReceivers;
  double threshold = 95.0;
};

/// `base` supplies everything except offered_rate/adaptive (forced off).
CapacitySearchResult find_max_rate(const ScenarioParams& base,
                                   const CapacitySearchOptions& options);

}  // namespace agb::core
