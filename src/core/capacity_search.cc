#include "core/capacity_search.h"

namespace agb::core {

namespace {

struct Probe {
  bool feasible = false;
  double drop_age = 0.0;
  double metric = 0.0;
};

Probe probe(const ScenarioParams& base, double rate,
            const CapacitySearchOptions& options) {
  ScenarioParams params = base;
  params.adaptive = false;
  params.offered_rate = rate;
  Scenario scenario(params);
  auto results = scenario.run();
  const double metric =
      options.criterion == CapacitySearchOptions::Criterion::kAvgReceivers
          ? results.delivery.avg_receiver_pct
          : results.delivery.atomicity_pct;
  return Probe{metric >= options.threshold, results.avg_drop_age, metric};
}

}  // namespace

CapacitySearchResult find_max_rate(const ScenarioParams& base,
                                   const CapacitySearchOptions& options) {
  double lo = options.lo;
  double hi = options.hi;
  CapacitySearchResult best;

  // Expand downward if even `lo` is infeasible: report lo as a degenerate
  // answer rather than searching below the caller's floor.
  Probe lo_probe = probe(base, lo, options);
  if (!lo_probe.feasible) {
    best.max_rate = lo;
    best.knee_drop_age = lo_probe.drop_age;
    best.metric_at_knee = lo_probe.metric;
    return best;
  }
  best.max_rate = lo;
  best.knee_drop_age = lo_probe.drop_age;
  best.metric_at_knee = lo_probe.metric;

  Probe hi_probe = probe(base, hi, options);
  if (hi_probe.feasible) {
    best.max_rate = hi;
    best.knee_drop_age = hi_probe.drop_age;
    best.metric_at_knee = hi_probe.metric;
    return best;
  }

  while (hi - lo > options.tol) {
    const double mid = 0.5 * (lo + hi);
    Probe mid_probe = probe(base, mid, options);
    if (mid_probe.feasible) {
      lo = mid;
      best.max_rate = mid;
      best.knee_drop_age = mid_probe.drop_age;
      best.metric_at_knee = mid_probe.metric;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace agb::core
