// Named scenario presets: the single source of every experiment
// configuration in the repo.
//
// Each preset is a named, documented recipe that turns key=value overrides
// (common::Config) into a full core::ScenarioParams. The figure benches,
// tools/agb_sim and downstream embedders all build their parameters here,
// so adding a workload is a registry entry — not a new binary. Defaults
// layer in a fixed order: calibrated paper60 base < preset-specific
// defaults < user key=value overrides.
//
// Built-in presets (see scenario_registry.cc for the parameter details):
//   paper60          — the calibrated 60-node LAN baseline
//   fig2             — reliability degradation (static, small buffer)
//   fig4             — maximum input rate vs buffer size
//   fig6             — ideal vs adaptive rates
//   fig7             — rates and drop ages, lpbcast vs adaptive
//   fig8             — reliability, lpbcast vs adaptive
//   fig9             — dynamic buffer sizes (capacity schedule)
//   churn            — rolling crash/recover of group members
//   burst-loss       — Gilbert-Elliott bursty loss + pull repair
//   wan-clusters     — three LAN islands joined by slow WAN links
//   wan-directional  — wan-clusters with locality-biased targets + bridges
//   wan-directional-churn — wan-directional with bridges crashing in turn
//   semantic-streams — supersede-heavy streams with semantic purging
//   chaos-soak       — mid-run corruption/duplication/reorder burst
//   asymmetric-partition — one-way link failures under gossiped liveness
//   gray-failure     — stalled + clock-skewed nodes that must not flap
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "core/scenario.h"

namespace agb::core {

/// The calibrated critical age a_r (hops) of the paper60 configuration
/// under the bimodal-atomicity criterion the adaptive marks target.
/// Regenerate with bench/fig4_max_rate (see EXPERIMENTS.md).
inline constexpr double kPaper60CriticalAge = 8.0;

struct ScenarioPreset {
  std::string name;
  std::string summary;  // one line, shown by `agb_sim list=1`
  std::function<ScenarioParams(const Config&)> build;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in presets.
  static ScenarioRegistry& instance();

  ScenarioRegistry();

  /// Adds (or replaces, by name) a preset.
  void add(ScenarioPreset preset);

  [[nodiscard]] const ScenarioPreset* find(std::string_view name) const;

  /// Builds `name` with `cfg` overrides. Throws std::invalid_argument
  /// (with a "did you mean" hint and the known presets) for an unknown
  /// name, and propagates the std::invalid_argument thrown for malformed
  /// spec values; tools catch and translate to exit codes, embedders
  /// handle it like any input error.
  [[nodiscard]] ScenarioParams build(std::string_view name,
                                     const Config& cfg) const;

  /// Preset names close to `name` (small edit distance or one containing
  /// the other), best match first — the "did you mean" list behind
  /// unknown_name_message(). Empty when nothing is plausibly close.
  [[nodiscard]] std::vector<std::string> suggest(std::string_view name) const;

  /// The full diagnostic for a name find() rejected: "did you mean" with
  /// suggest()'s hits (when any) plus the known-preset list. build()
  /// throws exactly this text; tools print it verbatim, so the two paths
  /// can't drift apart.
  [[nodiscard]] std::string unknown_name_message(std::string_view name) const;

  /// All presets, sorted by name.
  [[nodiscard]] std::vector<const ScenarioPreset*> presets() const;

 private:
  std::vector<ScenarioPreset> presets_;
};

/// Applies the shared key=value vocabulary on top of `base`: every key's
/// fallback is the value already in `base`, so presets seed defaults and
/// user overrides always win. Four adaptation knobs (tau_ms, low_mark,
/// high_mark, initial_rate) derive their fallback from other parameters
/// when the base still holds the stock AdaptiveParams default — a base
/// that set them explicitly to a *non-stock* value keeps it (a base value
/// equal to the stock default is indistinguishable from "untouched" and
/// gets the derived fallback; pass the cfg key to pin it exactly).
/// Throws std::invalid_argument on malformed spec values — pre-validate
/// untrusted input with the parse_*_spec helpers below if termination of
/// the calling flow is unacceptable. Understands the full parameter space —
/// group/load/gossip/adaptation/recovery keys plus the spec-valued ones:
///   latency=fixed:ms|uniform:lo:hi|normal:mean:stddev
///   wan_latency=<same grammar>
///   loss=p|burst:pgood:pbad:pgb:pbg
///   capacity=at_ms:frac:cap[,...]
///   failures=at_ms:node:up|down[,...]
///   chaos=rule[,rule...] with rule = kind:args[@start[s]-end[s]], kinds:
///     corrupt:p truncate:p dup:p reorder:p[:ms] oneway:a:b|* stall:node:ms
///     skew:node:ms (window times in seconds, absolute — warmup included)
ScenarioParams params_from_config(const Config& cfg, ScenarioParams base);

/// A registry-driven parameter sweep: `axis:lo:hi:step`, where `axis` is
/// any numeric key of the shared key=value vocabulary (rate, buffer, n,
/// fanout, loss, period_ms, ...). One agb_sim invocation replays a whole
/// per-figure sweep by rebuilding the chosen preset once per axis value —
/// the fig binaries stay as thin wrappers over the same presets.
struct SweepSpec {
  std::string axis;
  double lo = 0.0;
  double hi = 0.0;
  double step = 1.0;

  /// lo, lo+step, ... up to and including hi (with a tolerance of one
  /// part in 1e9 of a step, so fractional axes don't drop the last value).
  [[nodiscard]] std::vector<double> values() const;
};

/// Spec-string parsers, exposed for tools and tests. Return false on
/// malformed input and leave `out` untouched.
bool parse_sweep_spec(const std::string& spec, SweepSpec* out);
bool parse_latency_spec(const std::string& spec, sim::LatencyModel* out);
bool parse_loss_spec(const std::string& spec, sim::LossModel* out);
bool parse_capacity_spec(const std::string& spec,
                         std::vector<CapacityChange>* out);
bool parse_failure_spec(const std::string& spec,
                        std::vector<FailureEvent>* out);
bool parse_chaos_spec(const std::string& spec, fault::ChaosSchedule* out);

/// The diagnostic params_from_config throws for a chaos spec
/// parse_chaos_spec rejected: names the bad spec, suggests the nearest
/// fault kind ("did you mean: corrupt?") for a misspelt one, and restates
/// the rule grammar. Tools print it verbatim (exit 2), so a typo'd
/// `chaos=corupt:0.1` is a correction, not a stack trace.
std::string bad_chaos_spec_message(const std::string& spec);

}  // namespace agb::core
