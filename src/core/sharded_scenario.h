// The scenario harness on the multi-core sharded engine.
//
// Same ScenarioParams, same metrics, same master-RNG build order as the
// classic core::Scenario — but the run executes on sim::ShardedEngine:
// every node lives on shard `id & (sim_shards - 1)` with its round wheel,
// sender state and network randomness confined to that shard, and shards
// advance in conservative lookahead windows, exchanging every datagram
// through the window-barrier channels.
//
// Determinism contract (pinned by tests/sharded_sim_test.cc): for a fixed
// seed, every scenario-visible outcome — per-node delivered-event
// fingerprints, DeliveryReport, NetworkStats (minus the engine-internal
// events_scheduled / peak_event_queue_len), per-node counters, membership
// verdicts, chaos receipts, time series — is identical for every
// sim_shards in {1, 2, 4, 8, ...} and every worker count. The ingredients:
//   * network randomness is per *sender node* (fixed seed derivation, no
//     shared draw-order), so who shares a shard cannot perturb draws;
//   * all deliveries (same-shard too) cross a window barrier and are
//     canonically sorted by (time, sender, send-seq, receiver) before being
//     scheduled, so same-time delivery order is run-invariant;
//   * shared accumulators (DeliveryTracker, drop-age stats, series
//     samplers) are only touched in the serial barrier phase, replaying
//     per-shard logs in canonical order — float accumulation order is
//     fixed, so even doubles compare exactly.
//
// Relationship to the classic engine: ShardedScenario at sim_shards=1 runs
// the same sharded code path (so the determinism suite can compare 1 vs N
// shards exactly); byte-identity with the classic Scenario's golden traces
// is the *driver's* contract — tools/agb_sim routes sim_shards <= 1 to
// core::Scenario untouched. Classic and sharded engines agree on every
// paper-level invariant (the scenario-parity suite runs both), but not on
// exact RNG draws: the classic network samples loss/latency from one shared
// Rng, the sharded one per sender.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "sim/sharded_engine.h"

namespace agb::core {

struct ShardedScenarioResults {
  /// The same report the classic Scenario produces. `net.events_scheduled`
  /// counts batched application groups (one per (shard, deliver-time) run)
  /// and `peak_event_queue_len` sums per-shard peaks — both engine-internal
  /// and excluded from cross-shard-count comparisons.
  ScenarioResults base;
  /// metrics::DeliveryTracker::per_node_fingerprints() of the run.
  std::vector<std::uint64_t> node_fingerprints;
  /// Per-node membership view size at run end, id order (the classic
  /// harness exposes this via Scenario::nodes(); the sharded one reports it
  /// here because node storage dies with the run).
  std::vector<std::size_t> membership_sizes;
  std::size_t shards = 1;   // actual (power-of-two) shard count
  std::size_t workers = 1;  // actual worker threads used
  std::uint64_t windows = 0;  // conservative windows executed
};

class ShardedScenario {
 public:
  explicit ShardedScenario(ScenarioParams params);
  ~ShardedScenario();

  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  /// Runs the full experiment and returns the report. Call once.
  ShardedScenarioResults run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace agb::core
