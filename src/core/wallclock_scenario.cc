#include "core/wallclock_scenario.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/inmemory_fabric.h"
#include "runtime/node_runtime.h"

namespace agb::core {

namespace {

using std::chrono::milliseconds;

/// Maps the preset's network model onto InMemoryFabric::Params. The fabric
/// prices links with the same sim::DelaySampler the simulator's SimNetwork
/// uses, so every latency model (fixed, uniform, normal), the WAN cluster
/// rule and per-link overrides transfer verbatim — this is what retired
/// the old validate() rejections.
runtime::InMemoryFabric::Params fabric_params(const ScenarioParams& p,
                                              const WallclockOptions& o) {
  runtime::InMemoryFabric::Params fp;
  fp.shards = o.shards;
  fp.max_burst = o.max_burst;
  sim::DelaySampler sampler(p.network.latency, p.network.clusters,
                            p.network.wan_latency);
  for (const ScenarioParams::LinkLatency& link : p.link_latencies) {
    sampler.set_link_override(link.a, link.b, link.model);
  }
  fp.sampler = std::move(sampler);
  fp.clusters = p.network.clusters;
  switch (p.network.loss.kind) {
    case sim::LossModel::Kind::kNone:
      break;
    case sim::LossModel::Kind::kIid:
      fp.loss_probability = p.network.loss.p;
      break;
    case sim::LossModel::Kind::kBurst:
      fp.burst_loss = true;
      fp.loss_p_good = p.network.loss.p_good;
      fp.loss_p_bad = p.network.loss.p_bad;
      fp.loss_p_gb = p.network.loss.p_gb;
      fp.loss_p_bg = p.network.loss.p_bg;
      break;
  }
  return fp;
}

/// One entry of the merged failure + capacity timeline.
struct ScheduledAction {
  TimeMs at = 0;
  bool is_failure = false;
  FailureEvent failure;
  CapacityChange capacity;
};

}  // namespace

struct WallclockScenario::Impl {
  explicit Impl(ScenarioParams p, WallclockOptions o)
      : params(std::move(p)), options(o), master_rng(params.seed) {}

  ScenarioParams params;
  WallclockOptions options;
  Rng master_rng;

  std::unique_ptr<runtime::InMemoryFabric> fabric;
  std::unique_ptr<fault::FaultPlane> fault_plane;  // null on clean runs
  std::vector<std::unique_ptr<runtime::NodeRuntime>> runtimes;
  TimeMs epoch = 0;  // fabric time when the run started

  std::mutex tracker_mutex;
  metrics::DeliveryTracker tracker{1};
  std::uint64_t app_deliveries = 0;

  std::mutex sched_mutex;
  std::condition_variable sched_cv;
  bool sched_stop = false;
  std::thread scheduler;

  /// Control-plane trajectory sampler (only started when
  /// adaptation.control.enabled): records the group-mean p_local every
  /// ~200 ms so tests can watch it rise under congestion and recover.
  std::thread plane_sampler;
  metrics::TimeSeries p_local_ts{"p_local"};  // guarded by sched_mutex

  bool ran = false;

  [[nodiscard]] TimeMs rel_now() const { return fabric->now() - epoch; }

  void apply(const ScheduledAction& action);
  void scheduler_loop(std::vector<ScheduledAction> actions);
  void sampler_loop();
  void run_senders(std::uint64_t* offered, std::uint64_t* admitted,
                   std::uint64_t* refused);
};

void WallclockScenario::validate(const ScenarioParams& params) {
  // Nothing left to reject: the fabric samples delays through the same
  // sim::DelaySampler as the simulator, which closed the last two gaps
  // (normal-latency models and per-link overrides). The gate stays so a
  // future simulator-only feature has exactly one place to be refused.
  (void)params;
}

WallclockScenario::WallclockScenario(ScenarioParams params,
                                     WallclockOptions options)
    : impl_(std::make_unique<Impl>(std::move(params), options)) {
  validate(impl_->params);
}

WallclockScenario::~WallclockScenario() {
  if (impl_->scheduler.joinable() || impl_->plane_sampler.joinable()) {
    {
      std::lock_guard lock(impl_->sched_mutex);
      impl_->sched_stop = true;
    }
    impl_->sched_cv.notify_all();
    if (impl_->scheduler.joinable()) impl_->scheduler.join();
    if (impl_->plane_sampler.joinable()) impl_->plane_sampler.join();
  }
}

void WallclockScenario::Impl::apply(const ScheduledAction& action) {
  if (action.is_failure) {
    const FailureEvent& event = action.failure;
    fabric->set_node_up(event.node, event.up);
    if (event.up && event.node < runtimes.size()) {
      // Mirror of the simulator's rejoin semantics: a recovering node
      // running gossip membership bumps its own revision (and rotates its
      // advertised binding under host migration). No-op for oracle-driven
      // membership stacks.
      runtimes[event.node]->on_recover(params.migrate_on_rejoin);
    }
    if (!params.failure_detector) return;
    // Perfect failure detection, as under the simulator: every survivor's
    // view learns the change at once, so locality bridge election reacts
    // within one round.
    for (auto& runtime : runtimes) {
      if (runtime->id() == event.node) continue;
      if (event.up) {
        runtime->add_member(event.node);
      } else {
        runtime->remove_member(event.node);
      }
    }
    return;
  }
  const CapacityChange& change = action.capacity;
  const auto affected = static_cast<std::size_t>(
      change.node_fraction * static_cast<double>(params.n));
  for (std::size_t i = 0; i < std::min(affected, params.n); ++i) {
    runtimes[i]->set_capacity(change.new_capacity);
  }
}

void WallclockScenario::Impl::scheduler_loop(
    std::vector<ScheduledAction> actions) {
  std::unique_lock lock(sched_mutex);
  for (const ScheduledAction& action : actions) {
    // Chase the fabric clock in bounded waits so a stop request is never
    // outslept and clock drift against sleep_for cannot skew the schedule.
    while (!sched_stop && rel_now() < action.at) {
      const DurationMs remaining = action.at - rel_now();
      sched_cv.wait_for(lock, milliseconds(std::min<DurationMs>(
                                  std::max<DurationMs>(remaining, 1), 50)));
    }
    if (sched_stop) return;
    apply(action);
  }
}

void WallclockScenario::Impl::sampler_loop() {
  std::unique_lock lock(sched_mutex);
  while (!sched_stop) {
    sched_cv.wait_for(lock, milliseconds(200));
    if (sched_stop) return;
    lock.unlock();
    // Snapshot outside sched_mutex: p_local() takes each runtime's node
    // lock, and holding two unrelated locks at once invites inversions.
    double sum = 0.0;
    std::size_t count = 0;
    for (auto& runtime : runtimes) {
      const double p = runtime->p_local();
      if (p >= 0.0) {
        sum += p;
        ++count;
      }
    }
    const TimeMs t = rel_now();
    lock.lock();
    if (count > 0) p_local_ts.add(t, sum / static_cast<double>(count));
  }
}

void WallclockScenario::Impl::run_senders(std::uint64_t* offered,
                                          std::uint64_t* admitted,
                                          std::uint64_t* refused) {
  struct SenderState {
    runtime::NodeRuntime* runtime = nullptr;
    double rate = 0.0;
    Rng rng{0};
    TimeMs next = 0;
  };
  const auto sender_ids = scenario_sender_ids(params.n, params.senders);
  const double per_sender =
      params.offered_rate / static_cast<double>(sender_ids.size());
  if (per_sender <= 0.0) {
    // No offered load: idle through the traffic window (gossip digests
    // still flow), so the report covers the configured wall-clock span.
    std::this_thread::sleep_for(
        milliseconds(params.warmup + params.duration));
    return;
  }
  const double mean_ms = 1000.0 / per_sender;

  std::vector<SenderState> senders;
  senders.reserve(sender_ids.size());
  for (NodeId id : sender_ids) {
    SenderState s;
    s.runtime = runtimes[id].get();
    s.rate = per_sender;
    s.rng = master_rng.split();
    s.next = static_cast<TimeMs>(std::max(
        1.0, params.poisson_arrivals ? s.rng.exponential(mean_ms) : mean_ms));
    senders.push_back(std::move(s));
  }

  // Offered load runs across warmup + duration; the evaluation window is
  // carved out by the tracker afterwards. (The sim harness keeps its
  // arrival processes ticking through cooldown too, so offered/refused
  // totals are not comparable across paths — the windowed delivery
  // metrics, which exclude cooldown on both, are.)
  const TimeMs window_end = params.warmup + params.duration;
  while (true) {
    TimeMs earliest = window_end;
    for (const SenderState& s : senders) earliest = std::min(earliest, s.next);
    if (earliest >= window_end) break;
    const TimeMs now = rel_now();
    if (now < earliest) {
      std::this_thread::sleep_for(milliseconds(earliest - now));
      continue;
    }
    for (SenderState& s : senders) {
      if (s.next > now || s.next >= window_end) continue;
      auto payload = gossip::make_payload(
          std::vector<std::uint8_t>(params.payload_size, 0xab));
      ++*offered;
      // Tracker accounting happens in the deliver handler (the origin's
      // local delivery), atomically with the broadcast itself.
      if (params.adaptive) {
        // Blocking-BROADCAST semantics, like the simulator's sender path:
        // out-of-tokens arrivals queue on the node (drained as the bucket
        // refills) and only a full pending queue refuses.
        if (s.runtime->enqueue_broadcast(std::move(payload))) {
          ++*admitted;
        } else {
          ++*refused;  // pending queue full: this arrival is refused
        }
      } else {
        s.runtime->broadcast(std::move(payload));
        ++*admitted;
      }
      const double gap = std::max(
          1.0, params.poisson_arrivals ? s.rng.exponential(mean_ms)
                                       : mean_ms);
      s.next += static_cast<TimeMs>(gap);
    }
  }
  // Run the clock out to the end of the traffic window.
  const TimeMs left = window_end - rel_now();
  if (left > 0) std::this_thread::sleep_for(milliseconds(left));
}

WallclockResults WallclockScenario::run() {
  Impl& im = *impl_;
  if (im.ran) return {};
  im.ran = true;

  // The fabric takes the first master-RNG split, exactly where Scenario
  // seeds its SimNetwork — every later split (the per-node streams) then
  // lines up with the simulator run of the same seed.
  const std::uint64_t fabric_seed = im.master_rng.split().next();
  im.fabric = std::make_unique<runtime::InMemoryFabric>(
      fabric_params(im.params, im.options), fabric_seed);
  im.tracker = metrics::DeliveryTracker(im.params.n);

  if (!im.params.chaos.empty()) {
    // Rule windows are run-relative; the fabric clock is not. Shift every
    // window by the fabric time at which the run is about to start (node
    // construction between here and start() is sub-millisecond noise
    // against windows hundreds of ms wide). Same seed derivation as the
    // simulator path, so both planes inject identical decisions per seed.
    fault::ChaosSchedule shifted = im.params.chaos;
    const TimeMs epoch0 = im.fabric->now();
    for (fault::FaultRule& rule : shifted.rules) {
      rule.start += epoch0;
      if (rule.end != fault::kNoEnd) rule.end += epoch0;
    }
    im.fault_plane = std::make_unique<fault::FaultPlane>(
        std::move(shifted), fault::chaos_seed(im.params.seed));
    im.fabric->set_fault_plane(im.fault_plane.get());
  }

  const auto cluster_map = scenario_cluster_map(im.params);
  im.runtimes.reserve(im.params.n);
  for (std::size_t i = 0; i < im.params.n; ++i) {
    const auto id = static_cast<NodeId>(i);
    runtime::NodeRuntime::Clock clock = [fabric = im.fabric.get()] {
      return fabric->now();
    };
    if (im.fault_plane != nullptr) {
      // Skewed round clock with a monotonic clamp: while a skew rule is
      // live the node reads a clock `amount` ms ahead; when the window
      // closes the raw reading would jump backward, so the clamp holds the
      // node's clock at its high-water mark until real time catches up —
      // clocks misbehave, but they never run backwards.
      clock = [fabric = im.fabric.get(), plane = im.fault_plane.get(), id,
               last = std::make_shared<std::atomic<TimeMs>>(0)] {
        const TimeMs raw = fabric->now();
        TimeMs t = raw + plane->clock_skew(id, raw);
        TimeMs prev = last->load(std::memory_order_relaxed);
        while (t > prev && !last->compare_exchange_weak(
                               prev, t, std::memory_order_relaxed)) {
        }
        return std::max(t, prev);
      };
    }
    auto runtime = std::make_unique<runtime::NodeRuntime>(
        build_scenario_node(im.params, id, im.master_rng, cluster_map),
        *im.fabric, std::move(clock));
    if (im.fault_plane != nullptr) {
      runtime->set_fault_plane(im.fault_plane.get());
    }
    runtime->set_deliver_handler(
        [&im, id](const gossip::Event& e, TimeMs now) {
          std::lock_guard lock(im.tracker_mutex);
          const TimeMs t = now - im.epoch;
          if (e.id.origin == id) {
            // The origin's local delivery fires inside broadcast(), under
            // the node lock — before the round thread can emit the event.
            // Registering the broadcast here (not after broadcast()
            // returns on the sender thread) means no remote delivery can
            // ever reach the tracker before its record exists.
            im.tracker.on_broadcast(e.id, id, t);
            im.tracker.on_delivery(e.id, id, t);
            return;
          }
          ++im.app_deliveries;
          im.tracker.on_delivery(e.id, id, t);
        });
    runtime->set_pending_cap(im.params.pending_cap);
    im.runtimes.push_back(std::move(runtime));
  }

  // Merge the failure and capacity schedules into one timeline for the
  // scheduler thread (stable order for equal times: failures first, like
  // Scenario registering failure callbacks after capacity ones matters
  // only to ties, which neither path promises an order for).
  std::vector<ScheduledAction> actions;
  actions.reserve(im.params.failure_schedule.size() +
                  im.params.capacity_schedule.size());
  for (const FailureEvent& event : im.params.failure_schedule) {
    actions.push_back({event.at, true, event, {}});
  }
  for (const CapacityChange& change : im.params.capacity_schedule) {
    actions.push_back({change.at, false, {}, change});
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const ScheduledAction& a, const ScheduledAction& b) {
                     return a.at < b.at;
                   });

  im.epoch = im.fabric->now();
  for (auto& runtime : im.runtimes) runtime->start();
  if (!actions.empty()) {
    im.scheduler = std::thread(
        [&im, actions = std::move(actions)]() mutable {
          im.scheduler_loop(std::move(actions));
        });
  }
  if (im.params.adaptive && im.params.adaptation.control.enabled) {
    im.plane_sampler = std::thread([&im] { im.sampler_loop(); });
  }

  WallclockResults results;
  im.run_senders(&results.offered, &results.admitted,
                 &results.refused_broadcasts);

  // Traffic-window snapshot: the cooldown below only lets in-flight gossip
  // land, and folding its idle tail into elapsed would understate
  // datagrams/s.
  results.fabric_delivered = im.fabric->delivered();
  results.elapsed_s = static_cast<double>(im.rel_now()) / 1000.0;

  if (im.params.cooldown > 0) {
    std::this_thread::sleep_for(milliseconds(im.params.cooldown));
  }
  {
    std::lock_guard lock(im.sched_mutex);
    im.sched_stop = true;
  }
  im.sched_cv.notify_all();
  if (im.scheduler.joinable()) im.scheduler.join();
  if (im.plane_sampler.joinable()) im.plane_sampler.join();
  for (auto& runtime : im.runtimes) runtime->stop();

  const TimeMs eval_start = im.params.warmup;
  const TimeMs eval_end = im.params.warmup + im.params.duration;
  {
    std::lock_guard lock(im.tracker_mutex);
    results.delivery = im.tracker.report(eval_start, eval_end);
    results.app_deliveries = im.app_deliveries;
  }
  results.offered_rate = im.params.offered_rate;
  results.input_rate = results.delivery.input_rate;
  results.output_rate = results.delivery.output_rate;
  results.fabric_dropped = im.fabric->dropped();
  results.fabric_dropped_down = im.fabric->dropped_down();
  results.dropped_chaos = im.fabric->dropped_chaos();
  results.sent_intra_cluster = im.fabric->sent_intra_cluster();
  results.sent_cross_cluster = im.fabric->sent_cross_cluster();
  std::vector<std::size_t> depth_samples;
  double p_local_sum = 0.0;
  std::size_t p_local_nodes = 0;
  double fanout_sum = 0.0;
  for (auto& runtime : im.runtimes) {
    const auto counters = runtime->counters();
    results.overflow_drops += counters.drops_overflow;
    results.age_limit_drops += counters.drops_age_limit;
    results.decode_drops += runtime->decode_drops();
    if (const auto* gm = runtime->gossip_membership()) {
      results.membership_transitions.suspicions += gm->counters().suspicions;
      results.membership_transitions.downs += gm->counters().downs;
      results.membership_transitions.revivals += gm->counters().revivals;
    }
    results.membership_sizes.push_back(runtime->membership_size());
    results.max_pending_depth =
        std::max(results.max_pending_depth, runtime->max_pending_depth());
    const auto samples = runtime->pending_depth_samples();
    depth_samples.insert(depth_samples.end(), samples.begin(), samples.end());
    const double p = runtime->p_local();
    if (p >= 0.0) {
      p_local_sum += p;
      ++p_local_nodes;
    }
    fanout_sum += static_cast<double>(runtime->effective_fanout());
  }
  if (p_local_nodes > 0) {
    results.avg_p_local = p_local_sum / static_cast<double>(p_local_nodes);
  }
  if (!im.runtimes.empty()) {
    results.avg_effective_fanout =
        fanout_sum / static_cast<double>(im.runtimes.size());
  }
  if (!depth_samples.empty()) {
    std::sort(depth_samples.begin(), depth_samples.end());
    const auto pct = [&depth_samples](double q) {
      return depth_samples[static_cast<std::size_t>(
          q * static_cast<double>(depth_samples.size() - 1))];
    };
    results.pending_depth_p50 = pct(0.50);
    results.pending_depth_p90 = pct(0.90);
    results.pending_depth_p99 = pct(0.99);
  }
  {
    std::lock_guard lock(im.sched_mutex);
    results.p_local_ts = im.p_local_ts;
  }
  for (std::size_t s = 0; s < im.fabric->shard_count(); ++s) {
    results.shard_depths.push_back(im.fabric->max_queue_depth(s));
  }
  if (im.fault_plane != nullptr) {
    results.chaos = im.fault_plane->stats();
    if (const auto window = chaos_recovery_window(im.params)) {
      std::lock_guard lock(im.tracker_mutex);
      results.post_chaos_delivery =
          im.tracker.report(window->first, window->second);
    }
  }
  return results;
}

}  // namespace agb::core
