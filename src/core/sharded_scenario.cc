#include "core/sharded_scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <utility>

#include "gossip/message.h"

namespace agb::core {

namespace {

// One shared-accumulator operation, logged by the shard that observed it
// during window execution and replayed into the shared DeliveryTracker /
// drop-age stats in the serial barrier phase. The replay order — (time,
// kind, event, node, value) — is total over distinct operations and
// independent of shard layout, which is what makes order-sensitive
// accumulations (atomicity timestamps, Welford drop-age) exactly
// reproducible at any shard/worker count. Broadcasts sort ahead of
// same-time deliveries so an origin's local delivery never races its own
// record creation.
struct TrackerOp {
  enum class Kind : std::uint8_t {
    kBroadcast = 0,
    kDelivery = 1,
    kDropAge = 2,
  };
  TimeMs at = 0;
  Kind kind = Kind::kBroadcast;
  EventId event;
  NodeId node = 0;
  double value = 0.0;  // drop age for kDropAge
};

bool tracker_op_before(const TrackerOp& a, const TrackerOp& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.event.origin != b.event.origin) return a.event.origin < b.event.origin;
  if (a.event.sequence != b.event.sequence) {
    return a.event.sequence < b.event.sequence;
  }
  if (a.node != b.node) return a.node < b.node;
  return a.value < b.value;
}

// Per-node seed derivations: fixed functions of (scenario seed, node id),
// never master-RNG splits. Network randomness must not depend on which
// nodes share a shard (draw order from a shared Rng would), and must not
// shift the protocol's own master stream (the node-build draws stay at the
// exact positions core::Scenario uses).
std::uint64_t node_net_seed(std::uint64_t scenario_seed, NodeId id) {
  std::uint64_t state = scenario_seed ^ 0x6e65742d73656564ull;  // "net-seed"
  state += (static_cast<std::uint64_t>(id) + 1) * 0x9e3779b97f4a7c15ull;
  (void)splitmix64(state);
  return splitmix64(state);
}

std::uint64_t node_chaos_seed(std::uint64_t scenario_seed, NodeId id) {
  std::uint64_t state = fault::chaos_seed(scenario_seed);
  state += (static_cast<std::uint64_t>(id) + 1) * 0x9e3779b97f4a7c15ull;
  (void)splitmix64(state);
  return splitmix64(state);
}

// Lower bound (ms) on what the model can sample; may be negative for
// normal (the sampler clamps at 0).
double model_min_ms(const sim::LatencyModel& m) {
  switch (m.kind) {
    case sim::LatencyModel::Kind::kFixed:
    case sim::LatencyModel::Kind::kUniform:
      return m.a;
    case sim::LatencyModel::Kind::kNormal:
      return 0.0;
  }
  return 0.0;
}

// The conservative window length L: a lower bound on network delay, so no
// datagram emitted inside a window can be due before the window closes.
// Every sampled delay is additionally clamped to >= L, so the engine stays
// safe even when the user raises lookahead_ms above the model minimum (the
// knob then coarsens the delay floor — documented in ScenarioParams).
DurationMs derive_lookahead(const ScenarioParams& params) {
  if (params.lookahead_ms > 0) return params.lookahead_ms;
  double min_ms = model_min_ms(params.network.latency);
  if (params.network.clusters > 1) {
    min_ms = std::min(min_ms, model_min_ms(params.network.wan_latency));
  }
  for (const auto& link : params.link_latencies) {
    min_ms = std::min(min_ms, model_min_ms(link.model));
  }
  return std::max<DurationMs>(1, static_cast<DurationMs>(std::floor(min_ms)));
}

}  // namespace

struct ShardedScenario::Impl {
  struct SenderState {
    NodeId id = kInvalidNode;
    std::size_t shard = 0;
    gossip::LpbcastNode* node = nullptr;                // non-owning
    adaptive::AdaptiveLpbcastNode* adaptive = nullptr;  // null for baseline
    double rate = 0.0;                                  // offered msg/s
    Rng rng{0};
    std::deque<gossip::Payload> pending;
    std::unique_ptr<sim::PeriodicTimer> retry_timer;
  };

  struct RoundBucket {
    TimeMs phase = 0;
    std::vector<gossip::LpbcastNode*> nodes;
  };

  /// Everything a shard's worker thread touches during window execution:
  /// its arena slice, round wheel, senders, stats and the operation log
  /// drained in the serial phase. Nothing here is read or written by any
  /// other worker mid-window.
  struct Shard {
    std::unique_ptr<NodeArenaBase> storage;
    std::vector<gossip::LpbcastNode*> members;  // owned ids, ascending
    std::vector<RoundBucket> buckets;
    std::vector<std::unique_ptr<SenderState>> senders;
    sim::NetworkStats stats;
    std::vector<TrackerOp> log;
    std::uint64_t refused = 0;
    std::uint64_t decode_failures = 0;
    std::size_t max_pending_depth = 0;
  };

  explicit Impl(ScenarioParams params)
      : params_(std::move(params)),
        master_rng_(params_.seed),
        sampler_(params_.network.latency, params_.network.clusters,
                 params_.network.wan_latency),
        lookahead_(derive_lookahead(params_)),
        engine_(sim::ShardedEngineParams{params_.sim_shards,
                                         params_.sim_workers, lookahead_}),
        tracker_(params_.n),
        next_sample_(params_.series_bucket) {
    // The classic ctor hands one master split to SimNetwork; burn the same
    // split so every subsequent draw — membership bootstraps, node seeds,
    // round phases, sender streams — sits at the exact master-RNG position
    // core::Scenario reads it from. Network randomness here is per sender
    // node instead (node_net_seed), so shard layout can't perturb it.
    (void)master_rng_.split();

    net_rng_.reserve(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i) {
      net_rng_.emplace_back(node_net_seed(params_.seed, static_cast<NodeId>(i)));
    }
    burst_bad_.assign(params_.n, 0);
    send_seq_.assign(params_.n, 0);
    down_.assign(params_.n, 0);
    if (!params_.chaos.empty()) {
      fault_planes_.reserve(params_.n);
      for (std::size_t i = 0; i < params_.n; ++i) {
        fault_planes_.push_back(std::make_unique<fault::FaultPlane>(
            params_.chaos,
            node_chaos_seed(params_.seed, static_cast<NodeId>(i))));
      }
    }
  }

  [[nodiscard]] bool in_eval_window(TimeMs t) const {
    return t >= params_.warmup && t < params_.warmup + params_.duration;
  }

  void build_nodes() {
    const std::size_t shard_count = engine_.shards();
    shards_.resize(shard_count);
    per_shard_scratch_.resize(shard_count);
    std::vector<std::size_t> population(shard_count, 0);
    for (std::size_t i = 0; i < params_.n; ++i) {
      ++population[engine_.shard_of(static_cast<NodeId>(i))];
    }

    nodes_.reserve(params_.n);
    const auto cluster_map = scenario_cluster_map(params_);
    // Build in global id order — the master-RNG consumption contract shared
    // with core::Scenario — emplacing each node into its owner shard's
    // arena slice.
    if (params_.adaptive) {
      std::vector<NodeArena<adaptive::AdaptiveLpbcastNode>*> arenas(
          shard_count);
      for (std::size_t s = 0; s < shard_count; ++s) {
        auto arena = std::make_unique<NodeArena<adaptive::AdaptiveLpbcastNode>>(
            std::max<std::size_t>(1, population[s]));
        arenas[s] = arena.get();
        shards_[s].storage = std::move(arena);
      }
      adaptive_nodes_.reserve(params_.n);
      for (std::size_t i = 0; i < params_.n; ++i) {
        const auto id = static_cast<NodeId>(i);
        auto view =
            build_scenario_membership(params_, id, master_rng_, cluster_map);
        auto* node = arenas[engine_.shard_of(id)]->emplace(
            id, params_.gossip, params_.adaptation, std::move(view),
            master_rng_.split());
        adaptive_nodes_.push_back(node);
        nodes_.push_back(node);
      }
    } else {
      std::vector<NodeArena<gossip::LpbcastNode>*> arenas(shard_count);
      for (std::size_t s = 0; s < shard_count; ++s) {
        auto arena = std::make_unique<NodeArena<gossip::LpbcastNode>>(
            std::max<std::size_t>(1, population[s]));
        arenas[s] = arena.get();
        shards_[s].storage = std::move(arena);
      }
      for (std::size_t i = 0; i < params_.n; ++i) {
        const auto id = static_cast<NodeId>(i);
        auto view =
            build_scenario_membership(params_, id, master_rng_, cluster_map);
        nodes_.push_back(arenas[engine_.shard_of(id)]->emplace(
            id, params_.gossip, std::move(view), master_rng_.split()));
      }
    }

    for (gossip::LpbcastNode* node : nodes_) {
      const NodeId id = node->id();
      const std::size_t s = engine_.shard_of(id);
      shards_[s].members.push_back(node);
      // Handlers log into the owner shard's operation stream; the shared
      // tracker is only touched at barriers (merge_logs).
      node->set_deliver_handler([this, id, s](const gossip::Event& e,
                                              TimeMs now) {
        if (e.id.origin == id) return;  // origin accounted at broadcast time
        shards_[s].log.push_back(
            TrackerOp{now, TrackerOp::Kind::kDelivery, e.id, id, 0.0});
      });
      node->set_drop_handler([this, id, s](const gossip::Event& e,
                                           gossip::DropReason reason,
                                           TimeMs now) {
        if (reason != gossip::DropReason::kBufferOverflow) return;
        shards_[s].log.push_back(TrackerOp{now, TrackerOp::Kind::kDropAge,
                                           EventId{}, id,
                                           static_cast<double>(e.age)});
      });
    }
  }

  void apply_topology() {
    for (const auto& link : params_.link_latencies) {
      sampler_.set_link_override(link.a, link.b, link.model);
    }
  }

  [[nodiscard]] bool loss_drop(NodeId from) {
    Rng& rng = net_rng_[from];
    switch (params_.network.loss.kind) {
      case sim::LossModel::Kind::kNone:
        return false;
      case sim::LossModel::Kind::kIid:
        return rng.bernoulli(params_.network.loss.p);
      case sim::LossModel::Kind::kBurst: {
        // One Gilbert-Elliott chain per *sender*, advanced per packet —
        // shard-count invariant where the classic engine's single shared
        // chain is not. Burstiness still correlates consecutive packets of
        // a sender's fan-out, which is the loss pattern gossip fears.
        bool bad = burst_bad_[from] != 0;
        if (bad) {
          if (rng.bernoulli(params_.network.loss.p_bg)) bad = false;
        } else {
          if (rng.bernoulli(params_.network.loss.p_gb)) bad = true;
        }
        burst_bad_[from] = bad ? 1 : 0;
        return rng.bernoulli(bad ? params_.network.loss.p_bad
                                 : params_.network.loss.p_good);
      }
    }
    return false;
  }

  /// The sharded twin of SimNetwork::send_batch: same stats, same drop
  /// precedence (down > loss > chaos), but every surviving datagram goes
  /// into the window-barrier channels instead of the local event queue, and
  /// the receiver-down check moves to delivery time on the owner shard (a
  /// sender cannot read remote liveness mid-window).
  void send_multicast(std::size_t s, Multicast batch) {
    sim::NetworkStats& stats = shards_[s].stats;
    ++stats.batches;
    stats.sent += batch.targets.size();
    const TimeMs now = engine_.shard(s).now();
    const NodeId from = batch.from;
    const bool sender_down = down_[from] != 0;
    for (NodeId to : batch.targets) {
      const bool cross_cluster = sampler_.cross_cluster(from, to);
      ++(cross_cluster ? stats.sent_cross_cluster : stats.sent_intra_cluster);
      if (sender_down) {
        ++stats.dropped_down;
        continue;
      }
      if (loss_drop(from)) {
        ++stats.dropped_loss;
        continue;
      }
      fault::FaultAction action;
      if (!fault_planes_.empty()) {
        // Per-node plane, sampled at event time on the sender's shard
        // clock: a window rule answers from `now` alone, so the verdict is
        // identical no matter which shard fires it.
        action = fault_planes_[from]->sample(from, to, now);
      }
      if (action.drop) {
        ++stats.dropped_chaos;
        continue;
      }
      DurationMs delay = sampler_.sample(from, to, net_rng_[from]);
      delay = std::max(delay, lookahead_);  // conservative horizon floor
      if (action.special()) {
        SharedBytes payload =
            (action.corrupt || action.truncate)
                ? fault_planes_[from]->mutate(batch.payload, action)
                : batch.payload;
        for (int copy = 0; copy <= action.duplicates; ++copy) {
          engine_.push(s, sim::CrossShardDatagram{
                              now + delay + action.extra_delay, from, to,
                              send_seq_[from]++, payload});
        }
        continue;
      }
      engine_.push(s, sim::CrossShardDatagram{now + delay, from, to,
                                              send_seq_[from]++,
                                              batch.payload});
    }
  }

  void emit(std::size_t s, gossip::LpbcastNode& node,
            gossip::LpbcastNode::Outgoing out) {
    if (!out.targets.empty()) {
      send_multicast(s, std::move(out).to_multicast(node.id()));
    }
    drain_outbox(s, node);
  }

  void drain_outbox(std::size_t s, gossip::LpbcastNode& node) {
    for (auto& control : node.take_outbox()) {
      send_multicast(s, Multicast{node.id(),
                                  {control.target},
                                  std::move(control.payload)});
    }
  }

  void start_round_timers() {
    // Same phase draw as the classic engine: one master-RNG call per node
    // in global id order. Nodes sharing (shard, phase) ride one wheel
    // event on the shard's own clock.
    std::vector<std::unordered_map<TimeMs, std::size_t>> bucket_index(
        shards_.size());
    for (gossip::LpbcastNode* node : nodes_) {
      const auto phase = static_cast<TimeMs>(master_rng_.next_below(
          static_cast<std::uint64_t>(params_.gossip.gossip_period)));
      const std::size_t s = engine_.shard_of(node->id());
      const auto [it, inserted] =
          bucket_index[s].try_emplace(phase, shards_[s].buckets.size());
      if (inserted) shards_[s].buckets.push_back(RoundBucket{phase, {}});
      shards_[s].buckets[it->second].nodes.push_back(node);
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (std::size_t i = 0; i < shards_[s].buckets.size(); ++i) {
        engine_.shard(s).at(shards_[s].buckets[i].phase,
                            [this, s, i] { tick_round_bucket(s, i); });
      }
    }
  }

  void tick_round_bucket(std::size_t s, std::size_t index) {
    sim::Simulator& sim = engine_.shard(s);
    const TimeMs now = sim.now();  // the shard clock, never a global one
    sim.at(now + params_.gossip.gossip_period,
           [this, s, index] { tick_round_bucket(s, index); });
    for (gossip::LpbcastNode* node : shards_[s].buckets[index].nodes) {
      emit(s, *node, node->on_round(now));
    }
  }

  void sender_arrival(SenderState& sender) {
    Shard& shard = shards_[sender.shard];
    auto payload = gossip::make_payload(
        std::vector<std::uint8_t>(params_.payload_size, 0xab));
    if (sender.pending.size() >= params_.pending_cap) {
      ++shard.refused;
    } else {
      sender.pending.push_back(std::move(payload));
      shard.max_pending_depth =
          std::max(shard.max_pending_depth, sender.pending.size());
    }
    drain_sender(sender);

    const double mean_ms = 1000.0 / sender.rate;
    const auto gap = static_cast<DurationMs>(std::max(
        1.0, params_.poisson_arrivals ? sender.rng.exponential(mean_ms)
                                      : mean_ms));
    engine_.shard(sender.shard).after(
        gap, [this, &sender] { sender_arrival(sender); });
  }

  void drain_sender(SenderState& sender) {
    const TimeMs now = engine_.shard(sender.shard).now();
    std::vector<TrackerOp>& log = shards_[sender.shard].log;
    while (!sender.pending.empty()) {
      EventId id;
      const bool supersedes =
          params_.supersede_probability > 0.0 &&
          sender.rng.bernoulli(params_.supersede_probability);
      if (sender.adaptive != nullptr) {
        if (!sender.adaptive->try_broadcast_on_stream(
                sender.pending.front(), now, /*stream=*/sender.id, supersedes,
                &id)) {
          break;  // no tokens; the retry timer will try again
        }
      } else {
        id = sender.node->broadcast_on_stream(sender.pending.front(), now,
                                              /*stream=*/sender.id,
                                              supersedes);
      }
      sender.pending.pop_front();
      log.push_back(
          TrackerOp{now, TrackerOp::Kind::kBroadcast, id, sender.id, 0.0});
      log.push_back(
          TrackerOp{now, TrackerOp::Kind::kDelivery, id, sender.id, 0.0});
    }
  }

  void start_senders() {
    const auto sender_ids = scenario_sender_ids(params_.n, params_.senders);
    const double per_sender =
        params_.offered_rate / static_cast<double>(sender_ids.size());
    for (NodeId id : sender_ids) {
      const std::size_t s = engine_.shard_of(id);
      auto sender = std::make_unique<SenderState>();
      sender->id = id;
      sender->shard = s;
      sender->node = nodes_[id];
      sender->adaptive = params_.adaptive ? adaptive_nodes_[id] : nullptr;
      sender->rate = per_sender;
      sender->rng = master_rng_.split();

      sender->retry_timer = std::make_unique<sim::PeriodicTimer>(
          engine_.shard(s), 100, 100, [this, raw = sender.get()](TimeMs) {
            if (!raw->pending.empty()) drain_sender(*raw);
          });

      const auto first = static_cast<DurationMs>(
          sender->rng.exponential(1000.0 / sender->rate));
      engine_.shard(s).after(std::max<DurationMs>(first, 1),
                             [this, raw = sender.get()] {
                               sender_arrival(*raw);
                             });
      all_senders_.push_back(sender.get());
      shards_[s].senders.push_back(std::move(sender));
    }
  }

  void apply_capacity_schedule() {
    for (const CapacityChange& change : params_.capacity_schedule) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        engine_.shard(s).at(change.at, [this, change, s] {
          const auto affected = std::min(
              static_cast<std::size_t>(change.node_fraction *
                                       static_cast<double>(params_.n)),
              params_.n);
          for (gossip::LpbcastNode* node : shards_[s].members) {
            const NodeId id = node->id();
            if (static_cast<std::size_t>(id) >= affected) continue;
            if (params_.adaptive) {
              adaptive_nodes_[id]->set_capacity(change.new_capacity,
                                                engine_.shard(s).now());
            } else {
              node->set_max_events(change.new_capacity,
                                   engine_.shard(s).now());
            }
          }
        });
      }
    }
  }

  void apply_failure_schedule() {
    // Every shard sees every failure event on its own clock: the owner
    // shard flips liveness and runs the restart logic, and (under the
    // oracle detector) each shard updates its local members' views.
    for (const FailureEvent& event : params_.failure_schedule) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        engine_.shard(s).at(event.at, [this, event, s] {
          apply_failure_local(s, event);
        });
      }
    }
  }

  void apply_failure_local(std::size_t s, const FailureEvent& event) {
    if (engine_.shard_of(event.node) == s &&
        static_cast<std::size_t>(event.node) < nodes_.size()) {
      down_[event.node] = event.up ? 0 : 1;
      if (event.up) {
        if (auto* gm = nodes_[event.node]->gossip_membership()) {
          if (params_.migrate_on_rejoin) {
            membership::EndpointBinding binding = gm->self_record().binding;
            ++binding.port;
            gm->set_self_binding(binding);
          } else {
            gm->on_restart();
          }
        }
      }
    }
    if (!params_.failure_detector) return;
    for (gossip::LpbcastNode* node : shards_[s].members) {
      if (node->id() == event.node) continue;
      if (event.up) {
        node->membership().add(event.node);
      } else {
        node->membership().remove(event.node);
      }
    }
  }

  /// Serial barrier phase: replay per-shard logs canonically, turn the
  /// canonically sorted datagram batch into one application event per
  /// (destination shard, deliver-time) run, and fire the series sampler on
  /// bucket boundaries the window clamp landed us on.
  void on_barrier(TimeMs window_end,
                  std::vector<sim::CrossShardDatagram>& batch) {
    merge_logs();
    schedule_applies(batch);
    run_sampler(window_end);
  }

  void merge_logs() {
    merge_scratch_.clear();
    for (Shard& shard : shards_) {
      merge_scratch_.insert(merge_scratch_.end(), shard.log.begin(),
                            shard.log.end());
      shard.log.clear();
    }
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              tracker_op_before);
    for (const TrackerOp& op : merge_scratch_) {
      switch (op.kind) {
        case TrackerOp::Kind::kBroadcast:
          tracker_.on_broadcast(op.event, op.node, op.at);
          break;
        case TrackerOp::Kind::kDelivery:
          tracker_.on_delivery(op.event, op.node, op.at);
          break;
        case TrackerOp::Kind::kDropAge:
          if (in_eval_window(op.at)) eval_drop_age_.add(op.value);
          break;
      }
    }
  }

  void schedule_applies(std::vector<sim::CrossShardDatagram>& batch) {
    // The batch is canonically sorted; splitting by destination shard
    // preserves that order, so each shard's runs of equal deliver-time are
    // contiguous — one simulator event (and one decode per distinct
    // payload) per run, instead of one event per datagram.
    for (sim::CrossShardDatagram& d : batch) {
      per_shard_scratch_[engine_.shard_of(d.to)].push_back(std::move(d));
    }
    for (std::size_t s = 0; s < per_shard_scratch_.size(); ++s) {
      auto& pending = per_shard_scratch_[s];
      std::size_t i = 0;
      while (i < pending.size()) {
        std::size_t j = i + 1;
        while (j < pending.size() && pending[j].at == pending[i].at) ++j;
        std::vector<sim::CrossShardDatagram> group(
            std::make_move_iterator(pending.begin() +
                                    static_cast<std::ptrdiff_t>(i)),
            std::make_move_iterator(pending.begin() +
                                    static_cast<std::ptrdiff_t>(j)));
        ++shards_[s].stats.events_scheduled;
        const TimeMs at = group.front().at;
        engine_.shard(s).at(at, [this, s, entries = std::move(group)]() mutable {
          apply_group(s, entries);
        });
        i = j;
      }
      pending.clear();
    }
  }

  void apply_group(std::size_t s,
                   std::vector<sim::CrossShardDatagram>& entries) {
    Shard& shard = shards_[s];
    const TimeMs now = engine_.shard(s).now();
    // Entries sharing a payload buffer (one fan-out's targets) are adjacent
    // in canonical order — decode once, deliver to every receiver. Safe
    // because SharedBytes is immutable and nodes copy what they keep.
    const std::uint8_t* decoded_bytes = nullptr;
    gossip::WireMessage decoded;
    for (const sim::CrossShardDatagram& d : entries) {
      // Mirror the classic delivery-time checks, in the classic order:
      // liveness, then attachment. Ids outside the group are real traffic —
      // a chaos-corrupted message can decode into garbage member ids that
      // nodes then gossip to — and land in dropped_detached exactly as the
      // classic SimNetwork's handler lookup makes them.
      if (static_cast<std::size_t>(d.to) >= nodes_.size()) {
        ++shard.stats.dropped_detached;
        continue;
      }
      if (down_[d.to] != 0) {
        ++shard.stats.dropped_down;
        continue;
      }
      ++shard.stats.delivered;
      shard.stats.bytes_delivered += d.payload.size();
      if (d.payload.data() != decoded_bytes) {
        decoded = gossip::decode_any(d.payload);
        decoded_bytes = d.payload.data();
      }
      gossip::LpbcastNode* node = nodes_[d.to];
      if (!node->on_wire(decoded, now)) {
        ++shard.decode_failures;
        continue;
      }
      drain_outbox(s, *node);
    }
  }

  void run_sampler(TimeMs window_end) {
    if (params_.series_bucket <= 0) return;
    while (next_sample_ < window_end) {
      sample_at(next_sample_);
      next_sample_ += params_.series_bucket;
    }
  }

  void sample_at(TimeMs now) {
    if (adaptive_nodes_.empty()) return;
    double allowed = 0.0;
    for (const SenderState* sender : all_senders_) {
      if (sender->adaptive != nullptr) {
        allowed += sender->adaptive->allowed_rate();
      }
    }
    allowed_rate_ts_.add(now, allowed);

    double min_buff_sum = 0.0;
    for (const auto* node : adaptive_nodes_) {
      min_buff_sum += static_cast<double>(node->min_buff());
    }
    min_buff_ts_.add(
        now, min_buff_sum / static_cast<double>(adaptive_nodes_.size()));

    if (params_.adaptation.control.enabled) {
      double p_local_sum = 0.0;
      std::size_t locality_nodes = 0;
      double fanout_sum = 0.0;
      for (auto* node : adaptive_nodes_) {
        const double p = node->p_local();
        if (p >= 0.0) {
          p_local_sum += p;
          ++locality_nodes;
        }
        fanout_sum += static_cast<double>(node->effective_fanout());
      }
      if (locality_nodes > 0) {
        p_local_ts_.add(now,
                        p_local_sum / static_cast<double>(locality_nodes));
      }
      fanout_ts_.add(
          now, fanout_sum / static_cast<double>(adaptive_nodes_.size()));
    }
  }

  ShardedScenarioResults run() {
    if (ran_) return {};
    ran_ = true;

    build_nodes();
    apply_topology();
    start_round_timers();
    start_senders();
    apply_capacity_schedule();
    apply_failure_schedule();

    engine_.set_boundary([this](TimeMs) { return next_sample_; });
    engine_.set_barrier_hook(
        [this](TimeMs window_end, std::vector<sim::CrossShardDatagram>& batch) {
          on_barrier(window_end, batch);
        });

    const TimeMs eval_start = params_.warmup;
    const TimeMs eval_end = params_.warmup + params_.duration;
    engine_.run_until(eval_end + params_.cooldown);

    ShardedScenarioResults out;
    ScenarioResults& results = out.base;
    results.delivery = tracker_.report(eval_start, eval_end);
    results.offered_rate = params_.offered_rate;
    results.input_rate = results.delivery.input_rate;
    results.output_rate = results.delivery.output_rate;
    results.avg_drop_age = eval_drop_age_.mean();
    results.peak_event_queue_len = engine_.peak_pending_events();

    for (const Shard& shard : shards_) {
      results.refused_broadcasts += shard.refused;
      results.decode_failures += shard.decode_failures;
      results.max_pending_depth =
          std::max(results.max_pending_depth, shard.max_pending_depth);
      sim::NetworkStats& net = results.net;
      const sim::NetworkStats& st = shard.stats;
      net.sent += st.sent;
      net.sent_intra_cluster += st.sent_intra_cluster;
      net.sent_cross_cluster += st.sent_cross_cluster;
      net.batches += st.batches;
      net.events_scheduled += st.events_scheduled;
      net.delivered += st.delivered;
      net.dropped_loss += st.dropped_loss;
      net.dropped_partition += st.dropped_partition;
      net.dropped_down += st.dropped_down;
      net.dropped_detached += st.dropped_detached;
      net.dropped_chaos += st.dropped_chaos;
      net.bytes_delivered += st.bytes_delivered;
    }

    for (const auto& node : nodes_) {
      results.overflow_drops += node->counters().drops_overflow;
      results.age_limit_drops += node->counters().drops_age_limit;
      results.repair_requests += node->counters().repair_requests;
      results.repair_replies += node->counters().repair_replies;
      results.events_recovered += node->counters().events_recovered;
      if (const auto* gm = node->gossip_membership()) {
        results.membership_transitions.suspicions += gm->counters().suspicions;
        results.membership_transitions.downs += gm->counters().downs;
        results.membership_transitions.revivals += gm->counters().revivals;
      }
    }

    if (!fault_planes_.empty()) {
      for (const auto& plane : fault_planes_) {
        const fault::FaultStats st = plane->stats();
        results.chaos.corrupted += st.corrupted;
        results.chaos.truncated += st.truncated;
        results.chaos.duplicated += st.duplicated;
        results.chaos.reordered += st.reordered;
        results.chaos.dropped_oneway += st.dropped_oneway;
        results.chaos.stalls += st.stalls;
        results.chaos.skew_reads += st.skew_reads;
      }
      if (const auto window = chaos_recovery_window(params_)) {
        results.post_chaos_delivery =
            tracker_.report(window->first, window->second);
      }
    }

    if (!adaptive_nodes_.empty()) {
      results.avg_allowed_rate =
          allowed_rate_ts_.mean_in(eval_start, eval_end);
      results.final_allowed_rate = allowed_rate_ts_.value_at(eval_end);
      double min_buff_sum = 0.0;
      double age_sum = 0.0;
      for (const auto* node : adaptive_nodes_) {
        min_buff_sum += static_cast<double>(node->min_buff());
        age_sum += node->avg_age();
      }
      results.avg_min_buff =
          min_buff_sum / static_cast<double>(adaptive_nodes_.size());
      results.avg_age_estimate =
          age_sum / static_cast<double>(adaptive_nodes_.size());

      double p_local_sum = 0.0;
      std::size_t locality_nodes = 0;
      double fanout_sum = 0.0;
      for (auto* node : adaptive_nodes_) {
        const double p = node->p_local();
        if (p >= 0.0) {
          p_local_sum += p;
          ++locality_nodes;
        }
        fanout_sum += static_cast<double>(node->effective_fanout());
      }
      if (locality_nodes > 0) {
        results.avg_p_local =
            p_local_sum / static_cast<double>(locality_nodes);
      }
      results.avg_effective_fanout =
          fanout_sum / static_cast<double>(adaptive_nodes_.size());
    }

    results.allowed_rate_ts = allowed_rate_ts_;
    results.min_buff_ts = min_buff_ts_;
    results.p_local_ts = p_local_ts_;
    results.fanout_ts = fanout_ts_;
    for (auto [t, v] : tracker_.atomicity_series(eval_start, eval_end,
                                                 params_.series_bucket)) {
      results.atomicity_ts.add(t, v);
    }
    for (auto [t, v] : tracker_.input_rate_series(eval_start, eval_end,
                                                  params_.series_bucket)) {
      results.input_rate_ts.add(t, v);
    }

    out.node_fingerprints = tracker_.per_node_fingerprints();
    out.membership_sizes.reserve(nodes_.size());
    for (const auto& node : nodes_) {
      out.membership_sizes.push_back(node->membership().size());
    }
    out.shards = engine_.shards();
    out.workers = engine_.workers();
    out.windows = engine_.windows_run();
    return out;
  }

  ScenarioParams params_;
  Rng master_rng_;
  sim::DelaySampler sampler_;
  DurationMs lookahead_ = 1;
  sim::ShardedEngine engine_;
  metrics::DeliveryTracker tracker_;
  TimeMs next_sample_ = 0;

  std::vector<Shard> shards_;
  std::vector<gossip::LpbcastNode*> nodes_;  // id order, arena-owned
  std::vector<adaptive::AdaptiveLpbcastNode*> adaptive_nodes_;  // or empty
  std::vector<SenderState*> all_senders_;  // sender-id order, shard-owned

  // Per-node network state, confined to the owner (sender) shard.
  std::vector<Rng> net_rng_;
  std::vector<std::uint8_t> burst_bad_;
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint8_t> down_;
  std::vector<std::unique_ptr<fault::FaultPlane>> fault_planes_;

  // Serial-phase state (barrier hook and result assembly only).
  RunningStats eval_drop_age_;
  std::vector<TrackerOp> merge_scratch_;
  std::vector<std::vector<sim::CrossShardDatagram>> per_shard_scratch_;
  metrics::TimeSeries allowed_rate_ts_{"allowed_rate"};
  metrics::TimeSeries min_buff_ts_{"min_buff"};
  metrics::TimeSeries p_local_ts_{"p_local"};
  metrics::TimeSeries fanout_ts_{"fanout"};
  bool ran_ = false;
};

ShardedScenario::ShardedScenario(ScenarioParams params)
    : impl_(std::make_unique<Impl>(std::move(params))) {}

ShardedScenario::~ShardedScenario() = default;

ShardedScenarioResults ShardedScenario::run() { return impl_->run(); }

}  // namespace agb::core
