#include "core/scenario_registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace agb::core {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

[[noreturn]] void die_bad_spec(const char* key, const std::string& spec) {
  throw std::invalid_argument(std::string("bad ") + key + " spec '" + spec +
                              "'");
}

/// Plain Levenshtein distance; preset names are short, so the quadratic
/// table is microscopic.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

/// Every fault kind parse_chaos_spec accepts, in grammar order — also the
/// candidate list behind the "did you mean" hint for misspelt kinds.
constexpr const char* kChaosKinds[] = {"corrupt", "truncate", "dup",
                                       "reorder", "oneway",   "stall",
                                       "skew"};

/// Window bound in seconds with an optional trailing 's' ("15" or "15s"),
/// converted to ms.
bool parse_chaos_time(std::string text, TimeMs* out) {
  if (!text.empty() && text.back() == 's') text.pop_back();
  if (text.empty()) return false;
  try {
    const double seconds = std::stod(text);
    if (seconds < 0.0) return false;
    *out = static_cast<TimeMs>(seconds * 1000.0);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool parse_chaos_rule(const std::string& item, fault::FaultRule* out) {
  fault::FaultRule rule;
  std::string body = item;
  const auto at = body.find('@');
  if (at != std::string::npos) {
    const auto bounds = split(body.substr(at + 1), '-');
    body = body.substr(0, at);
    if (bounds.size() != 2 || !parse_chaos_time(bounds[0], &rule.start) ||
        !parse_chaos_time(bounds[1], &rule.end) || rule.end <= rule.start) {
      return false;
    }
  }
  const auto fields = split(body, ':');
  if (fields.empty()) return false;
  const std::string& kind = fields[0];
  try {
    if (kind == "corrupt" && fields.size() == 2) {
      rule.kind = fault::FaultKind::kCorrupt;
      rule.rate = std::stod(fields[1]);
    } else if (kind == "truncate" && fields.size() == 2) {
      rule.kind = fault::FaultKind::kTruncate;
      rule.rate = std::stod(fields[1]);
    } else if (kind == "dup" && fields.size() == 2) {
      rule.kind = fault::FaultKind::kDuplicate;
      rule.rate = std::stod(fields[1]);
    } else if (kind == "reorder" &&
               (fields.size() == 2 || fields.size() == 3)) {
      rule.kind = fault::FaultKind::kReorder;
      rule.rate = std::stod(fields[1]);
      rule.amount = fields.size() == 3 ? std::stoll(fields[2]) : 50;
    } else if (kind == "oneway" && fields.size() == 3) {
      rule.kind = fault::FaultKind::kOneWay;
      rule.a = static_cast<NodeId>(std::stoul(fields[1]));
      rule.b = fields[2] == "*"
                   ? fault::kAnyNode
                   : static_cast<NodeId>(std::stoul(fields[2]));
    } else if ((kind == "stall" || kind == "skew") && fields.size() == 3) {
      rule.kind = kind == "stall" ? fault::FaultKind::kStall
                                  : fault::FaultKind::kSkew;
      rule.a = static_cast<NodeId>(std::stoul(fields[1]));
      rule.amount = std::stoll(fields[2]);
    } else {
      return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  if (rule.rate < 0.0 || rule.rate > 1.0 || rule.amount < 0) return false;
  *out = rule;
  return true;
}

/// The calibrated paper60 configuration: 60 nodes, fanout 4, 2 s gossip
/// period — the period at which this substrate's capacity knee lands at the
/// paper's buffer-size axis (~120 events at 30 msg/s; see EXPERIMENTS.md).
ScenarioParams paper60_defaults(const Config& cfg) {
  ScenarioParams p;
  p.n = 60;
  p.senders = 4;
  p.offered_rate = 30.0;
  p.payload_size = 16;
  p.seed = 42;

  p.gossip.fanout = 4;
  p.gossip.gossip_period = 2000;
  p.gossip.max_events = 120;
  p.gossip.max_event_ids = 4000;
  p.gossip.max_age = 12;

  p.adaptation.critical_age = kPaper60CriticalAge;

  const bool quick = cfg.get_bool("quick", false);
  p.warmup = (quick ? 20 : 40) * 1000;
  p.duration = (quick ? 60 : 150) * 1000;
  p.cooldown = 30'000;
  return p;
}

ScenarioParams build_paper60(const Config& cfg) {
  return params_from_config(cfg, paper60_defaults(cfg));
}

ScenarioParams build_fig2(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  p.gossip.max_events = 60;  // static, constrained: degradation is visible
  return params_from_config(cfg, p);
}

ScenarioParams build_fig9(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  // Start just under the 90-slot capacity knee (~41 msg/s here) so the
  // shrink bites; recover slightly faster than the paper's gamma=0.1 so the
  // 450 s window shows both phases.
  p.offered_rate = 36.0;
  p.gossip.max_events = 90;
  p.adaptation.increase_probability = 0.2;
  p.duration = 450'000;
  p.series_bucket = 10'000;
  p = params_from_config(cfg, p);
  if (!cfg.raw("capacity")) {
    // 20 % of the nodes shrink 90 -> 45 at t1, then recover to 60 at t2
    // (still under what the load needs). Times are relative to the start of
    // the evaluation window.
    const TimeMs t1 = cfg.get_int("t1_s", 150) * 1000;
    const TimeMs t2 = cfg.get_int("t2_s", 300) * 1000;
    const double fraction = cfg.get_double("fraction", 0.2);
    const auto buf1 = static_cast<std::size_t>(cfg.get_int("buf1", 45));
    const auto buf2 = static_cast<std::size_t>(cfg.get_int("buf2", 60));
    p.capacity_schedule = {
        {p.warmup + t1, fraction, buf1},
        {p.warmup + t2, fraction, buf2},
    };
  }
  return p;
}

ScenarioParams build_churn(const Config& cfg) {
  auto p = params_from_config(cfg, paper60_defaults(cfg));
  if (!cfg.raw("failures")) {
    // A rolling wave of crash/recover: every churn_every_s another member
    // goes down for churn_down_s, starting once the warm-up completes. The
    // node walk (stride 7) spreads failures over the id space, senders
    // included.
    const DurationMs every = cfg.get_int("churn_every_s", 20) * 1000;
    const DurationMs down_for = cfg.get_int("churn_down_s", 15) * 1000;
    const auto count =
        static_cast<std::size_t>(cfg.get_int("churn_count", 8));
    for (std::size_t i = 0; i < count; ++i) {
      const auto node = static_cast<NodeId>((3 + 7 * i) % p.n);
      const TimeMs at = p.warmup + static_cast<TimeMs>(i) * every;
      p.failure_schedule.push_back({at, node, /*up=*/false});
      p.failure_schedule.push_back({at + down_for, node, /*up=*/true});
    }
  }
  return p;
}

ScenarioParams build_burst_loss(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  // ~20 % average loss arriving in bursts — the correlated-loss regime the
  // paper singles out as the hard case for gossip — with pull-based repair
  // on so the retrieval phase earns its keep.
  p.network.loss = sim::LossModel::burst(0.02, 0.9, 0.05, 0.2);
  p.gossip.recovery.enabled = true;
  return params_from_config(cfg, p);
}

ScenarioParams build_wan_clusters(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  // Three LAN islands; cross-cluster links are an order of magnitude
  // slower (the directional-gossip setting of paper §5).
  p.network.clusters = 3;
  p.network.wan_latency = sim::LatencyModel::uniform(20.0, 60.0);
  return params_from_config(cfg, p);
}

ScenarioParams build_wan_directional(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  // The same three-island topology as wan-clusters, but target selection
  // is locality-biased: 90 % of the fanout stays on the local island and
  // the rest goes through the remote clusters' bridges — the paper §5
  // directional result (same delivery, a fraction of the WAN datagrams).
  // Funnelling adds dissemination rounds, so the calibration grants a
  // longer age limit and two bridges per island: at these defaults the
  // preset lands within half a point of uniform wan-clusters' delivery
  // while cutting the cross-WAN share ~67 % -> ~10 %.
  p.network.clusters = 3;
  p.network.wan_latency = sim::LatencyModel::uniform(20.0, 60.0);
  p.gossip.max_age = 20;
  p.locality.enabled = true;
  p.locality.p_local = 0.9;
  p.locality.bridges_per_cluster = 2;
  return params_from_config(cfg, p);
}

ScenarioParams build_wan_directional_churn(const Config& cfg) {
  auto p = build_wan_directional(cfg);
  // Crash elected bridges, one island at a time. Under the modulo cluster
  // rule the first bridge of cluster c is node c (its lowest id); with
  // the failure detector on, every crash promotes the next-lowest id and
  // cross-cluster traffic reroutes.
  p.failure_detector = cfg.get_bool("failure_detector", true);
  if (!cfg.raw("failures")) {
    const DurationMs every = cfg.get_int("churn_every_s", 30) * 1000;
    const DurationMs down_for = cfg.get_int("churn_down_s", 20) * 1000;
    const auto count =
        static_cast<std::size_t>(cfg.get_int("churn_count", 3));
    const std::size_t clusters = std::max<std::size_t>(p.network.clusters, 1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto bridge = static_cast<NodeId>(i % clusters);
      const TimeMs at = p.warmup + static_cast<TimeMs>(i) * every;
      p.failure_schedule.push_back({at, bridge, /*up=*/false});
      p.failure_schedule.push_back({at + down_for, bridge, /*up=*/true});
    }
  }
  return p;
}

/// Suspicion timeouts track the (possibly overridden) gossip period unless
/// set explicitly: a few silent rounds raise a suspect, a few more declare
/// it down. Shared by the oracle-free presets below.
void derive_suspicion_timeouts(const Config& cfg, ScenarioParams& p) {
  if (!cfg.raw("suspect_after_ms")) {
    p.membership_params.suspect_after = 4 * p.gossip.gossip_period;
  }
  if (!cfg.raw("down_after_ms")) {
    p.membership_params.down_after = 8 * p.gossip.gossip_period;
  }
}

ScenarioParams build_churn_blind(const Config& cfg) {
  // The wan-directional topology and bridge churn of wan-directional-churn,
  // but with NO perfect failure detector: liveness is gossiped
  // (membership::GossipMembership), so bridge re-election runs on suspicion
  // timeouts alone. This is the oracle-retirement acceptance scenario.
  auto p = paper60_defaults(cfg);
  p.network.clusters = 3;
  p.network.wan_latency = sim::LatencyModel::uniform(20.0, 60.0);
  p.gossip.max_age = 20;
  p.locality.enabled = true;
  p.locality.p_local = 0.9;
  p.locality.bridges_per_cluster = 2;
  p.gossip_membership = true;
  p.failure_detector = false;
  p = params_from_config(cfg, p);
  derive_suspicion_timeouts(cfg, p);
  if (!cfg.raw("failures")) {
    const DurationMs every = cfg.get_int("churn_every_s", 30) * 1000;
    const DurationMs down_for = cfg.get_int("churn_down_s", 20) * 1000;
    const auto count =
        static_cast<std::size_t>(cfg.get_int("churn_count", 3));
    const std::size_t clusters = std::max<std::size_t>(p.network.clusters, 1);
    for (std::size_t i = 0; i < count; ++i) {
      const auto bridge = static_cast<NodeId>(i % clusters);
      const TimeMs at = p.warmup + static_cast<TimeMs>(i) * every;
      p.failure_schedule.push_back({at, bridge, /*up=*/false});
      p.failure_schedule.push_back({at + down_for, bridge, /*up=*/true});
    }
  }
  return p;
}

ScenarioParams build_host_migration(const Config& cfg) {
  // Rolling churn where every recovering node comes back *somewhere else*:
  // the rejoin bumps its revision and rotates its advertised endpoint
  // binding, and the group re-resolves it purely from the gossiped
  // records (runtime deployments feed these into a DynamicDirectory).
  auto p = paper60_defaults(cfg);
  p.gossip_membership = true;
  p.failure_detector = false;
  p.migrate_on_rejoin = true;
  p = params_from_config(cfg, p);
  derive_suspicion_timeouts(cfg, p);
  if (!cfg.raw("failures")) {
    const DurationMs every = cfg.get_int("churn_every_s", 20) * 1000;
    const DurationMs down_for = cfg.get_int("churn_down_s", 15) * 1000;
    const auto count =
        static_cast<std::size_t>(cfg.get_int("churn_count", 8));
    for (std::size_t i = 0; i < count; ++i) {
      const auto node = static_cast<NodeId>((3 + 7 * i) % p.n);
      const TimeMs at = p.warmup + static_cast<TimeMs>(i) * every;
      p.failure_schedule.push_back({at, node, /*up=*/false});
      p.failure_schedule.push_back({at + down_for, node, /*up=*/true});
    }
  }
  return p;
}

ScenarioParams build_adaptive_wan(const Config& cfg) {
  // wan-directional with the full adaptive stack and the control plane on:
  // mid-run, half the group's buffers shrink hard, driving avgAge below
  // the low mark (drops die young). The control plane answers by raising
  // p_local — keep traffic on the LAN islands — and trimming fanout, then
  // relaxes both toward their bases once the squeeze heals. The adaptive
  // parity suite runs this preset through both harnesses and asserts the
  // group-mean p_local lands in the same regime band.
  auto p = paper60_defaults(cfg);
  p.network.clusters = 3;
  p.network.wan_latency = sim::LatencyModel::uniform(20.0, 60.0);
  p.gossip.max_age = 20;
  p.locality.enabled = true;
  p.locality.p_local = 0.9;
  p.locality.bridges_per_cluster = 2;
  p.adaptive = true;
  p.adaptation.control.enabled = true;
  p = params_from_config(cfg, p);
  if (!cfg.raw("capacity")) {
    // Squeeze a quarter of the way into the window, heal at 5/8 — late
    // enough that quick parity runs still see both phases. Times are
    // absolute (the schedule is replayed against the run clock).
    const TimeMs squeeze = p.warmup + p.duration / 4;
    const TimeMs heal = p.warmup + (p.duration * 5) / 8;
    const double fraction = cfg.get_double("fraction", 0.5);
    const auto low = static_cast<std::size_t>(cfg.get_int("buf1", 30));
    p.capacity_schedule = {
        {squeeze, fraction, low},
        {heal, fraction, p.gossip.max_events},
    };
  }
  return p;
}

ScenarioParams build_adaptive_backpressure(const Config& cfg) {
  // Deliberate overload on the LAN topology: the offered load outruns the
  // adapter's allowed rate, so sender arrivals queue behind the token
  // bucket (the paper's blocking BROADCAST) and drain as it refills. The
  // receipt is a pending queue that is busy but bounded by pending_cap on
  // both harnesses — the wall-clock path exercises NodeRuntime's
  // token-refill back-pressure loop, the simulator its SenderState twin.
  auto p = paper60_defaults(cfg);
  p.adaptive = true;
  p.adaptation.control.enabled = true;
  p.offered_rate = 45.0;
  p = params_from_config(cfg, p);
  if (!cfg.raw("capacity")) {
    const TimeMs squeeze = p.warmup + p.duration / 4;
    const double fraction = cfg.get_double("fraction", 0.3);
    const auto low = static_cast<std::size_t>(cfg.get_int("buf1", 45));
    p.capacity_schedule = {{squeeze, fraction, low}};
  }
  return p;
}

ScenarioParams build_semantic_streams(const Config& cfg) {
  auto p = paper60_defaults(cfg);
  // Supersede-heavy workload under buffer pressure: each sender's stream
  // obsoletes its own history often, and semantic purging reclaims the
  // space from superseded events first.
  p.supersede_probability = 0.35;
  p.gossip.semantic_purge = true;
  p.gossip.max_events = 60;
  return params_from_config(cfg, p);
}

/// Scale presets: the calendar-queue / round-wheel soak targets of the
/// million-node roadmap item. Partial views keep per-node membership O(view)
/// instead of O(n), the horizon is 30 sim-seconds (4 warmup + 20 eval +
/// 6 cooldown), and the eventIds digest is bounded tighter than paper60's
/// since at this group size a node only ever sees a thin slice of traffic.
ScenarioParams scale_defaults(std::size_t n, const Config& cfg) {
  auto p = paper60_defaults(cfg);
  p.n = n;
  p.senders = 32;
  p.offered_rate = 10.0;
  p.partial_view = true;
  // Buffer sizing is per-node state multiplied by 10^5..10^6 nodes, so it
  // is both the memory bill and the cache working set. At 10 events/s
  // living max_age rounds, ~rate * max_age * period = 240 distinct events
  // are in flight; the dedup digest only needs to cover that window.
  p.gossip.max_events = 48;
  p.gossip.max_event_ids = 384;
  p.gossip.max_age = 12;  // ~log_fanout(n) dissemination rounds plus slack
  p.warmup = 4'000;
  p.duration = 20'000;
  p.cooldown = 6'000;
  return p;
}

ScenarioParams build_scale_1e5(const Config& cfg) {
  return params_from_config(cfg, scale_defaults(100'000, cfg));
}

ScenarioParams build_scale_1e6(const Config& cfg) {
  return params_from_config(cfg, scale_defaults(1'000'000, cfg));
}

// Fault-injection presets. All three compute their fault windows AFTER
// params_from_config so quick/parity scale-downs of warmup/duration move
// the windows with them, and all three leave room between the last window
// close and the evaluation end for the kChaosRecoveryRounds self-healing
// report. Injected nodes (3, 5) are non-senders under scenario_sender_ids
// at both the paper scale (senders 0/15/30/45) and the parity scale
// (senders 0/4/8), so the fault target never doubles as a traffic source.

ScenarioParams build_chaos_soak(const Config& cfg) {
  // Arbitrary datagram mutation mid-run: corruption and truncation feed
  // the fuzz-hardened codec in a live run (decode must answer monostate,
  // never crash), duplication stresses the dedup digest, reordering the
  // age-based purge. Pull repair is on so the healing phase has teeth.
  auto p = paper60_defaults(cfg);
  p.gossip.recovery.enabled = true;
  p = params_from_config(cfg, p);
  if (!cfg.raw("chaos")) {
    const TimeMs open = p.warmup + p.duration / 4;
    const TimeMs close = p.warmup + p.duration / 2;
    const DurationMs shuffle = p.gossip.gossip_period / 2;
    p.chaos.rules = {
        {fault::FaultKind::kCorrupt, cfg.get_double("chaos_corrupt", 0.15),
         fault::kAnyNode, fault::kAnyNode, 0, open, close},
        {fault::FaultKind::kTruncate, cfg.get_double("chaos_truncate", 0.05),
         fault::kAnyNode, fault::kAnyNode, 0, open, close},
        {fault::FaultKind::kDuplicate, cfg.get_double("chaos_dup", 0.10),
         fault::kAnyNode, fault::kAnyNode, 0, open, close},
        {fault::FaultKind::kReorder, cfg.get_double("chaos_reorder", 0.10),
         fault::kAnyNode, fault::kAnyNode, shuffle, open, close},
    };
  }
  return p;
}

ScenarioParams build_asymmetric_partition(const Config& cfg) {
  // One-way link failures under gossiped liveness: node 3 can hear the
  // group but nothing it sends arrives (the hardest case for suspicion
  // timeouts — it believes everyone is fine while everyone suspects it),
  // plus a single dead 1→2 direction whose reverse stays alive. The
  // receipt is suspicion traffic during the window and a re-converged
  // membership after it: node 3's own fresh heartbeats beat the group's
  // suspect/down records once its datagrams flow again.
  auto p = paper60_defaults(cfg);
  p.gossip_membership = true;
  p.failure_detector = false;
  p = params_from_config(cfg, p);
  derive_suspicion_timeouts(cfg, p);
  if (!cfg.raw("chaos")) {
    const TimeMs open = p.warmup + p.duration / 4;
    const TimeMs close = p.warmup + p.duration / 2;
    p.chaos.rules = {
        {fault::FaultKind::kOneWay, 0.0, 3, fault::kAnyNode, 0, open, close},
        {fault::FaultKind::kOneWay, 0.0, 1, 2, 0, open, close},
    };
  }
  return p;
}

ScenarioParams build_gray_failure(const Config& cfg) {
  // Gray failures: node 3's receive path stalls (slow-but-up — its round
  // thread keeps gossiping on cadence) and node 5's clock skews forward by
  // two gossip periods — deliberately under the 4-period suspicion
  // timeout, so a correct membership layer rides both out without a single
  // down verdict. Both are wall-clock phenomena; under the simulator the
  // rules are inert and the preset doubles as a clean-run control.
  auto p = paper60_defaults(cfg);
  p.gossip_membership = true;
  p.failure_detector = false;
  p = params_from_config(cfg, p);
  derive_suspicion_timeouts(cfg, p);
  if (!cfg.raw("chaos")) {
    const TimeMs open = p.warmup + p.duration / 4;
    const TimeMs close = p.warmup + (p.duration * 3) / 4;
    const auto stall = std::max<DurationMs>(5, p.gossip.gossip_period / 5);
    const DurationMs skew = 2 * p.gossip.gossip_period;
    p.chaos.rules = {
        {fault::FaultKind::kStall, 0.0, 3, fault::kAnyNode, stall, open,
         close},
        {fault::FaultKind::kSkew, 0.0, 5, fault::kAnyNode, skew, open,
         close},
    };
  }
  return p;
}

}  // namespace

std::vector<double> SweepSpec::values() const {
  std::vector<double> out;
  if (step <= 0.0) return out;
  const double tolerance = step * 1e-9;
  for (double v = lo; v <= hi + tolerance; v += step) out.push_back(v);
  return out;
}

bool parse_sweep_spec(const std::string& spec, SweepSpec* out) {
  auto parts = split(spec, ':');
  if (parts.size() != 4 || parts[0].empty()) return false;
  SweepSpec parsed;
  parsed.axis = parts[0];
  try {
    parsed.lo = std::stod(parts[1]);
    parsed.hi = std::stod(parts[2]);
    parsed.step = std::stod(parts[3]);
  } catch (const std::exception&) {
    return false;
  }
  if (parsed.step <= 0.0 || parsed.hi < parsed.lo) return false;
  *out = std::move(parsed);
  return true;
}

bool parse_latency_spec(const std::string& spec, sim::LatencyModel* out) {
  auto parts = split(spec, ':');
  if (parts.empty()) return false;
  try {
    if (parts[0] == "fixed" && parts.size() == 2) {
      *out = sim::LatencyModel::fixed(std::stod(parts[1]));
      return true;
    }
    if (parts[0] == "uniform" && parts.size() == 3) {
      *out = sim::LatencyModel::uniform(std::stod(parts[1]),
                                        std::stod(parts[2]));
      return true;
    }
    if (parts[0] == "normal" && parts.size() == 3) {
      *out = sim::LatencyModel::normal(std::stod(parts[1]),
                                       std::stod(parts[2]));
      return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool parse_loss_spec(const std::string& spec, sim::LossModel* out) {
  auto parts = split(spec, ':');
  try {
    if (parts.size() == 1 && !parts[0].empty()) {
      *out = sim::LossModel::iid(std::stod(parts[0]));
      return true;
    }
    if (parts.size() == 5 && parts[0] == "burst") {
      *out = sim::LossModel::burst(std::stod(parts[1]), std::stod(parts[2]),
                                   std::stod(parts[3]), std::stod(parts[4]));
      return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool parse_capacity_spec(const std::string& spec,
                         std::vector<CapacityChange>* out) {
  std::vector<CapacityChange> parsed;
  for (const auto& item : split(spec, ',')) {
    auto fields = split(item, ':');
    if (fields.size() != 3) return false;
    try {
      parsed.push_back(CapacityChange{
          std::stoll(fields[0]), std::stod(fields[1]),
          static_cast<std::size_t>(std::stoul(fields[2]))});
    } catch (const std::exception&) {
      return false;
    }
  }
  *out = std::move(parsed);
  return true;
}

bool parse_failure_spec(const std::string& spec,
                        std::vector<FailureEvent>* out) {
  std::vector<FailureEvent> parsed;
  for (const auto& item : split(spec, ',')) {
    auto fields = split(item, ':');
    if (fields.size() != 3 || (fields[2] != "up" && fields[2] != "down")) {
      return false;
    }
    try {
      parsed.push_back(FailureEvent{
          std::stoll(fields[0]), static_cast<NodeId>(std::stoul(fields[1])),
          fields[2] == "up"});
    } catch (const std::exception&) {
      return false;
    }
  }
  *out = std::move(parsed);
  return true;
}

bool parse_chaos_spec(const std::string& spec, fault::ChaosSchedule* out) {
  fault::ChaosSchedule parsed;
  for (const auto& item : split(spec, ',')) {
    fault::FaultRule rule;
    if (!parse_chaos_rule(item, &rule)) return false;
    parsed.rules.push_back(rule);
  }
  if (parsed.empty()) return false;
  *out = std::move(parsed);
  return true;
}

std::string bad_chaos_spec_message(const std::string& spec) {
  std::string message = "bad chaos spec '" + spec + "'";
  for (const auto& item : split(spec, ',')) {
    const std::string kind =
        item.substr(0, std::min(item.find(':'), item.find('@')));
    bool known = false;
    std::size_t best = std::string::npos;
    const char* nearest = nullptr;
    for (const char* candidate : kChaosKinds) {
      if (kind == candidate) {
        known = true;
        break;
      }
      const std::size_t distance = edit_distance(kind, candidate);
      if (distance < best) {
        best = distance;
        nearest = candidate;
      }
    }
    if (!known && nearest != nullptr &&
        best <= std::max<std::size_t>(2, kind.size() / 3)) {
      message += "; did you mean: ";
      message += nearest;
      message += '?';
    }
  }
  message +=
      " rules: corrupt:p | truncate:p | dup:p | reorder:p[:ms] | "
      "oneway:a:b|* | stall:node:ms | skew:node:ms, each with an optional "
      "@start[s]-end[s] window";
  return message;
}

ScenarioParams params_from_config(const Config& cfg, ScenarioParams base) {
  ScenarioParams p = std::move(base);

  p.n = static_cast<std::size_t>(
      cfg.get_int("n", static_cast<std::int64_t>(p.n)));
  p.senders = static_cast<std::size_t>(
      cfg.get_int("senders", static_cast<std::int64_t>(p.senders)));
  p.offered_rate = cfg.get_double("rate", p.offered_rate);
  p.poisson_arrivals = cfg.get_bool("poisson", p.poisson_arrivals);
  p.payload_size = static_cast<std::size_t>(
      cfg.get_int("payload", static_cast<std::int64_t>(p.payload_size)));
  p.supersede_probability =
      cfg.get_double("supersede", p.supersede_probability);
  p.adaptive = cfg.get_bool("adaptive", p.adaptive);
  p.pending_cap = static_cast<std::size_t>(
      cfg.get_int("pending_cap", static_cast<std::int64_t>(p.pending_cap)));
  p.seed = static_cast<std::uint64_t>(
      cfg.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.sim_shards = static_cast<std::size_t>(
      cfg.get_int("sim_shards", static_cast<std::int64_t>(p.sim_shards)));
  p.sim_workers = static_cast<std::size_t>(
      cfg.get_int("sim_workers", static_cast<std::int64_t>(p.sim_workers)));
  p.lookahead_ms = cfg.get_int("lookahead_ms", p.lookahead_ms);

  p.gossip.fanout = static_cast<std::size_t>(
      cfg.get_int("fanout", static_cast<std::int64_t>(p.gossip.fanout)));
  p.gossip.gossip_period = cfg.get_int("period_ms", p.gossip.gossip_period);
  p.gossip.max_events = static_cast<std::size_t>(cfg.get_int(
      "buffer", static_cast<std::int64_t>(p.gossip.max_events)));
  p.gossip.max_event_ids = static_cast<std::size_t>(cfg.get_int(
      "event_ids", static_cast<std::int64_t>(p.gossip.max_event_ids)));
  p.gossip.max_age =
      static_cast<std::uint32_t>(cfg.get_int("max_age", p.gossip.max_age));
  p.gossip.semantic_purge =
      cfg.get_bool("semantic_purge", p.gossip.semantic_purge);

  auto& recovery = p.gossip.recovery;
  recovery.enabled = cfg.get_bool("recovery", recovery.enabled);
  recovery.repair_after_rounds = static_cast<Round>(cfg.get_int(
      "repair_after", static_cast<std::int64_t>(recovery.repair_after_rounds)));
  recovery.give_up_after_rounds = static_cast<Round>(cfg.get_int(
      "give_up_after",
      static_cast<std::int64_t>(recovery.give_up_after_rounds)));
  recovery.retrieve_rounds = static_cast<Round>(cfg.get_int(
      "retrieve_rounds", static_cast<std::int64_t>(recovery.retrieve_rounds)));

  // Adaptation knobs whose defaults derive from other parameters: the
  // sample period tracks the gossip period, the marks bracket the critical
  // age, and each sender starts at its fair share of the offered load.
  // Derivation only replaces a *stock* base value — a preset or embedder
  // that set one of these explicitly keeps it (cfg keys still win over
  // everything).
  const adaptive::AdaptiveParams stock;
  auto& a = p.adaptation;
  a.sample_period = cfg.get_int(
      "tau_ms", a.sample_period != stock.sample_period
                    ? a.sample_period
                    : 2 * p.gossip.gossip_period);
  a.min_buff_window = static_cast<std::size_t>(cfg.get_int(
      "window", static_cast<std::int64_t>(a.min_buff_window)));
  a.alpha = cfg.get_double("alpha", a.alpha);
  a.critical_age = cfg.get_double("critical_age", a.critical_age);
  a.low_age_mark = cfg.get_double(
      "low_mark", a.low_age_mark != stock.low_age_mark
                      ? a.low_age_mark
                      : a.critical_age - 0.5);
  a.high_age_mark = cfg.get_double(
      "high_mark", a.high_age_mark != stock.high_age_mark
                       ? a.high_age_mark
                       : a.critical_age + 0.5);
  a.decrease_factor = cfg.get_double("delta_d", a.decrease_factor);
  a.increase_factor = cfg.get_double("delta_i", a.increase_factor);
  a.increase_probability = cfg.get_double("gamma", a.increase_probability);
  a.bucket_capacity = cfg.get_double("bucket", a.bucket_capacity);
  a.initial_rate = cfg.get_double(
      "initial_rate", a.initial_rate != stock.initial_rate
                          ? a.initial_rate
                          : p.offered_rate / static_cast<double>(p.senders));
  a.robust_k = static_cast<std::size_t>(
      cfg.get_int("robust_k", static_cast<std::int64_t>(a.robust_k)));
  a.robust_floor =
      static_cast<std::uint32_t>(cfg.get_int("robust_floor", a.robust_floor));
  a.idle_age_boost = cfg.get_bool("idle_age_boost", a.idle_age_boost);

  // Control-plane keys (the self-tuning feedback layer; only consulted
  // when adaptive=true).
  auto& c = a.control;
  c.enabled = cfg.get_bool("control_plane", c.enabled);
  c.hysteresis = cfg.get_double("control_hysteresis", c.hysteresis);
  c.p_local_min = cfg.get_double("p_local_min", c.p_local_min);
  c.p_local_max = cfg.get_double("p_local_max", c.p_local_max);
  c.p_local_step = cfg.get_double("p_local_step", c.p_local_step);
  c.fanout_congested_scale =
      cfg.get_double("fanout_congested_scale", c.fanout_congested_scale);
  c.fanout_spare_scale =
      cfg.get_double("fanout_spare_scale", c.fanout_spare_scale);
  c.starve_threshold = cfg.get_double("starve_threshold", c.starve_threshold);

  p.partial_view = cfg.get_bool("partial_view", p.partial_view);
  p.view_params.max_view = static_cast<std::size_t>(cfg.get_int(
      "view_max", static_cast<std::int64_t>(p.view_params.max_view)));
  p.view_params.max_subs = static_cast<std::size_t>(cfg.get_int(
      "view_subs", static_cast<std::int64_t>(p.view_params.max_subs)));
  p.view_params.max_unsubs = static_cast<std::size_t>(cfg.get_int(
      "view_unsubs", static_cast<std::int64_t>(p.view_params.max_unsubs)));

  // Second-granularity keys replace the base value only when present, so a
  // base carrying sub-second values is never silently truncated.
  if (cfg.raw("warmup_s")) p.warmup = cfg.get_int("warmup_s", 0) * 1000;
  if (cfg.raw("duration_s")) p.duration = cfg.get_int("duration_s", 0) * 1000;
  if (cfg.raw("cooldown_s")) p.cooldown = cfg.get_int("cooldown_s", 0) * 1000;
  if (cfg.raw("bucket_s")) p.series_bucket = cfg.get_int("bucket_s", 0) * 1000;

  p.network.clusters = static_cast<std::size_t>(cfg.get_int(
      "clusters", static_cast<std::int64_t>(p.network.clusters)));
  p.locality.enabled = cfg.get_bool("locality", p.locality.enabled);
  p.locality.p_local = cfg.get_double("p_local", p.locality.p_local);
  p.locality.bridges_per_cluster = static_cast<std::size_t>(cfg.get_int(
      "bridges_per_cluster",
      static_cast<std::int64_t>(p.locality.bridges_per_cluster)));
  p.failure_detector = cfg.get_bool("failure_detector", p.failure_detector);
  p.gossip_membership =
      cfg.get_bool("gossip_membership", p.gossip_membership);
  p.membership_params.suspect_after = cfg.get_int(
      "suspect_after_ms", p.membership_params.suspect_after);
  p.membership_params.down_after =
      cfg.get_int("down_after_ms", p.membership_params.down_after);
  p.membership_params.digest_budget_bytes = static_cast<std::size_t>(
      cfg.get_int("membership_budget",
                  static_cast<std::int64_t>(
                      p.membership_params.digest_budget_bytes)));
  p.migrate_on_rejoin =
      cfg.get_bool("migrate_on_rejoin", p.migrate_on_rejoin);
  if (auto spec = cfg.raw("latency")) {
    if (!parse_latency_spec(*spec, &p.network.latency)) {
      die_bad_spec("latency", *spec);
    }
  }
  if (auto spec = cfg.raw("wan_latency")) {
    if (!parse_latency_spec(*spec, &p.network.wan_latency)) {
      die_bad_spec("wan_latency", *spec);
    }
  }
  if (auto spec = cfg.raw("loss")) {
    if (!parse_loss_spec(*spec, &p.network.loss)) {
      die_bad_spec("loss", *spec);
    }
  }
  if (auto spec = cfg.raw("capacity")) {
    if (!parse_capacity_spec(*spec, &p.capacity_schedule)) {
      die_bad_spec("capacity", *spec);
    }
  }
  if (auto spec = cfg.raw("failures")) {
    if (!parse_failure_spec(*spec, &p.failure_schedule)) {
      die_bad_spec("failures", *spec);
    }
  }
  if (auto spec = cfg.raw("chaos")) {
    if (!parse_chaos_spec(*spec, &p.chaos)) {
      // Richer than die_bad_spec: the message carries the nearest-kind
      // hint, so a CLI typo gets a correction instead of just a rejection.
      throw std::invalid_argument(bad_chaos_spec_message(*spec));
    }
  }
  return p;
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

ScenarioRegistry::ScenarioRegistry() {
  add({"paper60", "calibrated 60-node LAN baseline (fanout 4, T=2s)",
       build_paper60});
  add({"fig2", "reliability degradation vs input rate (static 60-buffer)",
       build_fig2});
  add({"fig4", "maximum input rate vs buffer size (capacity search base)",
       build_paper60});
  add({"fig6", "ideal vs adaptive rates under shrinking buffers",
       build_paper60});
  add({"fig7", "input/output rates and drop ages, lpbcast vs adaptive",
       build_paper60});
  add({"fig8", "reliability (receivers & atomicity), lpbcast vs adaptive",
       build_paper60});
  add({"fig9", "dynamic buffers: 20% of nodes 90 -> 45 -> 60 under load",
       build_fig9});
  add({"churn", "rolling crash/recover wave across the group", build_churn});
  add({"burst-loss", "Gilbert-Elliott bursty loss (~20%) with pull repair",
       build_burst_loss});
  add({"wan-clusters", "three LAN islands joined by 20-60 ms WAN links",
       build_wan_clusters});
  add({"wan-directional",
       "wan-clusters with locality-biased targets and bridge nodes",
       build_wan_directional});
  add({"wan-directional-churn",
       "wan-directional with the elected bridges crashing in turn",
       build_wan_directional_churn});
  add({"churn-blind",
       "bridge churn detected by gossiped suspicion alone (no oracle)",
       build_churn_blind});
  add({"host-migration",
       "churned nodes rejoin at new endpoints under bumped revisions",
       build_host_migration});
  add({"adaptive-wan",
       "wan-directional + control plane: p_local rises under a buffer "
       "squeeze, recovers after it heals",
       build_adaptive_wan});
  add({"adaptive-backpressure",
       "overloaded adaptive LAN: blocking-BROADCAST queues bounded by "
       "pending_cap on both harnesses",
       build_adaptive_backpressure});
  add({"semantic-streams", "supersede-heavy streams with semantic purging",
       build_semantic_streams});
  add({"scale-1e5", "100k nodes on partial views (calendar-queue scale soak)",
       build_scale_1e5});
  add({"scale-1e6", "1M nodes on partial views (memory-bound scale soak)",
       build_scale_1e6});
  add({"chaos-soak",
       "mid-run corruption/truncation/dup/reorder burst; must self-heal",
       build_chaos_soak});
  add({"asymmetric-partition",
       "one-way link failures: suspicion under fire, re-convergence after",
       build_asymmetric_partition});
  add({"gray-failure",
       "stalled + clock-skewed nodes stay slow-but-up; no down verdicts",
       build_gray_failure});
}

void ScenarioRegistry::add(ScenarioPreset preset) {
  for (auto& existing : presets_) {
    if (existing.name == preset.name) {
      existing = std::move(preset);
      return;
    }
  }
  presets_.push_back(std::move(preset));
}

const ScenarioPreset* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& preset : presets_) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::suggest(
    std::string_view name) const {
  // Plausibly-close: within a third of the typed name in edits (at least
  // 2, so short typos still match), or a containment either way (a
  // truncated or over-qualified name).
  const std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& preset : presets_) {
    const std::size_t distance = edit_distance(name, preset.name);
    const bool contained =
        !name.empty() && (preset.name.find(name) != std::string::npos ||
                          name.find(preset.name) != std::string_view::npos);
    if (distance <= budget || contained) {
      ranked.emplace_back(distance, preset.name);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& entry : ranked) out.push_back(std::move(entry.second));
  return out;
}

std::string ScenarioRegistry::unknown_name_message(
    std::string_view name) const {
  std::string message = "unknown scenario preset '";
  message.append(name);
  message += '\'';
  const auto close = suggest(name);
  if (!close.empty()) {
    message += "; did you mean:";
    for (const auto& candidate : close) {
      message += ' ';
      message += candidate;
    }
    message += '?';
  }
  message += " known:";
  for (const auto* known : presets()) {
    message += ' ';
    message += known->name;
  }
  return message;
}

ScenarioParams ScenarioRegistry::build(std::string_view name,
                                       const Config& cfg) const {
  const ScenarioPreset* preset = find(name);
  if (preset == nullptr) {
    throw std::invalid_argument(unknown_name_message(name));
  }
  return preset->build(cfg);
}

std::vector<const ScenarioPreset*> ScenarioRegistry::presets() const {
  std::vector<const ScenarioPreset*> out;
  out.reserve(presets_.size());
  for (const auto& preset : presets_) out.push_back(&preset);
  std::sort(out.begin(), out.end(),
            [](const ScenarioPreset* a, const ScenarioPreset* b) {
              return a->name < b->name;
            });
  return out;
}

}  // namespace agb::core
