// Experiment harness: a whole gossip group under the discrete-event
// simulator, with configurable workload, network model, dynamic resource
// schedule and metrics collection.
//
// This is the engine behind every figure reproduction in bench/: it builds
// `n` lpbcast (or adaptive) nodes, drives unsynchronised gossip rounds,
// injects application traffic through per-sender queues (token-gated for the
// adaptive variant, mirroring the paper's blocking BROADCAST), routes every
// message through the byte codec and the simulated network, and reports the
// paper's metrics over an evaluation window that excludes warm-up and the
// not-yet-disseminated tail.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "adaptive/adaptive_node.h"
#include "adaptive/params.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "fault/fault_plane.h"
#include "gossip/lpbcast_node.h"
#include "gossip/params.h"
#include "membership/gossip_membership.h"
#include "membership/locality_view.h"
#include "membership/partial_view.h"
#include "core/node_arena.h"
#include "metrics/delivery_tracker.h"
#include "metrics/timeseries.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace agb::core {

/// One step of the dynamic-resources schedule (paper §4, Fig. 9): at time
/// `at`, the first floor(node_fraction * n) nodes switch their event-buffer
/// bound to `new_capacity`.
struct CapacityChange {
  TimeMs at = 0;
  double node_fraction = 0.2;
  std::size_t new_capacity = 45;
};

/// Crash/recover injection: at time `at`, mark `node` up or down in the
/// simulated network (a down node neither sends nor receives).
struct FailureEvent {
  TimeMs at = 0;
  NodeId node = 0;
  bool up = false;
};

struct ScenarioParams {
  std::size_t n = 60;
  /// How many members act as senders (spread evenly over the id space).
  std::size_t senders = 4;
  /// Aggregate offered load in msg/s, split evenly across senders.
  double offered_rate = 30.0;
  /// Poisson (true) or strictly periodic (false) application arrivals.
  bool poisson_arrivals = true;
  std::size_t payload_size = 16;
  /// Probability that a broadcast supersedes the sender's earlier messages
  /// on its stream (each sender is one stream). Pair with
  /// gossip.semantic_purge to exercise semantic reliability workloads.
  double supersede_probability = 0.0;

  /// false: baseline lpbcast (paper Fig. 1). true: adaptive (paper Fig. 5).
  bool adaptive = false;
  gossip::GossipParams gossip;
  adaptive::AdaptiveParams adaptation;

  /// Use lpbcast partial views instead of a full directory.
  bool partial_view = false;
  membership::PartialViewParams view_params;

  /// In-protocol anti-entropy membership (membership::GossipMembership):
  /// liveness records and endpoint bindings ride on the gossip messages
  /// themselves, and suspicion timeouts replace the failure_detector
  /// oracle. Takes precedence over partial_view.
  bool gossip_membership = false;
  membership::GossipMembershipParams membership_params;

  /// Host migration: a recovering node re-announces a *rotated* endpoint
  /// binding under a bumped revision, so the group re-resolves it at a new
  /// address. Only meaningful with gossip_membership.
  bool migrate_on_rejoin = false;

  /// Locality-aware target selection (directional gossip, paper §5): when
  /// locality.enabled, every node's membership is wrapped in a
  /// membership::LocalityView fed by the network's cluster rule, so
  /// targets stay same-cluster with probability p_local and cross-cluster
  /// slots route through per-cluster bridge nodes.
  membership::LocalityParams locality;

  /// When true, every FailureEvent also updates all nodes' membership
  /// views (remove on crash, add on recover) — a perfect failure detector,
  /// so locality bridges re-elect mid-run instead of cross traffic dying
  /// with a crashed bridge.
  bool failure_detector = false;

  /// Latency/loss models and the WAN cluster topology (network.clusters,
  /// network.wan_latency) live here — the cluster rule is evaluated per
  /// send inside sim::SimNetwork, not materialised per pair.
  sim::NetworkParams network;

  /// Per-link latency overrides, applied symmetrically on top of the
  /// cluster topology (so single links can be special-cased).
  struct LinkLatency {
    NodeId a = 0;
    NodeId b = 0;
    sim::LatencyModel model;
  };
  std::vector<LinkLatency> link_latencies;

  std::uint64_t seed = 1;

  DurationMs warmup = 30'000;    // excluded from metrics
  DurationMs duration = 200'000; // evaluation window
  DurationMs cooldown = 20'000;  // run-out so tail messages can finish

  std::vector<CapacityChange> capacity_schedule;
  std::vector<FailureEvent> failure_schedule;

  /// Deterministic fault injection (fault::FaultPlane): corruption,
  /// truncation, duplication, reorder, one-way partitions and gray
  /// failures, declared as time-windowed rules. Empty = clean run, which
  /// takes the exact pre-fault code path (same RNG draw order, so golden
  /// fingerprints are untouched). The plane is seeded from `seed` via a
  /// fixed derivation — never from a master-RNG split — so adding chaos
  /// does not perturb the protocol's own randomness.
  fault::ChaosSchedule chaos;

  /// Bound on each sender's pending queue; arrivals beyond it are refused
  /// (models application back-pressure on the paper's blocking BROADCAST).
  std::size_t pending_cap = 64;

  /// Sharded-engine knobs (core::ShardedScenario; the classic Scenario
  /// ignores them). sim_shards is rounded up to a power of two; the agb_sim
  /// driver routes sim_shards <= 1 to the classic engine, so existing seeds
  /// keep their golden traces. sim_workers = 0 means min(shards, hardware
  /// concurrency); worker count never changes outcomes. lookahead_ms = 0
  /// derives the conservative window from the latency models (>= 1 ms);
  /// setting it higher coarsens the delay floor to that many ms.
  std::size_t sim_shards = 1;
  std::size_t sim_workers = 0;
  DurationMs lookahead_ms = 0;

  /// Granularity of the recorded time series (Fig. 9).
  DurationMs series_bucket = 5'000;
};

struct ScenarioResults {
  metrics::DeliveryReport delivery;

  double offered_rate = 0.0;       // configured aggregate
  double input_rate = 0.0;         // measured admitted broadcasts /s
  double output_rate = 0.0;        // messages reaching >95 % of nodes /s
  double avg_drop_age = 0.0;       // mean age of overflow-dropped events
  std::uint64_t overflow_drops = 0;
  std::uint64_t age_limit_drops = 0;
  std::uint64_t refused_broadcasts = 0;  // back-pressure at the app layer
  std::uint64_t decode_failures = 0;

  // Recovery traffic (zero unless gossip.recovery.enabled).
  std::uint64_t repair_requests = 0;
  std::uint64_t repair_replies = 0;
  std::uint64_t events_recovered = 0;

  // Adaptive-only signals (0 for the baseline).
  double avg_allowed_rate = 0.0;   // time-mean aggregate allowed rate
  double final_allowed_rate = 0.0; // aggregate allowed rate at window end
  double avg_min_buff = 0.0;       // mean minBuff estimate at window end
  double avg_age_estimate = 0.0;   // mean avgAge at window end

  // Control-plane actuator state (adaptation.control.enabled runs only).
  double avg_p_local = 0.0;           // mean live p_local at window end
  double avg_effective_fanout = 0.0;  // mean effective fanout at window end
  /// Deepest any sender's pending queue got (blocking-BROADCAST
  /// back-pressure); bounded by ScenarioParams::pending_cap by
  /// construction — the bound the adaptive parity assertions pin.
  std::size_t max_pending_depth = 0;

  sim::NetworkStats net;

  /// What the fault plane actually injected (all zero on clean runs).
  fault::FaultStats chaos;
  /// Self-healing receipt: delivery over the window starting
  /// kChaosRecoveryRounds gossip rounds after the last fault window
  /// closes. Present only when a chaos schedule ran and left room for the
  /// recovery window inside the evaluation window; the invariant suites
  /// pin its avg_receiver_pct against the preset floor.
  std::optional<metrics::DeliveryReport> post_chaos_delivery;
  /// Group-wide gossip-membership liveness transitions (all zero unless
  /// gossip_membership): gray failures must keep `downs` at zero,
  /// asymmetric partitions must raise `suspicions`.
  membership::MembershipCounters membership_transitions;

  /// High-water mark of the simulator's event queue over the run — the
  /// capacity receipt the scale presets track (the round wheel keeps this
  /// O(n/period + in-flight deliveries), not O(n)).
  std::size_t peak_event_queue_len = 0;

  metrics::TimeSeries allowed_rate_ts{"allowed_rate"};
  metrics::TimeSeries min_buff_ts{"min_buff"};
  metrics::TimeSeries atomicity_ts{"atomicity"};
  metrics::TimeSeries input_rate_ts{"input_rate"};
  /// Control-plane actuator trajectories (empty for baseline runs): the
  /// group-mean p_local of locality nodes and group-mean effective fanout
  /// per series bucket. Seeded determinism tests compare these exactly.
  metrics::TimeSeries p_local_ts{"p_local"};
  metrics::TimeSeries fanout_ts{"fanout"};
};

/// Rounds a group is granted to re-converge after the last fault window
/// closes before the self-healing invariants start judging delivery again.
/// Shared by both harnesses and the parity suite, so "recovers within K
/// rounds" means the same K everywhere.
inline constexpr DurationMs kChaosRecoveryRounds = 5;

/// The recovery window the self-healing invariants measure delivery over:
/// [last fault-window close + K rounds, eval_end), or nullopt when there is
/// no chaos schedule or no room left inside the evaluation window.
[[nodiscard]] std::optional<std::pair<TimeMs, TimeMs>> chaos_recovery_window(
    const ScenarioParams& params);

/// The sender layout both harnesses share: `senders` ids spread evenly
/// over the id space (i * n / senders), clamped to [1, n] — part of the
/// sim/wall-clock parity contract, so it lives in exactly one place.
[[nodiscard]] std::vector<NodeId> scenario_sender_ids(std::size_t n,
                                                      std::size_t senders);

/// The cluster map a scenario's locality decoration uses: the same modulo
/// rule the network prices links with (sim::SimNetwork and the wall-clock
/// InMemoryFabric agree on it), or nullptr when locality is off.
[[nodiscard]] std::shared_ptr<const membership::ClusterMap>
scenario_cluster_map(const ScenarioParams& params);

/// Builds node `id`'s membership stack — full directory or seeded partial
/// view, optionally decorated with a LocalityView — drawing every seed from
/// `master_rng` in a fixed order. Scenario (simulator, arena-allocated
/// nodes) and WallclockScenario (real threads, via build_scenario_node)
/// both bootstrap views here, so the same ScenarioParams + seed yields
/// provably identical nodes on either path: that is the contract the
/// scenario-parity conformance suite pins.
[[nodiscard]] std::unique_ptr<membership::Membership>
build_scenario_membership(
    const ScenarioParams& params, NodeId id, Rng& master_rng,
    const std::shared_ptr<const membership::ClusterMap>& cluster_map);

/// Builds node `id`'s full protocol stack (membership + baseline or
/// adaptive node) on the heap; the wall-clock runtime owns nodes
/// individually. Consumes `master_rng` exactly like Scenario's arena build.
[[nodiscard]] std::unique_ptr<gossip::LpbcastNode> build_scenario_node(
    const ScenarioParams& params, NodeId id, Rng& master_rng,
    const std::shared_ptr<const membership::ClusterMap>& cluster_map);

class Scenario {
 public:
  explicit Scenario(ScenarioParams params);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs the full experiment and returns the report. Call once.
  ScenarioResults run();

  /// Post-run introspection for tests: the protocol nodes (arena-owned;
  /// pointers are stable for the Scenario's lifetime) and the network.
  [[nodiscard]] const std::vector<gossip::LpbcastNode*>& nodes()
      const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<adaptive::AdaptiveLpbcastNode*>&
  adaptive_nodes() const noexcept {
    return adaptive_nodes_;
  }
  [[nodiscard]] const metrics::DeliveryTracker& tracker() const noexcept {
    return tracker_;
  }

 private:
  struct SenderState;

  void build_nodes();
  void apply_topology();
  void start_round_timers();
  void tick_round_bucket(std::size_t index);
  void start_senders();
  void start_sampler();
  void apply_capacity_schedule();
  void apply_failure_schedule();
  void emit(gossip::LpbcastNode& node, gossip::LpbcastNode::Outgoing out);
  void drain_outbox(gossip::LpbcastNode& node);
  void sender_arrival(SenderState& sender);
  void drain_sender(SenderState& sender);
  [[nodiscard]] bool in_eval_window(TimeMs t) const;

  /// One wheel entry per distinct round phase: a single repeating event
  /// sweeps every node sharing the phase (O(min(n, period)) live round
  /// events instead of n PeriodicTimers).
  struct RoundBucket {
    TimeMs phase = 0;
    std::vector<gossip::LpbcastNode*> nodes;
  };

  ScenarioParams params_;
  Rng master_rng_;
  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> net_;
  std::unique_ptr<fault::FaultPlane> fault_plane_;  // null on clean runs
  std::unique_ptr<NodeArenaBase> node_storage_;  // owns the nodes
  std::vector<gossip::LpbcastNode*> nodes_;      // arena pointers, id order
  std::vector<adaptive::AdaptiveLpbcastNode*> adaptive_nodes_;  // or empty
  std::vector<RoundBucket> round_buckets_;
  metrics::DeliveryTracker tracker_;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers_;
  std::vector<std::unique_ptr<SenderState>> senders_;
  RunningStats eval_drop_age_;
  std::uint64_t refused_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::size_t max_pending_depth_ = 0;
  metrics::TimeSeries allowed_rate_ts_{"allowed_rate"};
  metrics::TimeSeries min_buff_ts_{"min_buff"};
  metrics::TimeSeries p_local_ts_{"p_local"};
  metrics::TimeSeries fanout_ts_{"fanout"};
  bool ran_ = false;
};

}  // namespace agb::core
