// Wall-clock twin of core::Scenario: the same ScenarioParams, run on real
// threads instead of the discrete-event simulator.
//
// Every ScenarioRegistry preset the simulator can run, this runner can run
// too: nodes are built by the shared core::build_scenario_node (identical
// master-RNG split sequence, so the same seed yields the same initial
// views, locality decorations and bridge elections on both paths), driven
// by runtime::NodeRuntime round threads over a sharded
// runtime::InMemoryFabric carrying the preset's network model (latency
// range, WAN cluster topology, i.i.d. or bursty loss). A scheduler thread
// replays the failure and capacity schedules against the fabric clock:
// crash/recover maps to InMemoryFabric::set_node_up, the perfect
// failure-detector flag maps to NodeRuntime membership updates on every
// survivor, and capacity changes map to NodeRuntime::set_capacity — the
// exact moves Scenario makes in virtual time.
//
// warmup/duration/cooldown are *real* milliseconds here; metrics use the
// same evaluation-window rules as the simulator (metrics::DeliveryTracker
// over [warmup, warmup+duration)). The scenario-parity conformance suite
// (tests/scenario_parity_test.cc) runs every registry preset through both
// paths and asserts they agree on the preset's invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "metrics/delivery_tracker.h"

namespace agb::core {

struct WallclockOptions {
  /// Receiver shards of the InMemoryFabric (see its Params::shards).
  std::size_t shards = 4;
  std::size_t max_burst = 64;
};

struct WallclockResults {
  /// Evaluation-window metrics, same rules as the simulator path.
  metrics::DeliveryReport delivery;

  double offered_rate = 0.0;  // configured aggregate
  double input_rate = 0.0;    // measured admitted broadcasts /s
  double output_rate = 0.0;   // messages reaching >95 % of nodes /s
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t refused_broadcasts = 0;  // adaptive token gate said no
  std::uint64_t overflow_drops = 0;
  std::uint64_t age_limit_drops = 0;

  /// Fabric receipts. `fabric_delivered` and `elapsed_s` are snapshotted
  /// at the end of the traffic window (throughput excludes the idle
  /// cooldown tail); the drop counters are final values.
  std::uint64_t fabric_delivered = 0;
  std::uint64_t fabric_dropped = 0;
  std::uint64_t fabric_dropped_down = 0;
  std::uint64_t sent_intra_cluster = 0;
  std::uint64_t sent_cross_cluster = 0;
  double elapsed_s = 0.0;

  std::uint64_t app_deliveries = 0;  // deliver-handler firings, non-origin

  // Control-plane actuator state (adaptation.control.enabled runs only).
  double avg_p_local = 0.0;           // mean live p_local at run end
  double avg_effective_fanout = 0.0;  // mean effective fanout at run end

  /// Blocking-BROADCAST back-pressure receipts: deepest any node's pending
  /// queue ever got (bounded by ScenarioParams::pending_cap by
  /// construction) plus depth percentiles over every retry-tick sample —
  /// the numbers the backpressure bench record reports.
  std::size_t max_pending_depth = 0;
  std::size_t pending_depth_p50 = 0;
  std::size_t pending_depth_p90 = 0;
  std::size_t pending_depth_p99 = 0;

  /// Group-mean p_local trajectory, sampled every ~200 ms of run time
  /// (empty unless the control plane is enabled): the wall-clock twin of
  /// ScenarioResults::p_local_ts, for the rise/recover assertions.
  metrics::TimeSeries p_local_ts{"p_local"};

  /// Post-run state per node / per shard.
  std::vector<std::size_t> membership_sizes;
  std::vector<std::size_t> shard_depths;

  /// Fault-plane receipts, the wall-clock twins of ScenarioResults' chaos
  /// fields (all zero / absent on clean runs): what was injected, malformed
  /// datagrams dropped at decode across every runtime, one-way chaos drops
  /// at the fabric, group-wide membership liveness transitions, and the
  /// post-fault recovery report over the same window rules as the
  /// simulator path.
  fault::FaultStats chaos;
  std::uint64_t decode_drops = 0;
  std::uint64_t dropped_chaos = 0;
  membership::MembershipCounters membership_transitions;
  std::optional<metrics::DeliveryReport> post_chaos_delivery;
};

class WallclockScenario {
 public:
  /// Validates eagerly: throws std::invalid_argument (see validate()) for
  /// params that need a simulator-only feature.
  explicit WallclockScenario(ScenarioParams params,
                             WallclockOptions options = {});
  ~WallclockScenario();

  WallclockScenario(const WallclockScenario&) = delete;
  WallclockScenario& operator=(const WallclockScenario&) = delete;

  /// The hard compatibility gate: throws std::invalid_argument naming
  /// every feature of `params` the wall-clock path cannot honour, so a
  /// preset never runs with part of its configuration silently dropped.
  /// Since the fabric adopted the simulator's sim::DelaySampler there is
  /// nothing left to reject — normal (Gaussian) latency and per-link
  /// overrides, the last two simulator-only features, now run for real —
  /// but the gate stays as the single place a future divergence lands.
  static void validate(const ScenarioParams& params);

  /// Runs the experiment in real time (warmup + duration + cooldown
  /// milliseconds of wall clock) and returns the report. Call once.
  WallclockResults run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace agb::core
