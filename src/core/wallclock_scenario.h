// Wall-clock twin of core::Scenario: the same ScenarioParams, run on real
// threads instead of the discrete-event simulator.
//
// Every ScenarioRegistry preset the simulator can run, this runner can run
// too: nodes are built by the shared core::build_scenario_node (identical
// master-RNG split sequence, so the same seed yields the same initial
// views, locality decorations and bridge elections on both paths), driven
// by runtime::NodeRuntime round threads over a sharded
// runtime::InMemoryFabric carrying the preset's network model (latency
// range, WAN cluster topology, i.i.d. or bursty loss). A scheduler thread
// replays the failure and capacity schedules against the fabric clock:
// crash/recover maps to InMemoryFabric::set_node_up, the perfect
// failure-detector flag maps to NodeRuntime membership updates on every
// survivor, and capacity changes map to NodeRuntime::set_capacity — the
// exact moves Scenario makes in virtual time.
//
// warmup/duration/cooldown are *real* milliseconds here; metrics use the
// same evaluation-window rules as the simulator (metrics::DeliveryTracker
// over [warmup, warmup+duration)). The scenario-parity conformance suite
// (tests/scenario_parity_test.cc) runs every registry preset through both
// paths and asserts they agree on the preset's invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "metrics/delivery_tracker.h"

namespace agb::core {

struct WallclockOptions {
  /// Receiver shards of the InMemoryFabric (see its Params::shards).
  std::size_t shards = 4;
  std::size_t max_burst = 64;
};

struct WallclockResults {
  /// Evaluation-window metrics, same rules as the simulator path.
  metrics::DeliveryReport delivery;

  double offered_rate = 0.0;  // configured aggregate
  double input_rate = 0.0;    // measured admitted broadcasts /s
  double output_rate = 0.0;   // messages reaching >95 % of nodes /s
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t refused_broadcasts = 0;  // adaptive token gate said no
  std::uint64_t overflow_drops = 0;
  std::uint64_t age_limit_drops = 0;

  /// Fabric receipts. `fabric_delivered` and `elapsed_s` are snapshotted
  /// at the end of the traffic window (throughput excludes the idle
  /// cooldown tail); the drop counters are final values.
  std::uint64_t fabric_delivered = 0;
  std::uint64_t fabric_dropped = 0;
  std::uint64_t fabric_dropped_down = 0;
  std::uint64_t sent_intra_cluster = 0;
  std::uint64_t sent_cross_cluster = 0;
  double elapsed_s = 0.0;

  std::uint64_t app_deliveries = 0;  // deliver-handler firings, non-origin

  /// Post-run state per node / per shard.
  std::vector<std::size_t> membership_sizes;
  std::vector<std::size_t> shard_depths;
};

class WallclockScenario {
 public:
  /// Validates eagerly: throws std::invalid_argument (see validate()) for
  /// params that need a simulator-only feature.
  explicit WallclockScenario(ScenarioParams params,
                             WallclockOptions options = {});
  ~WallclockScenario();

  WallclockScenario(const WallclockScenario&) = delete;
  WallclockScenario& operator=(const WallclockScenario&) = delete;

  /// The hard compatibility gate: throws std::invalid_argument naming
  /// every feature of `params` the wall-clock path cannot honour, so a
  /// preset never runs with part of its configuration silently dropped.
  /// Today that is the normal (Gaussian) latency model and per-link
  /// latency overrides; everything else — partial views, locality +
  /// bridges, WAN clusters, burst loss, failure and capacity schedules —
  /// runs for real.
  static void validate(const ScenarioParams& params);

  /// Runs the experiment in real time (warmup + duration + cooldown
  /// milliseconds of wall clock) and returns the report. Call once.
  WallclockResults run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace agb::core
