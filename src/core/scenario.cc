#include "core/scenario.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "membership/full_membership.h"

namespace agb::core {

std::vector<NodeId> scenario_sender_ids(std::size_t n, std::size_t senders) {
  std::vector<NodeId> ids;
  senders = std::max<std::size_t>(1, std::min(senders, n));
  ids.reserve(senders);
  for (std::size_t i = 0; i < senders; ++i) {
    ids.push_back(static_cast<NodeId>(i * n / senders));
  }
  return ids;
}

struct Scenario::SenderState {
  NodeId id = kInvalidNode;
  gossip::LpbcastNode* node = nullptr;             // non-owning
  adaptive::AdaptiveLpbcastNode* adaptive = nullptr;  // null for baseline
  double rate = 0.0;                               // offered msg/s
  Rng rng{0};
  std::deque<gossip::Payload> pending;
  std::unique_ptr<sim::PeriodicTimer> retry_timer;
  bool retry_armed = false;
};

std::optional<std::pair<TimeMs, TimeMs>> chaos_recovery_window(
    const ScenarioParams& params) {
  if (params.chaos.empty()) return std::nullopt;
  const TimeMs close = params.chaos.last_window_end();
  if (close <= 0) return std::nullopt;  // open-ended faults never heal
  const TimeMs from =
      close + kChaosRecoveryRounds * params.gossip.gossip_period;
  const TimeMs eval_end = params.warmup + params.duration;
  if (from >= eval_end) return std::nullopt;
  return std::make_pair(from, eval_end);
}

Scenario::Scenario(ScenarioParams params)
    : params_(std::move(params)),
      master_rng_(params_.seed),
      tracker_(params_.n) {
  net_ = std::make_unique<sim::SimNetwork>(sim_, params_.network,
                                           master_rng_.split());
  if (!params_.chaos.empty()) {
    fault_plane_ = std::make_unique<fault::FaultPlane>(
        params_.chaos, fault::chaos_seed(params_.seed));
    net_->set_fault_plane(fault_plane_.get());
  }
}

Scenario::~Scenario() = default;

bool Scenario::in_eval_window(TimeMs t) const {
  return t >= params_.warmup && t < params_.warmup + params_.duration;
}

std::shared_ptr<const membership::ClusterMap> scenario_cluster_map(
    const ScenarioParams& params) {
  // One shared cluster map: the same modulo rule SimNetwork prices links
  // with, so the membership layer and the network agree on the topology.
  if (!params.locality.enabled) return nullptr;
  return std::make_shared<membership::ModuloClusterMap>(
      params.network.clusters);
}

std::unique_ptr<membership::Membership> build_scenario_membership(
    const ScenarioParams& params, NodeId id, Rng& master_rng,
    const std::shared_ptr<const membership::ClusterMap>& cluster_map) {
  const auto i = static_cast<std::size_t>(id);
  std::unique_ptr<membership::Membership> view;
  if (params.gossip_membership) {
    auto gm = std::make_unique<membership::GossipMembership>(
        id, params.membership_params, master_rng.split());
    // Bootstrap knowledge of the whole group, like FullMembership — from
    // here on, liveness is maintained by the gossiped records alone.
    for (std::size_t j = 0; j < params.n; ++j) {
      if (j != i) gm->add(static_cast<NodeId>(j));
    }
    view = std::move(gm);
  } else if (params.partial_view) {
    auto pv = std::make_unique<membership::PartialView>(
        id, params.view_params, master_rng.split());
    // Bootstrap: seed each view with a random sample of the group, the
    // standard way lpbcast deployments are started.
    auto sample = master_rng.sample_indices(
        params.n, params.view_params.max_view + 1);
    for (std::size_t idx : sample) {
      if (idx != i) pv->add(static_cast<NodeId>(idx));
    }
    view = std::move(pv);
  } else {
    auto full =
        std::make_unique<membership::FullMembership>(id, master_rng.split());
    for (std::size_t j = 0; j < params.n; ++j) {
      if (j != i) full->add(static_cast<NodeId>(j));
    }
    view = std::move(full);
  }

  if (params.locality.enabled) {
    view = std::make_unique<membership::LocalityView>(
        id, params.locality, cluster_map, std::move(view),
        master_rng.split());
  }
  return view;
}

std::unique_ptr<gossip::LpbcastNode> build_scenario_node(
    const ScenarioParams& params, NodeId id, Rng& master_rng,
    const std::shared_ptr<const membership::ClusterMap>& cluster_map) {
  auto view = build_scenario_membership(params, id, master_rng, cluster_map);
  if (params.adaptive) {
    return std::make_unique<adaptive::AdaptiveLpbcastNode>(
        id, params.gossip, params.adaptation, std::move(view),
        master_rng.split());
  }
  return std::make_unique<gossip::LpbcastNode>(
      id, params.gossip, std::move(view), master_rng.split());
}

void Scenario::build_nodes() {
  nodes_.reserve(params_.n);
  const auto cluster_map = scenario_cluster_map(params_);
  // Arena-allocate the group: the membership bootstrap and the node seed
  // are drawn from master_rng_ in exactly the order build_scenario_node
  // uses, so arena and heap builds are trace-identical (the parity
  // contract with WallclockScenario).
  if (params_.adaptive) {
    auto arena =
        std::make_unique<NodeArena<adaptive::AdaptiveLpbcastNode>>(params_.n);
    adaptive_nodes_.reserve(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i) {
      const auto id = static_cast<NodeId>(i);
      auto view =
          build_scenario_membership(params_, id, master_rng_, cluster_map);
      auto* node = arena->emplace(id, params_.gossip, params_.adaptation,
                                  std::move(view), master_rng_.split());
      adaptive_nodes_.push_back(node);
      nodes_.push_back(node);
    }
    node_storage_ = std::move(arena);
  } else {
    auto arena = std::make_unique<NodeArena<gossip::LpbcastNode>>(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i) {
      const auto id = static_cast<NodeId>(i);
      auto view =
          build_scenario_membership(params_, id, master_rng_, cluster_map);
      nodes_.push_back(arena->emplace(id, params_.gossip, std::move(view),
                                      master_rng_.split()));
    }
    node_storage_ = std::move(arena);
  }

  for (gossip::LpbcastNode* node : nodes_) {
    const NodeId id = node->id();
    node->set_deliver_handler([this, id](const gossip::Event& e, TimeMs now) {
      if (e.id.origin == id) return;  // origin accounted at broadcast time
      tracker_.on_delivery(e.id, id, now);
    });
    node->set_drop_handler(
        [this](const gossip::Event& e, gossip::DropReason reason, TimeMs now) {
          if (reason != gossip::DropReason::kBufferOverflow) return;
          if (in_eval_window(now)) {
            eval_drop_age_.add(static_cast<double>(e.age));
          }
        });

    net_->attach(id, [this, node](const Datagram& d, TimeMs now) {
      if (!node->on_wire(gossip::decode_any(d.payload), now)) {
        ++decode_failures_;
        return;
      }
      drain_outbox(*node);
    });
  }
}

void Scenario::emit(gossip::LpbcastNode& node,
                    gossip::LpbcastNode::Outgoing out) {
  if (!out.targets.empty()) {
    // One Multicast per gossip round: encode once, one network stats pass,
    // every target aliasing the same SharedBytes buffer.
    net_->send_batch(std::move(out).to_multicast(node.id()));
  }
  drain_outbox(node);
}

void Scenario::drain_outbox(gossip::LpbcastNode& node) {
  for (auto& control : node.take_outbox()) {
    net_->send(Datagram{node.id(), control.target,
                        std::move(control.payload)});
  }
}

void Scenario::apply_topology() {
  for (const auto& link : params_.link_latencies) {
    net_->set_link_latency(link.a, link.b, link.model);
  }
}

void Scenario::start_round_timers() {
  // Unsynchronised rounds: each node starts at a random phase, like
  // independently started processes on the paper's 60 workstations. The
  // phase draw is one master-RNG call per node in id order — the same
  // consumption the per-node-PeriodicTimer implementation made, which is
  // what keeps old seeds producing identical traces. Nodes sharing a phase
  // are then swept by one repeating wheel event in id order (the order
  // their individual timers fired in), so the queue holds one live event
  // per distinct phase instead of one per node.
  std::unordered_map<TimeMs, std::size_t> bucket_index;
  for (gossip::LpbcastNode* node : nodes_) {
    const auto phase = static_cast<TimeMs>(
        master_rng_.next_below(static_cast<std::uint64_t>(
            params_.gossip.gossip_period)));
    const auto [it, inserted] =
        bucket_index.try_emplace(phase, round_buckets_.size());
    if (inserted) round_buckets_.push_back(RoundBucket{phase, {}});
    round_buckets_[it->second].nodes.push_back(node);
  }
  for (std::size_t i = 0; i < round_buckets_.size(); ++i) {
    sim_.at(round_buckets_[i].phase, [this, i] { tick_round_bucket(i); });
  }
}

void Scenario::tick_round_bucket(std::size_t index) {
  const TimeMs now = sim_.now();
  // Re-arm before sweeping, mirroring PeriodicTimer::arm: the next round
  // event is sequenced ahead of anything this sweep schedules.
  sim_.at(now + params_.gossip.gossip_period,
          [this, index] { tick_round_bucket(index); });
  for (gossip::LpbcastNode* node : round_buckets_[index].nodes) {
    emit(*node, node->on_round(now));
  }
}

void Scenario::sender_arrival(SenderState& sender) {
  auto payload = gossip::make_payload(
      std::vector<std::uint8_t>(params_.payload_size, 0xab));
  if (sender.pending.size() >= params_.pending_cap) {
    ++refused_;
  } else {
    sender.pending.push_back(std::move(payload));
    max_pending_depth_ = std::max(max_pending_depth_, sender.pending.size());
  }
  drain_sender(sender);

  // Schedule the next application arrival.
  const double mean_ms = 1000.0 / sender.rate;
  const auto gap = static_cast<DurationMs>(std::max(
      1.0, params_.poisson_arrivals ? sender.rng.exponential(mean_ms)
                                    : mean_ms));
  sim_.after(gap, [this, &sender] { sender_arrival(sender); });
}

void Scenario::drain_sender(SenderState& sender) {
  const TimeMs now = sim_.now();
  while (!sender.pending.empty()) {
    EventId id;
    const bool supersedes =
        params_.supersede_probability > 0.0 &&
        sender.rng.bernoulli(params_.supersede_probability);
    if (sender.adaptive != nullptr) {
      if (!sender.adaptive->try_broadcast_on_stream(
              sender.pending.front(), now, /*stream=*/sender.id, supersedes,
              &id)) {
        break;  // no tokens; the retry timer will try again
      }
    } else {
      id = sender.node->broadcast_on_stream(sender.pending.front(), now,
                                            /*stream=*/sender.id, supersedes);
    }
    sender.pending.pop_front();
    tracker_.on_broadcast(id, sender.id, now);
    tracker_.on_delivery(id, sender.id, now);  // origin's local delivery
  }
}

void Scenario::start_senders() {
  const auto sender_ids = scenario_sender_ids(params_.n, params_.senders);
  const double per_sender =
      params_.offered_rate / static_cast<double>(sender_ids.size());
  for (NodeId id : sender_ids) {
    auto sender = std::make_unique<SenderState>();
    sender->id = id;
    sender->node = nodes_[id];
    sender->adaptive = params_.adaptive ? adaptive_nodes_[id] : nullptr;
    sender->rate = per_sender;
    sender->rng = master_rng_.split();

    // Token-refill retries: cheap fixed-cadence drain attempts; only does
    // work while the pending queue is non-empty.
    sender->retry_timer = std::make_unique<sim::PeriodicTimer>(
        sim_, 100, 100, [this, raw = sender.get()](TimeMs) {
          if (!raw->pending.empty()) drain_sender(*raw);
        });

    const auto first = static_cast<DurationMs>(
        sender->rng.exponential(1000.0 / sender->rate));
    sim_.after(std::max<DurationMs>(first, 1),
               [this, raw = sender.get()] { sender_arrival(*raw); });
    senders_.push_back(std::move(sender));
  }
}

void Scenario::start_sampler() {
  timers_.push_back(std::make_unique<sim::PeriodicTimer>(
      sim_, params_.series_bucket, params_.series_bucket,
      [this](TimeMs now) {
        if (!adaptive_nodes_.empty()) {
          double allowed = 0.0;
          for (const auto& sender : senders_) {
            if (sender->adaptive != nullptr) {
              allowed += sender->adaptive->allowed_rate();
            }
          }
          allowed_rate_ts_.add(now, allowed);

          double min_buff_sum = 0.0;
          for (const auto* node : adaptive_nodes_) {
            min_buff_sum += static_cast<double>(node->min_buff());
          }
          min_buff_ts_.add(
              now, min_buff_sum / static_cast<double>(adaptive_nodes_.size()));

          // Control-plane actuator trajectories: group-mean p_local (over
          // nodes that have a locality bias at all) and effective fanout.
          // Pure reads — no RNG, no protocol state touched.
          if (params_.adaptation.control.enabled) {
            double p_local_sum = 0.0;
            std::size_t locality_nodes = 0;
            double fanout_sum = 0.0;
            for (auto* node : adaptive_nodes_) {
              const double p = node->p_local();
              if (p >= 0.0) {
                p_local_sum += p;
                ++locality_nodes;
              }
              fanout_sum += static_cast<double>(node->effective_fanout());
            }
            if (locality_nodes > 0) {
              p_local_ts_.add(
                  now, p_local_sum / static_cast<double>(locality_nodes));
            }
            fanout_ts_.add(
                now, fanout_sum / static_cast<double>(adaptive_nodes_.size()));
          }
        }
      }));
}

void Scenario::apply_failure_schedule() {
  for (const FailureEvent& event : params_.failure_schedule) {
    sim_.at(event.at, [this, event] {
      net_->set_node_up(event.node, event.up);
      if (event.up && event.node < nodes_.size()) {
        // The recovering process's own restart logic (not an oracle: it
        // touches only the node itself): under gossip membership a rejoin
        // bumps the revision — and rotates the advertised endpoint when
        // the scenario models host migration — so the fresh incarnation's
        // records beat every stale or down claim the group still holds.
        if (auto* gm = nodes_[event.node]->gossip_membership()) {
          if (params_.migrate_on_rejoin) {
            membership::EndpointBinding binding = gm->self_record().binding;
            ++binding.port;
            gm->set_self_binding(binding);
          } else {
            gm->on_restart();
          }
        }
      }
      if (!params_.failure_detector) return;
      // Perfect failure detection: the survivors' views learn the change
      // at once, so locality bridge election reacts within one round.
      for (auto& node : nodes_) {
        if (node->id() == event.node) continue;
        if (event.up) {
          node->membership().add(event.node);
        } else {
          node->membership().remove(event.node);
        }
      }
    });
  }
}

void Scenario::apply_capacity_schedule() {
  for (const CapacityChange& change : params_.capacity_schedule) {
    sim_.at(change.at, [this, change] {
      const auto affected = static_cast<std::size_t>(
          change.node_fraction * static_cast<double>(params_.n));
      for (std::size_t i = 0; i < std::min(affected, params_.n); ++i) {
        if (params_.adaptive) {
          adaptive_nodes_[i]->set_capacity(change.new_capacity, sim_.now());
        } else {
          nodes_[i]->set_max_events(change.new_capacity, sim_.now());
        }
      }
    });
  }
}

ScenarioResults Scenario::run() {
  if (ran_) return {};
  ran_ = true;

  build_nodes();
  apply_topology();
  start_round_timers();
  start_senders();
  start_sampler();
  apply_capacity_schedule();
  apply_failure_schedule();

  const TimeMs eval_start = params_.warmup;
  const TimeMs eval_end = params_.warmup + params_.duration;
  sim_.run_until(eval_end + params_.cooldown);

  ScenarioResults results;
  results.delivery = tracker_.report(eval_start, eval_end);
  results.offered_rate = params_.offered_rate;
  results.input_rate = results.delivery.input_rate;
  results.output_rate = results.delivery.output_rate;
  results.avg_drop_age = eval_drop_age_.mean();
  results.refused_broadcasts = refused_;
  results.decode_failures = decode_failures_;
  results.net = net_->stats();
  results.peak_event_queue_len = sim_.peak_pending_events();

  for (const auto& node : nodes_) {
    results.overflow_drops += node->counters().drops_overflow;
    results.age_limit_drops += node->counters().drops_age_limit;
    results.repair_requests += node->counters().repair_requests;
    results.repair_replies += node->counters().repair_replies;
    results.events_recovered += node->counters().events_recovered;
    if (const auto* gm = node->gossip_membership()) {
      results.membership_transitions.suspicions += gm->counters().suspicions;
      results.membership_transitions.downs += gm->counters().downs;
      results.membership_transitions.revivals += gm->counters().revivals;
    }
  }

  if (fault_plane_ != nullptr) {
    results.chaos = fault_plane_->stats();
    if (const auto window = chaos_recovery_window(params_)) {
      results.post_chaos_delivery =
          tracker_.report(window->first, window->second);
    }
  }

  if (!adaptive_nodes_.empty()) {
    results.avg_allowed_rate = allowed_rate_ts_.mean_in(eval_start, eval_end);
    results.final_allowed_rate = allowed_rate_ts_.value_at(eval_end);
    double min_buff_sum = 0.0;
    double age_sum = 0.0;
    for (const auto* node : adaptive_nodes_) {
      min_buff_sum += static_cast<double>(node->min_buff());
      age_sum += node->avg_age();
    }
    results.avg_min_buff =
        min_buff_sum / static_cast<double>(adaptive_nodes_.size());
    results.avg_age_estimate =
        age_sum / static_cast<double>(adaptive_nodes_.size());

    double p_local_sum = 0.0;
    std::size_t locality_nodes = 0;
    double fanout_sum = 0.0;
    for (auto* node : adaptive_nodes_) {
      const double p = node->p_local();
      if (p >= 0.0) {
        p_local_sum += p;
        ++locality_nodes;
      }
      fanout_sum += static_cast<double>(node->effective_fanout());
    }
    if (locality_nodes > 0) {
      results.avg_p_local =
          p_local_sum / static_cast<double>(locality_nodes);
    }
    results.avg_effective_fanout =
        fanout_sum / static_cast<double>(adaptive_nodes_.size());
  }
  results.max_pending_depth = max_pending_depth_;

  results.allowed_rate_ts = allowed_rate_ts_;
  results.min_buff_ts = min_buff_ts_;
  results.p_local_ts = p_local_ts_;
  results.fanout_ts = fanout_ts_;
  for (auto [t, v] :
       tracker_.atomicity_series(eval_start, eval_end, params_.series_bucket)) {
    results.atomicity_ts.add(t, v);
  }
  for (auto [t, v] : tracker_.input_rate_series(eval_start, eval_end,
                                                params_.series_bucket)) {
    results.input_rate_ts.add(t, v);
  }
  return results;
}

}  // namespace agb::core
