#include "membership/full_membership.h"
#include "membership/partial_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace agb::membership {
namespace {

TEST(FullMembershipTest, TargetsNeverIncludeSelf) {
  FullMembership m(5, Rng(1));
  for (NodeId id = 0; id < 10; ++id) m.add(id);
  EXPECT_EQ(m.size(), 9u);  // self excluded
  for (int trial = 0; trial < 100; ++trial) {
    for (NodeId t : m.targets(4)) EXPECT_NE(t, 5u);
  }
}

TEST(FullMembershipTest, TargetsAreDistinct) {
  FullMembership m(0, Rng(2));
  for (NodeId id = 1; id <= 20; ++id) m.add(id);
  for (int trial = 0; trial < 100; ++trial) {
    auto targets = m.targets(6);
    std::set<NodeId> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size());
  }
}

TEST(FullMembershipTest, FanoutLargerThanGroupReturnsAll) {
  FullMembership m(0, Rng(3));
  m.add(1);
  m.add(2);
  auto targets = m.targets(10);
  std::set<NodeId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique, (std::set<NodeId>{1, 2}));
}

TEST(FullMembershipTest, AddIsIdempotent) {
  FullMembership m(0, Rng(4));
  m.add(7);
  m.add(7);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(7));
}

TEST(FullMembershipTest, RemoveWorksAndIsIdempotent) {
  FullMembership m(0, Rng(5));
  m.add(1);
  m.add(2);
  m.remove(1);
  m.remove(1);
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FullMembershipTest, SnapshotIsSorted) {
  FullMembership m(0, Rng(6));
  m.add(9);
  m.add(3);
  m.add(7);
  auto snap = m.snapshot();
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
  EXPECT_EQ(snap.size(), 3u);
}

TEST(FullMembershipTest, SelectionIsApproximatelyUniform) {
  FullMembership m(0, Rng(7));
  for (NodeId id = 1; id <= 10; ++id) m.add(id);
  std::map<NodeId, int> counts;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (NodeId target : m.targets(3)) ++counts[target];
  }
  for (const auto& [id, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.03) << "node " << id;
  }
}

PartialViewParams small_params() {
  PartialViewParams p;
  p.max_view = 4;
  p.max_subs = 4;
  p.max_unsubs = 4;
  return p;
}

TEST(PartialViewTest, ViewStaysBounded) {
  PartialView v(0, small_params(), Rng(8));
  for (NodeId id = 1; id <= 50; ++id) v.add(id);
  EXPECT_LE(v.size(), 4u);
}

TEST(PartialViewTest, SelfNeverEntersView) {
  PartialView v(3, small_params(), Rng(9));
  v.add(3);
  EXPECT_EQ(v.size(), 0u);
  MembershipDigest digest;
  digest.subs = {3, 3, 3};
  v.apply_digest(1, digest);
  EXPECT_FALSE(v.contains(3));
}

TEST(PartialViewTest, DigestIncludesSelfInSubs) {
  PartialView v(7, small_params(), Rng(10));
  auto digest = v.make_digest();
  EXPECT_NE(std::find(digest.subs.begin(), digest.subs.end(), 7),
            digest.subs.end());
}

TEST(PartialViewTest, ApplyDigestAddsSenderToView) {
  PartialView v(0, small_params(), Rng(11));
  v.apply_digest(9, MembershipDigest{});
  EXPECT_TRUE(v.contains(9));
}

TEST(PartialViewTest, UnsubWinsOverSubInSameDigest) {
  PartialView v(0, small_params(), Rng(12));
  MembershipDigest digest;
  digest.subs = {5};
  digest.unsubs = {5};
  v.apply_digest(1, digest);
  EXPECT_FALSE(v.contains(5));
}

TEST(PartialViewTest, UnsubRemovesExistingMember) {
  PartialView v(0, small_params(), Rng(13));
  v.add(5);
  ASSERT_TRUE(v.contains(5));
  MembershipDigest digest;
  digest.unsubs = {5};
  v.apply_digest(1, digest);
  EXPECT_FALSE(v.contains(5));
}

TEST(PartialViewTest, RemoveGoesToUnsubs) {
  PartialView v(0, small_params(), Rng(14));
  v.add(5);
  v.remove(5);
  auto digest = v.make_digest();
  EXPECT_NE(std::find(digest.unsubs.begin(), digest.unsubs.end(), 5),
            digest.unsubs.end());
}

TEST(PartialViewTest, TargetsComeFromView) {
  PartialView v(0, small_params(), Rng(15));
  v.add(1);
  v.add(2);
  for (int trial = 0; trial < 50; ++trial) {
    for (NodeId t : v.targets(2)) {
      EXPECT_TRUE(t == 1 || t == 2);
    }
  }
}

TEST(PartialViewTest, SnapshotSorted) {
  PartialView v(0, small_params(), Rng(16));
  v.add(9);
  v.add(2);
  auto snap = v.snapshot();
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(PartialViewTest, GossipExchangeConvergesViews) {
  // Two partial views exchanging digests learn about each other's contacts.
  PartialViewParams params;
  params.max_view = 10;
  params.max_subs = 10;
  params.max_unsubs = 10;
  PartialView a(0, params, Rng(17));
  PartialView b(1, params, Rng(18));
  a.add(2);
  b.add(3);
  for (int round = 0; round < 4; ++round) {
    b.apply_digest(0, a.make_digest());
    a.apply_digest(1, b.make_digest());
  }
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(3));
  EXPECT_TRUE(b.contains(0));
  EXPECT_TRUE(b.contains(2));
}

TEST(PartialViewTest, SubsBufferStaysBounded) {
  PartialView v(0, small_params(), Rng(19));
  for (NodeId id = 1; id <= 100; ++id) v.add(id);
  auto digest = v.make_digest();
  EXPECT_LE(digest.subs.size(), small_params().max_subs + 1);  // +self
  EXPECT_LE(digest.unsubs.size(), small_params().max_unsubs);
}

}  // namespace
}  // namespace agb::membership
