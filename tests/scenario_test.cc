#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/capacity_search.h"

namespace agb::core {
namespace {

ScenarioParams small_scenario() {
  ScenarioParams p;
  p.n = 20;
  p.senders = 2;
  p.offered_rate = 5.0;
  p.gossip.fanout = 3;
  p.gossip.gossip_period = 1000;
  p.gossip.max_events = 200;  // ample: no overflow
  p.gossip.max_event_ids = 2000;
  // Ages advance in hops (several per round through phase cascades), so the
  // purge limit must sit well above the hops needed for full dissemination.
  p.gossip.max_age = 24;
  p.warmup = 5'000;
  p.duration = 30'000;
  p.cooldown = 15'000;
  p.seed = 7;
  return p;
}

TEST(ScenarioTest, AmpleBuffersDeliverEverything) {
  Scenario scenario(small_scenario());
  auto results = scenario.run();
  EXPECT_GT(results.delivery.messages, 100u);
  EXPECT_GT(results.delivery.avg_receiver_pct, 99.0);
  EXPECT_GT(results.delivery.atomicity_pct, 99.0);
  EXPECT_EQ(results.decode_failures, 0u);
  EXPECT_EQ(results.overflow_drops, 0u);
}

TEST(ScenarioTest, InputRateTracksOfferedLoad) {
  Scenario scenario(small_scenario());
  auto results = scenario.run();
  EXPECT_NEAR(results.input_rate, 5.0, 0.75);
}

TEST(ScenarioTest, SameSeedIsBitwiseReproducible) {
  auto run_once = [] {
    Scenario scenario(small_scenario());
    return scenario.run();
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.delivery.messages, b.delivery.messages);
  EXPECT_DOUBLE_EQ(a.delivery.avg_receiver_pct, b.delivery.avg_receiver_pct);
  EXPECT_DOUBLE_EQ(a.input_rate, b.input_rate);
  EXPECT_EQ(a.net.sent, b.net.sent);
  EXPECT_EQ(a.net.delivered, b.net.delivered);
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  ScenarioParams p1 = small_scenario();
  ScenarioParams p2 = small_scenario();
  p2.seed = 8;
  Scenario s1(p1), s2(p2);
  auto a = s1.run();
  auto b = s2.run();
  // Gossip emission *count* is schedule-driven (nodes x rounds x fanout), so
  // compare payload traffic, which depends on the random buffer contents.
  EXPECT_NE(a.net.bytes_delivered, b.net.bytes_delivered);
}

TEST(ScenarioTest, TinyBuffersDegradeBaselineReliability) {
  ScenarioParams p = small_scenario();
  p.offered_rate = 20.0;
  p.gossip.max_events = 5;
  Scenario scenario(p);
  auto results = scenario.run();
  EXPECT_LT(results.delivery.atomicity_pct, 90.0);
  EXPECT_GT(results.overflow_drops, 0u);
  EXPECT_GT(results.avg_drop_age, 0.0);
}

TEST(ScenarioTest, AdaptiveThrottlesUnderConstrainedBuffers) {
  ScenarioParams base = small_scenario();
  base.offered_rate = 20.0;
  base.gossip.max_events = 10;
  base.duration = 60'000;

  ScenarioParams adaptive = base;
  adaptive.adaptive = true;
  adaptive.adaptation.initial_rate = 10.0;
  adaptive.adaptation.critical_age = 6.0;
  adaptive.adaptation.low_age_mark = 5.5;
  adaptive.adaptation.high_age_mark = 6.5;

  Scenario s_base(base), s_adaptive(adaptive);
  auto r_base = s_base.run();
  auto r_adaptive = s_adaptive.run();

  // The baseline pushes the whole offered load and loses reliability; the
  // adaptive variant sends less and keeps reliability high.
  EXPECT_LT(r_adaptive.input_rate, r_base.input_rate * 0.8);
  EXPECT_GT(r_adaptive.delivery.avg_receiver_pct,
            r_base.delivery.avg_receiver_pct);
  EXPECT_GT(r_adaptive.refused_broadcasts, 0u);
}

TEST(ScenarioTest, AdaptiveAcceptsLoadWhenResourcesAmple) {
  ScenarioParams p = small_scenario();
  p.adaptive = true;
  p.offered_rate = 4.0;
  p.gossip.max_events = 300;
  p.adaptation.initial_rate = 2.0;  // must grow to accept the offered load
  Scenario scenario(p);
  auto results = scenario.run();
  EXPECT_NEAR(results.input_rate, 4.0, 1.0);
  EXPECT_GT(results.delivery.atomicity_pct, 99.0);
}

TEST(ScenarioTest, CapacityScheduleTakesEffect) {
  ScenarioParams p = small_scenario();
  p.capacity_schedule = {{10'000, 0.25, 3}};
  Scenario scenario(p);
  (void)scenario.run();
  // The first 25% of nodes switched to 3-slot buffers.
  const auto affected = static_cast<std::size_t>(0.25 * p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    const auto expected = i < affected ? 3u : p.gossip.max_events;
    EXPECT_EQ(scenario.nodes()[i]->params().max_events, expected) << i;
  }
}

TEST(ScenarioTest, FailureScheduleSilencesCrashedNodes) {
  ScenarioParams p = small_scenario();
  // Crash a third of the group for the whole run; they can't deliver.
  for (NodeId id = 0; id < 6; ++id) {
    p.failure_schedule.push_back({0, id, false});
  }
  Scenario scenario(p);
  auto results = scenario.run();
  // Sender 0 is among the crashed (senders sit at ids 0 and 10): its
  // messages reach only itself (~5%), sender 10's reach the 14 live nodes
  // (~70%), so the average lands near 37%; atomicity is zero either way.
  EXPECT_LT(results.delivery.avg_receiver_pct, 60.0);
  EXPECT_GT(results.delivery.avg_receiver_pct, 25.0);
  EXPECT_LT(results.delivery.atomicity_pct, 5.0);
}

TEST(ScenarioTest, CrashRecoveryRestoresDissemination) {
  ScenarioParams p = small_scenario();
  p.duration = 40'000;
  for (NodeId id = 0; id < 6; ++id) {
    p.failure_schedule.push_back({0, id, false});
    p.failure_schedule.push_back({20'000, id, true});
  }
  Scenario scenario(p);
  auto results = scenario.run();
  // After recovery the tail of the run is fully reliable again.
  const auto& series = results.atomicity_ts;
  ASSERT_FALSE(series.empty());
  EXPECT_GT(series.points().back().second, 95.0);
}

TEST(ScenarioTest, PartialViewScenarioStillDelivers) {
  ScenarioParams p = small_scenario();
  p.partial_view = true;
  p.view_params.max_view = 8;
  p.view_params.max_subs = 8;
  p.view_params.max_unsubs = 8;
  Scenario scenario(p);
  auto results = scenario.run();
  EXPECT_GT(results.delivery.avg_receiver_pct, 95.0);
}

TEST(ScenarioTest, LossyNetworkDegradesGracefully) {
  ScenarioParams p = small_scenario();
  p.network.loss = sim::LossModel::iid(0.2);
  Scenario scenario(p);
  auto results = scenario.run();
  // Gossip redundancy shrugs off 20% iid loss with ample buffers.
  EXPECT_GT(results.delivery.avg_receiver_pct, 98.0);
  EXPECT_GT(results.net.dropped_loss, 0u);
}

TEST(ScenarioTest, PeriodicArrivalsSupported) {
  ScenarioParams p = small_scenario();
  p.poisson_arrivals = false;
  Scenario scenario(p);
  auto results = scenario.run();
  EXPECT_NEAR(results.input_rate, 5.0, 0.5);
}

TEST(ScenarioTest, RunTwiceReturnsEmptySecondTime) {
  Scenario scenario(small_scenario());
  (void)scenario.run();
  auto second = scenario.run();
  EXPECT_EQ(second.delivery.messages, 0u);
}

TEST(CapacitySearchTest, FindsRateWithinBracket) {
  ScenarioParams p = small_scenario();
  p.gossip.max_events = 12;
  p.warmup = 5'000;
  p.duration = 25'000;
  p.cooldown = 10'000;
  CapacitySearchOptions options;
  options.lo = 2.0;
  options.hi = 60.0;
  options.tol = 4.0;
  auto result = find_max_rate(p, options);
  EXPECT_GE(result.max_rate, 2.0);
  EXPECT_LT(result.max_rate, 60.0);
  EXPECT_GE(result.metric_at_knee, 95.0);
}

TEST(CapacitySearchTest, AmpleBuffersSaturateUpperBound) {
  ScenarioParams p = small_scenario();
  p.gossip.max_events = 1000;
  p.warmup = 5'000;
  p.duration = 20'000;
  p.cooldown = 10'000;
  CapacitySearchOptions options;
  options.lo = 1.0;
  options.hi = 6.0;  // way below true capacity
  options.tol = 1.0;
  auto result = find_max_rate(p, options);
  EXPECT_DOUBLE_EQ(result.max_rate, 6.0);
}

}  // namespace
}  // namespace agb::core
