// The determinism suite pinning the multi-core sharded simulator's core
// contract: for a fixed seed, every scenario-visible outcome is independent
// of the shard count AND the worker count. The suite runs representative
// registry presets (calibrated baseline, crash/recover churn, mid-run fault
// injection, a partial-view scale smoke) at sim_shards in {1, 2, 4, 8} and
// sim_workers in {1, hardware}, and compares the full result surface
// EXACTLY — per-node delivered-event fingerprints, DeliveryReport doubles
// (shared accumulators replay per-shard logs in canonical order at the
// serial barriers, so float accumulation order is fixed), network drop
// ledgers, chaos receipts, membership verdicts and every time series. Only
// the two engine-internal capacity receipts (net.events_scheduled — batched
// application groups — and peak_event_queue_len) vary with layout and are
// excluded.
//
// The shard-count-invariance tests double as the latent-assumption audit's
// regression net: any code path that reads a global clock where it should
// read its shard's, or schedules straight into another shard's queue
// instead of the window-barrier channels, shows up here as a fingerprint
// mismatch at some shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "core/scenario_registry.h"
#include "core/sharded_scenario.h"
#include "metrics/timeseries.h"
#include "sim/sharded_engine.h"

namespace agb::core {
namespace {

Config make_config(const std::vector<std::string>& overrides) {
  Config cfg;
  std::string error;
  for (const char* pair :
       {"n=12", "senders=3", "rate=30", "quick=1", "period_ms=50",
        "warmup_s=1", "duration_s=2", "cooldown_s=1", "seed=11"}) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  for (const std::string& pair : overrides) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  return cfg;
}

ShardedScenarioResults run_sharded(const std::string& preset,
                                   const Config& cfg, std::size_t shards,
                                   std::size_t workers) {
  ScenarioParams params = ScenarioRegistry::instance().build(preset, cfg);
  params.sim_shards = shards;
  params.sim_workers = workers;
  ShardedScenario scenario(std::move(params));
  return scenario.run();
}

void expect_same_series(const metrics::TimeSeries& a,
                        const metrics::TimeSeries& b, const char* what) {
  ASSERT_EQ(a.points().size(), b.points().size()) << what;
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].first, b.points()[i].first) << what << "[" << i
                                                        << "] time";
    EXPECT_EQ(a.points()[i].second, b.points()[i].second) << what << "[" << i
                                                          << "] value";
  }
}

void expect_same_report(const metrics::DeliveryReport& a,
                        const metrics::DeliveryReport& b, const char* what) {
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.window_s, b.window_s) << what;
  EXPECT_EQ(a.input_rate, b.input_rate) << what;
  EXPECT_EQ(a.output_rate, b.output_rate) << what;
  EXPECT_EQ(a.avg_receiver_pct, b.avg_receiver_pct) << what;
  EXPECT_EQ(a.atomicity_pct, b.atomicity_pct) << what;
  EXPECT_EQ(a.latency_p50_ms, b.latency_p50_ms) << what;
  EXPECT_EQ(a.latency_p99_ms, b.latency_p99_ms) << what;
}

/// The whole scenario-visible surface, compared EXACTLY (doubles included:
/// determinism is by construction, not by tolerance). `a` is the baseline
/// (sim_shards=1 on the sharded path), `b` the candidate layout.
void expect_identical(const ShardedScenarioResults& a,
                      const ShardedScenarioResults& b) {
  // The strongest witness first: per-node delivered-event fingerprints.
  // Every (event, node, delivery-time) triple hashes in; one reordered or
  // re-timed delivery anywhere in the run flips a node's fingerprint.
  ASSERT_EQ(a.node_fingerprints.size(), b.node_fingerprints.size());
  for (std::size_t i = 0; i < a.node_fingerprints.size(); ++i) {
    EXPECT_EQ(a.node_fingerprints[i], b.node_fingerprints[i]) << "node " << i;
  }
  ASSERT_EQ(a.membership_sizes.size(), b.membership_sizes.size());
  for (std::size_t i = 0; i < a.membership_sizes.size(); ++i) {
    EXPECT_EQ(a.membership_sizes[i], b.membership_sizes[i]) << "node " << i;
  }

  expect_same_report(a.base.delivery, b.base.delivery, "delivery");
  EXPECT_EQ(a.base.post_chaos_delivery.has_value(),
            b.base.post_chaos_delivery.has_value());
  if (a.base.post_chaos_delivery && b.base.post_chaos_delivery) {
    expect_same_report(*a.base.post_chaos_delivery,
                       *b.base.post_chaos_delivery, "post_chaos_delivery");
  }

  EXPECT_EQ(a.base.offered_rate, b.base.offered_rate);
  EXPECT_EQ(a.base.input_rate, b.base.input_rate);
  EXPECT_EQ(a.base.output_rate, b.base.output_rate);
  EXPECT_EQ(a.base.avg_drop_age, b.base.avg_drop_age);
  EXPECT_EQ(a.base.overflow_drops, b.base.overflow_drops);
  EXPECT_EQ(a.base.age_limit_drops, b.base.age_limit_drops);
  EXPECT_EQ(a.base.refused_broadcasts, b.base.refused_broadcasts);
  EXPECT_EQ(a.base.decode_failures, b.base.decode_failures);
  EXPECT_EQ(a.base.repair_requests, b.base.repair_requests);
  EXPECT_EQ(a.base.repair_replies, b.base.repair_replies);
  EXPECT_EQ(a.base.events_recovered, b.base.events_recovered);
  EXPECT_EQ(a.base.avg_allowed_rate, b.base.avg_allowed_rate);
  EXPECT_EQ(a.base.final_allowed_rate, b.base.final_allowed_rate);
  EXPECT_EQ(a.base.avg_min_buff, b.base.avg_min_buff);
  EXPECT_EQ(a.base.avg_age_estimate, b.base.avg_age_estimate);
  EXPECT_EQ(a.base.avg_p_local, b.base.avg_p_local);
  EXPECT_EQ(a.base.avg_effective_fanout, b.base.avg_effective_fanout);
  EXPECT_EQ(a.base.max_pending_depth, b.base.max_pending_depth);

  // The network ledger, minus events_scheduled: batched application merges
  // same-(shard, time) runs, so the event count is a property of the
  // layout, not of the traffic. Everything the protocols can observe —
  // sends, deliveries, every drop reason, bytes — must match.
  EXPECT_EQ(a.base.net.sent, b.base.net.sent);
  EXPECT_EQ(a.base.net.sent_intra_cluster, b.base.net.sent_intra_cluster);
  EXPECT_EQ(a.base.net.sent_cross_cluster, b.base.net.sent_cross_cluster);
  EXPECT_EQ(a.base.net.batches, b.base.net.batches);
  EXPECT_EQ(a.base.net.delivered, b.base.net.delivered);
  EXPECT_EQ(a.base.net.dropped_loss, b.base.net.dropped_loss);
  EXPECT_EQ(a.base.net.dropped_partition, b.base.net.dropped_partition);
  EXPECT_EQ(a.base.net.dropped_down, b.base.net.dropped_down);
  EXPECT_EQ(a.base.net.dropped_detached, b.base.net.dropped_detached);
  EXPECT_EQ(a.base.net.dropped_chaos, b.base.net.dropped_chaos);
  EXPECT_EQ(a.base.net.bytes_delivered, b.base.net.bytes_delivered);

  // Fault-plane receipts: per-node planes with fixed seed derivations, so
  // what chaos injected cannot depend on who shares a shard.
  EXPECT_EQ(a.base.chaos.corrupted, b.base.chaos.corrupted);
  EXPECT_EQ(a.base.chaos.truncated, b.base.chaos.truncated);
  EXPECT_EQ(a.base.chaos.duplicated, b.base.chaos.duplicated);
  EXPECT_EQ(a.base.chaos.reordered, b.base.chaos.reordered);
  EXPECT_EQ(a.base.chaos.dropped_oneway, b.base.chaos.dropped_oneway);

  EXPECT_EQ(a.base.membership_transitions.suspicions,
            b.base.membership_transitions.suspicions);
  EXPECT_EQ(a.base.membership_transitions.downs,
            b.base.membership_transitions.downs);
  EXPECT_EQ(a.base.membership_transitions.revivals,
            b.base.membership_transitions.revivals);

  expect_same_series(a.base.allowed_rate_ts, b.base.allowed_rate_ts,
                     "allowed_rate_ts");
  expect_same_series(a.base.min_buff_ts, b.base.min_buff_ts, "min_buff_ts");
  expect_same_series(a.base.atomicity_ts, b.base.atomicity_ts,
                     "atomicity_ts");
  expect_same_series(a.base.input_rate_ts, b.base.input_rate_ts,
                     "input_rate_ts");
  expect_same_series(a.base.p_local_ts, b.base.p_local_ts, "p_local_ts");
  expect_same_series(a.base.fanout_ts, b.base.fanout_ts, "fanout_ts");
}

/// The determinism matrix for one preset: run sim_shards=1 as the baseline,
/// then every (shards, workers) layout against it, five repetitions per
/// layout — interleaving flake (a racing accumulator that usually loses the
/// race) needs repetition to surface, not just coverage. Worker counts
/// cover the inline path (1) and the fork-join pool (hardware concurrency,
/// forced to at least 4 so single-core CI still exercises the threaded
/// barriers).
void run_matrix(const std::string& preset,
                const std::vector<std::string>& overrides) {
  constexpr int kReps = 5;
  const Config cfg = make_config(overrides);
  const std::size_t hw = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  const ShardedScenarioResults baseline = run_sharded(preset, cfg, 1, 1);
  EXPECT_EQ(baseline.shards, 1u);
  EXPECT_FALSE(baseline.node_fingerprints.empty());
  for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (std::size_t workers : {std::size_t{1}, hw}) {
      for (int rep = 0; rep < kReps; ++rep) {
        SCOPED_TRACE(preset + " shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers) + " rep=" +
                     std::to_string(rep));
        const ShardedScenarioResults run =
            run_sharded(preset, cfg, shards, workers);
        EXPECT_EQ(run.shards, shards);
        EXPECT_GT(run.windows, 0u);
        expect_identical(baseline, run);
        if (::testing::Test::HasFailure()) return;  // one diff is enough
      }
    }
  }
}

TEST(ShardedSimDeterminism, Paper60AcrossShardAndWorkerCounts) {
  run_matrix("paper60", {});
}

TEST(ShardedSimDeterminism, ChurnAcrossShardAndWorkerCounts) {
  // Crash/recover churn exercises the failure schedule's cross-shard
  // choreography: every shard sees every event on its own clock, only the
  // owner flips liveness. Restart membership refresh must not depend on
  // which shard hosts the churned nodes.
  run_matrix("churn",
             {"churn_every_s=1", "churn_down_s=1", "churn_count=2"});
}

TEST(ShardedSimDeterminism, ChaosSoakAcrossShardAndWorkerCounts) {
  // The hardest preset for an engine: corruption mutates payloads (which
  // can decode into garbage member ids nodes then gossip to — the
  // dropped_detached path), duplication adds copies with their own send
  // seqs, reorder adds per-copy extra delay. All of it rides per-node
  // fault planes with fixed seed derivations, so the receipts are exact.
  run_matrix("chaos-soak", {});
}

TEST(ShardedSimDeterminism, AdaptiveControlPlaneAcrossShardAndWorkerCounts) {
  // The self-tuning control plane closes its feedback loop through the
  // barrier-replayed samplers; the p_local/fanout trajectories must be
  // bit-identical at every layout (doubles compared exactly).
  run_matrix("adaptive-wan", {"n=15"});
}

TEST(ShardedSimDeterminism, ScaleSmokePartialViewsAcrossShards) {
  // A bigger group on bounded partial views: enough nodes that every shard
  // holds hundreds and the barrier batches are real. Kept to one worker
  // axis and a 1 s window so the matrix stays ctest-friendly.
  const Config cfg = make_config({"n=1024", "senders=8", "rate=40",
                                  "warmup_s=1", "duration_s=1",
                                  "cooldown_s=1"});
  const ShardedScenarioResults baseline =
      run_sharded("scale-1e5", cfg, 1, 1);
  EXPECT_FALSE(baseline.node_fingerprints.empty());
  for (std::size_t shards : {std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("scale-1e5 shards=" + std::to_string(shards));
    const ShardedScenarioResults run =
        run_sharded("scale-1e5", cfg, shards, 4);
    expect_identical(baseline, run);
  }
}

TEST(ShardedSimDeterminism, RepeatedRunsAreBitIdentical) {
  // Rerun stability: five repetitions of the same (seed, shards, workers)
  // triple produce the same fingerprints and stats — no hidden iteration
  // over pointer-keyed containers, no wall-clock reads, no racing
  // accumulator anywhere in the threaded path.
  const Config cfg = make_config({});
  const ShardedScenarioResults first = run_sharded("paper60", cfg, 4, 4);
  for (int rep = 1; rep < 5; ++rep) {
    SCOPED_TRACE("rep " + std::to_string(rep));
    const ShardedScenarioResults again = run_sharded("paper60", cfg, 4, 4);
    expect_identical(first, again);
  }
}

TEST(ShardedSimDeterminism, DifferentSeedsDiverge) {
  // The comparison machinery must be able to fail: a different seed moves
  // the per-node fingerprints (guards against expect_identical comparing
  // empty surfaces or the harness ignoring the seed).
  const ShardedScenarioResults a =
      run_sharded("paper60", make_config({}), 4, 1);
  const ShardedScenarioResults b =
      run_sharded("paper60", make_config({"seed=12"}), 4, 1);
  EXPECT_NE(a.node_fingerprints, b.node_fingerprints);
}

// --- Latent-assumption audit regressions (engine level) -------------------
//
// The audit swept the scenario layer for code that bypasses shard clocks or
// shard queues (Scenario::sim_.now() reads, direct sim_.at() scheduling,
// master-RNG draws inside the parallel phase). These engine-level tests pin
// the two properties the fixes rely on.

TEST(ShardedEngineClocks, CallbacksObserveTheirShardClockAtFireTime) {
  // Under conservative windows, shard clocks advance independently between
  // barriers: a callback must see ITS shard's now() equal to its scheduled
  // time, regardless of how far other shards have run ahead. Re-arming
  // round timers with shard.now() + period (not a global clock) rests on
  // exactly this.
  sim::ShardedEngine engine({.shards = 4, .workers = 1, .lookahead = 5});
  std::vector<std::pair<std::size_t, TimeMs>> observed;
  for (std::size_t s = 0; s < engine.shards(); ++s) {
    // Shard s gets events at stride (s+1)*7 — deliberately unaligned with
    // the window length so barriers land mid-stride for some shards.
    for (TimeMs t = (s + 1) * 7; t <= 100; t += (s + 1) * 7) {
      engine.shard(s).at(t, [&observed, &engine, s, t] {
        observed.emplace_back(s, t);
        EXPECT_EQ(engine.shard(s).now(), t)
            << "shard " << s << " clock drifted from its event time";
      });
    }
  }
  engine.run_until(100);
  EXPECT_FALSE(observed.empty());
  for (std::size_t s = 0; s < engine.shards(); ++s) {
    EXPECT_EQ(engine.shard(s).now(), 100) << "shard " << s;
  }
}

TEST(ShardedEngineClocks, BarrierBatchArrivesCanonicallySorted) {
  // The barrier hook's batch is the engine's whole cross-shard story: it
  // must arrive sorted by (at, from, seq, to) no matter which shard pushed
  // what, and nothing in it may sit below the window end.
  sim::ShardedEngine engine({.shards = 2, .workers = 1, .lookahead = 10});
  bool saw_batch = false;
  engine.set_barrier_hook(
      [&saw_batch](TimeMs window_end,
                   std::vector<sim::CrossShardDatagram>& batch) {
        if (batch.empty()) return;
        saw_batch = true;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          EXPECT_GE(batch[i].at, window_end);
          if (i > 0) {
            EXPECT_FALSE(sim::canonical_before(batch[i], batch[i - 1]))
                << "batch not in canonical order at " << i;
          }
        }
      });
  // Both shards emit interleaved traffic from inside their windows, in
  // deliberately non-canonical per-shard order (high sender id first).
  engine.shard(0).at(1, [&engine] {
    engine.push(0, {20, 6, 1, 0, SharedBytes{{1}}});
    engine.push(0, {15, 6, 3, 1, SharedBytes{{2}}});
    engine.push(0, {15, 2, 0, 0, SharedBytes{{3}}});
  });
  engine.shard(1).at(1, [&engine] {
    engine.push(1, {15, 3, 2, 0, SharedBytes{{4}}});
    engine.push(1, {20, 1, 1, 0, SharedBytes{{5}}});
  });
  engine.run_until(30);
  EXPECT_TRUE(saw_batch);
}

}  // namespace
}  // namespace agb::core
