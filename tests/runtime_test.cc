#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "adaptive/adaptive_node.h"
#include "fault/fault_plane.h"
#include "membership/full_membership.h"
#include "runtime/inmemory_fabric.h"
#include "runtime/node_runtime.h"
#include "runtime/udp_transport.h"

namespace agb::runtime {
namespace {

using namespace std::chrono_literals;

// Polls `predicate` until true or the deadline passes; real-time tests must
// never sleep a fixed "long enough" interval.
bool eventually(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline = 5000ms) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

TEST(InMemoryFabricTest, DeliversToAttachedHandler) {
  InMemoryFabric fabric({});
  std::atomic<int> received{0};
  fabric.attach(1, [&](const Datagram& d, TimeMs) {
    if (d.payload == std::vector<std::uint8_t>{7}) received.fetch_add(1);
  });
  fabric.send(Datagram{0, 1, {7}});
  EXPECT_TRUE(eventually([&] { return received.load() == 1; }));
  EXPECT_EQ(fabric.delivered(), 1u);
}

TEST(InMemoryFabricTest, DropsForUnknownDestination) {
  InMemoryFabric fabric({});
  fabric.send(Datagram{0, 42, {1}});
  EXPECT_TRUE(eventually([&] { return fabric.dropped() == 1; }));
}

TEST(InMemoryFabricTest, FullLossDropsEverything) {
  InMemoryFabric::Params params;
  params.loss_probability = 1.0;
  InMemoryFabric fabric(params);
  std::atomic<int> received{0};
  fabric.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  for (int i = 0; i < 20; ++i) fabric.send(Datagram{0, 1, {1}});
  EXPECT_TRUE(eventually([&] { return fabric.dropped() == 20; }));
  EXPECT_EQ(received.load(), 0);
}

TEST(InMemoryFabricTest, ShutdownIsIdempotentAndStopsDelivery) {
  InMemoryFabric fabric({});
  fabric.shutdown();
  fabric.shutdown();
  fabric.send(Datagram{0, 1, {1}});  // discarded, no crash
}

TEST(InMemoryFabricTest, ConcurrentShutdownJoinsExactlyOnce) {
  InMemoryFabric fabric({});
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { fabric.shutdown(); });
  }
  for (auto& t : threads) t.join();
}

TEST(InMemoryFabricTest, ShutdownDiscardsQueuedDatagramsWithoutDelivery) {
  InMemoryFabric::Params params;
  // Deliveries scheduled far beyond any plausible scheduler stall, so
  // shutdown() always discards them before they come due.
  params.min_delay = 10'000;
  params.max_delay = 10'000;
  InMemoryFabric fabric(params);
  std::atomic<int> received{0};
  fabric.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  for (int i = 0; i < 50; ++i) fabric.send(Datagram{0, 1, {1}});
  fabric.shutdown();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(fabric.dropped(), 50u);
}

TEST(InMemoryFabricTest, ShutdownFromHandlerDoesNotDeadlock) {
  // A handler may react to a poison-pill datagram by shutting the fabric
  // down; that runs shutdown() on the dispatcher thread itself, which must
  // neither join itself nor deadlock. The destructor joins afterwards.
  auto fabric = std::make_unique<InMemoryFabric>(InMemoryFabric::Params{});
  std::atomic<bool> poisoned{false};
  fabric->attach(1, [&](const Datagram&, TimeMs) {
    fabric->shutdown();
    poisoned.store(true);
  });
  fabric->send(Datagram{0, 1, {0xff}});
  ASSERT_TRUE(eventually([&] { return poisoned.load(); }));
  fabric.reset();  // joins the dispatcher thread
}

TEST(InMemoryFabricTest, DetachWaitsOutInFlightHandler) {
  // (see also NodeRuntimeTest.StopUnderIncomingTrafficDoesNotDeadlock,
  // which guards the lock ordering this blocking detach imposes on
  // callers)
  // After detach() returns, the handler (and anything it captured) must
  // never run again — the guard against handler use-after-free. The
  // handler blocks mid-delivery; detach must wait for it.
  InMemoryFabric fabric({});
  std::atomic<bool> in_handler{false};
  std::atomic<bool> release{false};
  auto state = std::make_unique<std::atomic<int>>(0);
  fabric.attach(1, [&, raw = state.get()](const Datagram&, TimeMs) {
    in_handler.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    raw->fetch_add(1);
  });
  fabric.send(Datagram{0, 1, {1}});
  ASSERT_TRUE(eventually([&] { return in_handler.load(); }));

  std::thread detacher([&] { fabric.detach(1); });
  std::this_thread::sleep_for(20ms);
  release.store(true);  // let the in-flight delivery finish
  detacher.join();
  state.reset();  // safe: no handler can reference it anymore
  fabric.send(Datagram{0, 1, {1}});  // dropped, handler gone
  EXPECT_TRUE(eventually([&] { return fabric.dropped() >= 1; }));
}

TEST(InMemoryFabricTest, BatchDeliversAllTargetsUnderOneLockAcquisition) {
  InMemoryFabric fabric({.shards = 1});  // the classic single-queue fabric
  std::atomic<int> received{0};
  for (NodeId t = 1; t <= 5; ++t) {
    fabric.attach(t, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  }
  fabric.send_batch(Multicast{0, {1, 2, 3, 4, 5}, {0x42}});
  EXPECT_EQ(fabric.send_lock_acquisitions(), 1u);  // F targets, ONE lock
  EXPECT_TRUE(eventually([&] { return received.load() == 5; }));
  EXPECT_EQ(fabric.delivered(), 5u);
}

TEST(InMemoryFabricTest, BatchTakesOneLockPerTouchedShard) {
  InMemoryFabric fabric({.shards = 4});
  ASSERT_EQ(fabric.shard_count(), 4u);
  std::atomic<int> received{0};
  for (NodeId t = 1; t <= 8; ++t) {
    fabric.attach(t, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  }
  // Targets 1 and 5 share shard 1, 2 and 6 share shard 2: 8 targets touch
  // all 4 shards exactly, never one lock per target.
  fabric.send_batch(Multicast{0, {1, 2, 3, 4, 5, 6, 7, 8}, {0x42}});
  EXPECT_EQ(fabric.send_lock_acquisitions(), 4u);
  EXPECT_TRUE(eventually([&] { return received.load() == 8; }));

  // A batch confined to one shard costs exactly one more acquisition.
  fabric.send_batch(Multicast{0, {1, 5}, {0x43}});
  EXPECT_EQ(fabric.send_lock_acquisitions(), 5u);
  EXPECT_TRUE(eventually([&] { return received.load() == 10; }));
}

TEST(InMemoryFabricTest, MaxQueueDepthTracksPerShardHighWater) {
  InMemoryFabric::Params params;
  params.min_delay = 10'000;  // nothing comes due: depths only grow
  params.max_delay = 10'000;
  params.shards = 2;
  InMemoryFabric fabric(params);
  fabric.attach(0, [](const Datagram&, TimeMs) {});  // shard 0
  fabric.attach(1, [](const Datagram&, TimeMs) {});  // shard 1
  for (int i = 0; i < 10; ++i) fabric.send(Datagram{2, 0, {1}});
  for (int i = 0; i < 4; ++i) fabric.send(Datagram{2, 1, {1}});
  EXPECT_EQ(fabric.max_queue_depth(0), 10u);
  EXPECT_EQ(fabric.max_queue_depth(1), 4u);
  EXPECT_EQ(fabric.max_queue_depth(), 10u);  // max over shards
  fabric.shutdown();
}

TEST(InMemoryFabricTest, BatchHandlerSeesWholeBurstsForOneReceiver) {
  // Zero-delay datagrams to one receiver come due together; the sharded
  // dispatcher must hand them to a BatchHandler in one call (or few),
  // every entry addressed to that receiver, send order preserved.
  InMemoryFabric fabric({.min_delay = 0, .max_delay = 0, .shards = 2});
  std::mutex mu;
  std::vector<std::size_t> burst_sizes;
  std::vector<std::uint8_t> order;
  fabric.attach_batch(1, [&](const Datagram* batch, std::size_t count,
                             TimeMs) {
    std::lock_guard lock(mu);
    burst_sizes.push_back(count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batch[i].to, 1u);
      order.push_back(batch[i].payload.data()[0]);
    }
  });
  for (std::uint8_t i = 0; i < 16; ++i) {
    fabric.send(Datagram{0, 1, {i}});
  }
  EXPECT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return order.size() == 16u;
  }));
  std::lock_guard lock(mu);
  for (std::uint8_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(fabric.delivered(), 16u);
}

TEST(InMemoryFabricTest, DetachRacesSaturatedQueueOnEveryShard) {
  // The acceptance race: producers saturate every shard while nodes are
  // detached and their handler state freed immediately afterwards. If any
  // shard's detach failed to wait out an in-flight handler, ASan/TSan sees
  // a use-after-free of the freed counters.
  constexpr std::size_t kShards = 4;
  constexpr NodeId kNodes = 8;
  InMemoryFabric fabric({.min_delay = 0, .max_delay = 1, .shards = kShards});
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> counters;
  for (NodeId n = 0; n < kNodes; ++n) {
    counters.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    fabric.attach(n, [raw = counters.back().get()](const Datagram&, TimeMs) {
      raw->fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  std::vector<NodeId> all_targets;
  for (NodeId n = 0; n < kNodes; ++n) all_targets.push_back(n);
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      while (!stop.load()) {
        fabric.send_batch(Multicast{100, all_targets, {0x7f}});
      }
    });
  }
  // Let every shard's queue fill, then rip the nodes out one by one.
  std::this_thread::sleep_for(50ms);
  for (NodeId n = 0; n < kNodes; ++n) {
    fabric.detach(n);
    counters[n].reset();  // safe iff detach waited out the in-flight burst
  }
  stop.store(true);
  for (auto& t : producers) t.join();
}

TEST(InMemoryFabricTest, BatchPayloadPointerIdentityAcrossTargets) {
  InMemoryFabric fabric({});
  std::mutex mu;
  std::vector<const std::uint8_t*> seen;
  for (NodeId t = 1; t <= 4; ++t) {
    fabric.attach(t, [&](const Datagram& d, TimeMs) {
      std::lock_guard lock(mu);
      seen.push_back(d.payload.data());
    });
  }
  const SharedBytes payload({9, 9, 9});
  fabric.send_batch(Multicast{0, {1, 2, 3, 4}, payload});
  EXPECT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return seen.size() == 4u;
  }));
  std::lock_guard lock(mu);
  for (const auto* data : seen) EXPECT_EQ(data, payload.data());
}

TEST(InMemoryFabricTest, BatchSamplesLossPerTarget) {
  InMemoryFabric::Params params;
  params.loss_probability = 0.5;
  InMemoryFabric fabric(params);
  std::atomic<int> received{0};
  std::vector<NodeId> targets;
  for (NodeId t = 1; t <= 200; ++t) {
    fabric.attach(t, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
    targets.push_back(t);
  }
  fabric.send_batch(Multicast{0, targets, {0x01}});
  EXPECT_TRUE(eventually([&] {
    return received.load() + static_cast<int>(fabric.dropped()) == 200;
  }));
  EXPECT_GT(received.load(), 50);
  EXPECT_GT(fabric.dropped(), 50u);
}

TEST(InMemoryFabricTest, ClockIsMonotone) {
  InMemoryFabric fabric({});
  const TimeMs a = fabric.now();
  std::this_thread::sleep_for(10ms);
  const TimeMs b = fabric.now();
  EXPECT_GE(b, a + 5);
}

std::unique_ptr<gossip::LpbcastNode> make_protocol_node(
    NodeId self, std::size_t n, bool adaptive, std::size_t max_events = 100,
    DurationMs period = 20) {
  auto members = std::make_unique<membership::FullMembership>(
      self, Rng(self * 17 + 3));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) members->add(id);
  }
  gossip::GossipParams params;
  params.fanout = 3;
  params.gossip_period = period;
  params.max_events = max_events;
  params.max_event_ids = 1000;
  params.max_age = 15;
  if (adaptive) {
    adaptive::AdaptiveParams ap;
    ap.sample_period = 2 * period;
    ap.initial_rate = 50.0;
    ap.bucket_capacity = 10.0;
    return std::make_unique<adaptive::AdaptiveLpbcastNode>(
        self, params, ap, std::move(members), Rng(self + 100));
  }
  return std::make_unique<gossip::LpbcastNode>(self, params,
                                               std::move(members),
                                               Rng(self + 100));
}

TEST(NodeRuntimeTest, GossipGroupDisseminatesOverFabric) {
  constexpr std::size_t kNodes = 5;
  InMemoryFabric fabric({});
  std::vector<std::unique_ptr<NodeRuntime>> runtimes;
  std::atomic<int> total_deliveries{0};
  for (NodeId id = 0; id < kNodes; ++id) {
    auto runtime = std::make_unique<NodeRuntime>(
        make_protocol_node(id, kNodes, /*adaptive=*/false), fabric,
        [&fabric] { return fabric.now(); });
    runtime->set_deliver_handler(
        [&](const gossip::Event&, TimeMs) { total_deliveries.fetch_add(1); });
    runtimes.push_back(std::move(runtime));
  }
  for (auto& r : runtimes) r->start();
  runtimes[0]->broadcast(gossip::make_payload({1, 2, 3}));
  // The origin delivers immediately; the other 4 within a few rounds.
  EXPECT_TRUE(eventually([&] { return total_deliveries.load() >= 5; }));
  for (auto& r : runtimes) r->stop();
  EXPECT_EQ(total_deliveries.load(), 5);
}

TEST(NodeRuntimeTest, BaselineNodeRefusesTryBroadcast) {
  InMemoryFabric fabric({});
  NodeRuntime runtime(make_protocol_node(0, 2, false), fabric,
                      [&fabric] { return fabric.now(); });
  EXPECT_FALSE(runtime.adaptive());
  EXPECT_FALSE(runtime.try_broadcast(gossip::make_payload({1})));
}

TEST(NodeRuntimeTest, AdaptiveNodeGatesBroadcasts) {
  InMemoryFabric fabric({});
  NodeRuntime runtime(make_protocol_node(0, 2, true), fabric,
                      [&fabric] { return fabric.now(); });
  EXPECT_TRUE(runtime.adaptive());
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (runtime.try_broadcast(gossip::make_payload({1}))) ++accepted;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 100);  // bucket capacity 10 caps the burst
  EXPECT_GT(runtime.allowed_rate(), 0.0);
}

TEST(NodeRuntimeTest, AdaptiveGroupAgreesOnMinBuffOverFabric) {
  constexpr std::size_t kNodes = 4;
  InMemoryFabric fabric({});
  std::vector<std::unique_ptr<NodeRuntime>> runtimes;
  for (NodeId id = 0; id < kNodes; ++id) {
    // Node 2 has the smallest buffer (7); everyone must learn "7".
    const std::size_t cap = (id == 2) ? 7 : 50;
    runtimes.push_back(std::make_unique<NodeRuntime>(
        make_protocol_node(id, kNodes, /*adaptive=*/true, cap), fabric,
        [&fabric] { return fabric.now(); }));
  }
  for (auto& r : runtimes) r->start();
  // Traffic so gossip messages flow.
  for (int i = 0; i < 5; ++i) {
    (void)runtimes[0]->try_broadcast(gossip::make_payload({9}));
  }
  EXPECT_TRUE(eventually([&] {
    for (auto& r : runtimes) {
      if (r->min_buff() != 7) return false;
    }
    return true;
  }));
  for (auto& r : runtimes) r->stop();
}

TEST(NodeRuntimeTest, StopIsIdempotent) {
  InMemoryFabric fabric({});
  NodeRuntime runtime(make_protocol_node(0, 2, false), fabric,
                      [&fabric] { return fabric.now(); });
  runtime.start();
  runtime.stop();
  runtime.stop();
}

TEST(NodeRuntimeTest, StopUnderIncomingTrafficDoesNotDeadlock) {
  // InMemoryFabric::detach blocks until an in-flight delivery returns, and
  // that delivery (on_datagram) takes the runtime mutex — so stop() must
  // never detach while holding it. Regression: tearing a runtime down
  // (started or not) while peers are spraying datagrams at it used to be
  // able to deadlock.
  InMemoryFabric fabric({});
  for (int round = 0; round < 10; ++round) {
    auto runtime = std::make_unique<NodeRuntime>(
        make_protocol_node(1, 2, false), fabric,
        [&fabric] { return fabric.now(); });
    if (round % 2 == 0) runtime->start();
    for (int i = 0; i < 50; ++i) fabric.send(Datagram{0, 1, {0x01}});
    runtime->stop();
  }
}

TEST(NodeRuntimeTest, SetCapacityWhileRunning) {
  InMemoryFabric fabric({});
  NodeRuntime runtime(make_protocol_node(0, 2, true), fabric,
                      [&fabric] { return fabric.now(); });
  runtime.start();
  runtime.set_capacity(5);
  EXPECT_TRUE(eventually([&] { return runtime.min_buff() == 5; }));
  runtime.stop();
}

TEST(UdpTransportTest, RoundTripOverLoopback) {
  UdpTransport transport(28'500);
  std::atomic<bool> got{false};
  Datagram seen;
  transport.attach(1, [&](const Datagram& d, TimeMs) {
    seen = d;
    got.store(true);
  });
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.send(Datagram{0, 1, {0xaa, 0xbb}});
  ASSERT_TRUE(eventually([&] { return got.load(); }));
  EXPECT_EQ(seen.from, 0u);
  EXPECT_EQ(seen.to, 1u);
  EXPECT_EQ(seen.payload, (std::vector<std::uint8_t>{0xaa, 0xbb}));
  transport.detach(0);
  transport.detach(1);
}

TEST(UdpTransportTest, SendWithoutAttachedSourceFails) {
  UdpTransport transport(28'600);
  transport.send(Datagram{5, 6, {1}});
  EXPECT_EQ(transport.send_failures(), 1u);
}

TEST(UdpTransportTest, BatchFanOutIsOneSyscall) {
  UdpTransport transport(28'800);
  std::atomic<int> received{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  for (NodeId t = 1; t <= 5; ++t) {
    transport.attach(t, [&](const Datagram& d, TimeMs) {
      if (d.from == 0 && d.payload == std::vector<std::uint8_t>{0x5a}) {
        received.fetch_add(1);
      }
    });
  }
  transport.send_batch(Multicast{0, {1, 2, 3, 4, 5}, {0x5a}});
#if defined(__linux__)
  EXPECT_EQ(transport.send_syscalls(), 1u);  // the whole fan-out, batched
#else
  EXPECT_EQ(transport.send_syscalls(), 5u);
#endif
  EXPECT_TRUE(eventually([&] { return received.load() == 5; }));
  EXPECT_EQ(transport.send_failures(), 0u);
  for (NodeId t = 0; t <= 5; ++t) transport.detach(t);
}

TEST(UdpTransportTest, BatchSendMakesNoPayloadCopies) {
  // The transport hands the SharedBytes straight to the kernel via the
  // shared iovec: after send_batch returns it holds no reference and never
  // cloned the buffer.
  UdpTransport transport(28'900);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  for (NodeId t = 1; t <= 3; ++t) {
    transport.attach(t, [](const Datagram&, TimeMs) {});
  }
  const SharedBytes payload({1, 2, 3, 4, 5});
  const std::uint8_t* data_before = payload.data();
  transport.send_batch(Multicast{0, {1, 2, 3}, payload});
  EXPECT_EQ(payload.use_count(), 1);
  EXPECT_EQ(payload.data(), data_before);
  for (NodeId t = 0; t <= 3; ++t) transport.detach(t);
}

TEST(UdpTransportTest, BatchCountsUnresolvableTargetsAsFailures) {
  auto directory = std::make_shared<StaticDirectory>();
  ASSERT_TRUE(directory->add_spec(0, "127.0.0.1:29000"));
  ASSERT_TRUE(directory->add_spec(1, "127.0.0.1:29001"));
  UdpTransport transport(directory);
  std::atomic<int> received{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  transport.send_batch(Multicast{0, {1, 77, 78}, {0x11}});
  EXPECT_TRUE(eventually([&] { return received.load() == 1; }));
  EXPECT_EQ(transport.send_failures(), 2u);  // 77 and 78 have no entry
  transport.detach(0);
  transport.detach(1);
}

TEST(UdpTransportTest, StaticDirectoryRoundTrip) {
  // A non-contiguous port layout no base+id scheme could produce — the
  // directory, not the transport, owns addressing now.
  auto directory = std::make_shared<StaticDirectory>();
  ASSERT_TRUE(directory->add_spec(3, "127.0.0.1:29050"));
  ASSERT_TRUE(directory->add_spec(9, "127.0.0.1:29061"));
  UdpTransport transport(directory);
  std::atomic<bool> got{false};
  Datagram seen;
  transport.attach(9, [&](const Datagram& d, TimeMs) {
    seen = d;
    got.store(true);
  });
  transport.attach(3, [](const Datagram&, TimeMs) {});
  transport.send(Datagram{3, 9, {0xcd}});
  ASSERT_TRUE(eventually([&] { return got.load(); }));
  EXPECT_EQ(seen.from, 3u);
  EXPECT_EQ(seen.to, 9u);
  EXPECT_EQ(seen.payload, (std::vector<std::uint8_t>{0xcd}));
  transport.detach(3);
  transport.detach(9);
}

TEST(UdpTransportTest, AttachWithoutDirectoryEntryThrows) {
  UdpTransport transport(std::make_shared<StaticDirectory>());
  EXPECT_THROW(transport.attach(4, [](const Datagram&, TimeMs) {}),
               std::runtime_error);
}

TEST(UdpTransportTest, RecvSyscallCounterMirrorsSendSide) {
  UdpTransport transport(29'350);
  std::atomic<int> received{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  EXPECT_EQ(transport.recv_batch(), UdpTransport::kDefaultRecvBatch);
  transport.send(Datagram{0, 1, {0x33}});
  ASSERT_TRUE(eventually([&] { return received.load() == 1; }));
  // At least the syscall that returned the datagram; never zero once
  // traffic flowed.
  EXPECT_GE(transport.recv_syscalls(), 1u);
  transport.detach(0);
  transport.detach(1);
}

TEST(UdpTransportTest, RecvBatchesDrainManyDatagramsPerSyscall) {
#if defined(__linux__)
  // One sendmmsg burst of F datagrams to one receiver whose handler stalls
  // briefly: while it stalls the rest queue in the socket buffer, so each
  // following recvmmsg drains up to recv_batch of them. F syscalls would
  // mean no batching; the drain path needs ~F/recv_batch (plus the first).
  constexpr std::size_t kBurst = 64;
  UdpTransport transport(29'360, /*recv_batch=*/16);
  std::atomic<int> received{0};
  std::atomic<int> bursts{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach_batch(1, [&](const Datagram* batch, std::size_t count,
                                TimeMs) {
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(batch[i].to, 1u);
      EXPECT_EQ(batch[i].from, 0u);
    }
    received.fetch_add(static_cast<int>(count));
    bursts.fetch_add(1);
    std::this_thread::sleep_for(10ms);  // let the rest pile up
  });
  transport.send_batch(
      Multicast{0, std::vector<NodeId>(kBurst, 1), {0x5a}});
  ASSERT_TRUE(eventually(
      [&] { return received.load() == static_cast<int>(kBurst); }));
  // Strictly fewer handler calls and syscalls than datagrams — the burst
  // was actually batched. (Exact counts depend on scheduling; the
  // micro-benchmarks report the ~F/recv_batch figure.)
  EXPECT_LT(bursts.load(), static_cast<int>(kBurst) / 2);
  EXPECT_LT(transport.recv_syscalls(), kBurst);
  transport.detach(0);
  transport.detach(1);
#endif
}

TEST(UdpTransportTest, SendErrorCountersStayZeroOverCleanLoopback) {
  UdpTransport transport(29'400);
  std::atomic<int> received{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  for (int i = 0; i < 50; ++i) {
    transport.send_batch(Multicast{0, {1}, {0x01, 0x02}});
  }
  EXPECT_TRUE(eventually([&] { return received.load() == 50; }));
  EXPECT_EQ(transport.send_errors(), 0u);
  transport.detach(0);
  transport.detach(1);
}

TEST(UdpTransportTest, NonRetryableSendErrorIsCountedAndSkipped) {
  // A payload past the UDP datagram limit earns EMSGSIZE from the kernel —
  // a non-retryable errno, so the transport must count it in send_errors()
  // and move on (no infinite retry loop), while the rest of the batch
  // still flows.
  UdpTransport transport(29'420);
  std::atomic<int> received{0};
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach(1, [&](const Datagram&, TimeMs) { received.fetch_add(1); });
  const SharedBytes oversize(std::vector<std::uint8_t>(70'000, 0xee));
  transport.send_batch(Multicast{0, {1}, oversize});
  transport.send_batch(Multicast{0, {1}, {0x42}});  // batch after the error
  EXPECT_TRUE(eventually([&] { return received.load() == 1; }));
  EXPECT_GE(transport.send_errors(), 1u);
  EXPECT_GE(transport.send_failures(), 1u);
  transport.detach(0);
  transport.detach(1);
}

TEST(UdpTransportTest, ChaosCorruptionMutatesLiveDatagrams) {
  // End-to-end over real sockets: with a corrupt-everything plane attached
  // the bytes on the wire differ from the bytes handed to send_batch, and
  // the original shared buffer is never touched.
  fault::ChaosSchedule schedule;
  schedule.rules = {{fault::FaultKind::kCorrupt, 1.0, fault::kAnyNode,
                     fault::kAnyNode, 0, 0, fault::kNoEnd}};
  fault::FaultPlane plane(schedule, 17);
  UdpTransport transport(29'440);
  transport.set_fault_plane(&plane);
  std::mutex mu;
  std::vector<std::vector<std::uint8_t>> seen;
  transport.attach(0, [](const Datagram&, TimeMs) {});
  transport.attach(1, [&](const Datagram& d, TimeMs) {
    std::lock_guard lock(mu);
    seen.emplace_back(d.payload.begin(), d.payload.end());
  });
  const std::vector<std::uint8_t> original(32, 0x00);
  const SharedBytes payload(original);
  for (int i = 0; i < 10; ++i) {
    transport.send_batch(Multicast{0, {1}, payload});
  }
  EXPECT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return seen.size() == 10u;
  }));
  EXPECT_EQ(plane.stats().corrupted, 10u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), original.begin()));
  std::lock_guard lock(mu);
  for (const auto& bytes : seen) {
    ASSERT_EQ(bytes.size(), original.size());
    EXPECT_NE(bytes, original);  // some byte really flipped on the wire
  }
  transport.detach(0);
  transport.detach(1);
}

TEST(InMemoryFabricTest, OneWayChaosDropsOnlyTheDeadDirection) {
  fault::ChaosSchedule schedule;
  schedule.rules = {{fault::FaultKind::kOneWay, 0.0, 0, 1, 0, 0,
                     fault::kNoEnd}};
  fault::FaultPlane plane(schedule, 3);
  InMemoryFabric fabric({});
  fabric.set_fault_plane(&plane);
  std::atomic<int> at_one{0};
  std::atomic<int> at_zero{0};
  fabric.attach(0, [&](const Datagram&, TimeMs) { at_zero.fetch_add(1); });
  fabric.attach(1, [&](const Datagram&, TimeMs) { at_one.fetch_add(1); });
  for (int i = 0; i < 10; ++i) {
    fabric.send_batch(Multicast{0, {1}, {0x01}});  // dead direction
    fabric.send_batch(Multicast{1, {0}, {0x02}});  // reverse lives
  }
  EXPECT_TRUE(eventually([&] { return at_zero.load() == 10; }));
  EXPECT_EQ(at_one.load(), 0);
  EXPECT_EQ(fabric.dropped_chaos(), 10u);
  EXPECT_EQ(plane.stats().dropped_oneway, 10u);
  fabric.shutdown();
}

TEST(NodeRuntimeTest, DecodeDropsCountMalformedDatagramsOnly) {
  InMemoryFabric fabric({});
  NodeRuntime runtime(make_protocol_node(1, 2, false), fabric,
                      [&fabric] { return fabric.now(); });
  runtime.start();
  EXPECT_EQ(runtime.decode_drops(), 0u);
  // Garbage that can never decode: wrong magic, three bytes.
  for (int i = 0; i < 5; ++i) fabric.send(Datagram{0, 1, {0x01, 0x02, 0x03}});
  EXPECT_TRUE(eventually([&] { return runtime.decode_drops() == 5u; }));
  runtime.stop();
}

TEST(UdpTransportTest, GossipGroupOverRealSockets) {
  constexpr std::size_t kNodes = 3;
  UdpTransport transport(28'700);
  std::vector<std::unique_ptr<NodeRuntime>> runtimes;
  std::atomic<int> deliveries{0};
  for (NodeId id = 0; id < kNodes; ++id) {
    auto runtime = std::make_unique<NodeRuntime>(
        make_protocol_node(id, kNodes, /*adaptive=*/false, 100, 30),
        transport, [&transport] { return transport.now(); });
    runtime->set_deliver_handler(
        [&](const gossip::Event&, TimeMs) { deliveries.fetch_add(1); });
    runtimes.push_back(std::move(runtime));
  }
  for (auto& r : runtimes) r->start();
  runtimes[0]->broadcast(gossip::make_payload({1}));
  EXPECT_TRUE(eventually([&] { return deliveries.load() >= 3; }));
  for (auto& r : runtimes) r->stop();
}

}  // namespace
}  // namespace agb::runtime
