#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace agb {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(SampleSetTest, MeanAndQuantiles) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, QuantileClampsArgument) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 2.0);
}

TEST(SampleSetTest, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(HistogramTest, BinningAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  h.add(0.5);   // bin 0
  h.add(2.5);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly hi clamps into the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 3u);
}

}  // namespace
}  // namespace agb
