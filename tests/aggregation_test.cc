#include "gossip/aggregation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace agb::gossip {
namespace {

TEST(PeriodicAggregatorTest, MinMatchesMinBuffSemantics) {
  MinAggregator<std::uint32_t> agg(2, 90);
  EXPECT_EQ(agg.estimate(), 90u);
  agg.on_header(0, 45);
  EXPECT_EQ(agg.estimate(), 45u);
  agg.advance_to(1);
  EXPECT_EQ(agg.header_value(), 90u);  // running restarts from local
  EXPECT_EQ(agg.estimate(), 45u);      // window still remembers
  agg.advance_to(2);
  EXPECT_EQ(agg.estimate(), 90u);      // expired
}

TEST(PeriodicAggregatorTest, MaxAggregates) {
  MaxAggregator<int> agg(2, 3);
  agg.on_header(0, 10);
  agg.on_header(0, 7);
  EXPECT_EQ(agg.estimate(), 10);
}

TEST(PeriodicAggregatorTest, RefoldingIsIdempotent) {
  // Gossip re-delivers the same information arbitrarily often; semilattice
  // folds must not care.
  MinAggregator<int> agg(2, 100);
  for (int i = 0; i < 50; ++i) agg.on_header(0, 42);
  EXPECT_EQ(agg.estimate(), 42);
}

TEST(PeriodicAggregatorTest, LaterPeriodFastForwards) {
  MinAggregator<int> agg(2, 100);
  agg.on_header(9, 5);
  EXPECT_EQ(agg.period(), 9u);
  EXPECT_EQ(agg.estimate(), 5);
}

TEST(PeriodicAggregatorTest, StaleHeaderIgnored) {
  MinAggregator<int> agg(2, 100);
  agg.advance_to(4);
  agg.on_header(1, 1);
  EXPECT_EQ(agg.estimate(), 100);
}

TEST(PeriodicAggregatorTest, FlagOrAggregation) {
  FlagAggregator agg(3, false);
  EXPECT_FALSE(agg.estimate());
  agg.on_header(0, true);
  EXPECT_TRUE(agg.estimate());
  agg.advance_to(1);
  agg.advance_to(2);
  EXPECT_TRUE(agg.estimate());  // still in the 3-period window
  agg.advance_to(3);
  EXPECT_FALSE(agg.estimate());
}

TEST(PeriodicAggregatorTest, SetLocalFoldsImmediately) {
  MinAggregator<int> agg(2, 50);
  agg.set_local(20);
  EXPECT_EQ(agg.header_value(), 20);
  // Growth shows only after the window rolls over (min-fold semantics).
  agg.set_local(80);
  EXPECT_EQ(agg.header_value(), 20);
  agg.advance_to(2);
  EXPECT_EQ(agg.estimate(), 80);
}

TEST(PeriodicAggregatorTest, SimulatedGroupConvergesToGlobalMin) {
  // 16 aggregators exchanging headers pairwise at random: all must learn
  // the global minimum within a period.
  Rng rng(7);
  std::vector<MinAggregator<int>> nodes;
  for (int i = 0; i < 16; ++i) {
    nodes.emplace_back(2, 100 + i);
  }
  nodes[11].set_local(17);  // the global minimum
  for (int step = 0; step < 400; ++step) {
    const auto a = static_cast<std::size_t>(rng.next_below(16));
    const auto b = static_cast<std::size_t>(rng.next_below(16));
    nodes[b].on_header(nodes[a].period(), nodes[a].header_value());
  }
  for (const auto& node : nodes) {
    EXPECT_EQ(node.estimate(), 17);
  }
}

TEST(NodeMapAggregatorTest, SumAndMeanOverNodeMap) {
  NodeMapAggregator<int> agg(0, 10);
  agg.on_share({1, 20, 1});
  agg.on_share({2, 30, 1});
  EXPECT_EQ(agg.sum(), 60);
  EXPECT_DOUBLE_EQ(agg.mean(), 20.0);
  EXPECT_EQ(agg.known_nodes(), 3u);
}

TEST(NodeMapAggregatorTest, ReDeliveryDoesNotDoubleCount) {
  NodeMapAggregator<int> agg(0, 10);
  for (int i = 0; i < 10; ++i) agg.on_share({1, 20, 1});
  EXPECT_EQ(agg.sum(), 30);
}

TEST(NodeMapAggregatorTest, HigherVersionWins) {
  NodeMapAggregator<int> agg(0, 10);
  agg.on_share({1, 20, 1});
  agg.on_share({1, 25, 2});
  agg.on_share({1, 99, 1});  // stale
  EXPECT_EQ(agg.sum(), 35);
}

TEST(NodeMapAggregatorTest, SetLocalBumpsVersion) {
  NodeMapAggregator<int> a(0, 10);
  NodeMapAggregator<int> b(1, 0);
  for (const auto& share : a.shares()) b.on_share(share);
  a.set_local(50);
  for (const auto& share : a.shares()) b.on_share(share);
  EXPECT_EQ(b.sum(), 50);
}

TEST(NodeMapAggregatorTest, ForgetRemovesDepartedNode) {
  NodeMapAggregator<int> agg(0, 10);
  agg.on_share({1, 20, 1});
  agg.forget(1);
  EXPECT_EQ(agg.sum(), 10);
  agg.forget(0);  // self cannot be forgotten
  EXPECT_EQ(agg.sum(), 10);
}

TEST(NodeMapAggregatorTest, SharesRoundTripBetweenNodes) {
  NodeMapAggregator<int> a(0, 1);
  NodeMapAggregator<int> b(1, 2);
  NodeMapAggregator<int> c(2, 4);
  // a -> b -> c: c learns a's value transitively.
  for (const auto& s : a.shares()) b.on_share(s);
  for (const auto& s : b.shares()) c.on_share(s);
  EXPECT_EQ(c.sum(), 7);
}

}  // namespace
}  // namespace agb::gossip
