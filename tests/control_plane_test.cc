// The self-tuning control plane and the estimators feeding it.
//
// Three layers of pinning:
//   1. ControlPlane unit semantics — latched hysteresis (no flapping at a
//      mark), actuator clamps, and the Nominal relax-toward-base path that
//      makes "recovers after the squeeze heals" observable.
//   2. Estimator properties — RobustMinEstimator is permutation-invariant
//      and monotone in its inputs; CongestionEstimator's avgAge EWMA
//      converges under injected noise and moves monotonically toward
//      one-sided input.
//   3. Determinism receipts — the same seed yields byte-identical
//      p_local/fanout trajectories across two simulator runs, and enabling
//      the control plane changes ZERO bytes of an emitted gossip message
//      (its actuators steer target selection and local state only).
#include "adaptive/control_plane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adaptive/adaptive_node.h"
#include "adaptive/congestion_estimator.h"
#include "adaptive/robust_min_estimator.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/scenario.h"
#include "core/scenario_registry.h"
#include "gossip/event_buffer.h"
#include "membership/full_membership.h"

namespace agb::adaptive {
namespace {

constexpr double kLow = 4.0;
constexpr double kHigh = 5.0;

ControlPlaneParams plane_params() {
  ControlPlaneParams p;
  p.enabled = true;
  return p;
}

ControlPlane make_plane(std::size_t base_fanout = 4,
                        double base_p_local = 0.9) {
  return ControlPlane(plane_params(), kLow, kHigh, base_fanout, base_p_local);
}

ControlPlane::Signals signals(double avg_age, double remote_novel = 1.0,
                              bool has_locality = true) {
  return ControlPlane::Signals{avg_age, remote_novel, has_locality};
}

TEST(ControlPlaneTest, StartsNominalAtConfiguredBases) {
  ControlPlane plane = make_plane(4, 0.9);
  EXPECT_EQ(plane.regime(), Regime::kNominal);
  EXPECT_DOUBLE_EQ(plane.p_local(), 0.9);
  EXPECT_EQ(plane.fanout(), 4u);
}

TEST(ControlPlaneTest, BasePLocalClampedIntoConfiguredRange) {
  // A preset p_local outside [min, max] is pulled inside, so the relax
  // target is always reachable by the actuator.
  ControlPlane plane = make_plane(4, /*base_p_local=*/0.1);
  EXPECT_DOUBLE_EQ(plane.p_local(), plane.params().p_local_min);
}

TEST(ControlPlaneTest, ZeroBaseFanoutClampedToOne) {
  ControlPlane plane = make_plane(0);
  EXPECT_EQ(plane.fanout(), 1u);
  plane.tick(signals(kLow - 1.0));  // congested scaling must stay >= 1
  EXPECT_GE(plane.fanout(), 1u);
}

TEST(ControlPlaneTest, CongestionRaisesPLocalAndTrimsFanout) {
  ControlPlane plane = make_plane(4, 0.9);
  const ControlPlane::Actions actions = plane.tick(signals(kLow - 0.5));
  EXPECT_EQ(plane.regime(), Regime::kCongested);
  EXPECT_DOUBLE_EQ(actions.p_local, 0.9 + plane.params().p_local_step);
  EXPECT_EQ(actions.fanout, 3u);  // 4 * 0.75
}

TEST(ControlPlaneTest, PLocalClampedAtMaxUnderSustainedCongestion) {
  ControlPlane plane = make_plane(4, 0.9);
  for (int i = 0; i < 100; ++i) plane.tick(signals(kLow - 1.0));
  EXPECT_DOUBLE_EQ(plane.p_local(), plane.params().p_local_max);
}

TEST(ControlPlaneTest, HysteresisLatchesCongestedInsideTheBand) {
  // Enter Congested below L, then hover just above L but inside the
  // hysteresis band: the regime must NOT flap back to Nominal.
  ControlPlane plane = make_plane();
  plane.tick(signals(kLow - 0.1));
  ASSERT_EQ(plane.regime(), Regime::kCongested);
  const double hysteresis = plane.params().hysteresis;
  for (int i = 0; i < 10; ++i) {
    plane.tick(signals(kLow + hysteresis / 2.0));
    EXPECT_EQ(plane.regime(), Regime::kCongested) << "tick " << i;
  }
  // Only clearing the band releases the latch.
  plane.tick(signals(kLow + hysteresis + 0.01));
  EXPECT_EQ(plane.regime(), Regime::kNominal);
}

TEST(ControlPlaneTest, HysteresisLatchesSpareSymmetrically) {
  ControlPlane plane = make_plane();
  plane.tick(signals(kHigh + 0.1));
  ASSERT_EQ(plane.regime(), Regime::kSpare);
  const double hysteresis = plane.params().hysteresis;
  for (int i = 0; i < 10; ++i) {
    plane.tick(signals(kHigh - hysteresis / 2.0));
    EXPECT_EQ(plane.regime(), Regime::kSpare) << "tick " << i;
  }
  plane.tick(signals(kHigh - hysteresis - 0.01));
  EXPECT_EQ(plane.regime(), Regime::kNominal);
}

TEST(ControlPlaneTest, SpareScalesFanoutUpButKeepsPLocalUnlessStarving) {
  ControlPlane plane = make_plane(4, 0.9);
  // Remote novelty keeps arriving: spare capacity alone must not open the
  // WAN (that would trade reliability for nothing).
  const ControlPlane::Actions actions =
      plane.tick(signals(kHigh + 1.0, /*remote_novel=*/2.0));
  EXPECT_EQ(plane.regime(), Regime::kSpare);
  EXPECT_EQ(actions.fanout, 5u);  // 4 * 1.25
  EXPECT_DOUBLE_EQ(actions.p_local, 0.9);
}

TEST(ControlPlaneTest, SpareAndStarvingOpensTheWan) {
  ControlPlane plane = make_plane(4, 0.9);
  // Zero remote novelty for long enough drains the EWMA below the starve
  // threshold; p_local must then step DOWN (the cluster is cut off).
  for (int i = 0; i < 200 && !plane.starving(); ++i) {
    plane.tick(signals(kHigh + 1.0, /*remote_novel=*/0.0));
  }
  ASSERT_TRUE(plane.starving());
  const double before = plane.p_local();
  const ControlPlane::Actions actions =
      plane.tick(signals(kHigh + 1.0, /*remote_novel=*/0.0));
  EXPECT_DOUBLE_EQ(actions.p_local, before - plane.params().p_local_step);
}

TEST(ControlPlaneTest, StarvationWithoutLocalityLeavesPLocalAlone) {
  ControlPlane plane = make_plane(4, 0.9);
  for (int i = 0; i < 200; ++i) {
    plane.tick(signals(kHigh + 1.0, 0.0, /*has_locality=*/false));
  }
  EXPECT_DOUBLE_EQ(plane.p_local(), 0.9);
}

TEST(ControlPlaneTest, NominalRelaxesTowardBaseFromBothSides) {
  ControlPlane plane = make_plane(4, 0.9);
  // Drive p_local up under congestion, then heal: Nominal ticks walk it
  // back to base at half step and restore the base fanout, without
  // overshooting below base.
  for (int i = 0; i < 20; ++i) plane.tick(signals(kLow - 1.0));
  ASSERT_GT(plane.p_local(), 0.9);
  const double mid = (kLow + kHigh) / 2.0;
  double previous = plane.p_local();
  for (int i = 0; i < 500 && plane.p_local() > 0.9; ++i) {
    const ControlPlane::Actions actions = plane.tick(signals(mid));
    EXPECT_LE(actions.p_local, previous);
    EXPECT_EQ(actions.fanout, 4u);
    previous = actions.p_local;
  }
  EXPECT_DOUBLE_EQ(plane.p_local(), 0.9);

  // And from below (after a starvation excursion).
  ControlPlane starved = make_plane(4, 0.9);
  for (int i = 0; i < 300; ++i) starved.tick(signals(kHigh + 1.0, 0.0));
  ASSERT_LT(starved.p_local(), 0.9);
  for (int i = 0; i < 500 && starved.p_local() < 0.9; ++i) {
    starved.tick(signals(mid));
  }
  EXPECT_DOUBLE_EQ(starved.p_local(), 0.9);
}

// ---------------------------------------------------------------------------
// Estimator properties.

gossip::MinSetEntry entry(NodeId node, std::uint32_t capacity) {
  return gossip::MinSetEntry{node, capacity};
}

TEST(EstimatorPropertyTest, RobustMinIsShuffleInvariant) {
  // The estimate is a function of the SET of (node, capacity) claims, not
  // of the order gossip happened to deliver them in.
  std::vector<gossip::MinSetEntry> entries;
  for (NodeId id = 1; id <= 12; ++id) {
    entries.push_back(entry(id, 20 + 7 * static_cast<std::uint32_t>(id)));
  }
  Rng rng(99);
  std::vector<std::uint32_t> estimates;
  for (int round = 0; round < 8; ++round) {
    RobustMinEstimator est(/*k=*/3, /*floor=*/0, /*window=*/2, /*self=*/0,
                           /*local_capacity=*/200);
    rng.shuffle(entries);
    // Deliver one entry per header, like distinct gossip messages would.
    for (const auto& e : entries) {
      est.on_entries(0, std::span<const gossip::MinSetEntry>(&e, 1));
    }
    estimates.push_back(est.estimate());
  }
  for (std::uint32_t estimate : estimates) {
    EXPECT_EQ(estimate, estimates.front());
  }
}

TEST(EstimatorPropertyTest, RobustMinIsMonotoneInNewClaims) {
  // Learning a strictly smaller capacity can only lower (never raise) the
  // estimate; learning a larger one can only raise or keep it.
  RobustMinEstimator est(/*k=*/2, /*floor=*/0, /*window=*/2, /*self=*/0,
                         /*local_capacity=*/100);
  Rng rng(7);
  std::uint32_t previous = est.estimate();
  for (NodeId id = 1; id <= 30; ++id) {
    const auto capacity =
        static_cast<std::uint32_t>(90 - 2 * id + rng.next_below(2));
    const gossip::MinSetEntry e = entry(id, capacity);
    est.on_entries(0, std::span<const gossip::MinSetEntry>(&e, 1));
    EXPECT_LE(est.estimate(), previous) << "claim from node " << id;
    previous = est.estimate();
  }
}

TEST(EstimatorPropertyTest, RobustMinWindowForgetsDepartedMinima) {
  // A small buffer advertised in a past period ages out of the window and
  // the estimate converges back to the survivors' capacities.
  RobustMinEstimator est(/*k=*/1, /*floor=*/0, /*window=*/2, /*self=*/0,
                         /*local_capacity=*/100);
  const gossip::MinSetEntry small = entry(5, 10);
  est.on_entries(0, std::span<const gossip::MinSetEntry>(&small, 1));
  EXPECT_EQ(est.estimate(), 10u);
  est.advance_to(1);
  EXPECT_EQ(est.estimate(), 10u);  // still inside the window
  est.advance_to(3);
  EXPECT_EQ(est.estimate(), 100u);  // aged out; only self remains
}

TEST(EstimatorPropertyTest, AvgAgeMovesMonotonicallyTowardOneSidedInput) {
  // Every sample strictly below the current average must pull the EWMA
  // down, and never below the sample itself.
  CongestionEstimator est(0.9, /*initial_age=*/8.0);
  gossip::EventBuffer buf;
  double previous = est.avg_age();
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    gossip::Event e;
    e.id = EventId{1, seq};
    e.age = 2;
    buf.insert(e);
    est.observe(buf, 0);  // min_buff 0: every event is virtually dropped
    EXPECT_LT(est.avg_age(), previous);
    EXPECT_GE(est.avg_age(), 2.0);
    previous = est.avg_age();
  }
  EXPECT_NEAR(est.avg_age(), 2.0, 0.1);
}

TEST(EstimatorPropertyTest, AvgAgeConvergesUnderInjectedNoise) {
  // Noisy drop ages uniform in [3, 9] (mean 6): the EWMA must settle into
  // a band around the mean instead of tracking the extremes.
  CongestionEstimator est(0.9, /*initial_age=*/0.0);
  Rng rng(1234);
  gossip::EventBuffer buf;
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    gossip::Event e;
    e.id = EventId{1, seq};
    e.age = static_cast<std::uint32_t>(3 + rng.next_below(7));  // 3..9
    buf.insert(e);
    est.observe(buf, 0);
  }
  EXPECT_GT(est.avg_age(), 4.5);
  EXPECT_LT(est.avg_age(), 7.5);
}

// ---------------------------------------------------------------------------
// Determinism receipts.

TEST(ControlPlaneDeterminismTest, SameSeedYieldsIdenticalTrajectories) {
  // Two full simulator runs of the adaptive-wan preset from one seed must
  // produce byte-identical p_local and fanout trajectories: the control
  // plane is pure arithmetic (no RNG), so any divergence here means a
  // hidden draw or iteration-order dependence crept into the feedback path.
  Config cfg;
  std::string error;
  for (const char* pair :
       {"n=12", "senders=3", "rate=30", "quick=1", "period_ms=50",
        "warmup_s=1", "duration_s=3", "cooldown_s=1", "bucket_s=1",
        "seed=77"}) {
    ASSERT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  const core::ScenarioParams params =
      core::ScenarioRegistry::instance().build("adaptive-wan", cfg);
  ASSERT_TRUE(params.adaptation.control.enabled);

  auto run_once = [&params] {
    core::Scenario scenario(params);
    return scenario.run();
  };
  const core::ScenarioResults first = run_once();
  const core::ScenarioResults second = run_once();

  ASSERT_FALSE(first.p_local_ts.empty());
  ASSERT_EQ(first.p_local_ts.size(), second.p_local_ts.size());
  for (std::size_t i = 0; i < first.p_local_ts.size(); ++i) {
    EXPECT_EQ(first.p_local_ts.points()[i], second.p_local_ts.points()[i]);
  }
  ASSERT_EQ(first.fanout_ts.size(), second.fanout_ts.size());
  for (std::size_t i = 0; i < first.fanout_ts.size(); ++i) {
    EXPECT_EQ(first.fanout_ts.points()[i], second.fanout_ts.points()[i]);
  }
  EXPECT_EQ(first.delivery.messages, second.delivery.messages);
  EXPECT_DOUBLE_EQ(first.avg_p_local, second.avg_p_local);
  EXPECT_DOUBLE_EQ(first.avg_effective_fanout, second.avg_effective_fanout);
  EXPECT_EQ(first.max_pending_depth, second.max_pending_depth);
}

std::unique_ptr<membership::FullMembership> directory(NodeId self,
                                                      std::size_t n) {
  auto m = std::make_unique<membership::FullMembership>(self, Rng(self + 1));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) m->add(id);
  }
  return m;
}

TEST(ControlPlaneDeterminismTest, ControlPlaneAddsZeroWireBytes) {
  // Same node, same seed, same inputs — one with the control plane on, one
  // off. The emitted gossip payloads must be byte-identical: the plane's
  // actuators steer target *selection* and local state, never message
  // content, which is why the pinned golden fingerprints of the
  // failure_detector era survive this PR unchanged.
  gossip::GossipParams gp;
  gp.fanout = 3;
  gp.gossip_period = 1000;
  gp.max_events = 10;
  gp.max_event_ids = 200;
  gp.max_age = 12;
  AdaptiveParams on;
  on.control.enabled = true;
  AdaptiveParams off;
  off.control.enabled = false;

  AdaptiveLpbcastNode with_plane(0, gp, on, directory(0, 8), Rng(42));
  AdaptiveLpbcastNode without_plane(0, gp, off, directory(0, 8), Rng(42));
  ASSERT_NE(with_plane.control_plane(), nullptr);
  ASSERT_EQ(without_plane.control_plane(), nullptr);

  for (TimeMs now = 0; now < 10'000; now += 1000) {
    with_plane.try_broadcast(gossip::make_payload({7, 7}), now);
    without_plane.try_broadcast(gossip::make_payload({7, 7}), now);
    const auto a = with_plane.on_round(now).to_multicast(0);
    const auto b = without_plane.on_round(now).to_multicast(0);
    ASSERT_EQ(a.payload.size(), b.payload.size()) << "round at " << now;
    EXPECT_TRUE(std::equal(a.payload.data(), a.payload.data() + a.payload.size(),
                           b.payload.data()))
        << "round at " << now;
    if (with_plane.control_plane()->regime() == Regime::kNominal) {
      // While the plane hasn't actuated, it must also be draw-neutral:
      // both nodes consume the RNG identically, so target picks match.
      EXPECT_EQ(a.targets, b.targets) << "round at " << now;
    } else {
      // Once idle rounds boost avgAge into kSpare the fanout actuator
      // kicks in — target COUNT follows the plane, payload bytes don't.
      EXPECT_EQ(a.targets.size(), with_plane.control_plane()->fanout())
          << "round at " << now;
    }
  }
}

}  // namespace
}  // namespace agb::adaptive
