#include "common/moving_average.h"

#include <gtest/gtest.h>

namespace agb {
namespace {

TEST(EwmaTest, SeededWithInitialValue) {
  Ewma e(0.9, 5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  EXPECT_EQ(e.samples(), 0u);
}

TEST(EwmaTest, UpdateRuleMatchesPaperFormula) {
  // avg <- alpha * avg + (1 - alpha) * sample
  Ewma e(0.9, 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.1);
  EXPECT_EQ(e.samples(), 2u);
}

TEST(EwmaTest, AlphaZeroTracksLastSample) {
  Ewma e(0.0, 100.0);
  e.add(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
  e.add(-1.0);
  EXPECT_DOUBLE_EQ(e.value(), -1.0);
}

TEST(EwmaTest, AlphaOneIgnoresSamples) {
  Ewma e(1.0, 7.0);
  for (int i = 0; i < 10; ++i) e.add(1000.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.9, 0.0);
  for (int i = 0; i < 200; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(EwmaTest, ResetReseedsAndClearsCount) {
  Ewma e(0.5, 1.0);
  e.add(3.0);
  e.reset(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  EXPECT_EQ(e.samples(), 0u);
}

TEST(WindowedAverageTest, PartialWindow) {
  WindowedAverage w(4);
  w.add(2.0);
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
}

TEST(WindowedAverageTest, EvictsOldestWhenFull) {
  WindowedAverage w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.value(), 5.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(WindowedAverageTest, EmptyIsZero) {
  WindowedAverage w(3);
  EXPECT_DOUBLE_EQ(w.value(), 0.0);
}

}  // namespace
}  // namespace agb
