// Membership churn over partial views, driven through the full node stack:
// nodes subscribe (join with a seed contact) and unsubscribe (circulate an
// unsub notice) while gossip keeps flowing. These tests exercise the
// lpbcast membership maintenance that the Scenario harness's static groups
// do not reach — plus the wall-clock mirror of the bridge-crash case:
// the same locality re-election, on real NodeRuntime threads over the
// inmemory fabric instead of the simulator.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gossip/lpbcast_node.h"
#include "membership/cluster_map.h"
#include "membership/full_membership.h"
#include "membership/locality_view.h"
#include "membership/partial_view.h"
#include "runtime/inmemory_fabric.h"
#include "runtime/node_runtime.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace agb::gossip {
namespace {

constexpr DurationMs kRound = 1000;

struct Cluster {
  sim::Simulator sim;
  sim::SimNetwork net{sim, {}, Rng(1)};
  Rng master{2024};
  std::vector<std::unique_ptr<LpbcastNode>> nodes;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;

  GossipParams params() const {
    GossipParams p;
    p.fanout = 3;
    p.gossip_period = kRound;
    p.max_events = 100;
    p.max_event_ids = 1000;
    p.max_age = 20;
    return p;
  }

  membership::PartialViewParams view_params() const {
    membership::PartialViewParams v;
    v.max_view = 8;
    v.max_subs = 8;
    v.max_unsubs = 8;
    return v;
  }

  /// Adds a node whose view is seeded with `contacts` (its join points).
  LpbcastNode* add_node(NodeId id, const std::vector<NodeId>& contacts) {
    auto view = std::make_unique<membership::PartialView>(id, view_params(),
                                                          master.split());
    for (NodeId contact : contacts) view->add(contact);
    return add_node_with_view(id, std::move(view));
  }

  /// Adds a node over an arbitrary membership (e.g. a LocalityView).
  LpbcastNode* add_node_with_view(
      NodeId id, std::unique_ptr<membership::Membership> view) {
    auto node = std::make_unique<LpbcastNode>(id, params(), std::move(view),
                                              master.split());
    net.attach(id, [raw = node.get()](const Datagram& d, TimeMs now) {
      (void)raw->on_wire(decode_any(d.payload), now);
    });
    const auto phase = static_cast<TimeMs>(
        sim.now() + static_cast<TimeMs>(master.next_below(kRound)));
    timers.push_back(std::make_unique<sim::PeriodicTimer>(
        sim, phase, kRound, [this, raw = node.get()](TimeMs now) {
          auto out = raw->on_round(now);
          if (out.targets.empty()) return;
          net.send_batch(std::move(out).to_multicast(raw->id()));
        }));
    nodes.push_back(std::move(node));
    return nodes.back().get();
  }

  LpbcastNode* find(NodeId id) {
    for (auto& node : nodes) {
      if (node->id() == id) return node.get();
    }
    return nullptr;
  }

  /// How many live nodes have `member` in their view.
  std::size_t view_spread(NodeId member) {
    std::size_t count = 0;
    for (auto& node : nodes) {
      if (node->id() != member && node->membership().contains(member)) {
        ++count;
      }
    }
    return count;
  }
};

TEST(ChurnTest, LateJoinerBecomesKnownAndReceivesTraffic) {
  Cluster cluster;
  for (NodeId id = 0; id < 8; ++id) {
    cluster.add_node(id, {static_cast<NodeId>((id + 1) % 8)});
  }
  cluster.sim.run_until(10'000);  // views mix

  // Node 99 joins knowing only node 0.
  auto* joiner = cluster.add_node(99, {0});
  int joiner_deliveries = 0;
  joiner->set_deliver_handler(
      [&](const Event&, TimeMs) { ++joiner_deliveries; });
  cluster.sim.run_until(18'000);  // its subscription circulates

  EXPECT_GE(cluster.view_spread(99), 3u);

  // Traffic from an arbitrary old member reaches the joiner.
  cluster.find(5)->broadcast(make_payload({0x11}), cluster.sim.now());
  cluster.sim.run_until(30'000);
  EXPECT_GE(joiner_deliveries, 1);
}

TEST(ChurnTest, UnsubscribeDrainsFromViews) {
  Cluster cluster;
  for (NodeId id = 0; id < 10; ++id) {
    cluster.add_node(id, {static_cast<NodeId>((id + 1) % 10)});
  }
  cluster.sim.run_until(12'000);
  ASSERT_GE(cluster.view_spread(3), 3u);

  // Node 3 leaves: every *other* node circulates the unsubscription (in
  // lpbcast the leaver hands its unsub to contacts, who keep gossiping it);
  // we inject it at two contacts and stop node 3's traffic.
  cluster.net.detach(3);
  for (NodeId contact : {4u, 7u}) {
    cluster.find(contact)->membership().remove(3);
  }
  cluster.sim.run_until(40'000);
  // The unsub spreads; node 3 disappears from (almost) all views.
  EXPECT_LE(cluster.view_spread(3), 2u);
}

TEST(ChurnTest, ViewsStayBoundedUnderHeavyJoinChurn) {
  Cluster cluster;
  for (NodeId id = 0; id < 6; ++id) {
    cluster.add_node(id, {static_cast<NodeId>((id + 1) % 6)});
  }
  // 30 nodes join over time.
  for (NodeId id = 100; id < 130; ++id) {
    cluster.sim.run_for(500);
    cluster.add_node(id, {static_cast<NodeId>(id % 6)});
  }
  cluster.sim.run_for(15'000);
  for (auto& node : cluster.nodes) {
    EXPECT_LE(node->membership().size(), 8u) << "node " << node->id();
    EXPECT_FALSE(node->membership().contains(node->id()));
  }
  // Dissemination still works across the churned group.
  int deliveries = 0;
  for (auto& node : cluster.nodes) {
    node->set_deliver_handler([&](const Event&, TimeMs) { ++deliveries; });
  }
  cluster.find(0)->broadcast(make_payload({0x22}), cluster.sim.now());
  cluster.sim.run_for(15'000);
  EXPECT_GE(deliveries, static_cast<int>(cluster.nodes.size() * 3 / 4));
}

TEST(ChurnTest, BridgeCrashReelectsSuccessorAndCrossDeliveryRecovers) {
  // Two islands (even ids / odd ids) with locality-biased membership:
  // nodes 0..11, cluster = id % 2, one bridge per cluster. The initial
  // bridge of the odd cluster is node 1; crash it mid-run, let the
  // failure propagate to the membership layer (as lpbcast unsubs or a
  // failure detector would), and cross-cluster delivery must recover
  // through the re-elected bridge (node 3).
  Cluster cluster;
  constexpr NodeId kGroup = 12;
  auto map = std::make_shared<membership::ModuloClusterMap>(2);
  std::vector<membership::LocalityView*> views;
  for (NodeId id = 0; id < kGroup; ++id) {
    auto inner =
        std::make_unique<membership::FullMembership>(id, cluster.master.split());
    for (NodeId peer = 0; peer < kGroup; ++peer) {
      if (peer != id) inner->add(peer);
    }
    membership::LocalityParams locality;
    locality.enabled = true;
    locality.p_local = 0.7;
    auto view = std::make_unique<membership::LocalityView>(
        id, locality, map, std::move(inner), cluster.master.split());
    views.push_back(view.get());
    cluster.add_node_with_view(id, std::move(view));
  }

  // Everyone agrees on the initial election.
  EXPECT_EQ(views[0]->bridges_of(1), std::vector<NodeId>{1});
  EXPECT_EQ(views[5]->bridges_of(0), std::vector<NodeId>{0});

  std::set<NodeId> receivers;
  for (auto& node : cluster.nodes) {
    node->set_deliver_handler(
        [&receivers, id = node->id()](const Event&, TimeMs) {
          receivers.insert(id);
        });
  }
  cluster.sim.run_until(5'000);
  cluster.find(0)->broadcast(make_payload({0x41}), cluster.sim.now());
  cluster.sim.run_until(20'000);
  EXPECT_EQ(receivers.size(), kGroup) << "pre-crash dissemination incomplete";

  // Crash the odd cluster's bridge and tell the survivors (the role the
  // lpbcast unsub flow / a failure detector plays in a deployment).
  cluster.net.set_node_up(1, false);
  for (auto& node : cluster.nodes) {
    if (node->id() != 1) node->membership().remove(1);
  }
  for (NodeId id = 0; id < kGroup; ++id) {
    if (id == 1) continue;
    EXPECT_EQ(views[id]->bridges_of(1), std::vector<NodeId>{3})
        << "node " << id << " did not re-elect";
  }

  // A fresh broadcast from the even cluster still reaches every live odd
  // node — the cross-cluster funnel now runs through node 3.
  receivers.clear();
  cluster.find(4)->broadcast(make_payload({0x42}), cluster.sim.now());
  cluster.sim.run_until(40'000);
  EXPECT_EQ(receivers.size(), kGroup - 1) << "post-crash delivery incomplete";
  EXPECT_FALSE(receivers.contains(1));
}

TEST(ChurnTest, WallclockBridgeCrashReelectsSuccessorAndCrossDeliveryRecovers) {
  // The wall-clock mirror of BridgeCrashReelectsSuccessorAndCrossDelivery-
  // Recovers: the same two-island locality group (even/odd ids, one bridge
  // per cluster), but on real NodeRuntime threads over the inmemory fabric.
  // Crash the odd island's bridge mid-run with set_node_up and propagate
  // the failure to the survivors' memberships through NodeRuntime (the
  // failure-detector role WallclockScenario's scheduler plays): cross-
  // cluster delivery must recover through the re-elected bridge.
  using namespace std::chrono_literals;
  constexpr NodeId kGroup = 12;

  const auto eventually = [](const std::function<bool()>& predicate) {
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < 10'000ms) {
      if (predicate()) return true;
      std::this_thread::sleep_for(5ms);
    }
    return predicate();
  };

  runtime::InMemoryFabric fabric({.shards = 4});
  auto map = std::make_shared<membership::ModuloClusterMap>(2);
  Rng master{2024};
  std::mutex mu;
  std::set<NodeId> receivers;
  NodeId tracked_origin = kInvalidNode;
  std::vector<membership::LocalityView*> views;
  std::vector<std::unique_ptr<runtime::NodeRuntime>> runtimes;
  for (NodeId id = 0; id < kGroup; ++id) {
    auto inner =
        std::make_unique<membership::FullMembership>(id, master.split());
    for (NodeId peer = 0; peer < kGroup; ++peer) {
      if (peer != id) inner->add(peer);
    }
    membership::LocalityParams locality;
    locality.enabled = true;
    locality.p_local = 0.7;
    auto view = std::make_unique<membership::LocalityView>(
        id, locality, map, std::move(inner), master.split());
    views.push_back(view.get());
    GossipParams params;
    params.fanout = 3;
    params.gossip_period = 50;
    params.max_events = 100;
    params.max_event_ids = 1000;
    params.max_age = 20;
    auto runtime = std::make_unique<runtime::NodeRuntime>(
        std::make_unique<LpbcastNode>(id, params, std::move(view),
                                      master.split()),
        fabric, [&fabric] { return fabric.now(); });
    runtime->set_deliver_handler(
        [&mu, &receivers, &tracked_origin, id](const Event& e, TimeMs) {
          std::lock_guard lock(mu);
          if (e.id.origin == tracked_origin) receivers.insert(id);
        });
    runtimes.push_back(std::move(runtime));
  }
  for (auto& runtime : runtimes) runtime->start();

  // Pre-crash: an even-island broadcast reaches the whole group.
  {
    std::lock_guard lock(mu);
    tracked_origin = 0;
    receivers.clear();
  }
  runtimes[0]->broadcast(make_payload({0x51}));
  ASSERT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return receivers.size() == kGroup;
  })) << "pre-crash dissemination incomplete";

  // Crash the odd island's bridge (node 1: its lowest id) and tell the
  // survivors, as the wall-clock failure-detector path does.
  fabric.set_node_up(1, false);
  EXPECT_FALSE(fabric.node_up(1));
  EXPECT_TRUE(fabric.node_up(0));
  for (auto& runtime : runtimes) {
    if (runtime->id() != 1) runtime->remove_member(1);
  }

  // A fresh even-island broadcast still reaches every live node: the
  // cross-cluster funnel now runs through the re-elected bridge (node 3).
  {
    std::lock_guard lock(mu);
    tracked_origin = 4;
    receivers.clear();
  }
  runtimes[4]->broadcast(make_payload({0x52}));
  ASSERT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return receivers.size() >= kGroup - 1;
  })) << "post-crash cross-cluster delivery did not recover";
  {
    std::lock_guard lock(mu);
    EXPECT_FALSE(receivers.contains(1));
  }

  for (auto& runtime : runtimes) runtime->stop();
  // Round threads are joined: reading the views directly is safe. Every
  // survivor agrees on the successor.
  for (NodeId id = 0; id < kGroup; ++id) {
    if (id == 1) continue;
    EXPECT_EQ(views[id]->bridges_of(1), std::vector<NodeId>{3})
        << "node " << id << " did not re-elect";
  }
}

TEST(ChurnTest, PartialViewGroupDeliversBroadcasts) {
  Cluster cluster;
  for (NodeId id = 0; id < 12; ++id) {
    cluster.add_node(id, {static_cast<NodeId>((id + 1) % 12),
                          static_cast<NodeId>((id + 5) % 12)});
  }
  std::set<NodeId> receivers;
  for (auto& node : cluster.nodes) {
    node->set_deliver_handler(
        [&receivers, id = node->id()](const Event&, TimeMs) {
          receivers.insert(id);
        });
  }
  cluster.sim.run_until(8'000);
  cluster.find(2)->broadcast(make_payload({0x33}), cluster.sim.now());
  cluster.sim.run_until(25'000);
  EXPECT_EQ(receivers.size(), 12u);
}

}  // namespace
}  // namespace agb::gossip
