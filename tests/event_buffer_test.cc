#include "gossip/event_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace agb::gossip {
namespace {

Event make_event(NodeId origin, std::uint64_t seq, std::uint32_t age = 0) {
  Event e;
  e.id = EventId{origin, seq};
  e.age = age;
  return e;
}

TEST(EventBufferTest, InsertDeduplicatesById) {
  EventBuffer buf;
  EXPECT_TRUE(buf.insert(make_event(1, 1)));
  EXPECT_FALSE(buf.insert(make_event(1, 1, 99)));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(EventBufferTest, ContainsAndEmpty) {
  EventBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.insert(make_event(1, 1));
  EXPECT_TRUE(buf.contains(EventId{1, 1}));
  EXPECT_FALSE(buf.contains(EventId{1, 2}));
  EXPECT_FALSE(buf.empty());
}

TEST(EventBufferTest, BumpAgeTakesMaximum) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 5));
  buf.bump_age(EventId{1, 1}, 3);  // lower: ignored
  buf.bump_age(EventId{1, 1}, 8);  // higher: adopted
  buf.bump_age(EventId{9, 9}, 100);  // unknown id: no-op
  auto snapshot = buf.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].age, 8u);
}

TEST(EventBufferTest, IncrementAgesAddsOneHopToAll) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 0));
  buf.insert(make_event(1, 2, 4));
  buf.increment_ages();
  auto snapshot = buf.snapshot();
  EXPECT_EQ(snapshot[0].age, 1u);
  EXPECT_EQ(snapshot[1].age, 5u);
}

TEST(EventBufferTest, PurgeAgeLimitRemovesStrictlyOlder) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 10));
  buf.insert(make_event(1, 2, 11));
  buf.insert(make_event(1, 3, 12));
  auto removed = buf.purge_age_limit(11);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].id, (EventId{1, 3}));
  EXPECT_EQ(buf.size(), 2u);
}

TEST(EventBufferTest, ShrinkRemovesOldestFirst) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 3));
  buf.insert(make_event(1, 2, 9));
  buf.insert(make_event(1, 3, 6));
  auto removed = buf.shrink_to(1);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].id, (EventId{1, 2}));  // age 9 first
  EXPECT_EQ(removed[1].id, (EventId{1, 3}));  // then age 6
  EXPECT_TRUE(buf.contains(EventId{1, 1}));
}

TEST(EventBufferTest, ShrinkTieBreaksByInsertionOrder) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 5));
  buf.insert(make_event(1, 2, 5));
  buf.insert(make_event(1, 3, 5));
  auto removed = buf.shrink_to(2);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].id, (EventId{1, 1}));  // earliest inserted goes first
}

TEST(EventBufferTest, ShrinkNoopWhenUnderCapacity) {
  EventBuffer buf;
  buf.insert(make_event(1, 1));
  EXPECT_TRUE(buf.shrink_to(5).empty());
  EXPECT_EQ(buf.size(), 1u);
}

TEST(EventBufferTest, ShrinkToZeroEmptiesBuffer) {
  EventBuffer buf;
  buf.insert(make_event(1, 1));
  buf.insert(make_event(1, 2));
  EXPECT_EQ(buf.shrink_to(0).size(), 2u);
  EXPECT_TRUE(buf.empty());
}

TEST(EventBufferTest, OldestExcludingSkipsExcludedIds) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 9));
  buf.insert(make_event(1, 2, 7));
  std::unordered_set<EventId> excluded{EventId{1, 1}};
  const Event* oldest = buf.oldest_excluding(excluded);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->id, (EventId{1, 2}));
}

TEST(EventBufferTest, OldestExcludingAllReturnsNull) {
  EventBuffer buf;
  buf.insert(make_event(1, 1));
  std::unordered_set<EventId> excluded{EventId{1, 1}};
  EXPECT_EQ(buf.oldest_excluding(excluded), nullptr);
}

TEST(EventBufferTest, CountExcluding) {
  EventBuffer buf;
  buf.insert(make_event(1, 1));
  buf.insert(make_event(1, 2));
  buf.insert(make_event(1, 3));
  std::unordered_set<EventId> excluded{EventId{1, 2}, EventId{9, 9}};
  EXPECT_EQ(buf.count_excluding(excluded), 2u);
  EXPECT_EQ(buf.count_excluding({}), 3u);
}

TEST(EventBufferTest, SnapshotPreservesInsertionOrder) {
  EventBuffer buf;
  buf.insert(make_event(3, 1));
  buf.insert(make_event(1, 1));
  buf.insert(make_event(2, 1));
  // Force internal swap-erase churn, then check the order survives.
  buf.insert(make_event(4, 1, 99));
  buf.shrink_to(3);  // removes the age-99 event
  auto snapshot = buf.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].id, (EventId{3, 1}));
  EXPECT_EQ(snapshot[1].id, (EventId{1, 1}));
  EXPECT_EQ(snapshot[2].id, (EventId{2, 1}));
}

TEST(EventBufferTest, ForEachVisitsAll) {
  EventBuffer buf;
  buf.insert(make_event(1, 1));
  buf.insert(make_event(1, 2));
  int count = 0;
  buf.for_each([&](const Event&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(EventBufferTest, ReinsertAfterRemovalWorks) {
  EventBuffer buf;
  buf.insert(make_event(1, 1, 5));
  buf.shrink_to(0);
  EXPECT_TRUE(buf.insert(make_event(1, 1, 0)));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(EventIdBufferTest, InsertReportsNovelty) {
  EventIdBuffer ids(10);
  EXPECT_TRUE(ids.insert(EventId{1, 1}));
  EXPECT_FALSE(ids.insert(EventId{1, 1}));
}

TEST(EventIdBufferTest, EvictsOldestWhenFull) {
  EventIdBuffer ids(3);
  ids.insert(EventId{1, 1});
  ids.insert(EventId{1, 2});
  ids.insert(EventId{1, 3});
  ids.insert(EventId{1, 4});  // evicts {1,1}
  EXPECT_FALSE(ids.contains(EventId{1, 1}));
  EXPECT_TRUE(ids.contains(EventId{1, 2}));
  EXPECT_TRUE(ids.contains(EventId{1, 4}));
  EXPECT_EQ(ids.size(), 3u);
}

TEST(EventIdBufferTest, EvictedIdCanBeReinserted) {
  EventIdBuffer ids(2);
  ids.insert(EventId{1, 1});
  ids.insert(EventId{1, 2});
  ids.insert(EventId{1, 3});  // evicts {1,1}
  EXPECT_TRUE(ids.insert(EventId{1, 1}));
  EXPECT_TRUE(ids.contains(EventId{1, 1}));
}

TEST(EventIdBufferTest, ShrinkingCapacityEvictsImmediately) {
  EventIdBuffer ids(10);
  for (std::uint64_t i = 0; i < 10; ++i) ids.insert(EventId{1, i});
  ids.set_capacity(4);
  EXPECT_EQ(ids.size(), 4u);
  // The four newest survive.
  for (std::uint64_t i = 6; i < 10; ++i) {
    EXPECT_TRUE(ids.contains(EventId{1, i})) << i;
  }
}

TEST(EventIdBufferTest, LongFifoChurnStaysConsistent) {
  EventIdBuffer ids(64);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(ids.insert(EventId{1, i}));
    EXPECT_EQ(ids.size(), std::min<std::size_t>(64, i + 1));
    if (i >= 64) {
      EXPECT_FALSE(ids.contains(EventId{1, i - 64}));
      EXPECT_TRUE(ids.contains(EventId{1, i - 63}));
    }
  }
}

}  // namespace
}  // namespace agb::gossip
