#include "flowcontrol/token_bucket.h"

#include <gtest/gtest.h>

#include "flowcontrol/rate_controller.h"

namespace agb::flowcontrol {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket b(10.0, 5.0, 0);
  EXPECT_DOUBLE_EQ(b.level(0), 5.0);
}

TEST(TokenBucketTest, TakeConsumesOneToken) {
  TokenBucket b(0.0, 3.0, 0);  // no refill: pure consumption
  EXPECT_TRUE(b.try_take(0));
  EXPECT_TRUE(b.try_take(0));
  EXPECT_TRUE(b.try_take(0));
  EXPECT_FALSE(b.try_take(0));
  EXPECT_DOUBLE_EQ(b.level(0), 0.0);
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket b(10.0, 100.0, 0);  // 10 tokens/s
  while (b.try_take(0)) {
  }
  EXPECT_DOUBLE_EQ(b.level(1000), 10.0);
  EXPECT_DOUBLE_EQ(b.level(1500), 15.0);
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  TokenBucket b(1000.0, 4.0, 0);
  (void)b.try_take(0);
  EXPECT_DOUBLE_EQ(b.level(60'000), 4.0);
}

TEST(TokenBucketTest, FractionalTokensAccumulate) {
  TokenBucket b(1.0, 10.0, 0);  // 1 token/s
  while (b.try_take(0)) {
  }
  EXPECT_FALSE(b.try_take(500));  // only 0.5 tokens
  EXPECT_TRUE(b.try_take(1000));  // 1.0 token
  EXPECT_FALSE(b.try_take(1000));
}

TEST(TokenBucketTest, SetRateAccountsPastTimeAtOldRate) {
  TokenBucket b(10.0, 100.0, 0);
  while (b.try_take(0)) {
  }
  b.set_rate(100.0, 1000);  // 1 s at 10/s has already accrued 10 tokens
  EXPECT_DOUBLE_EQ(b.level(1000), 10.0);
  EXPECT_DOUBLE_EQ(b.level(1100), 20.0);  // then 0.1 s at 100/s
  EXPECT_DOUBLE_EQ(b.rate(), 100.0);
}

TEST(TokenBucketTest, SetCapacityClampsTokens) {
  TokenBucket b(1.0, 10.0, 0);
  b.set_capacity(3.0, 0);
  EXPECT_DOUBLE_EQ(b.level(0), 3.0);
  EXPECT_DOUBLE_EQ(b.capacity(), 3.0);
}

TEST(TokenBucketTest, TimeGoingBackwardIsIgnored) {
  TokenBucket b(10.0, 10.0, 1000);
  while (b.try_take(1000)) {
  }
  EXPECT_DOUBLE_EQ(b.level(500), 0.0);  // stale timestamp: no refill
  EXPECT_DOUBLE_EQ(b.level(2000), 10.0);
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket b(0.0, 2.0, 0);
  (void)b.try_take(0);
  (void)b.try_take(0);
  EXPECT_FALSE(b.try_take(1'000'000));
}

TEST(TokenBucketTest, BoundsLongRunThroughput) {
  // Over 100 s at 7 msg/s with burst capacity 8, at most 708 sends succeed.
  TokenBucket b(7.0, 8.0, 0);
  int sent = 0;
  for (TimeMs t = 0; t <= 100'000; t += 10) {
    if (b.try_take(t)) ++sent;
  }
  EXPECT_LE(sent, 709);
  EXPECT_GE(sent, 700);
}

TEST(StaticRateTest, ReturnsConfiguredRate) {
  StaticRate r(12.5);
  EXPECT_DOUBLE_EQ(r.allowed_rate(), 12.5);
  r.set_rate(1.0);
  EXPECT_DOUBLE_EQ(r.allowed_rate(), 1.0);
}

TEST(AimdControllerTest, AdditiveIncreaseMultiplicativeDecrease) {
  AimdController::Params params;
  params.additive_increase = 1.0;
  params.multiplicative_decrease = 0.5;
  params.min_rate = 0.5;
  params.max_rate = 100.0;
  AimdController c(params, 10.0);
  c.update(false);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 11.0);
  c.update(true);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 5.5);
}

TEST(AimdControllerTest, ClampsToBounds) {
  AimdController::Params params;
  params.additive_increase = 50.0;
  params.multiplicative_decrease = 0.01;
  params.min_rate = 1.0;
  params.max_rate = 20.0;
  AimdController c(params, 10.0);
  c.update(false);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 20.0);
  c.update(true);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 1.0);
}

}  // namespace
}  // namespace agb::flowcontrol
