#include "flowcontrol/token_bucket.h"

#include <gtest/gtest.h>

#include <limits>

#include "flowcontrol/rate_controller.h"

namespace agb::flowcontrol {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket b(10.0, 5.0, 0);
  EXPECT_DOUBLE_EQ(b.level(0), 5.0);
}

TEST(TokenBucketTest, TakeConsumesOneToken) {
  TokenBucket b(0.0, 3.0, 0);  // no refill: pure consumption
  EXPECT_TRUE(b.try_take(0));
  EXPECT_TRUE(b.try_take(0));
  EXPECT_TRUE(b.try_take(0));
  EXPECT_FALSE(b.try_take(0));
  EXPECT_DOUBLE_EQ(b.level(0), 0.0);
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TokenBucket b(10.0, 100.0, 0);  // 10 tokens/s
  while (b.try_take(0)) {
  }
  EXPECT_DOUBLE_EQ(b.level(1000), 10.0);
  EXPECT_DOUBLE_EQ(b.level(1500), 15.0);
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  TokenBucket b(1000.0, 4.0, 0);
  (void)b.try_take(0);
  EXPECT_DOUBLE_EQ(b.level(60'000), 4.0);
}

TEST(TokenBucketTest, FractionalTokensAccumulate) {
  TokenBucket b(1.0, 10.0, 0);  // 1 token/s
  while (b.try_take(0)) {
  }
  EXPECT_FALSE(b.try_take(500));  // only 0.5 tokens
  EXPECT_TRUE(b.try_take(1000));  // 1.0 token
  EXPECT_FALSE(b.try_take(1000));
}

TEST(TokenBucketTest, SetRateAccountsPastTimeAtOldRate) {
  TokenBucket b(10.0, 100.0, 0);
  while (b.try_take(0)) {
  }
  b.set_rate(100.0, 1000);  // 1 s at 10/s has already accrued 10 tokens
  EXPECT_DOUBLE_EQ(b.level(1000), 10.0);
  EXPECT_DOUBLE_EQ(b.level(1100), 20.0);  // then 0.1 s at 100/s
  EXPECT_DOUBLE_EQ(b.rate(), 100.0);
}

TEST(TokenBucketTest, SetCapacityClampsTokens) {
  TokenBucket b(1.0, 10.0, 0);
  b.set_capacity(3.0, 0);
  EXPECT_DOUBLE_EQ(b.level(0), 3.0);
  EXPECT_DOUBLE_EQ(b.capacity(), 3.0);
}

TEST(TokenBucketTest, TimeGoingBackwardIsIgnored) {
  TokenBucket b(10.0, 10.0, 1000);
  while (b.try_take(1000)) {
  }
  EXPECT_DOUBLE_EQ(b.level(500), 0.0);  // stale timestamp: no refill
  EXPECT_DOUBLE_EQ(b.level(2000), 10.0);
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket b(0.0, 2.0, 0);
  (void)b.try_take(0);
  (void)b.try_take(0);
  EXPECT_FALSE(b.try_take(1'000'000));
}

TEST(TokenBucketTest, LongStallRefillsAtMostOneBucketful) {
  // Regression: a multi-hour wall-clock stall (suspended process, clock
  // step) used to compute an astronomically large grant; the clamp must top
  // the bucket up to capacity exactly, so at most floor(capacity) sends
  // succeed after the stall no matter how long it lasted.
  TokenBucket b(5.0, 8.0, 0);
  while (b.try_take(0)) {
  }
  const TimeMs after_stall = 72LL * 3600 * 1000;  // 72 h later
  EXPECT_DOUBLE_EQ(b.level(after_stall), 8.0);
  int sent = 0;
  while (b.try_take(after_stall)) ++sent;
  EXPECT_EQ(sent, 8);
}

TEST(TokenBucketTest, NegativeOrNaNRateGrantsNothing) {
  // A poisoned rate (negative from a buggy controller, NaN from a 0/0 in a
  // derived quantity) must neither drain the bucket nor corrupt the level.
  TokenBucket neg(-3.0, 4.0, 0);
  (void)neg.try_take(0);
  EXPECT_DOUBLE_EQ(neg.level(10'000), 3.0);

  TokenBucket nan_bucket(10.0, 4.0, 0);
  (void)nan_bucket.try_take(0);
  nan_bucket.set_rate(std::numeric_limits<double>::quiet_NaN(), 0);
  EXPECT_DOUBLE_EQ(nan_bucket.level(10'000), 3.0);
  nan_bucket.set_rate(10.0, 10'000);
  EXPECT_DOUBLE_EQ(nan_bucket.level(10'100), 4.0);  // recovers once sane
}

TEST(TokenBucketTest, BoundsLongRunThroughput) {
  // Over 100 s at 7 msg/s with burst capacity 8, at most 708 sends succeed.
  TokenBucket b(7.0, 8.0, 0);
  int sent = 0;
  for (TimeMs t = 0; t <= 100'000; t += 10) {
    if (b.try_take(t)) ++sent;
  }
  EXPECT_LE(sent, 709);
  EXPECT_GE(sent, 700);
}

TEST(StaticRateTest, ReturnsConfiguredRate) {
  StaticRate r(12.5);
  EXPECT_DOUBLE_EQ(r.allowed_rate(), 12.5);
  r.set_rate(1.0);
  EXPECT_DOUBLE_EQ(r.allowed_rate(), 1.0);
}

TEST(AimdControllerTest, AdditiveIncreaseMultiplicativeDecrease) {
  AimdController::Params params;
  params.additive_increase = 1.0;
  params.multiplicative_decrease = 0.5;
  params.min_rate = 0.5;
  params.max_rate = 100.0;
  AimdController c(params, 10.0);
  c.update(false);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 11.0);
  c.update(true);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 5.5);
}

TEST(AimdControllerTest, ClampsToBounds) {
  AimdController::Params params;
  params.additive_increase = 50.0;
  params.multiplicative_decrease = 0.01;
  params.min_rate = 1.0;
  params.max_rate = 20.0;
  AimdController c(params, 10.0);
  c.update(false);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 20.0);
  c.update(true);
  EXPECT_DOUBLE_EQ(c.allowed_rate(), 1.0);
}

}  // namespace
}  // namespace agb::flowcontrol
