// Cross-module integration tests: whole simulated groups exercising the
// paper's end-to-end behaviours (minBuff propagation through real gossip,
// dynamic resource changes, heterogeneous groups, sim-vs-runtime parity of
// the wire format).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.h"
#include "gossip/message.h"

namespace agb::core {
namespace {

ScenarioParams adaptive_base() {
  ScenarioParams p;
  p.n = 24;
  p.senders = 3;
  p.offered_rate = 12.0;
  p.adaptive = true;
  p.gossip.fanout = 3;
  p.gossip.gossip_period = 1000;
  p.gossip.max_events = 60;
  p.gossip.max_event_ids = 2000;
  p.gossip.max_age = 10;
  // Paper §3.4: with a single node holding the minimum, the sample period
  // must cover the hops needed to reach everyone (tau >= a_r * T).
  p.adaptation.sample_period = 4000;
  p.adaptation.min_buff_window = 2;
  p.adaptation.initial_rate = 4.0;
  p.warmup = 6'000;
  p.duration = 50'000;
  p.cooldown = 15'000;
  p.seed = 31;
  return p;
}

TEST(IntegrationTest, GroupConvergesToSmallestBufferViaGossipOnly) {
  // One node joins with a 9-slot buffer; everyone else has 60. Within a few
  // sample periods every member's minBuff estimate must equal 9 — learned
  // exclusively from piggybacked headers.
  ScenarioParams p = adaptive_base();
  p.capacity_schedule = {{0, 1.0 / 24.0, 9}};  // node 0 only
  Scenario scenario(p);
  (void)scenario.run();
  for (const auto* node : scenario.adaptive_nodes()) {
    EXPECT_EQ(node->min_buff(), 9u) << "node " << node->id();
  }
}

TEST(IntegrationTest, ObsoleteMinimumExpiresAfterNodeGrowsBack) {
  // The constrained node shrinks, then grows back mid-run; the group's
  // estimate must recover to the larger value (paper §3.1's motivation for
  // per-period estimates).
  ScenarioParams p = adaptive_base();
  p.capacity_schedule = {{0, 1.0 / 24.0, 9}, {30'000, 1.0 / 24.0, 60}};
  Scenario scenario(p);
  (void)scenario.run();
  for (const auto* node : scenario.adaptive_nodes()) {
    EXPECT_EQ(node->min_buff(), 60u) << "node " << node->id();
  }
}

TEST(IntegrationTest, HeterogeneousBuffersUseLocalCapacityForStorage) {
  // Nodes with big local buffers keep using them even while advertising the
  // group minimum (paper §3.2: virtual drops are pure accounting).
  ScenarioParams p = adaptive_base();
  p.offered_rate = 20.0;
  p.capacity_schedule = {{0, 0.25, 10}};  // a quarter of the group is small
  Scenario scenario(p);
  auto r = scenario.run();
  std::size_t large_node_max_held = 0;
  for (std::size_t i = 6; i < p.n; ++i) {  // the unconstrained nodes
    large_node_max_held =
        std::max(large_node_max_held, scenario.nodes()[i]->events().size());
  }
  // Large nodes hold more than the advertised 10-slot minimum.
  EXPECT_GT(large_node_max_held, 10u);
  EXPECT_GT(r.delivery.avg_receiver_pct, 90.0);
}

TEST(IntegrationTest, DynamicShrinkThrottlesThenRecovers) {
  // The paper's Fig. 9 scenario in miniature: resources shrink at t1, grow
  // (partially) at t2; the allowed rate must fall after t1 and rise after
  // t2, while atomicity stays high throughout for the adaptive variant.
  ScenarioParams p = adaptive_base();
  p.offered_rate = 16.0;
  p.adaptation.initial_rate = 16.0 / 3.0;
  // Recovery speed is gamma * increase_factor per round; the defaults are
  // deliberately gentle (paper §3.4), so speed them up to observe recovery
  // within a short test run.
  p.adaptation.increase_probability = 0.3;
  p.adaptation.increase_factor = 0.2;
  p.duration = 100'000;
  p.series_bucket = 3'000;
  const TimeMs t1 = p.warmup + 30'000;
  const TimeMs t2 = p.warmup + 60'000;
  p.capacity_schedule = {{t1, 0.2, 5}, {t2, 0.2, 30}};
  Scenario scenario(p);
  auto r = scenario.run();

  const double rate_before = r.allowed_rate_ts.mean_in(t1 - 12'000, t1);
  const double rate_squeezed = r.allowed_rate_ts.mean_in(t1 + 15'000, t2);
  const double rate_after =
      r.allowed_rate_ts.mean_in(t2 + 15'000, t2 + 33'000);

  EXPECT_LT(rate_squeezed, rate_before * 0.85);
  EXPECT_GT(rate_after, rate_squeezed * 1.1);
  EXPECT_GT(r.delivery.atomicity_pct, 90.0);
}

TEST(IntegrationTest, BaselineCollapsesInSameDynamicScenario) {
  ScenarioParams p = adaptive_base();
  p.adaptive = false;
  p.offered_rate = 16.0;
  p.duration = 90'000;
  const TimeMs t1 = p.warmup + 30'000;
  // The whole group starves: constraining only a subset does not stop
  // *delivery* (unconstrained peers keep relaying), only relay capacity.
  p.capacity_schedule = {{t1, 1.0, 6}};
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_LT(r.delivery.atomicity_pct, 80.0);
}

TEST(IntegrationTest, AdaptiveSurvivesBurstyLoss) {
  ScenarioParams p = adaptive_base();
  p.network.loss = sim::LossModel::burst(0.01, 0.8, 0.02, 0.3);
  Scenario scenario(p);
  auto r = scenario.run();
  // Correlated loss hurts, but the protocol must not collapse entirely.
  EXPECT_GT(r.delivery.avg_receiver_pct, 80.0);
}

TEST(IntegrationTest, SimMessagesAreValidWireImages) {
  // Everything the simulation transports is byte-decodable: any protocol
  // message surviving a scenario run must round-trip the codec. (The
  // scenario itself asserts zero decode failures; this test additionally
  // re-encodes a node's live outgoing message.)
  ScenarioParams p = adaptive_base();
  p.duration = 10'000;
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_EQ(r.decode_failures, 0u);
  // There is no direct node access mid-run; craft a round now and verify.
  // (Scenario retains nodes after run() for exactly this kind of probing.)
  auto* node = scenario.adaptive_nodes().front();
  auto out = node->on_round(1'000'000);
  auto decoded = gossip::GossipMessage::decode(out.message.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, out.message.sender);
  EXPECT_EQ(decoded->events.size(), out.message.events.size());
  EXPECT_EQ(decoded->min_buff, out.message.min_buff);
}

TEST(IntegrationTest, SendersSpreadAcrossGroup) {
  ScenarioParams p = adaptive_base();
  p.senders = 4;
  Scenario scenario(p);
  (void)scenario.run();
  // Exactly `senders` nodes broadcast; they are spread over the id space.
  std::vector<NodeId> broadcasters;
  for (const auto& node : scenario.nodes()) {
    if (node->counters().broadcasts > 0) broadcasters.push_back(node->id());
  }
  EXPECT_EQ(broadcasters.size(), 4u);
  EXPECT_EQ(broadcasters, (std::vector<NodeId>{0, 6, 12, 18}));
}

TEST(IntegrationTest, AdaptiveOverPartialViewsConverges) {
  // The paper's §5 claims the mechanism works over partial membership
  // knowledge; run the full adaptive stack on lpbcast views.
  ScenarioParams p = adaptive_base();
  p.partial_view = true;
  p.view_params.max_view = 10;
  p.view_params.max_subs = 10;
  p.view_params.max_unsubs = 10;
  p.capacity_schedule = {{0, 1.0 / 24.0, 9}};  // node 0 is constrained
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_GT(r.delivery.avg_receiver_pct, 95.0);
  // minBuff still reaches (nearly) everyone through partial views.
  std::size_t converged = 0;
  for (const auto* node : scenario.adaptive_nodes()) {
    if (node->min_buff() == 9u) ++converged;
  }
  EXPECT_GE(converged, scenario.adaptive_nodes().size() - 2);
}

TEST(IntegrationTest, SemanticPurgeProtectsFreshTrafficUnderOverload) {
  // Half the offered load is superseding "state updates"; with semantic
  // purge the obsolete backlog is evicted first, so overflow pressure on
  // meaningful events drops.
  ScenarioParams base = adaptive_base();
  base.adaptive = false;
  base.offered_rate = 24.0;
  base.gossip.max_events = 20;  // heavy pressure
  base.supersede_probability = 0.5;

  ScenarioParams semantic = base;
  semantic.gossip.semantic_purge = true;

  Scenario s_base(base), s_semantic(semantic);
  auto r_base = s_base.run();
  auto r_semantic = s_semantic.run();

  std::uint64_t obsolete = 0;
  for (const auto& node : s_semantic.nodes()) {
    obsolete += node->counters().drops_obsolete;
  }
  EXPECT_GT(obsolete, 0u);
  // Obsolete evictions displace blind overflow evictions.
  EXPECT_LT(r_semantic.overflow_drops, r_base.overflow_drops);
  EXPECT_EQ(r_semantic.decode_failures, 0u);
}

TEST(IntegrationTest, QuiescentGroupExchangesOnlyHeaders) {
  // No senders’ traffic: nodes still gossip (empty messages), deliver
  // nothing, drop nothing.
  ScenarioParams p = adaptive_base();
  p.offered_rate = 0.0001;  // effectively silent
  p.duration = 20'000;
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_EQ(r.delivery.messages, 0u);
  EXPECT_EQ(r.overflow_drops, 0u);
  EXPECT_GT(r.net.delivered, 0u);  // gossip itself kept flowing
}

}  // namespace
}  // namespace agb::core
