// The paper §5 directional-gossip regression, pinned: on the same WAN
// topology and seed, locality-biased target selection (wan-directional)
// matches uniform selection (wan-clusters) on delivery ratio within one
// point while cutting cross-cluster datagrams by at least 2x — and the
// whole comparison is deterministic, so this is a regression test, not a
// statistical one.
#include <gtest/gtest.h>

#include <initializer_list>
#include <string>

#include "core/scenario.h"
#include "core/scenario_registry.h"

namespace agb::core {
namespace {

Config wan_config() {
  // Small but representative: three islands of 10, one round per second,
  // an unconstrained buffer so reliability differences come from routing,
  // not drops.
  Config cfg;
  std::string error;
  for (const char* pair :
       {"n=30", "senders=3", "rate=6", "quick=1", "warmup_s=5",
        "duration_s=30", "cooldown_s=15", "period_ms=1000", "buffer=200",
        "max_age=24", "seed=7"}) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  return cfg;
}

ScenarioResults run_preset(const char* preset) {
  auto params = ScenarioRegistry::instance().build(preset, wan_config());
  Scenario scenario(params);
  return scenario.run();
}

TEST(WanDirectionalTest, HalvesCrossClusterTrafficAtEqualDelivery) {
  const auto uniform = run_preset("wan-clusters");
  const auto directional = run_preset("wan-directional");

  // Same delivery ratio within one point (both should be ~100 % on this
  // unconstrained configuration).
  EXPECT_NEAR(directional.delivery.avg_receiver_pct,
              uniform.delivery.avg_receiver_pct, 1.0);
  EXPECT_GT(directional.delivery.avg_receiver_pct, 95.0);

  // The headline: cross-WAN datagrams drop by at least 2x (with p_local
  // 0.9 the observed cut is ~6x; 2x is the regression floor).
  ASSERT_GT(directional.net.sent_cross_cluster, 0u);
  EXPECT_GE(uniform.net.sent_cross_cluster,
            2 * directional.net.sent_cross_cluster);

  // Uniform selection spreads fanout over the whole group, so roughly
  // 2/3 of its datagrams cross; the biased run keeps the cross share near
  // 1 - p_local.
  const auto cross_share = [](const ScenarioResults& r) {
    return static_cast<double>(r.net.sent_cross_cluster) /
           static_cast<double>(r.net.sent_intra_cluster +
                               r.net.sent_cross_cluster);
  };
  EXPECT_GT(cross_share(uniform), 0.5);
  EXPECT_LT(cross_share(directional), 0.2);

  // The split is a partition of `sent` on both runs.
  for (const auto* r : {&uniform, &directional}) {
    EXPECT_EQ(r->net.sent_intra_cluster + r->net.sent_cross_cluster,
              r->net.sent);
  }
}

TEST(WanDirectionalTest, SeededRunsAreDeterministic) {
  const auto first = run_preset("wan-directional");
  const auto second = run_preset("wan-directional");
  EXPECT_EQ(first.net.sent, second.net.sent);
  EXPECT_EQ(first.net.sent_cross_cluster, second.net.sent_cross_cluster);
  EXPECT_EQ(first.net.delivered, second.net.delivered);
  EXPECT_DOUBLE_EQ(first.delivery.avg_receiver_pct,
                   second.delivery.avg_receiver_pct);
  EXPECT_DOUBLE_EQ(first.delivery.atomicity_pct,
                   second.delivery.atomicity_pct);
}

TEST(WanDirectionalTest, ChurnPresetSurvivesBridgeCrashes) {
  // wan-directional-churn crashes the elected bridges (0, 1, 2) in turn
  // with the perfect failure detector on, so the next-lowest ids take
  // over; dissemination must ride through the re-elections. Tightened
  // churn cadence lands all three crashes inside the short test window.
  Config cfg = wan_config();
  std::string error;
  ASSERT_TRUE(cfg.parse_pair("churn_every_s=10", &error)) << error;
  ASSERT_TRUE(cfg.parse_pair("churn_down_s=8", &error)) << error;
  const auto params =
      ScenarioRegistry::instance().build("wan-directional-churn", cfg);
  ASSERT_TRUE(params.failure_detector);
  ASSERT_FALSE(params.failure_schedule.empty());
  EXPECT_EQ(params.failure_schedule[0].node, 0u);  // bridge of cluster 0

  Scenario scenario(params);
  const auto r = scenario.run();
  // A crashed node misses what was broadcast while it was down, so the
  // bar is on reaching nearly everyone, not perfect atomicity.
  EXPECT_GT(r.delivery.avg_receiver_pct, 90.0);
  ASSERT_GT(r.net.sent_cross_cluster, 0u);
}

}  // namespace
}  // namespace agb::core
