#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace agb {
namespace {

TEST(ByteWriterTest, FixedWidthLittleEndian) {
  ByteWriter w;
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const auto& buf = w.data();
  ASSERT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf[0], 0x34);
  EXPECT_EQ(buf[1], 0x12);
  EXPECT_EQ(buf[2], 0xef);
  EXPECT_EQ(buf[3], 0xbe);
  EXPECT_EQ(buf[4], 0xad);
  EXPECT_EQ(buf[5], 0xde);
}

TEST(ByteRoundTripTest, AllScalarTypes) {
  ByteWriter w;
  w.u8(200);
  w.u16(65000);
  w.u32(4000000000u);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u16(), 65000);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteRoundTripTest, DoubleSpecialValues) {
  ByteWriter w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::denorm_min());
  ByteReader r(w.data());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.varint(), v) << "value " << v;
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  for (std::uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter w;
    w.varint(v);
    EXPECT_EQ(w.size(), 1u);
  }
}

TEST(VarintTest, TruncatedInputFails) {
  ByteWriter w;
  w.varint(1ull << 40);
  auto bytes = w.data();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(VarintTest, OverlongEncodingRejected) {
  // 11 continuation bytes exceeds the maximum 64-bit varint length.
  std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(VarintTest, OverflowBeyond64BitsRejected) {
  // 10 bytes where the last one carries bits above bit 63.
  std::vector<std::uint8_t> bad(9, 0x80);
  bad.push_back(0x7f);
  ByteReader r(bad);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  ByteWriter w;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.bytes(payload);
  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(), payload);
}

TEST(BytesTest, EmptyPayload) {
  ByteWriter w;
  w.bytes({});
  ByteReader r(w.data());
  auto out = r.bytes();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, LengthBeyondRemainingFails) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes
  w.u8(1);        // but only one follows
  ByteReader r(w.data());
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(StrTest, RoundTrip) {
  ByteWriter w;
  w.str("hello gossip");
  w.str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello gossip");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReaderTest, ReadsPastEndFail) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.u64().has_value());
  EXPECT_FALSE(r.f64().has_value());
}

TEST(ByteReaderTest, RemainingTracksPosition) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReaderTest, PartialReadDoesNotAdvance) {
  std::vector<std::uint8_t> three{1, 2, 3};
  ByteReader r(three);
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_EQ(r.remaining(), 3u);  // failed read consumed nothing
  EXPECT_TRUE(r.u16().has_value());
}

TEST(ByteWriterTest, TakeMovesBuffer) {
  ByteWriter w;
  w.u8(9);
  auto buf = std::move(w).take();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 9);
}

}  // namespace
}  // namespace agb
