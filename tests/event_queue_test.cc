#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/scenario.h"
#include "core/scenario_registry.h"

namespace agb::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (auto fired = q.pop()) fired->fn();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(42, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->at, 42);
}

TEST(EventQueueTest, EmptyPopReturnsNullopt) {
  EventQueue q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(1, [&] { ran = true; });
  handle.cancel();
  while (auto fired = q.pop()) fired->fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  fired->fn();
  handle.cancel();  // no effect, no crash
  handle.cancel();
}

TEST(EventQueueTest, PendingReflectsLifecycle) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueueTest, PendingFalseAfterPop) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  (void)q.pop();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueueTest, PeekSkipsCancelled) {
  EventQueue q;
  auto first = q.schedule(1, [] {});
  q.schedule(2, [] {});
  first.cancel();
  EXPECT_EQ(q.peek_time(), 2);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  auto b = q.schedule(2, [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.peek_time().has_value());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no crash
}

TEST(EventQueueTest, ScheduleFromWithinCallback) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] {
    order.push_back(1);
    q.schedule(2, [&] { order.push_back(2); });
  });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// The seed queue reported size() as the raw heap length, so cancelled
// entries inflated the count until lazily collected at pop time. size()
// is now the exact live count: cancellation decrements it immediately.
TEST(EventQueueTest, SizeIsExactUnderCancellation) {
  EventQueue q;
  constexpr std::size_t kEvents = 100;
  std::vector<EventHandle> handles;
  for (std::size_t i = 0; i < kEvents; ++i) {
    handles.push_back(q.schedule(static_cast<TimeMs>(i), [] {}));
  }
  EXPECT_EQ(q.size(), kEvents);
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < kEvents; i += 3) {
    handles[i].cancel();
    ++cancelled;
    EXPECT_EQ(q.size(), kEvents - cancelled);
  }
  std::size_t popped = 0;
  while (auto fired = q.pop()) {
    ++popped;
    EXPECT_EQ(q.size(), kEvents - cancelled - popped);
  }
  EXPECT_EQ(popped, kEvents - cancelled);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peak_size(), kEvents);
}

TEST(EventQueueTest, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  auto b = q.schedule(2, [] {});
  a.cancel();
  auto c = q.schedule(3, [] {});  // live: 2, never above 2
  (void)b;
  (void)c;
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.peak_size(), 2u);
}

// Callbacks larger than the inline buffer take the heap path; the capture
// must survive the relocation into and out of the queue.
TEST(EventQueueTest, LargeCallbackRunsViaHeapPath) {
  EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 B: over the 48 B inline cap
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i + 1;
  std::uint64_t sum = 0;
  q.schedule(5, [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(sum, 136u);  // 1 + 2 + ... + 16
}

// Events beyond the ring horizon (4096 ms) start in the overflow heap and
// must migrate into the ring as the cursor advances — interleaved with
// near-future events, in exact (time, scheduling-order) order.
TEST(EventQueueTest, FarFutureEventsMigrateInOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10'000, [&] { order.push_back(4); });  // overflow
  q.schedule(5'000, [&] { order.push_back(2); });   // overflow
  q.schedule(100, [&] { order.push_back(1); });     // ring
  q.schedule(9'999, [&] { order.push_back(3); });   // overflow
  q.schedule(10'000, [&] { order.push_back(5); });  // overflow, later seq
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

// Same-timestamp FIFO must hold even when one twin sits in the ring and
// the other in the overflow heap at the moment the cursor reaches them.
TEST(EventQueueTest, RingOverflowTwinsKeepSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(6'000, [&] { order.push_back(1); });  // overflow at schedule
  q.schedule(1, [&] {
    order.push_back(0);
    // By now the cursor is at 1, so 6'000 is within the ring horizon: this
    // twin goes straight to the ring while its earlier-seq sibling must be
    // migrated out of overflow first.
    q.schedule(6'000, [&] { order.push_back(2); });
  });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Slots are recycled through a freelist; a stale handle to a fired event
// must not cancel (or report pending for) the slot's next occupant.
TEST(EventQueueTest, StaleHandleDoesNotTouchRecycledSlot) {
  EventQueue q;
  bool first_ran = false;
  auto stale = q.schedule(1, [&] { first_ran = true; });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_TRUE(first_ran);

  bool second_ran = false;
  auto fresh = q.schedule(2, [&] { second_ran = true; });
  EXPECT_FALSE(stale.pending());
  stale.cancel();  // generation mismatch: must be a no-op
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(q.size(), 1u);
  while (auto fired = q.pop()) fired->fn();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueTest, HandleOutlivingQueueIsInert) {
  EventHandle handle;
  {
    EventQueue q;
    handle = q.schedule(1, [] {});
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no crash, no dangling queue access
}

// ---------------------------------------------------------------------------
// Golden determinism: the calendar queue replaced the seed binary heap, and
// the round wheel replaced per-node timers; both swaps promised byte-
// identical schedules. These fingerprints were captured from the seed
// implementation (std::priority_queue + per-node PeriodicTimer) at seed
// 2003 and must never change — a mismatch means the event order moved.

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_mix(std::uint64_t h, double v) {
  return fnv1a_mix(h, static_cast<std::uint64_t>(std::llround(v * 1e6)));
}

std::uint64_t trace_fingerprint(const std::string& preset,
                                const std::vector<std::string>& overrides) {
  Config cfg;
  std::string error;
  for (const std::string& pair : overrides) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  const core::ScenarioParams params =
      core::ScenarioRegistry::instance().build(preset, cfg);
  core::Scenario scenario(params);
  const core::ScenarioResults r = scenario.run();

  std::uint64_t h = 1469598103934665603ull;
  for (const auto& node : scenario.nodes()) {
    const auto& c = node->counters();
    for (std::uint64_t v :
         {c.broadcasts, c.rounds, c.gossips_sent, c.gossips_received,
          c.events_received, c.duplicates, c.deliveries, c.drops_overflow,
          c.drops_age_limit, c.drops_obsolete}) {
      h = fnv1a_mix(h, v);
    }
    h = fnv1a_mix(h, static_cast<std::uint64_t>(node->membership().size()));
  }
  const auto& n = r.net;
  for (std::uint64_t v :
       {n.sent, n.sent_intra_cluster, n.sent_cross_cluster, n.batches,
        n.events_scheduled, n.delivered, n.dropped_loss, n.dropped_partition,
        n.dropped_down, n.bytes_delivered}) {
    h = fnv1a_mix(h, v);
  }
  h = fnv1a_mix(h, r.delivery.messages);
  h = fnv1a_mix(h, r.delivery.avg_receiver_pct);
  h = fnv1a_mix(h, r.delivery.atomicity_pct);
  h = fnv1a_mix(h, r.delivery.latency_p50_ms);
  h = fnv1a_mix(h, r.delivery.latency_p99_ms);
  return h;
}

const std::vector<std::string>& golden_base_config() {
  static const std::vector<std::string> base = {
      "n=24",       "senders=4",     "rate=40",      "quick=1",
      "warmup_s=4", "duration_s=16", "cooldown_s=4", "seed=2003"};
  return base;
}

TEST(EventQueueGoldenTest, Paper60TraceMatchesSeedImplementation) {
  EXPECT_EQ(trace_fingerprint("paper60", golden_base_config()),
            0xb2313229612592e9ull);
}

TEST(EventQueueGoldenTest, ChurnTraceMatchesSeedImplementation) {
  auto overrides = golden_base_config();
  overrides.push_back("churn_every_s=4");
  overrides.push_back("churn_down_s=3");
  overrides.push_back("churn_count=2");
  EXPECT_EQ(trace_fingerprint("churn", overrides), 0xfa1c9987305df365ull);
}

TEST(EventQueueGoldenTest, PartialViewTraceMatchesSeedImplementation) {
  auto overrides = golden_base_config();
  overrides.push_back("partial_view=1");
  EXPECT_EQ(trace_fingerprint("paper60", overrides), 0x23c07594749bf542ull);
}

}  // namespace
}  // namespace agb::sim
