#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace agb::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (auto fired = q.pop()) fired->fn();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(42, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->at, 42);
}

TEST(EventQueueTest, EmptyPopReturnsNullopt) {
  EventQueue q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule(1, [&] { ran = true; });
  handle.cancel();
  while (auto fired = q.pop()) fired->fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  auto fired = q.pop();
  ASSERT_TRUE(fired.has_value());
  fired->fn();
  handle.cancel();  // no effect, no crash
  handle.cancel();
}

TEST(EventQueueTest, PendingReflectsLifecycle) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueueTest, PendingFalseAfterPop) {
  EventQueue q;
  auto handle = q.schedule(1, [] {});
  (void)q.pop();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueueTest, PeekSkipsCancelled) {
  EventQueue q;
  auto first = q.schedule(1, [] {});
  q.schedule(2, [] {});
  first.cancel();
  EXPECT_EQ(q.peek_time(), 2);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  auto b = q.schedule(2, [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.peek_time().has_value());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no crash
}

TEST(EventQueueTest, ScheduleFromWithinCallback) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] {
    order.push_back(1);
    q.schedule(2, [&] { order.push_back(2); });
  });
  while (auto fired = q.pop()) fired->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace agb::sim
