// fault::FaultPlane unit contract: the determinism, window-gating and
// copy-then-mutate guarantees every fabric relies on. The end-to-end
// behaviour (faults flowing through SimNetwork / InMemoryFabric /
// UdpTransport into live decoders) is pinned by scenario_parity_test and
// runtime_test; this suite pins the plane itself.
#include "fault/fault_plane.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/shared_bytes.h"

namespace agb::fault {
namespace {

ChaosSchedule probability_schedule(double rate, TimeMs start = 0,
                                   TimeMs end = kNoEnd) {
  ChaosSchedule s;
  s.rules = {
      {FaultKind::kCorrupt, rate, kAnyNode, kAnyNode, 0, start, end},
      {FaultKind::kTruncate, rate, kAnyNode, kAnyNode, 0, start, end},
      {FaultKind::kDuplicate, rate, kAnyNode, kAnyNode, 0, start, end},
      {FaultKind::kReorder, rate, kAnyNode, kAnyNode, 20, start, end},
  };
  return s;
}

TEST(FaultPlaneTest, SameSeedSameVerdictSequence) {
  // The seed-determinism contract behind golden-trace reproducibility: two
  // planes built from the same schedule and seed answer every sample()
  // identically, draw for draw.
  FaultPlane a(probability_schedule(0.3), chaos_seed(42));
  FaultPlane b(probability_schedule(0.3), chaos_seed(42));
  for (int i = 0; i < 500; ++i) {
    const NodeId from = static_cast<NodeId>(i % 7);
    const NodeId to = static_cast<NodeId>((i * 3) % 11);
    const TimeMs now = static_cast<TimeMs>(i * 5);
    const FaultAction va = a.sample(from, to, now);
    const FaultAction vb = b.sample(from, to, now);
    EXPECT_EQ(va.drop, vb.drop);
    EXPECT_EQ(va.corrupt, vb.corrupt);
    EXPECT_EQ(va.truncate, vb.truncate);
    EXPECT_EQ(va.duplicates, vb.duplicates);
    EXPECT_EQ(va.extra_delay, vb.extra_delay);
  }
  const FaultStats sa = a.stats();
  const FaultStats sb = b.stats();
  EXPECT_EQ(sa.corrupted, sb.corrupted);
  EXPECT_EQ(sa.truncated, sb.truncated);
  EXPECT_EQ(sa.duplicated, sb.duplicated);
  EXPECT_EQ(sa.reordered, sb.reordered);
  // At rate 0.3 over 500 datagrams every probability kind must have fired.
  EXPECT_GT(sa.corrupted, 0u);
  EXPECT_GT(sa.truncated, 0u);
  EXPECT_GT(sa.duplicated, 0u);
  EXPECT_GT(sa.reordered, 0u);
}

TEST(FaultPlaneTest, DifferentSeedsDiverge) {
  FaultPlane a(probability_schedule(0.5), chaos_seed(1));
  FaultPlane b(probability_schedule(0.5), chaos_seed(2));
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultAction va = a.sample(0, 1, 0);
    const FaultAction vb = b.sample(0, 1, 0);
    if (va.corrupt != vb.corrupt || va.truncate != vb.truncate ||
        va.duplicates != vb.duplicates || va.extra_delay != vb.extra_delay) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultPlaneTest, RulesAreLiveOnlyInsideTheirWindow) {
  // Window semantics are half-open: live for now ∈ [start, end).
  FaultPlane plane(probability_schedule(1.0, 100, 200), 7);
  for (const TimeMs quiet : {TimeMs{0}, TimeMs{99}, TimeMs{200}, TimeMs{500}}) {
    const FaultAction action = plane.sample(0, 1, quiet);
    EXPECT_FALSE(action.special()) << "at t=" << quiet;
  }
  for (const TimeMs live : {TimeMs{100}, TimeMs{150}, TimeMs{199}}) {
    const FaultAction action = plane.sample(0, 1, live);
    // Every probability rule fires at rate 1.0.
    EXPECT_TRUE(action.corrupt) << "at t=" << live;
    EXPECT_TRUE(action.truncate) << "at t=" << live;
    EXPECT_EQ(action.duplicates, 1) << "at t=" << live;
    EXPECT_GE(action.extra_delay, 1) << "at t=" << live;
    EXPECT_LE(action.extra_delay, 20) << "at t=" << live;
  }
}

TEST(FaultPlaneTest, OneWayDropsMatchDirectionAndWildcard) {
  ChaosSchedule s;
  s.rules = {
      // Node 3's whole outbound is dead; the reverse directions live.
      {FaultKind::kOneWay, 0.0, 3, kAnyNode, 0, 0, kNoEnd},
      // Exactly 1→2 is dead; 2→1 lives.
      {FaultKind::kOneWay, 0.0, 1, 2, 0, 0, kNoEnd},
  };
  FaultPlane plane(s, 9);
  EXPECT_TRUE(plane.sample(3, 0, 0).drop);
  EXPECT_TRUE(plane.sample(3, 11, 0).drop);
  EXPECT_FALSE(plane.sample(0, 3, 0).drop);  // asymmetric: B→A lives
  EXPECT_TRUE(plane.sample(1, 2, 0).drop);
  EXPECT_FALSE(plane.sample(2, 1, 0).drop);
  EXPECT_FALSE(plane.sample(1, 5, 0).drop);  // pinned b: other targets live
  EXPECT_EQ(plane.stats().dropped_oneway, 3u);
}

TEST(FaultPlaneTest, OneWayDropWinsOverEverySampledMutation) {
  ChaosSchedule s = probability_schedule(1.0);
  s.rules.push_back({FaultKind::kOneWay, 0.0, 0, kAnyNode, 0, 0, kNoEnd});
  FaultPlane plane(s, 3);
  const FaultAction action = plane.sample(0, 1, 0);
  EXPECT_TRUE(action.drop);
  // The datagram never leaves, so nothing else is observable or counted.
  EXPECT_FALSE(action.corrupt);
  EXPECT_FALSE(action.truncate);
  EXPECT_EQ(action.duplicates, 0);
  EXPECT_EQ(action.extra_delay, 0);
  const FaultStats stats = plane.stats();
  EXPECT_EQ(stats.dropped_oneway, 1u);
  EXPECT_EQ(stats.corrupted, 0u);
  EXPECT_EQ(stats.truncated, 0u);
}

TEST(FaultPlaneTest, MutateCopiesAndNeverTouchesTheOriginal) {
  FaultPlane plane(probability_schedule(1.0), 5);
  std::vector<std::uint8_t> original(64);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i);
  }
  const SharedBytes payload(original);

  FaultAction corrupt_only;
  corrupt_only.corrupt = true;
  const SharedBytes corrupted = plane.mutate(payload, corrupt_only);
  ASSERT_EQ(corrupted.size(), payload.size());
  EXPECT_FALSE(corrupted == payload);  // some byte really flipped

  FaultAction truncate_only;
  truncate_only.truncate = true;
  const SharedBytes truncated = plane.mutate(payload, truncate_only);
  EXPECT_LT(truncated.size(), payload.size());

  // The aliased original — shared across the rest of the fan-out — is
  // byte-identical to what went in.
  ASSERT_EQ(payload.size(), original.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), original.begin()));
}

TEST(FaultPlaneTest, CorpusIsBoundedAndReplaysMutations) {
  FaultPlane plane(probability_schedule(1.0), 5);
  const SharedBytes payload(std::vector<std::uint8_t>(32, 0xAB));
  FaultAction action;
  action.corrupt = true;
  for (int i = 0; i < 200; ++i) plane.mutate(payload, action);
  const auto corpus = plane.corpus();
  EXPECT_EQ(corpus.size(), 64u);  // bounded, first-64 kept
  for (const auto& entry : corpus) EXPECT_EQ(entry.size(), payload.size());
}

TEST(FaultPlaneTest, GrayProbesAreWindowedPerNode) {
  ChaosSchedule s;
  s.rules = {
      {FaultKind::kStall, 0.0, 3, kAnyNode, 10, 100, 200},
      {FaultKind::kSkew, 0.0, 5, kAnyNode, 80, 100, 200},
  };
  FaultPlane plane(s, 1);
  EXPECT_EQ(plane.stall_for(3, 50), 0);
  EXPECT_EQ(plane.stall_for(3, 150), 10);
  EXPECT_EQ(plane.stall_for(4, 150), 0);  // other nodes unaffected
  EXPECT_EQ(plane.stall_for(3, 200), 0);
  EXPECT_EQ(plane.clock_skew(5, 150), 80);
  EXPECT_EQ(plane.clock_skew(5, 99), 0);
  EXPECT_EQ(plane.clock_skew(3, 150), 0);
  const FaultStats stats = plane.stats();
  EXPECT_EQ(stats.stalls, 1u);      // only the served stall counted
  EXPECT_EQ(stats.skew_reads, 1u);  // only the skewed read counted
}

TEST(FaultPlaneTest, ScheduleSummariesDriveTheInvariantSelectors) {
  ChaosSchedule clean;
  EXPECT_TRUE(clean.empty());
  EXPECT_EQ(clean.last_window_end(), 0);

  ChaosSchedule s;
  s.rules = {
      {FaultKind::kCorrupt, 0.1, kAnyNode, kAnyNode, 0, 500, 900},
      {FaultKind::kOneWay, 0.0, 1, 2, 0, 100, 700},
      {FaultKind::kStall, 0.0, 3, kAnyNode, 5, 0, kNoEnd},
  };
  EXPECT_TRUE(s.corrupts());
  EXPECT_TRUE(s.asymmetric());
  EXPECT_TRUE(s.gray());
  // Open-ended rules don't define a healing point; the latest bounded
  // window does.
  EXPECT_EQ(s.last_window_end(), 900);
}

}  // namespace
}  // namespace agb::fault
