// Property-based suites: parameterised sweeps asserting protocol invariants
// that must hold for *every* configuration, not just the paper's.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/scenario.h"

namespace agb::core {
namespace {

// ---------------------------------------------------------------------------
// Baseline gossip invariants swept over (fanout, buffer size, offered rate).
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<int /*fanout*/, int /*buffer*/, int /*rate*/>;

class GossipSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ScenarioParams make_params(bool adaptive) const {
    const auto [fanout, buffer, rate] = GetParam();
    ScenarioParams p;
    p.n = 16;
    p.senders = 2;
    p.offered_rate = rate;
    p.adaptive = adaptive;
    p.gossip.fanout = static_cast<std::size_t>(fanout);
    p.gossip.gossip_period = 1000;
    p.gossip.max_events = static_cast<std::size_t>(buffer);
    p.gossip.max_event_ids = 1500;
    p.gossip.max_age = 10;
    p.adaptation.initial_rate = static_cast<double>(rate) / 2.0;
    p.warmup = 4'000;
    p.duration = 25'000;
    p.cooldown = 10'000;
    p.seed = 1000 + static_cast<std::uint64_t>(fanout * 100 + buffer + rate);
    return p;
  }
};

TEST_P(GossipSweep, NoDuplicateDeliveriesAndSaneRates) {
  Scenario scenario(make_params(/*adaptive=*/false));
  auto r = scenario.run();

  // Output can never exceed input: a message must be admitted to count.
  EXPECT_LE(r.output_rate, r.input_rate + 1e-9);

  // Receiver percentages are percentages.
  EXPECT_GE(r.delivery.avg_receiver_pct, 0.0);
  EXPECT_LE(r.delivery.avg_receiver_pct, 100.0);
  EXPECT_GE(r.delivery.atomicity_pct, 0.0);
  EXPECT_LE(r.delivery.atomicity_pct, 100.0);

  // The wire codec round-trips everything the protocol emits.
  EXPECT_EQ(r.decode_failures, 0u);

  // Per-node invariants: deliveries == broadcasts + novel receptions, and a
  // node never holds more events than its configured bound.
  for (const auto& node : scenario.nodes()) {
    const auto& c = node->counters();
    EXPECT_EQ(c.deliveries, c.broadcasts + c.events_received);
    EXPECT_LE(node->events().size(), node->params().max_events);
  }
}

TEST_P(GossipSweep, AgeNeverExceedsLimitPlusOneRound) {
  Scenario scenario(make_params(/*adaptive=*/false));
  (void)scenario.run();
  const auto max_age = std::get<1>(GetParam()) >= 0
                           ? scenario.nodes()[0]->params().max_age
                           : 0;
  for (const auto& node : scenario.nodes()) {
    node->events().for_each([&](const gossip::Event& e) {
      // Between rounds an event can sit one increment above the limit only
      // transiently; after a full run it must respect the purge bound plus
      // the bump slack from concurrently received higher ages.
      EXPECT_LE(e.age, max_age + 1);
    });
  }
}

TEST_P(GossipSweep, AdaptiveNeverLessReliableThanBaseline) {
  Scenario base(make_params(false));
  Scenario adapt(make_params(true));
  auto rb = base.run();
  auto ra = adapt.run();
  // Allow statistical slack of a few points; adaptation must never cost
  // double-digit reliability anywhere in the sweep.
  EXPECT_GE(ra.delivery.avg_receiver_pct,
            rb.delivery.avg_receiver_pct - 5.0);
}

TEST_P(GossipSweep, AdaptiveMinBuffNeverExceedsTrueMinimum) {
  Scenario scenario(make_params(/*adaptive=*/true));
  (void)scenario.run();
  const auto true_min = std::get<1>(GetParam());
  for (const auto* node : scenario.adaptive_nodes()) {
    EXPECT_LE(node->min_buff(), static_cast<std::uint32_t>(true_min));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutBufferRate, GossipSweep,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values(8, 30, 120),
                       ::testing::Values(4, 16)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism sweep: every configuration must replay bit-identically.
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, IdenticalAcrossReplays) {
  auto make = [&] {
    ScenarioParams p;
    p.n = 12;
    p.senders = 3;
    p.offered_rate = 9.0;
    p.adaptive = (GetParam() % 2 == 1);
    p.gossip.gossip_period = 500;
    p.gossip.max_events = 15;
    p.warmup = 2'000;
    p.duration = 15'000;
    p.cooldown = 5'000;
    p.seed = static_cast<std::uint64_t>(GetParam());
    p.network.latency = sim::LatencyModel::uniform(1.0, 30.0);
    p.network.loss = sim::LossModel::iid(0.05);
    return p;
  };
  Scenario s1(make()), s2(make());
  auto a = s1.run();
  auto b = s2.run();
  EXPECT_EQ(a.net.sent, b.net.sent);
  EXPECT_EQ(a.net.delivered, b.net.delivered);
  EXPECT_EQ(a.net.dropped_loss, b.net.dropped_loss);
  EXPECT_EQ(a.delivery.messages, b.delivery.messages);
  EXPECT_DOUBLE_EQ(a.delivery.avg_receiver_pct, b.delivery.avg_receiver_pct);
  EXPECT_DOUBLE_EQ(a.avg_allowed_rate, b.avg_allowed_rate);
  EXPECT_EQ(a.overflow_drops, b.overflow_drops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Monotonicity: more buffer never hurts baseline reliability (statistically).
// ---------------------------------------------------------------------------

class BufferMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BufferMonotonicity, LargerBuffersDoNotHurt) {
  auto run_with_buffer = [&](std::size_t buffer) {
    ScenarioParams p;
    p.n = 16;
    p.senders = 2;
    p.offered_rate = 12.0;
    p.gossip.gossip_period = 1000;
    p.gossip.max_events = buffer;
    p.gossip.max_event_ids = 2000;
    p.warmup = 4'000;
    p.duration = 30'000;
    p.cooldown = 10'000;
    p.seed = static_cast<std::uint64_t>(GetParam());
    Scenario s(p);
    return s.run().delivery.avg_receiver_pct;
  };
  const double small = run_with_buffer(6);
  const double large = run_with_buffer(120);
  EXPECT_GE(large, small - 2.0);
  EXPECT_GT(large, 99.0);  // 120 slots is ample at this load
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferMonotonicity,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// Token-gating property: adaptive admitted rate respects the allowed rate.
// ---------------------------------------------------------------------------

class AdmissionControl : public ::testing::TestWithParam<int> {};

TEST_P(AdmissionControl, InputNeverExceedsOfferedOrBurstBound) {
  ScenarioParams p;
  p.n = 16;
  p.senders = 2;
  p.offered_rate = 10.0;
  p.adaptive = true;
  p.adaptation.initial_rate = 5.0;
  p.adaptation.max_rate = 50.0;
  p.gossip.max_events = 40;
  p.warmup = 4'000;
  p.duration = 30'000;
  p.cooldown = 10'000;
  p.seed = static_cast<std::uint64_t>(GetParam());
  Scenario s(p);
  auto r = s.run();
  // Admission is bounded by what the application offered...
  EXPECT_LE(r.input_rate, p.offered_rate * 1.15);
  // ...and the queue bound means some arrivals may be refused, never lost
  // silently: refusals are reported.
  EXPECT_GE(r.refused_broadcasts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionControl,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace agb::core
