// LocalityView target selection: the biased sampling contract (empirical
// same-cluster fraction tracks p_local), the hard invariants (distinct
// targets, never the owner, cross-cluster picks only through bridges),
// deterministic bridge election and re-election, and the ClusterMap
// implementations feeding it.
#include "membership/locality_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "membership/cluster_map.h"
#include "membership/full_membership.h"
#include "membership/partial_view.h"

namespace agb::membership {
namespace {

constexpr std::size_t kGroup = 60;
constexpr std::size_t kClusters = 3;
constexpr std::size_t kFanout = 4;

/// A LocalityView over a full directory of kGroup members.
std::unique_ptr<LocalityView> make_view(NodeId self, LocalityParams params,
                                        std::uint64_t seed,
                                        std::size_t clusters = kClusters,
                                        std::size_t group = kGroup) {
  auto map = std::make_shared<ModuloClusterMap>(clusters);
  auto inner = std::make_unique<FullMembership>(self, Rng(seed));
  for (NodeId id = 0; id < group; ++id) {
    if (id != self) inner->add(id);
  }
  return std::make_unique<LocalityView>(self, params, std::move(map),
                                        std::move(inner), Rng(seed + 1));
}

TEST(ClusterMapTest, ModuloPartitionsByResidue) {
  ModuloClusterMap map(3);
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.cluster_of(4), 1u);
  EXPECT_EQ(map.cluster_of(11), 2u);
  // Degenerate cluster counts collapse to one flat island.
  EXPECT_EQ(ModuloClusterMap(1).cluster_of(7), 0u);
  EXPECT_EQ(ModuloClusterMap(0).cluster_of(7), 0u);
}

TEST(ClusterMapTest, TableMapsAssignedNodesAndFlagsUnknowns) {
  TableClusterMap map;
  map.assign(3, 0);
  map.assign(8, 1);
  EXPECT_EQ(map.cluster_of(3), 0u);
  EXPECT_EQ(map.cluster_of(8), 1u);
  EXPECT_EQ(map.cluster_of(99), kUnknownCluster);
  EXPECT_EQ(map.size(), 2u);
}

TEST(LocalityViewTest, SameClusterFractionTracksPLocal) {
  LocalityParams params;
  params.enabled = true;
  params.p_local = 0.8;
  auto view = make_view(/*self=*/0, params, /*seed=*/42);

  // With 19 local peers and 2 remote bridges both pools outlast a fanout
  // of 4, so every slot is a clean Bernoulli(p_local) draw; over 10k
  // rounds the fraction's standard error is ~0.2 %, far inside the 3 %
  // gate.
  const std::size_t rounds = 10'000;
  std::size_t local_picks = 0;
  std::size_t total_picks = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (NodeId target : view->targets(kFanout)) {
      ++total_picks;
      if (target % kClusters == 0) ++local_picks;  // self is cluster 0
    }
  }
  ASSERT_EQ(total_picks, rounds * kFanout);
  const double fraction =
      static_cast<double>(local_picks) / static_cast<double>(total_picks);
  EXPECT_NEAR(fraction, params.p_local, 0.03);
}

TEST(LocalityViewTest, TargetsAreDistinctAndNeverTheOwner) {
  LocalityParams params;
  params.enabled = true;
  params.p_local = 0.5;  // plenty of both pools exercised
  auto view = make_view(/*self=*/7, params, /*seed=*/5);

  for (std::size_t round = 0; round < 2'000; ++round) {
    const auto targets = view->targets(kFanout);
    ASSERT_EQ(targets.size(), kFanout);
    const std::set<NodeId> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size()) << "duplicate target";
    EXPECT_FALSE(unique.contains(7u)) << "owner picked itself";
  }
}

TEST(LocalityViewTest, CrossClusterPicksGoThroughBridgesOnly) {
  LocalityParams params;
  params.enabled = true;
  params.p_local = 0.5;
  params.bridges_per_cluster = 2;
  auto view = make_view(/*self=*/0, params, /*seed=*/9);

  // Node 0's home is cluster 0; the remote bridges are the two lowest ids
  // of clusters 1 and 2.
  EXPECT_EQ(view->home_cluster(), 0u);
  EXPECT_EQ(view->bridges_of(1), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(view->bridges_of(2), (std::vector<NodeId>{2, 5}));
  const std::set<NodeId> bridges{1, 4, 2, 5};

  for (std::size_t round = 0; round < 2'000; ++round) {
    for (NodeId target : view->targets(kFanout)) {
      if (target % kClusters != 0) {
        EXPECT_TRUE(bridges.contains(target))
            << "cross-cluster pick " << target << " is not a bridge";
      }
    }
  }
}

TEST(LocalityViewTest, BridgeReelectsToNextLowestIdOnRemove) {
  LocalityParams params;
  params.enabled = true;
  auto view = make_view(/*self=*/0, params, /*seed=*/3);

  ASSERT_EQ(view->bridges_of(1), std::vector<NodeId>{1});
  view->remove(1);  // the membership layer learns the bridge left
  EXPECT_EQ(view->bridges_of(1), std::vector<NodeId>{4});

  // Every cross-cluster pick aimed at cluster 1 now goes to the successor.
  for (std::size_t round = 0; round < 1'000; ++round) {
    for (NodeId target : view->targets(kFanout)) {
      if (target % kClusters == 1) {
        EXPECT_EQ(target, 4u);
      }
    }
  }

  // A recovered bridge (re-add) wins the election back.
  view->add(1);
  EXPECT_EQ(view->bridges_of(1), std::vector<NodeId>{1});
}

TEST(LocalityViewTest, OwnerCountsInItsHomeClusterElection) {
  LocalityParams params;
  params.enabled = true;
  // Node 0 is the lowest id of cluster 0 and must see itself as bridge.
  auto view = make_view(/*self=*/0, params, /*seed=*/4);
  EXPECT_EQ(view->bridges_of(0), std::vector<NodeId>{0});
}

TEST(LocalityViewTest, FallsBackWhenAPoolIsEmpty) {
  LocalityParams params;
  params.enabled = true;
  params.p_local = 0.9;

  // Single cluster: no bridges exist, every pick is local.
  auto flat = make_view(/*self=*/0, params, /*seed=*/11, /*clusters=*/1,
                        /*group=*/10);
  for (std::size_t round = 0; round < 100; ++round) {
    EXPECT_EQ(flat->targets(3).size(), 3u);
  }

  // No local peers (self is its cluster's only member in a 6-node,
  // 6-cluster group): everything routes through bridges despite p_local.
  auto lonely = make_view(/*self=*/0, params, /*seed=*/12, /*clusters=*/6,
                          /*group=*/6);
  for (std::size_t round = 0; round < 100; ++round) {
    const auto targets = lonely->targets(3);
    EXPECT_EQ(targets.size(), 3u);
    for (NodeId target : targets) EXPECT_NE(target % 6, 0u);
  }

  // Empty membership yields no targets at all.
  auto alone = make_view(/*self=*/0, params, /*seed=*/13, /*clusters=*/2,
                         /*group=*/1);
  EXPECT_TRUE(alone->targets(3).empty());
}

TEST(LocalityViewTest, ForwardsMembershipMutationsToTheInnerView) {
  LocalityParams params;
  params.enabled = true;
  auto view = make_view(/*self=*/0, params, /*seed=*/21, kClusters,
                        /*group=*/6);
  EXPECT_EQ(view->size(), 5u);
  EXPECT_TRUE(view->contains(3));
  view->remove(3);
  EXPECT_FALSE(view->contains(3));
  EXPECT_EQ(view->size(), 4u);
  view->add(40);
  EXPECT_TRUE(view->contains(40));
  auto snapshot = view->snapshot();
  EXPECT_TRUE(std::find(snapshot.begin(), snapshot.end(), 40u) !=
              snapshot.end());
}

TEST(LocalityViewTest, WrapsAPartialViewAndTracksItsChurn) {
  // The decorator over lpbcast's partial view: targets follow whatever the
  // wrapped view currently knows, including changes that arrive through
  // apply_digest (which bypasses LocalityView::add/remove entirely).
  auto map = std::make_shared<ModuloClusterMap>(2);
  PartialViewParams view_params;
  auto inner = std::make_unique<PartialView>(/*self=*/0, view_params, Rng(1));
  auto* partial = inner.get();
  LocalityParams params;
  params.enabled = true;
  params.p_local = 0.5;
  LocalityView view(/*self=*/0, params, std::move(map), std::move(inner),
                    Rng(2));

  MembershipDigest digest;
  digest.subs = {2, 4, 5};
  partial->apply_digest(/*from=*/3, digest);

  // Bridge of the odd cluster is the lowest known odd id (the digest
  // sender 3 joined the view too).
  EXPECT_EQ(view.bridges_of(1), std::vector<NodeId>{3});
  for (std::size_t round = 0; round < 500; ++round) {
    for (NodeId target : view.targets(2)) {
      if (target % 2 == 1) {
        EXPECT_EQ(target, 3u);
      }
    }
  }
}

TEST(LocalityViewTest, SeededRunsAreReproducible) {
  LocalityParams params;
  params.enabled = true;
  auto a = make_view(/*self=*/0, params, /*seed=*/77);
  auto b = make_view(/*self=*/0, params, /*seed=*/77);
  for (std::size_t round = 0; round < 200; ++round) {
    EXPECT_EQ(a->targets(kFanout), b->targets(kFanout));
  }
}

}  // namespace
}  // namespace agb::membership
