#include "gossip/message.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace agb::gossip {
namespace {

GossipMessage sample_message() {
  GossipMessage m;
  m.sender = 12;
  m.round = 345;
  m.period = 7;
  m.min_buff = 60;
  m.membership.subs = {1, 2, 3};
  m.membership.unsubs = {4};
  Event e1;
  e1.id = EventId{12, 0};
  e1.age = 3;
  e1.created_at = 1234;
  e1.payload = make_payload({0xde, 0xad});
  Event e2;
  e2.id = EventId{9, 77};
  e2.age = 0;
  e2.created_at = -5;  // negative times must survive the codec
  m.events = {e1, e2};
  membership::MemberRecord r;
  r.node = 7;
  r.revision = 2;
  r.heartbeat = 900;
  r.state = membership::LivenessState::kSuspect;
  r.binding = {0x0a000001, 9100};
  m.member_records = {r};
  return m;
}

TEST(MessageCodecTest, RoundTripPreservesAllFields) {
  const auto original = sample_message();
  auto decoded = GossipMessage::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, 12u);
  EXPECT_EQ(decoded->round, 345u);
  EXPECT_EQ(decoded->period, 7u);
  EXPECT_EQ(decoded->min_buff, 60u);
  EXPECT_EQ(decoded->membership.subs, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(decoded->membership.unsubs, (std::vector<NodeId>{4}));
  ASSERT_EQ(decoded->events.size(), 2u);
  EXPECT_EQ(decoded->events[0].id, (EventId{12, 0}));
  EXPECT_EQ(decoded->events[0].age, 3u);
  EXPECT_EQ(decoded->events[0].created_at, 1234);
  ASSERT_TRUE(decoded->events[0].payload);
  EXPECT_EQ(*decoded->events[0].payload,
            (std::vector<std::uint8_t>{0xde, 0xad}));
  EXPECT_EQ(decoded->events[1].id, (EventId{9, 77}));
  EXPECT_EQ(decoded->events[1].created_at, -5);
  ASSERT_EQ(decoded->member_records.size(), 1u);
  EXPECT_EQ(decoded->member_records[0].node, 7u);
  EXPECT_EQ(decoded->member_records[0].revision, 2u);
  EXPECT_EQ(decoded->member_records[0].heartbeat, 900u);
  EXPECT_EQ(decoded->member_records[0].state,
            membership::LivenessState::kSuspect);
  EXPECT_EQ(decoded->member_records[0].binding,
            (membership::EndpointBinding{0x0a000001, 9100}));
}

TEST(MessageCodecTest, EmptyMessageRoundTrips) {
  GossipMessage m;
  m.sender = 1;
  auto decoded = GossipMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->events.empty());
  EXPECT_TRUE(decoded->membership.subs.empty());
}

TEST(MessageCodecTest, EmptyPayloadDecodesAsNull) {
  GossipMessage m;
  m.sender = 1;
  Event e;
  e.id = EventId{1, 1};
  e.payload = make_payload({});  // empty payload == no payload on the wire
  m.events = {e};
  auto decoded = GossipMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->events[0].payload);
  EXPECT_EQ(decoded->events[0].payload_size(), 0u);
}

TEST(MessageCodecTest, WrongMagicRejected) {
  auto bytes = sample_message().encode();
  bytes[0] ^= 0xff;
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, WrongVersionRejected) {
  auto bytes = sample_message().encode();
  bytes[2] = kWireVersion + 1;
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, WrongTypeRejected) {
  auto bytes = sample_message().encode();
  bytes[3] = 0x77;
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, EveryTruncationFailsCleanly) {
  // Chopping the message at any byte boundary must produce nullopt — never
  // a crash, never a bogus partial decode. One boundary is special: the
  // member_records section is tail-optional (a pre-membership peer's
  // message simply ends before it), so cutting exactly there yields the
  // same message with an empty digest — and nothing else.
  GossipMessage without_digest = sample_message();
  without_digest.member_records.clear();
  const std::size_t tail_boundary = without_digest.encode().size();
  auto bytes = sample_message().encode();
  ASSERT_LT(tail_boundary, bytes.size());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::span<const std::uint8_t> prefix(bytes.data(), len);
    auto decoded = GossipMessage::decode(prefix);
    if (len == tail_boundary) {
      ASSERT_TRUE(decoded.has_value());
      EXPECT_TRUE(decoded->member_records.empty());
      EXPECT_EQ(decoded->events.size(), sample_message().events.size());
    } else {
      EXPECT_FALSE(decoded.has_value()) << "prefix length " << len;
    }
  }
}

TEST(MessageCodecTest, TrailingGarbageRejected) {
  auto bytes = sample_message().encode();
  bytes.push_back(0x00);
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, ForgedHugeEventCountRejected) {
  // Craft a header claiming 2^40 events with no bytes behind it.
  ByteWriter w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(1);
  w.u32(1);       // sender
  w.varint(1);    // round
  w.varint(0);    // period
  w.varint(0);    // min_buff
  w.varint(0);    // subs
  w.varint(0);    // unsubs
  w.varint(1ull << 40);  // events: absurd
  EXPECT_FALSE(GossipMessage::decode(w.data()).has_value());
}

TEST(MessageCodecTest, ForgedHugeSubsCountRejected) {
  ByteWriter w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(1);
  w.u32(1);
  w.varint(1);
  w.varint(0);
  w.varint(0);
  w.varint(1ull << 40);  // subs: absurd
  EXPECT_FALSE(GossipMessage::decode(w.data()).has_value());
}

TEST(MessageCodecTest, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)GossipMessage::decode(junk);  // must not crash; result irrelevant
  }
}

TEST(MessageCodecTest, MutatedValidMessageNeverCrashes) {
  // Single-byte mutations of a valid wire image: decode either fails or
  // yields *some* message, but never crashes or over-allocates.
  auto bytes = sample_message().encode();
  Rng rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    auto copy = bytes;
    const auto pos = static_cast<std::size_t>(rng.next_below(copy.size()));
    copy[pos] = static_cast<std::uint8_t>(rng.next());
    (void)GossipMessage::decode(copy);
  }
}

TEST(MessageCodecTest, RandomizedMessagesRoundTripExactly) {
  // Property: any well-formed message survives encode+decode bit-exactly.
  Rng rng(20260612);
  for (int trial = 0; trial < 300; ++trial) {
    GossipMessage m;
    m.sender = static_cast<NodeId>(rng.next_below(1000));
    m.round = rng.next_below(1 << 20);
    m.period = rng.next_below(1 << 16);
    m.min_buff = static_cast<std::uint32_t>(rng.next_below(1 << 16));
    const auto min_set = rng.next_below(4);
    for (std::uint64_t i = 0; i < min_set; ++i) {
      m.min_set.push_back({static_cast<NodeId>(rng.next_below(100)),
                           static_cast<std::uint32_t>(rng.next_below(500))});
    }
    const auto subs = rng.next_below(5);
    for (std::uint64_t i = 0; i < subs; ++i) {
      m.membership.subs.push_back(static_cast<NodeId>(rng.next_below(100)));
    }
    const auto events = rng.next_below(20);
    for (std::uint64_t i = 0; i < events; ++i) {
      Event e;
      e.id = EventId{static_cast<NodeId>(rng.next_below(100)), rng.next()};
      e.age = static_cast<std::uint32_t>(rng.next_below(30));
      e.created_at = static_cast<TimeMs>(rng.next()) / 2;
      e.stream = static_cast<std::uint32_t>(rng.next_below(8));
      e.supersedes = rng.bernoulli(0.3);
      if (rng.bernoulli(0.7)) {
        std::vector<std::uint8_t> payload(1 + rng.next_below(40));
        for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
        e.payload = make_payload(std::move(payload));
      }
      m.events.push_back(std::move(e));
    }
    const auto seen = rng.next_below(10);
    for (std::uint64_t i = 0; i < seen; ++i) {
      m.seen_ids.push_back(
          EventId{static_cast<NodeId>(rng.next_below(100)), rng.next()});
    }
    const auto members = rng.next_below(8);
    for (std::uint64_t i = 0; i < members; ++i) {
      membership::MemberRecord r;
      r.node = static_cast<NodeId>(rng.next_below(100));
      r.revision = rng.next();  // full-width varints must survive
      r.heartbeat = rng.next_below(1ull << 40);
      r.state = static_cast<membership::LivenessState>(rng.next_below(3));
      if (rng.bernoulli(0.5)) {
        r.binding = {static_cast<std::uint32_t>(rng.next()),
                     static_cast<std::uint16_t>(1 + rng.next_below(65535))};
      }
      m.member_records.push_back(r);
    }

    auto decoded = GossipMessage::decode(m.encode());
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    // Re-encoding the decoded message must reproduce identical bytes
    // (canonical encoding), which subsumes field-by-field equality.
    EXPECT_EQ(decoded->encode(), m.encode()) << "trial " << trial;
  }
}

TEST(MessageCodecTest, EncodeIsDeterministic) {
  const auto a = sample_message().encode();
  const auto b = sample_message().encode();
  EXPECT_EQ(a, b);
}

TEST(MessageCodecTest, RepairMessagesSurviveMutationFuzz) {
  RepairRequest request;
  request.sender = 4;
  for (std::uint64_t i = 0; i < 20; ++i) request.ids.push_back({1, i});
  RepairReply reply;
  reply.sender = 4;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Event e;
    e.id = EventId{2, i};
    e.payload = make_payload({1, 2, 3});
    reply.events.push_back(e);
  }
  Rng rng(321);
  for (const auto& bytes : {request.encode(), reply.encode()}) {
    for (int trial = 0; trial < 500; ++trial) {
      auto copy = bytes;
      const auto pos = static_cast<std::size_t>(rng.next_below(copy.size()));
      copy[pos] = static_cast<std::uint8_t>(rng.next());
      (void)decode_any(copy);  // must never crash or over-allocate
    }
    // Truncations too.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      (void)decode_any(std::span<const std::uint8_t>(bytes.data(), len));
    }
  }
}

TEST(MessageCodecTest, MinSetTruncationFailsCleanly) {
  GossipMessage m;
  m.sender = 1;
  m.min_set = {{2, 30}, {3, 60}};
  auto bytes = m.encode();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(GossipMessage::decode(
                     std::span<const std::uint8_t>(bytes.data(), len))
                     .has_value());
  }
}

TEST(MessageCodecTest, ForgedHugeMemberRecordCountRejected) {
  // An empty message omits the tail member_records section entirely; splice
  // an absurd count varint onto the tail and the plausibility check must
  // reject it.
  GossipMessage m;
  m.sender = 1;
  auto bytes = m.encode();
  ByteWriter w;
  w.varint(1ull << 40);
  for (std::uint8_t b : std::move(w).take()) bytes.push_back(b);
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, UnknownLivenessStateByteRejected) {
  auto bytes = sample_message().encode();
  // The single member record trails the message: state byte, then the u32
  // host and u16 port.
  ASSERT_GE(bytes.size(), 7u);
  bytes[bytes.size() - 7] = 3;  // one past kDown
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

TEST(MessageCodecTest, MemberRecordWireCostMatchesEncodedRecordSize) {
  // The digest budget in membership/ is enforced against
  // encoded_record_size; the codec here is what actually puts records on
  // the wire. Adding records must grow the message by exactly the sum the
  // budget accounted for, plus the section's count varint (one byte for
  // up to 127 records; the empty message omits the section entirely).
  GossipMessage empty;
  empty.sender = 1;
  GossipMessage full = empty;
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    membership::MemberRecord r;
    r.node = static_cast<NodeId>(i);
    r.revision = i * 1000;
    r.heartbeat = i * 77;
    r.state = static_cast<membership::LivenessState>(i % 3);
    full.member_records.push_back(r);
    expected += membership::encoded_record_size(r);
  }
  EXPECT_EQ(full.encode().size(), empty.encode().size() + 1 + expected);
}

TEST(MessageCodecTest, LargeEventBatchRoundTrips) {
  GossipMessage m;
  m.sender = 3;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Event e;
    e.id = EventId{static_cast<NodeId>(i % 60), i};
    e.age = static_cast<std::uint32_t>(i % 13);
    e.created_at = static_cast<TimeMs>(i * 7);
    m.events.push_back(e);
  }
  auto decoded = GossipMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->events.size(), 500u);
  EXPECT_EQ(decoded->events[499].id.sequence, 499u);
}

}  // namespace
}  // namespace agb::gossip
