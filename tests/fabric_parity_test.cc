// Cross-fabric parity: the same gossip group, driven through the batch send
// path of all three DatagramNetwork implementations, delivers the identical
// event set — the guarantee that lets protocol results gathered under the
// simulator transfer to the threaded fabrics and real sockets.
//
// Timing differs across fabrics (virtual vs wall clock), so parity is over
// *what* was delivered: every node must deliver every broadcast event, and
// the per-node delivered-id sets must match exactly across fabrics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "gossip/lpbcast_node.h"
#include "gossip/message.h"
#include "membership/cluster_map.h"
#include "membership/full_membership.h"
#include "membership/locality_view.h"
#include "runtime/inmemory_fabric.h"
#include "runtime/node_runtime.h"
#include "runtime/udp_transport.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace agb {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kNodes = 4;
constexpr std::size_t kBroadcasts = 6;

/// node -> set of event ids the node delivered (origin's local delivery
/// included).
using DeliveryMap = std::map<NodeId, std::unordered_set<EventId>>;

bool eventually(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline = 5000ms) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

std::unique_ptr<gossip::LpbcastNode> make_node(NodeId self, DurationMs period,
                                               bool locality = false) {
  std::unique_ptr<membership::Membership> members =
      std::make_unique<membership::FullMembership>(self, Rng(self * 13 + 1));
  for (NodeId id = 0; id < kNodes; ++id) {
    if (id != self) members->add(id);
  }
  if (locality) {
    // Two islands (even/odd ids); all seeds are fixed per node id, so
    // every fabric's node makes the identical bridge choices.
    membership::LocalityParams params;
    params.enabled = true;
    params.p_local = 0.75;
    members = std::make_unique<membership::LocalityView>(
        self, params, std::make_shared<membership::ModuloClusterMap>(2),
        std::move(members), Rng(self * 31 + 5));
  }
  gossip::GossipParams params;
  params.fanout = 2;
  params.gossip_period = period;
  params.max_events = 64;
  params.max_event_ids = 1000;
  params.max_age = 20;
  return std::make_unique<gossip::LpbcastNode>(self, params,
                                               std::move(members),
                                               Rng(self + 7));
}

bool complete(const DeliveryMap& deliveries) {
  if (deliveries.size() != kNodes) return false;
  for (const auto& [node, ids] : deliveries) {
    if (ids.size() != kBroadcasts) return false;
  }
  return true;
}

/// Drives the group under the discrete-event simulator; rounds emitted as
/// one Multicast each through SimNetwork::send_batch.
DeliveryMap run_over_sim(bool locality = false) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(17));
  std::vector<std::unique_ptr<gossip::LpbcastNode>> nodes;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  DeliveryMap deliveries;

  for (NodeId id = 0; id < kNodes; ++id) {
    auto node = make_node(id, /*period=*/10, locality);
    node->set_deliver_handler(
        [&deliveries, id](const gossip::Event& e, TimeMs) {
          deliveries[id].insert(e.id);
        });
    net.attach(id, [raw = node.get()](const Datagram& d, TimeMs now) {
      (void)raw->on_wire(gossip::decode_any(d.payload), now);
    });
    timers.push_back(std::make_unique<sim::PeriodicTimer>(
        sim, /*start=*/1 + id, /*period=*/10,
        [raw = node.get(), &net](TimeMs now) {
          auto out = raw->on_round(now);
          if (out.targets.empty()) return;
          net.send_batch(std::move(out).to_multicast(raw->id()));
        }));
    nodes.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    nodes[0]->broadcast(gossip::make_payload({static_cast<std::uint8_t>(i)}),
                        0);
  }
  sim.run_until(5000);
  return deliveries;
}

/// Drives the group over a real (threaded or socket) fabric via NodeRuntime,
/// whose round loop emits one Multicast per round.
DeliveryMap run_over_runtime(DatagramNetwork& network,
                             const std::function<TimeMs()>& clock,
                             bool locality = false) {
  std::mutex mu;
  DeliveryMap deliveries;
  std::vector<std::unique_ptr<runtime::NodeRuntime>> runtimes;
  for (NodeId id = 0; id < kNodes; ++id) {
    auto runtime = std::make_unique<runtime::NodeRuntime>(
        make_node(id, /*period=*/10, locality), network, clock);
    runtime->set_deliver_handler(
        [&mu, &deliveries, id](const gossip::Event& e, TimeMs) {
          std::lock_guard lock(mu);
          deliveries[id].insert(e.id);
        });
    runtimes.push_back(std::move(runtime));
  }
  for (auto& r : runtimes) r->start();
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    runtimes[0]->broadcast(
        gossip::make_payload({static_cast<std::uint8_t>(i)}));
  }
  EXPECT_TRUE(eventually([&] {
    std::lock_guard lock(mu);
    return complete(deliveries);
  }));
  for (auto& r : runtimes) r->stop();
  std::lock_guard lock(mu);
  return deliveries;
}

TEST(FabricParityTest, SameEventSetThroughAllThreeFabrics) {
  const DeliveryMap via_sim = run_over_sim();
  ASSERT_TRUE(complete(via_sim));

  runtime::InMemoryFabric fabric({});
  const DeliveryMap via_fabric =
      run_over_runtime(fabric, [&fabric] { return fabric.now(); });

  runtime::UdpTransport transport(28'400);
  const DeliveryMap via_udp =
      run_over_runtime(transport, [&transport] { return transport.now(); });

  // Every fabric delivered exactly the same ids to the same nodes.
  EXPECT_EQ(via_sim, via_fabric);
  EXPECT_EQ(via_sim, via_udp);
}

TEST(FabricParityTest, ShardedDispatchAndRecvmmsgDeliverTheSameEventSet) {
  // The sharded InMemoryFabric dispatcher and the recvmmsg drain path
  // change *how* datagrams arrive (bursts, parallel shards), never *what*
  // arrives: the delivered event set must match the single-dispatcher
  // fabric and the simulator exactly.
  const DeliveryMap via_sim = run_over_sim();
  ASSERT_TRUE(complete(via_sim));

  runtime::InMemoryFabric single({.shards = 1});
  const DeliveryMap via_single =
      run_over_runtime(single, [&single] { return single.now(); });

  runtime::InMemoryFabric sharded({.shards = 8});
  const DeliveryMap via_sharded =
      run_over_runtime(sharded, [&sharded] { return sharded.now(); });

  // 28'470: clear of this file's other transports and runtime_test's
  // blocks. recv_batch 4 forces multi-syscall drains even on tiny bursts.
  runtime::UdpTransport transport(28'470, /*recv_batch=*/4);
  const DeliveryMap via_udp =
      run_over_runtime(transport, [&transport] { return transport.now(); });

  EXPECT_EQ(via_sim, via_single);
  EXPECT_EQ(via_sim, via_sharded);
  EXPECT_EQ(via_sim, via_udp);
}

TEST(FabricParityTest, SameDueTimeDatagramsKeepSendOrderPerReceiver) {
  // A receiver maps to exactly one shard and a shard's queue is FIFO among
  // equal due times, so datagrams that come due together must be handed
  // over in send order — seeded and repeated so a regression can't hide
  // behind scheduling luck.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    runtime::InMemoryFabric fabric(
        {.min_delay = 2, .max_delay = 2, .shards = 4}, seed);
    std::mutex mu;
    std::vector<std::uint32_t> seen;
    fabric.attach(2, [&](const Datagram& d, TimeMs) {
      std::uint32_t seq = 0;
      std::memcpy(&seq, d.payload.data(), 4);
      std::lock_guard lock(mu);
      seen.push_back(seq);
    });
    constexpr std::uint32_t kCount = 200;
    for (std::uint32_t i = 0; i < kCount; ++i) {
      std::vector<std::uint8_t> bytes(4);
      std::memcpy(bytes.data(), &i, 4);
      // Alternate single sends and same-receiver batches: both enqueue
      // paths must preserve order.
      if (i % 2 == 0) {
        fabric.send(Datagram{0, 2, SharedBytes(std::move(bytes))});
      } else {
        fabric.send_batch(
            Multicast{0, {2}, SharedBytes(std::move(bytes))});
      }
    }
    EXPECT_TRUE(eventually([&] {
      std::lock_guard lock(mu);
      return seen.size() == kCount;
    }));
    std::lock_guard lock(mu);
    ASSERT_EQ(seen.size(), kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(seen[i], i) << "out-of-order delivery with seed " << seed;
    }
  }
}

TEST(FabricParityTest, LocalityBiasedGroupMatchesOnAllThreeFabrics) {
  // The locality decorator biases *who* is gossiped to, never what is
  // delivered: with per-node fixed seeds the bridge elections and biased
  // picks are identical on every fabric, so the delivered event sets must
  // be too.
  const DeliveryMap via_sim = run_over_sim(/*locality=*/true);
  ASSERT_TRUE(complete(via_sim));

  runtime::InMemoryFabric fabric({});
  const DeliveryMap via_fabric = run_over_runtime(
      fabric, [&fabric] { return fabric.now(); }, /*locality=*/true);

  // 28'420: clear of runtime_test's 28'500-28'900 blocks and this file's
  // other transports — the binaries run concurrently under ctest -j.
  runtime::UdpTransport transport(28'420);
  const DeliveryMap via_udp = run_over_runtime(
      transport, [&transport] { return transport.now(); },
      /*locality=*/true);

  EXPECT_EQ(via_sim, via_fabric);
  EXPECT_EQ(via_sim, via_udp);
}

TEST(FabricParityTest, BatchPayloadIdentityOnAllThreeFabrics) {
  const SharedBytes payload({0xde, 0xad, 0xbe, 0xef});
  const std::vector<NodeId> targets{1, 2, 3};

  // SimNetwork and InMemoryFabric deliver the very buffer that was sent:
  // every target's Datagram aliases it.
  {
    sim::Simulator sim;
    sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(1));
    std::vector<const std::uint8_t*> seen;
    for (NodeId t : targets) {
      net.attach(t, [&seen](const Datagram& d, TimeMs) {
        seen.push_back(d.payload.data());
      });
    }
    net.send_batch(Multicast{0, targets, payload});
    sim.run();
    ASSERT_EQ(seen.size(), targets.size());
    for (const auto* data : seen) EXPECT_EQ(data, payload.data());
  }
  {
    runtime::InMemoryFabric fabric({});
    std::mutex mu;
    std::vector<const std::uint8_t*> seen;
    for (NodeId t : targets) {
      fabric.attach(t, [&mu, &seen](const Datagram& d, TimeMs) {
        std::lock_guard lock(mu);
        seen.push_back(d.payload.data());
      });
    }
    fabric.send_batch(Multicast{0, targets, payload});
    EXPECT_TRUE(eventually([&] {
      std::lock_guard lock(mu);
      return seen.size() == targets.size();
    }));
    std::lock_guard lock(mu);
    for (const auto* data : seen) EXPECT_EQ(data, payload.data());
  }
  // UdpTransport crosses a kernel boundary, so receivers get fresh buffers;
  // identity holds on the send side — the batch goes out through one shared
  // iovec with no user-space copy, leaving the caller's buffer untouched
  // and unshared.
  {
    runtime::UdpTransport transport(28'450);
    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> seen;
    transport.attach(0, [](const Datagram&, TimeMs) {});
    for (NodeId t : targets) {
      transport.attach(t, [&mu, &seen](const Datagram& d, TimeMs) {
        std::lock_guard lock(mu);
        seen.emplace_back(d.payload.begin(), d.payload.end());
      });
    }
    const std::uint8_t* data_before = payload.data();
    transport.send_batch(Multicast{0, targets, payload});
    EXPECT_EQ(payload.use_count(), 1);
    EXPECT_EQ(payload.data(), data_before);
    EXPECT_TRUE(eventually([&] {
      std::lock_guard lock(mu);
      return seen.size() == targets.size();
    }));
    std::lock_guard lock(mu);
    for (const auto& bytes : seen) {
      EXPECT_EQ(SharedBytes::copy_of(bytes), payload);
    }
    for (NodeId t = 0; t <= 3; ++t) transport.detach(t);
  }
}

}  // namespace
}  // namespace agb
