#include "metrics/delivery_tracker.h"

#include <gtest/gtest.h>

namespace agb::metrics {
namespace {

EventId id(std::uint64_t seq) { return EventId{0, seq}; }

TEST(DeliveryTrackerTest, FullDeliveryIsAtomic) {
  DeliveryTracker t(10);
  t.on_broadcast(id(1), 0, 100);
  for (NodeId n = 0; n < 10; ++n) t.on_delivery(id(1), n, 200);
  auto report = t.report(0, 1000);
  EXPECT_EQ(report.messages, 1u);
  EXPECT_DOUBLE_EQ(report.avg_receiver_pct, 100.0);
  EXPECT_DOUBLE_EQ(report.atomicity_pct, 100.0);
}

TEST(DeliveryTrackerTest, AtomicThresholdIsStrictlyAbove95Pct) {
  // With n = 100, ">95%" means at least 96 receivers.
  DeliveryTracker t(100);
  t.on_broadcast(id(1), 0, 0);
  for (NodeId n = 0; n < 95; ++n) t.on_delivery(id(1), n, 10);
  EXPECT_DOUBLE_EQ(t.report(0, 100).atomicity_pct, 0.0);
  t.on_delivery(id(1), 95, 10);  // 96th receiver crosses the threshold
  EXPECT_DOUBLE_EQ(t.report(0, 100).atomicity_pct, 100.0);
}

TEST(DeliveryTrackerTest, SmallGroupThreshold) {
  // n = 10: threshold is floor(9.5)+1 = 10 — everyone.
  DeliveryTracker t(10);
  t.on_broadcast(id(1), 0, 0);
  for (NodeId n = 0; n < 9; ++n) t.on_delivery(id(1), n, 10);
  EXPECT_DOUBLE_EQ(t.report(0, 100).atomicity_pct, 0.0);
  t.on_delivery(id(1), 9, 10);
  EXPECT_DOUBLE_EQ(t.report(0, 100).atomicity_pct, 100.0);
}

TEST(DeliveryTrackerTest, DuplicateDeliveriesIgnored) {
  DeliveryTracker t(10);
  t.on_broadcast(id(1), 0, 0);
  for (int rep = 0; rep < 5; ++rep) t.on_delivery(id(1), 3, 10);
  EXPECT_DOUBLE_EQ(t.receiver_fraction(id(1)), 0.1);
}

TEST(DeliveryTrackerTest, DeliveryForUnknownMessageIgnored) {
  DeliveryTracker t(10);
  t.on_delivery(id(9), 3, 10);  // never broadcast
  EXPECT_DOUBLE_EQ(t.receiver_fraction(id(9)), 0.0);
  EXPECT_EQ(t.report(0, 100).messages, 0u);
}

TEST(DeliveryTrackerTest, OutOfRangeNodeIgnored) {
  DeliveryTracker t(10);
  t.on_broadcast(id(1), 0, 0);
  t.on_delivery(id(1), 99, 10);
  EXPECT_DOUBLE_EQ(t.receiver_fraction(id(1)), 0.0);
}

TEST(DeliveryTrackerTest, WindowFiltersByCreationTime) {
  DeliveryTracker t(4);
  t.on_broadcast(id(1), 0, 50);    // before window
  t.on_broadcast(id(2), 0, 100);   // inside
  t.on_broadcast(id(3), 0, 199);   // inside
  t.on_broadcast(id(4), 0, 200);   // at the exclusive upper bound
  auto report = t.report(100, 200);
  EXPECT_EQ(report.messages, 2u);
}

TEST(DeliveryTrackerTest, RatesComputedOverWindow) {
  DeliveryTracker t(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.on_broadcast(id(i), 0, static_cast<TimeMs>(i * 100));
    t.on_delivery(id(i), 0, static_cast<TimeMs>(i * 100));
    t.on_delivery(id(i), 1, static_cast<TimeMs>(i * 100 + 50));
  }
  auto report = t.report(0, 1000);  // 1 s window, 10 messages
  EXPECT_DOUBLE_EQ(report.input_rate, 10.0);
  EXPECT_DOUBLE_EQ(report.output_rate, 10.0);  // all reached both nodes
}

TEST(DeliveryTrackerTest, PartialDeliveryLowersAverageNotInput) {
  DeliveryTracker t(4);
  t.on_broadcast(id(1), 0, 0);
  t.on_delivery(id(1), 0, 1);
  t.on_delivery(id(1), 1, 1);  // 50% of the group
  auto report = t.report(0, 1000);
  EXPECT_DOUBLE_EQ(report.avg_receiver_pct, 50.0);
  EXPECT_DOUBLE_EQ(report.atomicity_pct, 0.0);
  EXPECT_DOUBLE_EQ(report.input_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.output_rate, 0.0);
}

TEST(DeliveryTrackerTest, LatencyMeasuredToAtomicityThreshold) {
  DeliveryTracker t(2);
  t.on_broadcast(id(1), 0, 1000);
  t.on_delivery(id(1), 0, 1000);
  t.on_delivery(id(1), 1, 1400);  // threshold (2 of 2) crossed here
  auto report = t.report(0, 10'000);
  EXPECT_DOUBLE_EQ(report.latency_p50_ms, 400.0);
}

TEST(DeliveryTrackerTest, AtomicitySeriesBucketsByCreation) {
  DeliveryTracker t(2);
  // Bucket [0,100): message delivered everywhere. [100,200): not.
  t.on_broadcast(id(1), 0, 10);
  t.on_delivery(id(1), 0, 11);
  t.on_delivery(id(1), 1, 12);
  t.on_broadcast(id(2), 0, 110);
  t.on_delivery(id(2), 0, 111);
  auto series = t.atomicity_series(0, 200, 100);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].first, 0);
  EXPECT_DOUBLE_EQ(series[0].second, 100.0);
  EXPECT_EQ(series[1].first, 100);
  EXPECT_DOUBLE_EQ(series[1].second, 0.0);
}

TEST(DeliveryTrackerTest, EmptyBucketReportsFullAtomicity) {
  DeliveryTracker t(2);
  auto series = t.atomicity_series(0, 100, 50);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].second, 100.0);  // vacuous truth, documented
}

TEST(DeliveryTrackerTest, InputRateSeries) {
  DeliveryTracker t(2);
  for (std::uint64_t i = 0; i < 4; ++i) {
    t.on_broadcast(id(i), 0, static_cast<TimeMs>(i * 25));  // all in [0,100)
  }
  auto series = t.input_rate_series(0, 200, 100);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].second, 40.0);  // 4 msgs / 0.1 s
  EXPECT_DOUBLE_EQ(series[1].second, 0.0);
}

TEST(DeliveryTrackerTest, DuplicateBroadcastKeepsFirstRecord) {
  DeliveryTracker t(2);
  t.on_broadcast(id(1), 0, 10);
  t.on_broadcast(id(1), 0, 500);  // ignored
  EXPECT_EQ(t.report(0, 100).messages, 1u);
}

TEST(DeliveryTrackerTest, EmptyReportIsAllZero) {
  DeliveryTracker t(5);
  auto report = t.report(0, 1000);
  EXPECT_EQ(report.messages, 0u);
  EXPECT_DOUBLE_EQ(report.input_rate, 0.0);
  EXPECT_DOUBLE_EQ(report.avg_receiver_pct, 0.0);
  EXPECT_DOUBLE_EQ(report.atomicity_pct, 0.0);
}

}  // namespace
}  // namespace agb::metrics
