#include "gossip/lpbcast_node.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "membership/full_membership.h"
#include "membership/partial_view.h"

namespace agb::gossip {
namespace {

std::unique_ptr<membership::FullMembership> directory(NodeId self,
                                                      std::size_t n,
                                                      std::uint64_t seed) {
  auto m = std::make_unique<membership::FullMembership>(self, Rng(seed));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) m->add(id);
  }
  return m;
}

GossipParams small_params() {
  GossipParams p;
  p.fanout = 3;
  p.gossip_period = 1000;
  p.max_events = 5;
  p.max_event_ids = 100;
  p.max_age = 10;
  return p;
}

Payload payload() { return make_payload({1, 2, 3}); }

TEST(LpbcastNodeTest, BroadcastDeliversLocallyOnce) {
  LpbcastNode node(0, small_params(), directory(0, 10, 1), Rng(2));
  std::vector<EventId> delivered;
  node.set_deliver_handler(
      [&](const Event& e, TimeMs) { delivered.push_back(e.id); });
  const EventId id = node.broadcast(payload(), 0);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], id);
  EXPECT_EQ(node.counters().broadcasts, 1u);
  EXPECT_EQ(node.counters().deliveries, 1u);
}

TEST(LpbcastNodeTest, BroadcastAssignsSequentialIds) {
  LpbcastNode node(7, small_params(), directory(7, 10, 1), Rng(2));
  const EventId a = node.broadcast(payload(), 0);
  const EventId b = node.broadcast(payload(), 0);
  EXPECT_EQ(a.origin, 7u);
  EXPECT_EQ(b.origin, 7u);
  EXPECT_EQ(b.sequence, a.sequence + 1);
}

TEST(LpbcastNodeTest, OnRoundEmitsBufferToFanoutTargets) {
  LpbcastNode node(0, small_params(), directory(0, 10, 1), Rng(2));
  node.broadcast(payload(), 0);
  auto out = node.on_round(1000);
  EXPECT_EQ(out.targets.size(), 3u);
  EXPECT_EQ(out.message.sender, 0u);
  EXPECT_EQ(out.message.round, 1u);
  ASSERT_EQ(out.message.events.size(), 1u);
  EXPECT_EQ(out.message.events[0].age, 1u);  // one round of aging
  for (NodeId t : out.targets) EXPECT_NE(t, 0u);
}

TEST(LpbcastNodeTest, BaseHeaderAdvertisesOwnCapacity) {
  LpbcastNode node(0, small_params(), directory(0, 10, 1), Rng(2));
  auto out = node.on_round(1000);
  EXPECT_EQ(out.message.min_buff,
            static_cast<std::uint32_t>(small_params().max_events));
}

TEST(LpbcastNodeTest, RoundCounterIncrements) {
  LpbcastNode node(0, small_params(), directory(0, 10, 1), Rng(2));
  EXPECT_EQ(node.round(), 0u);
  (void)node.on_round(0);
  (void)node.on_round(1000);
  EXPECT_EQ(node.round(), 2u);
  EXPECT_EQ(node.counters().rounds, 2u);
}

TEST(LpbcastNodeTest, OnGossipDeliversNovelEvents) {
  LpbcastNode node(1, small_params(), directory(1, 10, 1), Rng(3));
  std::vector<EventId> delivered;
  node.set_deliver_handler(
      [&](const Event& e, TimeMs) { delivered.push_back(e.id); });
  GossipMessage m;
  m.sender = 0;
  Event e;
  e.id = EventId{0, 0};
  e.age = 2;
  m.events = {e};
  node.on_gossip(m, 10);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (EventId{0, 0}));
  EXPECT_EQ(node.counters().events_received, 1u);
  EXPECT_TRUE(node.events().contains(EventId{0, 0}));
}

TEST(LpbcastNodeTest, DuplicatesSuppressedAndAgeBumped) {
  LpbcastNode node(1, small_params(), directory(1, 10, 1), Rng(3));
  int deliveries = 0;
  node.set_deliver_handler([&](const Event&, TimeMs) { ++deliveries; });
  GossipMessage m;
  m.sender = 0;
  Event e;
  e.id = EventId{0, 0};
  e.age = 2;
  m.events = {e};
  node.on_gossip(m, 10);
  m.events[0].age = 6;
  node.on_gossip(m, 20);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(node.counters().duplicates, 1u);
  auto snapshot = node.events().snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].age, 6u);
}

TEST(LpbcastNodeTest, OverflowDropsOldestAndReportsReason) {
  LpbcastNode node(1, small_params(), directory(1, 10, 1), Rng(3));
  std::vector<std::pair<EventId, DropReason>> drops;
  node.set_drop_handler([&](const Event& e, DropReason r, TimeMs) {
    drops.emplace_back(e.id, r);
  });
  GossipMessage m;
  m.sender = 0;
  for (std::uint64_t i = 0; i < 7; ++i) {  // capacity is 5
    Event e;
    e.id = EventId{0, i};
    e.age = static_cast<std::uint32_t>(i);  // later events are older
    m.events.push_back(e);
  }
  node.on_gossip(m, 10);
  EXPECT_EQ(node.events().size(), 5u);
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops[0].second, DropReason::kBufferOverflow);
  EXPECT_EQ(drops[0].first, (EventId{0, 6}));  // oldest (age 6) evicted first
  EXPECT_EQ(drops[1].first, (EventId{0, 5}));
  EXPECT_EQ(node.counters().drops_overflow, 2u);
  EXPECT_GT(node.counters().overflow_drop_age.mean(), 0.0);
}

TEST(LpbcastNodeTest, AgeLimitPurgeOnRound) {
  GossipParams params = small_params();
  params.max_age = 2;
  LpbcastNode node(0, params, directory(0, 10, 1), Rng(3));
  std::vector<DropReason> reasons;
  node.set_drop_handler(
      [&](const Event&, DropReason r, TimeMs) { reasons.push_back(r); });
  node.broadcast(payload(), 0);
  (void)node.on_round(0);     // age 1
  (void)node.on_round(1000);  // age 2
  EXPECT_EQ(node.events().size(), 1u);
  (void)node.on_round(2000);  // age 3 > 2: purged
  EXPECT_EQ(node.events().size(), 0u);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], DropReason::kAgeLimit);
  EXPECT_EQ(node.counters().drops_age_limit, 1u);
}

TEST(LpbcastNodeTest, SetMaxEventsEvictsImmediately) {
  LpbcastNode node(0, small_params(), directory(0, 10, 1), Rng(3));
  for (int i = 0; i < 5; ++i) node.broadcast(payload(), 0);
  EXPECT_EQ(node.events().size(), 5u);
  node.set_max_events(2, 100);
  EXPECT_EQ(node.events().size(), 2u);
  EXPECT_EQ(node.params().max_events, 2u);
  EXPECT_EQ(node.counters().drops_overflow, 3u);
}

TEST(LpbcastNodeTest, EventIdDigestBoundsDuplicateMemory) {
  GossipParams params = small_params();
  params.max_event_ids = 3;
  params.max_events = 100;
  LpbcastNode node(1, params, directory(1, 10, 1), Rng(3));
  GossipMessage m;
  m.sender = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.id = EventId{0, i};
    m.events = {e};
    node.on_gossip(m, static_cast<TimeMs>(i));
  }
  EXPECT_LE(node.event_ids().size(), 3u);
}

TEST(LpbcastNodeTest, RebroadcastOfForgottenIdRedelivers) {
  // Documents the known lpbcast behaviour: once an id ages out of the
  // digest, a stray copy is treated as novel again. Experiments size the
  // digest to make this negligible.
  GossipParams params = small_params();
  params.max_event_ids = 1;
  LpbcastNode node(1, params, directory(1, 10, 1), Rng(3));
  int deliveries = 0;
  node.set_deliver_handler([&](const Event&, TimeMs) { ++deliveries; });
  GossipMessage m;
  m.sender = 0;
  Event a, b;
  a.id = EventId{0, 0};
  b.id = EventId{0, 1};
  m.events = {a};
  node.on_gossip(m, 0);
  m.events = {b};  // evicts a's id
  node.on_gossip(m, 1);
  m.events = {a};  // a is "novel" again
  node.on_gossip(m, 2);
  EXPECT_EQ(deliveries, 3);
}

TEST(LpbcastNodeTest, GossipsReceivedCounter) {
  LpbcastNode node(1, small_params(), directory(1, 10, 1), Rng(3));
  GossipMessage m;
  m.sender = 0;
  node.on_gossip(m, 0);
  node.on_gossip(m, 1);
  EXPECT_EQ(node.counters().gossips_received, 2u);
}

TEST(LpbcastNodeTest, PartialViewDigestsFlowThroughGossip) {
  membership::PartialViewParams view_params;
  view_params.max_view = 8;
  view_params.max_subs = 8;
  view_params.max_unsubs = 8;
  auto view = std::make_unique<membership::PartialView>(1, view_params,
                                                        Rng(4));
  view->add(2);
  LpbcastNode node(1, small_params(), std::move(view), Rng(5));

  // Outgoing gossip carries the node's subscription.
  auto out = node.on_round(0);
  EXPECT_NE(std::find(out.message.membership.subs.begin(),
                      out.message.membership.subs.end(), 1u),
            out.message.membership.subs.end());

  // Incoming digests extend the view (sender 0 and subscription 9).
  GossipMessage m;
  m.sender = 0;
  m.membership.subs = {9};
  node.on_gossip(m, 10);
  EXPECT_TRUE(node.membership().contains(0));
  EXPECT_TRUE(node.membership().contains(9));
}

TEST(LpbcastNodeTest, FanoutLargerThanMembershipSendsToAll) {
  GossipParams params = small_params();
  params.fanout = 50;
  LpbcastNode node(0, params, directory(0, 4, 1), Rng(3));
  auto out = node.on_round(0);
  std::set<NodeId> targets(out.targets.begin(), out.targets.end());
  EXPECT_EQ(targets, (std::set<NodeId>{1, 2, 3}));
}

}  // namespace
}  // namespace agb::gossip
