#include "metrics/timeseries.h"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/table.h"

namespace agb::metrics {
namespace {

TEST(TimeSeriesTest, MeanInWindow) {
  TimeSeries ts("x");
  ts.add(0, 10.0);
  ts.add(100, 20.0);
  ts.add(200, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(0, 201), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(50, 201), 25.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(500, 600), 0.0);
}

TEST(TimeSeriesTest, ValueAtReturnsLastAtOrBefore) {
  TimeSeries ts("x");
  ts.add(100, 1.0);
  ts.add(200, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(50, -1.0), -1.0);  // before first point
  EXPECT_DOUBLE_EQ(ts.value_at(100), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(150), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(999), 2.0);
}

TEST(TimeSeriesTest, NameAndSize) {
  TimeSeries ts("atomicity");
  EXPECT_EQ(ts.name(), "atomicity");
  EXPECT_TRUE(ts.empty());
  ts.add(1, 1.0);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TimeSeriesTest, CsvAlignsSeriesOnFirstSeriesTimestamps) {
  TimeSeries a("a");
  a.add(0, 1.0);
  a.add(10, 2.0);
  TimeSeries b("b");
  b.add(0, 5.0);
  std::ostringstream os;
  write_csv(os, {&a, &b});
  EXPECT_EQ(os.str(), "time_ms,a,b\n0,1,5\n10,2,5\n");
}

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_numeric_row({2.0, 3.14159}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, FmtFixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace agb::metrics
