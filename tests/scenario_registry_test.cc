// The scenario registry: preset lookup, default layering (preset defaults
// lose to user key=value overrides), spec parsing, and the topology presets
// actually shaping the simulated network.
#include "core/scenario_registry.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace agb::core {
namespace {

Config config_of(std::initializer_list<const char*> pairs) {
  Config cfg;
  std::string error;
  for (const char* pair : pairs) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  return cfg;
}

TEST(ScenarioRegistryTest, ShipsTheDocumentedPresets) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"paper60", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "churn",
        "burst-loss", "wan-clusters", "wan-directional",
        "wan-directional-churn", "semantic-streams", "chaos-soak",
        "asymmetric-partition", "gray-failure"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_GE(registry.presets().size(), 16u);
  EXPECT_EQ(registry.find("no-such-preset"), nullptr);
  EXPECT_THROW((void)registry.build("no-such-preset", Config{}),
               std::invalid_argument);
}

TEST(ScenarioRegistryTest, SuggestsCloseNamesForTypos) {
  auto& registry = ScenarioRegistry::instance();
  // A one-edit typo resolves to the intended preset, best match first.
  const auto close = registry.suggest("wan-direcional");
  ASSERT_FALSE(close.empty());
  EXPECT_EQ(close.front(), "wan-directional");
  // A truncated name matches by containment.
  const auto contained = registry.suggest("wan");
  ASSERT_GE(contained.size(), 3u);
  // Gibberish suggests nothing rather than everything.
  EXPECT_TRUE(registry.suggest("zzzzzzzzzzzz").empty());
  // The build() error carries the hint for tools to surface.
  try {
    (void)registry.build("wan-direcional", Config{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wan-directional"),
              std::string::npos);
  }
}

TEST(ScenarioRegistryTest, MalformedSpecValuesThrow) {
  auto cfg = config_of({"latency=bogus:1"});
  EXPECT_THROW((void)ScenarioRegistry::instance().build("paper60", cfg),
               std::invalid_argument);
  auto loss_cfg = config_of({"loss=burst:0.1"});
  EXPECT_THROW((void)ScenarioRegistry::instance().build("paper60", loss_cfg),
               std::invalid_argument);
}

TEST(ScenarioRegistryTest, Paper60CarriesTheCalibratedDefaults) {
  auto p = ScenarioRegistry::instance().build("paper60", Config{});
  EXPECT_EQ(p.n, 60u);
  EXPECT_EQ(p.senders, 4u);
  EXPECT_DOUBLE_EQ(p.offered_rate, 30.0);
  EXPECT_EQ(p.gossip.fanout, 4u);
  EXPECT_EQ(p.gossip.gossip_period, 2000);
  EXPECT_EQ(p.gossip.max_events, 120u);
  EXPECT_DOUBLE_EQ(p.adaptation.critical_age, kPaper60CriticalAge);
  EXPECT_EQ(p.adaptation.sample_period, 4000);  // 2 * period, derived
  EXPECT_DOUBLE_EQ(p.adaptation.initial_rate, 7.5);  // rate / senders
}

TEST(ScenarioRegistryTest, UserOverridesBeatPresetDefaults) {
  auto cfg = config_of({"n=100", "rate=44", "buffer=80", "period_ms=1000"});
  auto p = ScenarioRegistry::instance().build("fig2", cfg);
  EXPECT_EQ(p.n, 100u);
  EXPECT_DOUBLE_EQ(p.offered_rate, 44.0);
  EXPECT_EQ(p.gossip.max_events, 80u);    // beats fig2's 60 default
  EXPECT_EQ(p.adaptation.sample_period, 2000);  // follows the new period
  EXPECT_DOUBLE_EQ(p.adaptation.initial_rate, 11.0);
}

TEST(ScenarioRegistryTest, Fig2DefaultsToTheConstrainedBuffer) {
  auto p = ScenarioRegistry::instance().build("fig2", Config{});
  EXPECT_EQ(p.gossip.max_events, 60u);
}

TEST(ScenarioRegistryTest, Fig9BuildsTheTwoStepCapacitySchedule) {
  auto p = ScenarioRegistry::instance().build("fig9", Config{});
  ASSERT_EQ(p.capacity_schedule.size(), 2u);
  EXPECT_EQ(p.capacity_schedule[0].at, p.warmup + 150'000);
  EXPECT_EQ(p.capacity_schedule[0].new_capacity, 45u);
  EXPECT_EQ(p.capacity_schedule[1].at, p.warmup + 300'000);
  EXPECT_EQ(p.capacity_schedule[1].new_capacity, 60u);
  EXPECT_EQ(p.gossip.max_events, 90u);
  EXPECT_DOUBLE_EQ(p.offered_rate, 36.0);
  // initial_rate follows the preset's offered load, not paper60's.
  EXPECT_DOUBLE_EQ(p.adaptation.initial_rate, 9.0);
}

TEST(ScenarioRegistryTest, ChurnSchedulesDownUpPairs) {
  auto p = ScenarioRegistry::instance().build("churn", Config{});
  ASSERT_EQ(p.failure_schedule.size(), 16u);  // 8 nodes, down + up each
  std::set<NodeId> churned;
  for (std::size_t i = 0; i < p.failure_schedule.size(); i += 2) {
    const auto& down = p.failure_schedule[i];
    const auto& up = p.failure_schedule[i + 1];
    EXPECT_FALSE(down.up);
    EXPECT_TRUE(up.up);
    EXPECT_EQ(down.node, up.node);
    EXPECT_EQ(up.at - down.at, 15'000);
    churned.insert(down.node);
  }
  EXPECT_EQ(churned.size(), 8u);  // distinct nodes
}

TEST(ScenarioRegistryTest, BurstLossEnablesRepairAndBurstChain) {
  auto p = ScenarioRegistry::instance().build("burst-loss", Config{});
  EXPECT_EQ(p.network.loss.kind, sim::LossModel::Kind::kBurst);
  EXPECT_TRUE(p.gossip.recovery.enabled);
  // Overrides still win.
  auto cfg = config_of({"recovery=0", "loss=0.1"});
  auto q = ScenarioRegistry::instance().build("burst-loss", cfg);
  EXPECT_FALSE(q.gossip.recovery.enabled);
  EXPECT_EQ(q.network.loss.kind, sim::LossModel::Kind::kIid);
}

TEST(ScenarioRegistryTest, WanClustersSetsTopology) {
  auto p = ScenarioRegistry::instance().build("wan-clusters", Config{});
  EXPECT_EQ(p.network.clusters, 3u);
  EXPECT_EQ(p.network.wan_latency.kind, sim::LatencyModel::Kind::kUniform);
  EXPECT_FALSE(p.locality.enabled);  // uniform selection is the baseline
}

TEST(ScenarioRegistryTest, WanDirectionalEnablesLocalityOverSameTopology) {
  auto p = ScenarioRegistry::instance().build("wan-directional", Config{});
  EXPECT_EQ(p.network.clusters, 3u);
  EXPECT_TRUE(p.locality.enabled);
  EXPECT_DOUBLE_EQ(p.locality.p_local, 0.9);
  EXPECT_EQ(p.locality.bridges_per_cluster, 2u);
  EXPECT_EQ(p.gossip.max_age, 20u);  // funnelling needs the longer tail
  // The locality knobs are part of the shared key=value vocabulary (and
  // hence sweepable axes).
  auto cfg = config_of({"p_local=0.6", "bridges_per_cluster=2",
                        "locality=0"});
  auto q = ScenarioRegistry::instance().build("wan-directional", cfg);
  EXPECT_FALSE(q.locality.enabled);
  EXPECT_DOUBLE_EQ(q.locality.p_local, 0.6);
  EXPECT_EQ(q.locality.bridges_per_cluster, 2u);
}

TEST(ScenarioRegistryTest, WanDirectionalChurnCrashesTheBridges) {
  auto p =
      ScenarioRegistry::instance().build("wan-directional-churn", Config{});
  EXPECT_TRUE(p.locality.enabled);
  EXPECT_TRUE(p.failure_detector);
  ASSERT_EQ(p.failure_schedule.size(), 6u);  // 3 bridges, down + up each
  for (std::size_t i = 0; i < p.failure_schedule.size(); i += 2) {
    const auto& down = p.failure_schedule[i];
    const auto& up = p.failure_schedule[i + 1];
    EXPECT_FALSE(down.up);
    EXPECT_TRUE(up.up);
    EXPECT_EQ(down.node, up.node);
    // Under the modulo rule the initial bridges are exactly 0, 1, 2.
    EXPECT_EQ(down.node, static_cast<NodeId>(i / 2));
  }
}

TEST(ScenarioRegistryTest, ExplicitBaseValuesSurviveDerivedFallbacks) {
  // A base (preset or embedder) that sets a derived-default knob
  // explicitly must keep it when no cfg key overrides it.
  ScenarioParams base;
  base.adaptation.sample_period = 7000;
  base.adaptation.low_age_mark = 6.0;
  base.adaptation.high_age_mark = 9.0;
  base.adaptation.initial_rate = 3.25;
  auto p = params_from_config(Config{}, base);
  EXPECT_EQ(p.adaptation.sample_period, 7000);
  EXPECT_DOUBLE_EQ(p.adaptation.low_age_mark, 6.0);
  EXPECT_DOUBLE_EQ(p.adaptation.high_age_mark, 9.0);
  EXPECT_DOUBLE_EQ(p.adaptation.initial_rate, 3.25);
}

TEST(ScenarioRegistryTest, SemanticStreamsTurnsOnSupersedeWorkload) {
  auto p = ScenarioRegistry::instance().build("semantic-streams", Config{});
  EXPECT_GT(p.supersede_probability, 0.0);
  EXPECT_TRUE(p.gossip.semantic_purge);
}

TEST(ScenarioRegistryTest, AddReplacesByName) {
  ScenarioRegistry registry;
  const auto before = registry.presets().size();
  registry.add({"paper60", "replaced", [](const Config& cfg) {
                  return ScenarioRegistry::instance().build("paper60", cfg);
                }});
  EXPECT_EQ(registry.presets().size(), before);
  EXPECT_EQ(registry.find("paper60")->summary, "replaced");
  registry.add({"custom", "mine", [](const Config& cfg) {
                  return params_from_config(cfg, ScenarioParams{});
                }});
  EXPECT_EQ(registry.presets().size(), before + 1);
}

TEST(ScenarioRegistryTest, SubSecondBaseTimingSurvives) {
  ScenarioParams base;
  base.warmup = 1'500;
  base.series_bucket = 500;
  auto p = params_from_config(Config{}, base);
  EXPECT_EQ(p.warmup, 1'500);       // not truncated to whole seconds
  EXPECT_EQ(p.series_bucket, 500);  // and never zeroed
  auto cfg = config_of({"bucket_s=2"});
  auto q = params_from_config(cfg, base);
  EXPECT_EQ(q.series_bucket, 2'000);
}

TEST(SpecParserTest, LatencySpecs) {
  sim::LatencyModel m;
  EXPECT_TRUE(parse_latency_spec("fixed:3", &m));
  EXPECT_EQ(m.kind, sim::LatencyModel::Kind::kFixed);
  EXPECT_DOUBLE_EQ(m.a, 3.0);
  EXPECT_TRUE(parse_latency_spec("uniform:1:40", &m));
  EXPECT_EQ(m.kind, sim::LatencyModel::Kind::kUniform);
  EXPECT_TRUE(parse_latency_spec("normal:20:5", &m));
  EXPECT_EQ(m.kind, sim::LatencyModel::Kind::kNormal);
  EXPECT_FALSE(parse_latency_spec("fixed", &m));
  EXPECT_FALSE(parse_latency_spec("fixed:x", &m));
  EXPECT_FALSE(parse_latency_spec("triangular:1:2", &m));
}

TEST(SpecParserTest, LossSpecs) {
  sim::LossModel m;
  EXPECT_TRUE(parse_loss_spec("0.25", &m));
  EXPECT_EQ(m.kind, sim::LossModel::Kind::kIid);
  EXPECT_DOUBLE_EQ(m.p, 0.25);
  EXPECT_TRUE(parse_loss_spec("burst:0.02:0.9:0.05:0.2", &m));
  EXPECT_EQ(m.kind, sim::LossModel::Kind::kBurst);
  EXPECT_FALSE(parse_loss_spec("", &m));
  EXPECT_FALSE(parse_loss_spec("burst:0.1", &m));
  EXPECT_FALSE(parse_loss_spec("nope", &m));
}

TEST(SpecParserTest, ScheduleSpecs) {
  std::vector<CapacityChange> capacity;
  EXPECT_TRUE(parse_capacity_spec("150000:0.2:45,300000:0.2:60", &capacity));
  ASSERT_EQ(capacity.size(), 2u);
  EXPECT_EQ(capacity[1].at, 300000);
  EXPECT_EQ(capacity[1].new_capacity, 60u);
  EXPECT_FALSE(parse_capacity_spec("150000:0.2", &capacity));

  std::vector<FailureEvent> failures;
  EXPECT_TRUE(parse_failure_spec("60000:3:down,120000:3:up", &failures));
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_FALSE(failures[0].up);
  EXPECT_TRUE(failures[1].up);
  EXPECT_FALSE(parse_failure_spec("60000:3:sideways", &failures));
}

TEST(SpecParserTest, ChaosSpecs) {
  fault::ChaosSchedule s;
  ASSERT_TRUE(parse_chaos_spec("corrupt:0.05@5s-15s", &s));
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_EQ(s.rules[0].kind, fault::FaultKind::kCorrupt);
  EXPECT_DOUBLE_EQ(s.rules[0].rate, 0.05);
  EXPECT_EQ(s.rules[0].start, 5'000);
  EXPECT_EQ(s.rules[0].end, 15'000);

  // The trailing 's' is optional, windows are optional (open-ended), and
  // rules combine with commas.
  ASSERT_TRUE(parse_chaos_spec(
      "truncate:0.1@2-4,dup:0.2,reorder:0.3:40,oneway:3:*,oneway:1:2,"
      "stall:4:25@1s-3s,skew:5:100",
      &s));
  ASSERT_EQ(s.rules.size(), 7u);
  EXPECT_EQ(s.rules[0].end, 4'000);
  EXPECT_EQ(s.rules[1].end, fault::kNoEnd);
  EXPECT_EQ(s.rules[2].amount, 40);
  EXPECT_EQ(s.rules[3].a, 3u);
  EXPECT_EQ(s.rules[3].b, fault::kAnyNode);
  EXPECT_EQ(s.rules[4].b, 2u);
  EXPECT_EQ(s.rules[5].amount, 25);
  EXPECT_EQ(s.rules[5].start, 1'000);
  EXPECT_EQ(s.rules[6].kind, fault::FaultKind::kSkew);
  EXPECT_TRUE(s.corrupts());
  EXPECT_TRUE(s.asymmetric());
  EXPECT_TRUE(s.gray());

  for (const char* bad :
       {"", "corupt:0.1", "corrupt", "corrupt:2.0", "corrupt:-0.1",
        "corrupt:x", "oneway:3", "stall:3", "stall:3:-5",
        "corrupt:0.1@5s-2s", "corrupt:0.1@5s", "dup:0.1,oops"}) {
    EXPECT_FALSE(parse_chaos_spec(bad, &s)) << bad;
  }
}

TEST(SpecParserTest, BadChaosSpecMessageSuggestsTheNearestKind) {
  // The agb_sim exit-2 contract: a typo'd kind earns a correction naming
  // the bad spec, the nearest kind and the grammar.
  const std::string msg = bad_chaos_spec_message("corupt:0.1");
  EXPECT_NE(msg.find("corupt:0.1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("did you mean: corrupt?"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oneway:a:b|*"), std::string::npos) << msg;
  // A kind nothing is close to gets the grammar but no bogus suggestion.
  EXPECT_EQ(bad_chaos_spec_message("zzzzzzzz:1").find("did you mean"),
            std::string::npos);
}

TEST(SpecParserTest, ChaosKeyBuildsTheSchedule) {
  auto cfg = config_of({"quick=1", "chaos=corrupt:0.1@1s-2s,oneway:3:*"});
  auto p = ScenarioRegistry::instance().build("paper60", cfg);
  ASSERT_EQ(p.chaos.rules.size(), 2u);
  EXPECT_TRUE(p.chaos.corrupts());
  EXPECT_TRUE(p.chaos.asymmetric());

  // A malformed value throws exactly the bad_chaos_spec_message text.
  auto bad = config_of({"quick=1", "chaos=corupt:0.1"});
  try {
    (void)ScenarioRegistry::instance().build("paper60", bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(e.what(), bad_chaos_spec_message("corupt:0.1"));
  }
}

TEST(SpecParserTest, SweepSpecs) {
  SweepSpec sweep;
  ASSERT_TRUE(parse_sweep_spec("rate:10:60:10", &sweep));
  EXPECT_EQ(sweep.axis, "rate");
  EXPECT_EQ(sweep.values(), (std::vector<double>{10, 20, 30, 40, 50, 60}));

  // The hi bound is inclusive even when float steps accumulate error.
  ASSERT_TRUE(parse_sweep_spec("loss:0:0.3:0.1", &sweep));
  ASSERT_EQ(sweep.values().size(), 4u);
  EXPECT_NEAR(sweep.values().back(), 0.3, 1e-9);

  // A single-point sweep is legal (lo == hi).
  ASSERT_TRUE(parse_sweep_spec("buffer:120:120:30", &sweep));
  EXPECT_EQ(sweep.values(), std::vector<double>{120});

  for (const char* bad :
       {"", "rate", "rate:10", "rate:10:60", "rate:10:60:0",
        "rate:10:60:-5", "rate:60:10:10", ":10:60:10", "rate:a:60:10"}) {
    EXPECT_FALSE(parse_sweep_spec(bad, &sweep)) << bad;
  }
}

TEST(SweepTest, AxisValueRebuildsThePreset) {
  // The sweep loop's contract: setting the axis key on a fresh cfg copy
  // rebuilds the preset with only that value changed.
  auto cfg = config_of({"quick=1"});
  for (double buffer : SweepSpec{"buffer", 30, 90, 30}.values()) {
    Config run_cfg = cfg;
    run_cfg.set("buffer", std::to_string(static_cast<int>(buffer)));
    auto p = ScenarioRegistry::instance().build("fig4", run_cfg);
    EXPECT_EQ(p.gossip.max_events, static_cast<std::size_t>(buffer));
    EXPECT_EQ(p.n, 60u);  // everything else stays the preset default
  }
}

TEST(ScenarioTopologyTest, WanClustersRunsAndDeliversAcrossIslands) {
  // A small end-to-end run through the preset machinery: the WAN topology
  // must still disseminate to (nearly) everyone, it is just slower.
  auto cfg = config_of({"n=18", "senders=2", "rate=4", "quick=1",
                        "warmup_s=5", "duration_s=25", "cooldown_s=15",
                        "period_ms=1000", "buffer=200", "max_age=24"});
  auto p = ScenarioRegistry::instance().build("wan-clusters", cfg);
  ASSERT_EQ(p.network.clusters, 3u);
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_GT(r.delivery.messages, 20u);
  EXPECT_GT(r.delivery.avg_receiver_pct, 95.0);
}

}  // namespace
}  // namespace agb::core
