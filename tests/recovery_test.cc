// Tests for the pull-based loss-recovery extension (lpbcast's retrieval
// phase): codec round-trips for the repair message types, the node-level
// detect -> request -> reply -> deliver flow, and the end-to-end effect on
// reliability under a lossy network.
#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "gossip/lpbcast_node.h"
#include "membership/full_membership.h"

namespace agb::gossip {
namespace {

std::unique_ptr<membership::FullMembership> directory(NodeId self,
                                                      std::size_t n) {
  auto m = std::make_unique<membership::FullMembership>(self, Rng(self + 1));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) m->add(id);
  }
  return m;
}

GossipParams recovery_params() {
  GossipParams p;
  p.fanout = 2;
  p.gossip_period = 1000;
  p.max_events = 50;
  p.max_event_ids = 500;
  p.max_age = 20;
  p.recovery.enabled = true;
  p.recovery.seen_ids_per_gossip = 16;
  p.recovery.repair_after_rounds = 1;
  p.recovery.give_up_after_rounds = 6;
  return p;
}

TEST(RepairCodecTest, RequestRoundTrip) {
  RepairRequest request;
  request.sender = 7;
  request.ids = {EventId{1, 2}, EventId{3, 4}};
  auto decoded = RepairRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, 7u);
  EXPECT_EQ(decoded->ids, request.ids);
}

TEST(RepairCodecTest, ReplyRoundTrip) {
  RepairReply reply;
  reply.sender = 9;
  Event e;
  e.id = EventId{1, 5};
  e.age = 3;
  e.payload = make_payload({0xaa});
  reply.events = {e};
  auto decoded = RepairReply::decode(reply.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, 9u);
  ASSERT_EQ(decoded->events.size(), 1u);
  EXPECT_EQ(decoded->events[0].id, (EventId{1, 5}));
}

TEST(RepairCodecTest, DecodeAnyDispatchesByType) {
  RepairRequest request;
  request.sender = 1;
  EXPECT_TRUE(std::holds_alternative<RepairRequest>(
      decode_any(request.encode())));
  RepairReply reply;
  reply.sender = 1;
  EXPECT_TRUE(std::holds_alternative<RepairReply>(decode_any(reply.encode())));
  GossipMessage gossip;
  gossip.sender = 1;
  EXPECT_TRUE(
      std::holds_alternative<GossipMessage>(decode_any(gossip.encode())));
  EXPECT_TRUE(std::holds_alternative<std::monostate>(
      decode_any(std::vector<std::uint8_t>{1, 2, 3})));
}

TEST(RepairCodecTest, CrossTypeDecodeRejected) {
  RepairRequest request;
  request.sender = 1;
  EXPECT_FALSE(GossipMessage::decode(request.encode()).has_value());
  GossipMessage gossip;
  gossip.sender = 1;
  EXPECT_FALSE(RepairRequest::decode(gossip.encode()).has_value());
}

TEST(RecoveryCodecTest, GossipCarriesSeenIdsAndMinSet) {
  GossipMessage m;
  m.sender = 2;
  m.seen_ids = {EventId{0, 1}, EventId{0, 2}};
  m.min_set = {{4, 30}, {5, 90}};
  auto decoded = GossipMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seen_ids, m.seen_ids);
  EXPECT_EQ(decoded->min_set, m.min_set);
}

TEST(RecoveryNodeTest, DigestAdvertisesRecentIds) {
  LpbcastNode node(0, recovery_params(), directory(0, 4), Rng(2));
  node.broadcast(make_payload({1}), 0);
  auto out = node.on_round(0);
  ASSERT_FALSE(out.message.seen_ids.empty());
  EXPECT_EQ(out.message.seen_ids[0], (EventId{0, 0}));
}

TEST(RecoveryNodeTest, DisabledRecoverySendsNoDigest) {
  GossipParams params = recovery_params();
  params.recovery.enabled = false;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));
  node.broadcast(make_payload({1}), 0);
  auto out = node.on_round(0);
  EXPECT_TRUE(out.message.seen_ids.empty());
}

TEST(RecoveryNodeTest, MissingIdTriggersRequestAfterPatience) {
  LpbcastNode node(1, recovery_params(), directory(1, 4), Rng(3));
  GossipMessage digest_only;
  digest_only.sender = 0;
  digest_only.seen_ids = {EventId{0, 7}};  // id without the event
  node.on_gossip(digest_only, 0);
  EXPECT_EQ(node.counters().missing_detected, 1u);

  (void)node.on_round(0);  // waited 0 rounds: not yet
  EXPECT_TRUE(node.take_outbox().empty());
  (void)node.on_round(1000);  // waited 1 round >= repair_after_rounds
  auto outbox = node.take_outbox();
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox[0].target, 0u);
  auto request = RepairRequest::decode(outbox[0].payload);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->ids, (std::vector<EventId>{EventId{0, 7}}));
  EXPECT_EQ(node.counters().repair_requests, 1u);
}

TEST(RecoveryNodeTest, EventArrivingNormallyCancelsRequest) {
  LpbcastNode node(1, recovery_params(), directory(1, 4), Rng(3));
  GossipMessage digest_only;
  digest_only.sender = 0;
  digest_only.seen_ids = {EventId{0, 7}};
  node.on_gossip(digest_only, 0);
  GossipMessage with_event;
  with_event.sender = 2;
  Event e;
  e.id = EventId{0, 7};
  with_event.events = {e};
  node.on_gossip(with_event, 500);
  (void)node.on_round(1000);
  (void)node.on_round(2000);
  EXPECT_TRUE(node.take_outbox().empty());
}

TEST(RecoveryNodeTest, RequestAnsweredFromBuffer) {
  LpbcastNode node(0, recovery_params(), directory(0, 4), Rng(2));
  node.broadcast(make_payload({0x55}), 0);
  RepairRequest request;
  request.sender = 3;
  request.ids = {EventId{0, 0}, EventId{9, 9}};  // second unknown
  node.on_repair_request(request, 10);
  auto outbox = node.take_outbox();
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_EQ(outbox[0].target, 3u);
  auto reply = RepairReply::decode(outbox[0].payload);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->events.size(), 1u);
  EXPECT_EQ(reply->events[0].id, (EventId{0, 0}));
  EXPECT_EQ(node.counters().repair_replies, 1u);
}

TEST(RecoveryNodeTest, UnservableRequestSendsNothing) {
  LpbcastNode node(0, recovery_params(), directory(0, 4), Rng(2));
  RepairRequest request;
  request.sender = 3;
  request.ids = {EventId{9, 9}};
  node.on_repair_request(request, 10);
  EXPECT_TRUE(node.take_outbox().empty());
}

TEST(RecoveryNodeTest, ReplyDeliversAndCounts) {
  LpbcastNode node(1, recovery_params(), directory(1, 4), Rng(3));
  int deliveries = 0;
  node.set_deliver_handler([&](const Event&, TimeMs) { ++deliveries; });
  RepairReply reply;
  reply.sender = 0;
  Event e;
  e.id = EventId{0, 3};
  e.age = 5;
  reply.events = {e};
  node.on_repair_reply(reply, 10);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(node.counters().events_recovered, 1u);
  // A duplicate reply does not re-deliver.
  node.on_repair_reply(reply, 20);
  EXPECT_EQ(deliveries, 1);
}

TEST(RecoveryNodeTest, GivesUpEventually) {
  LpbcastNode node(1, recovery_params(), directory(1, 4), Rng(3));
  GossipMessage digest_only;
  digest_only.sender = 0;
  digest_only.seen_ids = {EventId{0, 7}};
  node.on_gossip(digest_only, 0);
  for (int round = 0; round < 10; ++round) {
    (void)node.on_round(round * 1000);
    (void)node.take_outbox();
  }
  EXPECT_EQ(node.counters().missing_abandoned, 1u);
}

TEST(RecoveryNodeTest, EndToEndTwoNodeRepair) {
  // Node 0 holds an event; node 1 only hears its id, asks, and recovers it.
  auto params = recovery_params();
  LpbcastNode holder(0, params, directory(0, 2), Rng(2));
  LpbcastNode gapped(1, params, directory(1, 2), Rng(3));
  int recovered = 0;
  gapped.set_deliver_handler([&](const Event&, TimeMs) { ++recovered; });

  holder.broadcast(make_payload({0x77}), 0);
  GossipMessage digest_only;
  digest_only.sender = 0;
  digest_only.seen_ids = {EventId{0, 0}};
  gapped.on_gossip(digest_only, 100);  // the event itself was "lost"

  (void)gapped.on_round(1000);  // patience: one full round must pass
  (void)gapped.on_round(2000);
  auto requests = gapped.take_outbox();
  ASSERT_EQ(requests.size(), 1u);
  auto request = RepairRequest::decode(requests[0].payload);
  ASSERT_TRUE(request.has_value());

  holder.on_repair_request(*request, 1100);
  auto replies = holder.take_outbox();
  ASSERT_EQ(replies.size(), 1u);
  auto reply = RepairReply::decode(replies[0].payload);
  ASSERT_TRUE(reply.has_value());

  gapped.on_repair_reply(*reply, 1200);
  EXPECT_EQ(recovered, 1);
}

}  // namespace
}  // namespace agb::gossip

namespace agb::core {
namespace {

ScenarioParams lossy_params(bool recovery) {
  ScenarioParams p;
  p.n = 24;
  p.senders = 2;
  p.offered_rate = 8.0;
  p.gossip.fanout = 2;  // low redundancy: loss actually bites
  p.gossip.gossip_period = 1000;
  p.gossip.max_events = 300;
  p.gossip.max_event_ids = 4000;
  p.gossip.max_age = 8;
  p.gossip.recovery.enabled = recovery;
  p.gossip.recovery.repair_after_rounds = 2;
  p.network.loss = sim::LossModel::iid(0.35);
  p.warmup = 8'000;
  p.duration = 60'000;
  p.cooldown = 20'000;
  p.seed = 77;
  return p;
}

TEST(RecoveryScenarioTest, RepairImprovesReliabilityUnderHeavyLoss) {
  Scenario without(lossy_params(false));
  Scenario with(lossy_params(true));
  auto r_without = without.run();
  auto r_with = with.run();

  EXPECT_GT(r_with.events_recovered, 0u);
  EXPECT_GT(r_with.repair_requests, 0u);
  EXPECT_GT(r_with.delivery.avg_receiver_pct,
            r_without.delivery.avg_receiver_pct);
  EXPECT_GE(r_with.delivery.atomicity_pct,
            r_without.delivery.atomicity_pct);
}

TEST(RecoveryScenarioTest, NoRepairTrafficOnCleanNetwork) {
  auto p = lossy_params(true);
  p.network.loss = sim::LossModel::none();
  p.gossip.fanout = 4;
  // Ample age budget: gossip alone reaches everyone, so digests should
  // never advertise anything the receivers are still missing.
  p.gossip.max_age = 20;
  Scenario scenario(p);
  auto r = scenario.run();
  // Nothing is lost, so nothing needs repair (an occasional request can
  // fire when a digest outruns a slow gossip path; it must stay marginal).
  EXPECT_LT(static_cast<double>(r.repair_requests),
            0.05 * static_cast<double>(r.delivery.messages) + 5.0);
  EXPECT_GT(r.delivery.atomicity_pct, 99.0);
}

TEST(RecoveryScenarioTest, RecoveryComposesWithAdaptation) {
  auto p = lossy_params(true);
  p.adaptive = true;
  p.adaptation.initial_rate = 4.0;
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_GT(r.delivery.avg_receiver_pct, 90.0);
  EXPECT_EQ(r.decode_failures, 0u);
}

// Property sweep: across loss rates and seeds, enabling repair must never
// *reduce* average reliability (beyond statistical noise), and repair
// traffic must stay bounded relative to the payload traffic.
using RecoverySweepParam = std::tuple<int /*loss_pct*/, int /*seed*/>;

class RecoverySweep : public ::testing::TestWithParam<RecoverySweepParam> {};

TEST_P(RecoverySweep, RepairNeverHurts) {
  const auto [loss_pct, seed] = GetParam();
  auto p = lossy_params(false);
  p.seed = static_cast<std::uint64_t>(seed);
  p.network.loss = sim::LossModel::iid(loss_pct / 100.0);
  Scenario plain_scenario(p);
  auto plain = plain_scenario.run();

  p.gossip.recovery.enabled = true;
  Scenario repair_scenario(p);
  auto repaired = repair_scenario.run();

  EXPECT_GE(repaired.delivery.avg_receiver_pct,
            plain.delivery.avg_receiver_pct - 1.5);
  // Repair messages are directed and bounded: far fewer than gossips.
  EXPECT_LT(repaired.repair_requests + repaired.repair_replies,
            repaired.net.sent / 2);
  EXPECT_EQ(repaired.decode_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossAndSeed, RecoverySweep,
    ::testing::Combine(::testing::Values(5, 20, 40),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<RecoverySweepParam>& info) {
      return "loss" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace agb::core
