#include "runtime/endpoint_directory.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace agb::runtime {
namespace {

constexpr std::uint32_t kLoopback = 0x7f000001;

TEST(ParseEndpointSpecTest, AcceptsDottedQuadAndPort) {
  UdpEndpoint out;
  ASSERT_TRUE(parse_endpoint_spec("10.1.2.3:9000", &out));
  EXPECT_EQ(out.ipv4, 0x0a010203u);
  EXPECT_EQ(out.port, 9000);
  ASSERT_TRUE(parse_endpoint_spec("127.0.0.1:65535", &out));
  EXPECT_EQ(out.ipv4, kLoopback);
  EXPECT_EQ(out.port, 65535);
}

TEST(ParseEndpointSpecTest, RejectsMalformedSpecs) {
  UdpEndpoint out{1, 2};
  for (const char* bad :
       {"", ":", "10.1.2.3", "10.1.2.3:", ":9000", "10.1.2.3:0",
        "10.1.2.3:70000", "10.1.2.3:90a", "not-a-host:9000",
        "10.1.2.3.4:9000"}) {
    EXPECT_FALSE(parse_endpoint_spec(bad, &out)) << bad;
  }
  // Failed parses never touch the output.
  EXPECT_EQ(out, (UdpEndpoint{1, 2}));
}

TEST(LoopbackDirectoryTest, MapsNodeToBasePlusId) {
  LoopbackDirectory directory(30'000);
  UdpEndpoint out;
  ASSERT_TRUE(directory.resolve(0, &out));
  EXPECT_EQ(out, (UdpEndpoint{kLoopback, 30'000}));
  ASSERT_TRUE(directory.resolve(41, &out));
  EXPECT_EQ(out, (UdpEndpoint{kLoopback, 30'041}));
}

TEST(LoopbackDirectoryTest, RefusesPortSpaceOverflow) {
  LoopbackDirectory directory(65'530);
  UdpEndpoint out;
  EXPECT_TRUE(directory.resolve(5, &out));
  EXPECT_FALSE(directory.resolve(6, &out));
}

TEST(StaticDirectoryTest, ResolvesOnlyKnownNodes) {
  StaticDirectory directory;
  directory.add(7, UdpEndpoint{0x0a000001, 4000});
  ASSERT_TRUE(directory.add_spec(9, "10.0.0.2:4001"));
  EXPECT_EQ(directory.size(), 2u);

  UdpEndpoint out;
  ASSERT_TRUE(directory.resolve(7, &out));
  EXPECT_EQ(out, (UdpEndpoint{0x0a000001, 4000}));
  ASSERT_TRUE(directory.resolve(9, &out));
  EXPECT_EQ(out, (UdpEndpoint{0x0a000002, 4001}));
  EXPECT_FALSE(directory.resolve(8, &out));
  EXPECT_FALSE(directory.add_spec(10, "bogus"));
}

class TempFile {
 public:
  explicit TempFile(const std::string& contents)
      : path_(testing::TempDir() + "agb_endpoints_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".conf") {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(StaticDirectoryTest, LoadsConfigFile) {
  TempFile file(
      "# node  endpoint\n"
      "0 10.0.0.1:4000\n"
      "\n"
      "1 10.0.0.2:4000   # trailing comment\n"
      "60 192.168.1.9:30060\n");
  auto directory = StaticDirectory::from_file(file.path());
  ASSERT_TRUE(directory.has_value());
  EXPECT_EQ(directory->size(), 3u);
  UdpEndpoint out;
  ASSERT_TRUE(directory->resolve(60, &out));
  EXPECT_EQ(out, (UdpEndpoint{0xc0a80109, 30'060}));
}

TEST(StaticDirectoryTest, RejectsMalformedConfigFile) {
  TempFile file("0 10.0.0.1:4000\n1 not-an-endpoint\n");
  EXPECT_FALSE(StaticDirectory::from_file(file.path()).has_value());
  EXPECT_FALSE(StaticDirectory::from_file("/nonexistent/path").has_value());
}

TEST(StaticDirectoryTest, RejectsTrailingGarbageLines) {
  TempFile file("0 10.0.0.1:4000 extra\n");
  EXPECT_FALSE(StaticDirectory::from_file(file.path()).has_value());
}

TEST(StaticDirectoryTest, RejectsNonNumericAndNegativeNodeIds) {
  // A typo'd id must fail the whole load, not silently skip the entry
  // (a half-loaded directory would misroute gossip at runtime).
  TempFile bad_id("nodeA 10.0.0.1:4000\n");
  EXPECT_FALSE(StaticDirectory::from_file(bad_id.path()).has_value());
  TempFile negative("-1 10.0.0.1:4000\n");  // must not wrap to 0xffffffff
  EXPECT_FALSE(StaticDirectory::from_file(negative.path()).has_value());
  TempFile missing_endpoint("3\n");
  EXPECT_FALSE(
      StaticDirectory::from_file(missing_endpoint.path()).has_value());
}

TEST(StaticDirectoryTest, RejectsDuplicateNodeIdsWithAClearMessage) {
  // Two lines claiming the same node id is a config bug, not a
  // last-one-wins override: whichever line the operator meant, the other
  // is wrong, so the whole load fails and the message names the culprit.
  TempFile file(
      "0 10.0.0.1:4000\n"
      "1 10.0.0.2:4000\n"
      "1 10.0.0.3:4000\n");
  std::string error;
  EXPECT_FALSE(StaticDirectory::from_file(file.path(), &error).has_value());
  EXPECT_NE(error.find("duplicate node id 1"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(StaticDirectoryTest, ErrorOutParamNamesTheFailure) {
  std::string error;
  EXPECT_FALSE(StaticDirectory::from_file("/nonexistent/path", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  TempFile bad("0 10.0.0.1:4000\n1 not-an-endpoint\n");
  error.clear();
  EXPECT_FALSE(StaticDirectory::from_file(bad.path(), &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ClusterMapFromDirectoryTest, GroupsNodesByHostInAscendingHostOrder) {
  StaticDirectory directory;
  // Two hosts, interleaved node ids; ports don't matter for grouping.
  ASSERT_TRUE(directory.add_spec(0, "10.0.0.2:4000"));
  ASSERT_TRUE(directory.add_spec(1, "10.0.0.1:4000"));
  ASSERT_TRUE(directory.add_spec(2, "10.0.0.2:4001"));
  ASSERT_TRUE(directory.add_spec(3, "10.0.0.1:4001"));

  const auto map = cluster_map_from_directory(directory, {0, 1, 2, 3, 9});
  // Cluster ids follow ascending host order: 10.0.0.1 is cluster 0.
  EXPECT_EQ(map.cluster_of(1), 0u);
  EXPECT_EQ(map.cluster_of(3), 0u);
  EXPECT_EQ(map.cluster_of(0), 1u);
  EXPECT_EQ(map.cluster_of(2), 1u);
  // Node 9 has no endpoint: unmapped, not guessed.
  EXPECT_EQ(map.cluster_of(9), membership::kUnknownCluster);
  EXPECT_EQ(map.size(), 4u);
}

TEST(ClusterMapFromDirectoryTest, LoopbackCollapsesToOneCluster) {
  // The single-host layout is one island — locality bias degrades to
  // plain uniform selection there, which is exactly right.
  LoopbackDirectory directory(9000);
  const auto map = cluster_map_from_directory(directory, {0, 1, 2});
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.cluster_of(1), 0u);
  EXPECT_EQ(map.cluster_of(2), 0u);
}

}  // namespace
}  // namespace agb::runtime
