// Tests for the semantic-obsolescence extension (Pereira et al., paper §5):
// superseded events are purged first under buffer pressure, preserving
// delivery of the messages that still carry meaning.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/event_buffer.h"
#include "gossip/lpbcast_node.h"
#include "gossip/message.h"
#include "membership/full_membership.h"

namespace agb::gossip {
namespace {

Event stream_event(NodeId origin, std::uint64_t seq, std::uint32_t stream,
                   bool supersedes, std::uint32_t age = 0) {
  Event e;
  e.id = EventId{origin, seq};
  e.stream = stream;
  e.supersedes = supersedes;
  e.age = age;
  return e;
}

TEST(PurgeSupersededTest, RemovesEarlierEventsOfSameStream) {
  EventBuffer buf;
  buf.insert(stream_event(1, 0, 7, false));
  buf.insert(stream_event(1, 1, 7, false));
  buf.insert(stream_event(1, 2, 7, true));  // supersedes 0 and 1
  auto removed = buf.purge_superseded();
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_TRUE(buf.contains(EventId{1, 2}));
  EXPECT_FALSE(buf.contains(EventId{1, 0}));
  EXPECT_FALSE(buf.contains(EventId{1, 1}));
}

TEST(PurgeSupersededTest, DifferentStreamsAreIndependent) {
  EventBuffer buf;
  buf.insert(stream_event(1, 0, 7, false));
  buf.insert(stream_event(1, 1, 8, true));  // other stream: no effect on 7
  EXPECT_TRUE(buf.purge_superseded().empty());
  EXPECT_EQ(buf.size(), 2u);
}

TEST(PurgeSupersededTest, DifferentOriginsAreIndependent) {
  EventBuffer buf;
  buf.insert(stream_event(1, 0, 7, false));
  buf.insert(stream_event(2, 5, 7, true));  // other origin, same stream id
  EXPECT_TRUE(buf.purge_superseded().empty());
}

TEST(PurgeSupersededTest, NonSupersedingEventsNeverPurge) {
  EventBuffer buf;
  buf.insert(stream_event(1, 0, 7, false));
  buf.insert(stream_event(1, 1, 7, false));
  EXPECT_TRUE(buf.purge_superseded().empty());
}

TEST(PurgeSupersededTest, SupersederItselfSurvives) {
  EventBuffer buf;
  buf.insert(stream_event(1, 0, 7, true));
  buf.insert(stream_event(1, 1, 7, true));
  auto removed = buf.purge_superseded();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].id, (EventId{1, 0}));
  EXPECT_TRUE(buf.contains(EventId{1, 1}));
}

TEST(SemanticCodecTest, StreamAndFlagRoundTrip) {
  GossipMessage m;
  m.sender = 1;
  m.events = {stream_event(1, 9, 42, true, 3)};
  auto decoded = GossipMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->events[0].stream, 42u);
  EXPECT_TRUE(decoded->events[0].supersedes);
}

TEST(SemanticCodecTest, UnknownFlagBitsRejected) {
  GossipMessage m;
  m.sender = 1;
  m.events = {stream_event(1, 9, 0, false)};
  auto bytes = m.encode();
  // The flags byte is the last byte before the (empty) payload varint and
  // the (empty) seen-ids varint. Find it by decoding offsets is brittle;
  // instead flip every byte and require: decode fails or flags stay 0/1.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto copy = bytes;
    copy[i] = 0xfe;
    auto decoded = GossipMessage::decode(copy);
    if (decoded && !decoded->events.empty()) {
      EXPECT_LE(decoded->events[0].supersedes ? 1 : 0, 1);
    }
  }
}

std::unique_ptr<membership::FullMembership> directory(NodeId self,
                                                      std::size_t n) {
  auto m = std::make_unique<membership::FullMembership>(self, Rng(self + 1));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) m->add(id);
  }
  return m;
}

TEST(SemanticNodeTest, ObsoleteEvictedBeforeFreshUnderPressure) {
  GossipParams params;
  params.fanout = 2;
  params.gossip_period = 1000;
  params.max_events = 4;
  params.max_event_ids = 100;
  params.max_age = 20;
  params.semantic_purge = true;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));

  // Stream 5: three updates, the last superseding; plus a fresh singleton.
  GossipMessage m;
  m.sender = 1;
  m.events = {stream_event(1, 0, 5, false, 9),   // oldest by age
              stream_event(1, 1, 5, false, 8),
              stream_event(1, 2, 5, true, 1),
              stream_event(2, 0, 0, false, 7),
              stream_event(3, 0, 0, false, 6)};  // 5 events > bound 4
  node.on_gossip(m, 10);

  // The two superseded stream-5 events go first — even though the age-based
  // rule would instead have evicted the age-9 event AND kept a duplicate.
  EXPECT_EQ(node.counters().drops_obsolete, 2u);
  EXPECT_EQ(node.counters().drops_overflow, 0u);
  EXPECT_TRUE(node.events().contains(EventId{1, 2}));
  EXPECT_TRUE(node.events().contains(EventId{2, 0}));
  EXPECT_TRUE(node.events().contains(EventId{3, 0}));
  EXPECT_FALSE(node.events().contains(EventId{1, 0}));
}

TEST(SemanticNodeTest, NoPurgeWhenUnderBound) {
  GossipParams params;
  params.max_events = 10;
  params.semantic_purge = true;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));
  GossipMessage m;
  m.sender = 1;
  m.events = {stream_event(1, 0, 5, false), stream_event(1, 1, 5, true)};
  node.on_gossip(m, 10);
  // Under the bound, obsolete events are left alone (they still help
  // dedupe and can be re-served); semantic purge fires under pressure only.
  EXPECT_EQ(node.counters().drops_obsolete, 0u);
  EXPECT_EQ(node.events().size(), 2u);
}

TEST(SemanticNodeTest, DisabledFlagFallsBackToAgeOrder) {
  GossipParams params;
  params.max_events = 2;
  params.semantic_purge = false;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));
  GossipMessage m;
  m.sender = 1;
  m.events = {stream_event(1, 0, 5, false, 9),
              stream_event(1, 1, 5, true, 1),
              stream_event(2, 0, 0, false, 5)};
  node.on_gossip(m, 10);
  EXPECT_EQ(node.counters().drops_obsolete, 0u);
  EXPECT_EQ(node.counters().drops_overflow, 1u);
  // Oldest-first: the age-9 event went, superseded or not.
  EXPECT_FALSE(node.events().contains(EventId{1, 0}));
}

TEST(SemanticNodeTest, BroadcastOnStreamTagsEvents) {
  GossipParams params;
  params.max_events = 10;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));
  node.broadcast_on_stream(make_payload({1}), 0, /*stream=*/3,
                           /*supersedes=*/true);
  auto out = node.on_round(0);
  ASSERT_EQ(out.message.events.size(), 1u);
  EXPECT_EQ(out.message.events[0].stream, 3u);
  EXPECT_TRUE(out.message.events[0].supersedes);
}

TEST(SemanticNodeTest, LastValueCachePattern) {
  // A "state stream": every update supersedes; under a 3-slot buffer the
  // stream occupies one slot no matter how fast it updates.
  GossipParams params;
  params.max_events = 3;
  params.semantic_purge = true;
  LpbcastNode node(0, params, directory(0, 4), Rng(2));
  for (int i = 0; i < 20; ++i) {
    node.broadcast_on_stream(make_payload({static_cast<std::uint8_t>(i)}),
                             i * 10, /*stream=*/1, /*supersedes=*/true);
  }
  EXPECT_LE(node.events().size(), 3u);
  EXPECT_TRUE(node.events().contains(EventId{0, 19}));  // newest survives
}

}  // namespace
}  // namespace agb::gossip
