#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace agb::sim {
namespace {

Datagram make_datagram(NodeId from, NodeId to, std::uint8_t tag = 0) {
  return Datagram{from, to, {tag}};
}

struct Fixture {
  Simulator sim;
  SimNetwork net;
  std::vector<std::pair<NodeId, TimeMs>> received;  // (to, time)

  explicit Fixture(NetworkParams params = {}, std::uint64_t seed = 1)
      : net(sim, params, Rng(seed)) {}

  void attach(NodeId node) {
    net.attach(node, [this, node](const Datagram&, TimeMs now) {
      received.emplace_back(node, now);
    });
  }
};

TEST(LatencyModelTest, FixedIsConstant) {
  Rng rng(1);
  auto model = LatencyModel::fixed(7.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(rng), 7);
}

TEST(LatencyModelTest, UniformStaysInRange) {
  Rng rng(2);
  auto model = LatencyModel::uniform(5.0, 15.0);
  for (int i = 0; i < 1000; ++i) {
    const auto d = model.sample(rng);
    EXPECT_GE(d, 5);
    EXPECT_LE(d, 15);
  }
}

TEST(LatencyModelTest, NormalClampsToNonNegative) {
  Rng rng(3);
  auto model = LatencyModel::normal(0.0, 10.0);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(model.sample(rng), 0);
}

TEST(SimNetworkTest, DeliversAfterLatency) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(5.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, 1u);
  EXPECT_EQ(f.received[0].second, 5);
  EXPECT_EQ(f.net.stats().delivered, 1u);
}

TEST(SimNetworkTest, PayloadIntegrity) {
  Fixture f;
  SharedBytes got;
  f.net.attach(2, [&](const Datagram& d, TimeMs) { got = d.payload; });
  f.net.send(Datagram{1, 2, {9, 8, 7}});
  f.sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(f.net.stats().bytes_delivered, 3u);
}

TEST(SimNetworkTest, SendToDetachedNodeCountsDrop) {
  Fixture f;
  f.net.send(make_datagram(0, 99));
  f.sim.run();
  EXPECT_EQ(f.net.stats().dropped_detached, 1u);
  EXPECT_EQ(f.net.stats().delivered, 0u);
}

TEST(SimNetworkTest, DetachWhileInFlightDrops) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(10.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run_until(5);
  f.net.detach(1);
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_detached, 1u);
}

TEST(SimNetworkTest, IidLossDropsApproximatelyP) {
  NetworkParams params;
  params.loss = LossModel::iid(0.25);
  Fixture f(params);
  f.attach(1);
  const int n = 10000;
  for (int i = 0; i < n; ++i) f.net.send(make_datagram(0, 1));
  f.sim.run();
  const double loss_rate =
      static_cast<double>(f.net.stats().dropped_loss) / n;
  EXPECT_NEAR(loss_rate, 0.25, 0.02);
  EXPECT_EQ(f.net.stats().delivered + f.net.stats().dropped_loss,
            static_cast<std::uint64_t>(n));
}

TEST(SimNetworkTest, BurstLossIsBurstier ) {
  // Same average-ish loss, but Gilbert-Elliott produces runs of drops.
  NetworkParams params;
  params.loss = LossModel::burst(0.0, 1.0, 0.02, 0.2);
  Fixture f(params);
  f.net.attach(1, [](const Datagram&, TimeMs) {});
  // Send sequentially; the loss decision happens synchronously in send(),
  // so the drop counter identifies which packets the chain rejected.
  int drop_runs = 0;
  bool prev_dropped = false;
  std::uint64_t last_dropped = 0;
  for (int i = 0; i < 5000; ++i) {
    f.net.send(make_datagram(0, 1));
    const bool dropped = f.net.stats().dropped_loss > last_dropped;
    last_dropped = f.net.stats().dropped_loss;
    if (dropped && !prev_dropped) ++drop_runs;
    prev_dropped = dropped;
  }
  const double total_drops = static_cast<double>(last_dropped);
  ASSERT_GT(total_drops, 100.0);
  // Mean drop-run length must exceed 1 (i.i.d. at the same rate would be
  // close to 1/(1-p) which is near 1 for small p).
  EXPECT_GT(total_drops / drop_runs, 2.0);
}

TEST(SimNetworkTest, PartitionBlocksBothDirections) {
  Fixture f;
  f.attach(1);
  f.attach(2);
  f.net.partition(1, 2);
  EXPECT_TRUE(f.net.partitioned(1, 2));
  EXPECT_TRUE(f.net.partitioned(2, 1));
  f.net.send(make_datagram(1, 2));
  f.net.send(make_datagram(2, 1));
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_partition, 2u);
}

TEST(SimNetworkTest, HealRestoresDelivery) {
  Fixture f;
  f.attach(2);
  f.net.partition(1, 2);
  f.net.heal(1, 2);
  EXPECT_FALSE(f.net.partitioned(1, 2));
  f.net.send(make_datagram(1, 2));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetworkTest, HealAllClearsEverything) {
  Fixture f;
  f.net.partition(1, 2);
  f.net.partition(3, 4);
  f.net.heal_all();
  EXPECT_FALSE(f.net.partitioned(1, 2));
  EXPECT_FALSE(f.net.partitioned(3, 4));
}

TEST(SimNetworkTest, DownNodeNeitherSendsNorReceives) {
  Fixture f;
  f.attach(1);
  f.attach(2);
  f.net.set_node_up(1, false);
  EXPECT_FALSE(f.net.node_up(1));
  f.net.send(make_datagram(1, 2));  // down sender
  f.net.send(make_datagram(2, 1));  // down receiver
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_down, 2u);
}

TEST(SimNetworkTest, CrashWhileInFlightDropsAtDelivery) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(10.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run_until(5);
  f.net.set_node_up(1, false);  // crashes before the datagram lands
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_down, 1u);
}

TEST(SimNetworkTest, RecoveredNodeReceivesAgain) {
  Fixture f;
  f.attach(1);
  f.net.set_node_up(1, false);
  f.net.set_node_up(1, true);
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetworkTest, LinkLatencyOverridesDefault) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(1.0);
  Fixture f(params);
  f.attach(1);
  f.attach(2);
  f.net.set_link_latency(0, 2, LatencyModel::fixed(50.0));
  f.net.send(make_datagram(0, 1));  // default link: 1 ms
  f.net.send(make_datagram(0, 2));  // overridden: 50 ms
  f.net.send(make_datagram(2, 0));  // symmetric override applies too
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0].second, 1);
  EXPECT_EQ(f.received[1].second, 50);
}

TEST(SimNetworkTest, ClusterRuleSelectsWanLatency) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(1.0);
  params.clusters = 3;
  params.wan_latency = LatencyModel::fixed(40.0);
  Fixture f(params);
  f.attach(3);  // cluster 0, same as node 0
  f.attach(4);  // cluster 1
  f.net.send(Datagram{0, 3, {}});  // intra-cluster: LAN latency
  f.net.send(Datagram{0, 4, {}});  // cross-cluster: WAN latency
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0], (std::pair<NodeId, TimeMs>{3, 1}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, TimeMs>{4, 40}));
}

TEST(SimNetworkTest, LinkOverrideBeatsClusterRule) {
  NetworkParams params;
  params.clusters = 2;
  params.wan_latency = LatencyModel::fixed(40.0);
  Fixture f(params);
  f.attach(1);
  f.net.set_link_latency(0, 1, LatencyModel::fixed(7.0));
  f.net.send(Datagram{0, 1, {}});  // cross-cluster, but overridden
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, 7);
}

TEST(SimNetworkTest, ClearLinkLatenciesReverts) {
  Fixture f;
  f.attach(1);
  f.net.set_link_latency(0, 1, LatencyModel::fixed(99.0));
  f.net.clear_link_latencies();
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, 1);  // back to the 1 ms default
}

TEST(SimNetworkTest, StatsCountSent) {
  Fixture f;
  f.attach(1);
  for (int i = 0; i < 5; ++i) f.net.send(make_datagram(0, 1));
  f.sim.run();
  EXPECT_EQ(f.net.stats().sent, 5u);
  EXPECT_EQ(f.net.stats().delivered, 5u);
}

}  // namespace
}  // namespace agb::sim
