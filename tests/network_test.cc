#include "sim/network.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace agb::sim {
namespace {

Datagram make_datagram(NodeId from, NodeId to, std::uint8_t tag = 0) {
  return Datagram{from, to, {tag}};
}

struct Fixture {
  Simulator sim;
  SimNetwork net;
  std::vector<std::pair<NodeId, TimeMs>> received;  // (to, time)

  explicit Fixture(NetworkParams params = {}, std::uint64_t seed = 1)
      : net(sim, params, Rng(seed)) {}

  void attach(NodeId node) {
    net.attach(node, [this, node](const Datagram&, TimeMs now) {
      received.emplace_back(node, now);
    });
  }
};

TEST(LatencyModelTest, FixedIsConstant) {
  Rng rng(1);
  auto model = LatencyModel::fixed(7.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(rng), 7);
}

TEST(LatencyModelTest, UniformStaysInRange) {
  Rng rng(2);
  auto model = LatencyModel::uniform(5.0, 15.0);
  for (int i = 0; i < 1000; ++i) {
    const auto d = model.sample(rng);
    EXPECT_GE(d, 5);
    EXPECT_LE(d, 15);
  }
}

TEST(LatencyModelTest, NormalClampsToNonNegative) {
  Rng rng(3);
  auto model = LatencyModel::normal(0.0, 10.0);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(model.sample(rng), 0);
}

TEST(SimNetworkTest, DeliversAfterLatency) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(5.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].first, 1u);
  EXPECT_EQ(f.received[0].second, 5);
  EXPECT_EQ(f.net.stats().delivered, 1u);
}

TEST(SimNetworkTest, PayloadIntegrity) {
  Fixture f;
  SharedBytes got;
  f.net.attach(2, [&](const Datagram& d, TimeMs) { got = d.payload; });
  f.net.send(Datagram{1, 2, {9, 8, 7}});
  f.sim.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(f.net.stats().bytes_delivered, 3u);
}

TEST(SimNetworkTest, SendToDetachedNodeCountsDrop) {
  Fixture f;
  f.net.send(make_datagram(0, 99));
  f.sim.run();
  EXPECT_EQ(f.net.stats().dropped_detached, 1u);
  EXPECT_EQ(f.net.stats().delivered, 0u);
}

TEST(SimNetworkTest, DetachWhileInFlightDrops) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(10.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run_until(5);
  f.net.detach(1);
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_detached, 1u);
}

TEST(SimNetworkTest, IidLossDropsApproximatelyP) {
  NetworkParams params;
  params.loss = LossModel::iid(0.25);
  Fixture f(params);
  f.attach(1);
  const int n = 10000;
  for (int i = 0; i < n; ++i) f.net.send(make_datagram(0, 1));
  f.sim.run();
  const double loss_rate =
      static_cast<double>(f.net.stats().dropped_loss) / n;
  EXPECT_NEAR(loss_rate, 0.25, 0.02);
  EXPECT_EQ(f.net.stats().delivered + f.net.stats().dropped_loss,
            static_cast<std::uint64_t>(n));
}

TEST(SimNetworkTest, BurstLossIsBurstier ) {
  // Same average-ish loss, but Gilbert-Elliott produces runs of drops.
  NetworkParams params;
  params.loss = LossModel::burst(0.0, 1.0, 0.02, 0.2);
  Fixture f(params);
  f.net.attach(1, [](const Datagram&, TimeMs) {});
  // Send sequentially; the loss decision happens synchronously in send(),
  // so the drop counter identifies which packets the chain rejected.
  int drop_runs = 0;
  bool prev_dropped = false;
  std::uint64_t last_dropped = 0;
  for (int i = 0; i < 5000; ++i) {
    f.net.send(make_datagram(0, 1));
    const bool dropped = f.net.stats().dropped_loss > last_dropped;
    last_dropped = f.net.stats().dropped_loss;
    if (dropped && !prev_dropped) ++drop_runs;
    prev_dropped = dropped;
  }
  const double total_drops = static_cast<double>(last_dropped);
  ASSERT_GT(total_drops, 100.0);
  // Mean drop-run length must exceed 1 (i.i.d. at the same rate would be
  // close to 1/(1-p) which is near 1 for small p).
  EXPECT_GT(total_drops / drop_runs, 2.0);
}

TEST(SimNetworkTest, PartitionBlocksBothDirections) {
  Fixture f;
  f.attach(1);
  f.attach(2);
  f.net.partition(1, 2);
  EXPECT_TRUE(f.net.partitioned(1, 2));
  EXPECT_TRUE(f.net.partitioned(2, 1));
  f.net.send(make_datagram(1, 2));
  f.net.send(make_datagram(2, 1));
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_partition, 2u);
}

TEST(SimNetworkTest, HealRestoresDelivery) {
  Fixture f;
  f.attach(2);
  f.net.partition(1, 2);
  f.net.heal(1, 2);
  EXPECT_FALSE(f.net.partitioned(1, 2));
  f.net.send(make_datagram(1, 2));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetworkTest, HealAllClearsEverything) {
  Fixture f;
  f.net.partition(1, 2);
  f.net.partition(3, 4);
  f.net.heal_all();
  EXPECT_FALSE(f.net.partitioned(1, 2));
  EXPECT_FALSE(f.net.partitioned(3, 4));
}

TEST(SimNetworkTest, DownNodeNeitherSendsNorReceives) {
  Fixture f;
  f.attach(1);
  f.attach(2);
  f.net.set_node_up(1, false);
  EXPECT_FALSE(f.net.node_up(1));
  f.net.send(make_datagram(1, 2));  // down sender
  f.net.send(make_datagram(2, 1));  // down receiver
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_down, 2u);
}

TEST(SimNetworkTest, CrashWhileInFlightDropsAtDelivery) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(10.0);
  Fixture f(params);
  f.attach(1);
  f.net.send(make_datagram(0, 1));
  f.sim.run_until(5);
  f.net.set_node_up(1, false);  // crashes before the datagram lands
  f.sim.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.stats().dropped_down, 1u);
}

TEST(SimNetworkTest, RecoveredNodeReceivesAgain) {
  Fixture f;
  f.attach(1);
  f.net.set_node_up(1, false);
  f.net.set_node_up(1, true);
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetworkTest, LinkLatencyOverridesDefault) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(1.0);
  Fixture f(params);
  f.attach(1);
  f.attach(2);
  f.net.set_link_latency(0, 2, LatencyModel::fixed(50.0));
  f.net.send(make_datagram(0, 1));  // default link: 1 ms
  f.net.send(make_datagram(0, 2));  // overridden: 50 ms
  f.net.send(make_datagram(2, 0));  // symmetric override applies too
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0].second, 1);
  EXPECT_EQ(f.received[1].second, 50);
}

TEST(SimNetworkTest, ClusterRuleSelectsWanLatency) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(1.0);
  params.clusters = 3;
  params.wan_latency = LatencyModel::fixed(40.0);
  Fixture f(params);
  f.attach(3);  // cluster 0, same as node 0
  f.attach(4);  // cluster 1
  f.net.send(Datagram{0, 3, {}});  // intra-cluster: LAN latency
  f.net.send(Datagram{0, 4, {}});  // cross-cluster: WAN latency
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0], (std::pair<NodeId, TimeMs>{3, 1}));
  EXPECT_EQ(f.received[1], (std::pair<NodeId, TimeMs>{4, 40}));
}

TEST(SimNetworkTest, LinkOverrideBeatsClusterRule) {
  NetworkParams params;
  params.clusters = 2;
  params.wan_latency = LatencyModel::fixed(40.0);
  Fixture f(params);
  f.attach(1);
  f.net.set_link_latency(0, 1, LatencyModel::fixed(7.0));
  f.net.send(Datagram{0, 1, {}});  // cross-cluster, but overridden
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, 7);
}

TEST(SimNetworkTest, ClearLinkLatenciesReverts) {
  Fixture f;
  f.attach(1);
  f.net.set_link_latency(0, 1, LatencyModel::fixed(99.0));
  f.net.clear_link_latencies();
  f.net.send(make_datagram(0, 1));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].second, 1);  // back to the 1 ms default
}

TEST(SimNetworkTest, StatsCountSent) {
  Fixture f;
  f.attach(1);
  for (int i = 0; i < 5; ++i) f.net.send(make_datagram(0, 1));
  f.sim.run();
  EXPECT_EQ(f.net.stats().sent, 5u);
  EXPECT_EQ(f.net.stats().delivered, 5u);
}

TEST(SymmetricLinkKeyTest, OrderInsensitive) {
  EXPECT_EQ(symmetric_link_key(3, 9), symmetric_link_key(9, 3));
  EXPECT_EQ(symmetric_link_key(9, 3), (std::pair<NodeId, NodeId>{3, 9}));
  EXPECT_EQ(symmetric_link_key(4, 4), (std::pair<NodeId, NodeId>{4, 4}));
}

TEST(SimNetworkTest, SetLinkLatencyIsSymmetricInArgumentOrder) {
  // set_link_latency(a, b) and set_link_latency(b, a) must address the SAME
  // entry (the symmetric_link_key contract shared with partition()): the
  // later call overwrites the earlier one, whichever order its arguments
  // use, and the override applies in both directions.
  NetworkParams params;
  params.latency = LatencyModel::fixed(1.0);
  Fixture f(params);
  f.attach(2);
  f.attach(5);
  f.net.set_link_latency(5, 2, LatencyModel::fixed(99.0));
  f.net.set_link_latency(2, 5, LatencyModel::fixed(30.0));  // overwrites
  f.net.send(make_datagram(2, 5));
  f.net.send(make_datagram(5, 2));
  f.sim.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_EQ(f.received[0].second, 30);  // not 99: (2,5) == (5,2)
  EXPECT_EQ(f.received[1].second, 30);  // and both directions see it
}

TEST(SimNetworkTest, PartitionIsSymmetricInArgumentOrder) {
  Fixture f;
  f.net.partition(7, 1);
  EXPECT_TRUE(f.net.partitioned(1, 7));
  f.net.heal(1, 7);  // reversed arguments heal the same pair
  EXPECT_FALSE(f.net.partitioned(7, 1));
}

TEST(SimNetworkTest, BatchSharesOneSimulatorEventAtFixedLatency) {
  NetworkParams params;
  params.latency = LatencyModel::fixed(3.0);
  Fixture f(params);
  for (NodeId t = 1; t <= 5; ++t) f.attach(t);
  f.net.send_batch(Multicast{0, {1, 2, 3, 4, 5}, {0xaa}});
  EXPECT_EQ(f.net.stats().batches, 1u);
  EXPECT_EQ(f.net.stats().sent, 5u);
  EXPECT_EQ(f.net.stats().events_scheduled, 1u);  // F targets, ONE event
  f.sim.run();
  ASSERT_EQ(f.received.size(), 5u);
  for (const auto& [node, at] : f.received) EXPECT_EQ(at, 3);
}

TEST(SimNetworkTest, BatchPayloadPointerIdentityAcrossTargets) {
  Fixture f;
  std::vector<const std::uint8_t*> seen;
  for (NodeId t = 1; t <= 4; ++t) {
    f.net.attach(t, [&](const Datagram& d, TimeMs) {
      seen.push_back(d.payload.data());
    });
  }
  const SharedBytes payload({1, 2, 3, 4});
  f.net.send_batch(Multicast{0, {1, 2, 3, 4}, payload});
  f.sim.run();
  ASSERT_EQ(seen.size(), 4u);
  for (const auto* data : seen) EXPECT_EQ(data, payload.data());
}

TEST(SimNetworkTest, BatchSamplesLossAndDelayPerTarget) {
  // Loss stays a per-target coin flip: a 50% iid loss over a large batch
  // drops roughly half, never all-or-nothing.
  NetworkParams params;
  params.loss = LossModel::iid(0.5);
  Fixture f(params);
  std::vector<NodeId> targets;
  for (NodeId t = 1; t <= 200; ++t) {
    f.attach(t);
    targets.push_back(t);
  }
  f.net.send_batch(Multicast{0, targets, {0x01}});
  f.sim.run();
  const auto& stats = f.net.stats();
  EXPECT_EQ(stats.sent, 200u);
  EXPECT_EQ(stats.delivered + stats.dropped_loss, 200u);
  EXPECT_GT(stats.delivered, 50u);
  EXPECT_GT(stats.dropped_loss, 50u);
}

TEST(SimNetworkTest, BatchChecksPartitionAndDownPerTarget) {
  Fixture f;
  for (NodeId t = 1; t <= 3; ++t) f.attach(t);
  f.net.partition(0, 1);
  f.net.set_node_up(2, false);
  f.net.send_batch(Multicast{0, {1, 2, 3}, {0x01}});
  f.sim.run();
  ASSERT_EQ(f.received.size(), 1u);  // only node 3
  EXPECT_EQ(f.received[0].first, 3u);
  EXPECT_EQ(f.net.stats().dropped_partition, 1u);
  EXPECT_EQ(f.net.stats().dropped_down, 1u);
}

TEST(SimNetworkTest, BatchDistinctDelaysGetDistinctEvents) {
  NetworkParams params;
  params.latency = LatencyModel::uniform(1.0, 200.0);
  Fixture f(params);
  std::vector<NodeId> targets;
  for (NodeId t = 1; t <= 10; ++t) {
    f.attach(t);
    targets.push_back(t);
  }
  f.net.send_batch(Multicast{0, targets, {0x01}});
  f.sim.run();
  EXPECT_EQ(f.received.size(), 10u);
  // Same-delay targets coalesce; distinct delays must not.
  std::set<TimeMs> distinct_times;
  for (const auto& [node, at] : f.received) distinct_times.insert(at);
  EXPECT_EQ(f.net.stats().events_scheduled, distinct_times.size());
  EXPECT_GT(distinct_times.size(), 1u);
}

}  // namespace
}  // namespace agb::sim
