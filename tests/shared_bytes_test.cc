// SharedBytes semantics, and the encode-once / zero-copy guarantee of the
// datagram pipeline: one Outgoing batch of fan-out F performs exactly one
// GossipMessage::encode and every Datagram — queued or delivered, simulated
// or threaded — aliases the same payload buffer (asserted on the data
// pointer and the use-count, not just byte equality).
#include "common/shared_bytes.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "gossip/lpbcast_node.h"
#include "gossip/message.h"
#include "membership/full_membership.h"
#include "runtime/inmemory_fabric.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace agb {
namespace {

TEST(SharedBytesTest, DefaultIsEmpty) {
  SharedBytes bytes;
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(bytes.size(), 0u);
  EXPECT_EQ(bytes.data(), nullptr);
  EXPECT_EQ(bytes.use_count(), 0);
}

TEST(SharedBytesTest, TakesOwnershipWithoutCopying) {
  std::vector<std::uint8_t> source{1, 2, 3};
  const std::uint8_t* raw = source.data();
  SharedBytes bytes(std::move(source));
  EXPECT_EQ(bytes.data(), raw);  // moved, not copied
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes.use_count(), 1);
}

TEST(SharedBytesTest, CopiesShareTheBuffer) {
  SharedBytes a{1, 2, 3};
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.data(), c.data());
  EXPECT_EQ(a.use_count(), 3);
  c = SharedBytes{};
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytesTest, ByteEqualityIgnoresIdentity) {
  SharedBytes a{1, 2, 3};
  SharedBytes b{1, 2, 3};
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(a == SharedBytes({1, 2}));
}

TEST(SharedBytesTest, SpanConversionFeedsTheCodec) {
  gossip::GossipMessage m;
  m.sender = 5;
  m.round = 9;
  SharedBytes wire = m.encode_shared();
  auto decoded = gossip::GossipMessage::decode(wire);  // implicit span
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, 5u);
  EXPECT_EQ(decoded->round, 9u);
}

// --- the pipeline guarantee -----------------------------------------------

std::unique_ptr<gossip::LpbcastNode> make_node(NodeId self, std::size_t n) {
  auto members = std::make_unique<membership::FullMembership>(self, Rng(3));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) members->add(id);
  }
  gossip::GossipParams params;
  params.fanout = 5;
  params.max_events = 50;
  return std::make_unique<gossip::LpbcastNode>(self, params,
                                               std::move(members), Rng(7));
}

TEST(ZeroCopyPipelineTest, SimNetworkFanOutSharesOneBuffer) {
  constexpr std::size_t kGroup = 12;
  sim::Simulator sim;
  sim::SimNetwork net(sim, {}, Rng(1));

  auto node = make_node(0, kGroup);
  node->broadcast(gossip::make_payload({0xaa, 0xbb}), 0);
  auto out = node->on_round(1000);
  ASSERT_EQ(out.targets.size(), 5u);  // fanout 5

  std::set<const std::uint8_t*> delivered_ptrs;
  std::size_t deliveries = 0;
  for (NodeId target : out.targets) {
    net.attach(target, [&](const Datagram& d, TimeMs) {
      delivered_ptrs.insert(d.payload.data());
      ++deliveries;
    });
  }

  // One encode for the whole batch (the driver contract).
  const SharedBytes bytes = out.message.encode_shared();
  ASSERT_EQ(bytes.use_count(), 1);
  for (NodeId target : out.targets) {
    net.send(Datagram{0, target, bytes});
  }
  // All five datagrams sit in the delay queue aliasing the same buffer:
  // the original + one reference per queued datagram, zero byte copies.
  EXPECT_EQ(bytes.use_count(), 1 + 5);

  sim.run();
  EXPECT_EQ(deliveries, 5u);
  ASSERT_EQ(delivered_ptrs.size(), 1u);  // every delivery saw the same bytes
  EXPECT_EQ(*delivered_ptrs.begin(), bytes.data());
  EXPECT_EQ(bytes.use_count(), 1);  // queue drained, references released
}

TEST(ZeroCopyPipelineTest, InMemoryFabricFanOutSharesOneBuffer) {
  runtime::InMemoryFabric fabric({});
  constexpr int kFanout = 5;

  std::mutex mutex;
  std::set<const std::uint8_t*> delivered_ptrs;
  std::atomic<int> deliveries{0};
  for (NodeId target = 1; target <= kFanout; ++target) {
    fabric.attach(target, [&](const Datagram& d, TimeMs) {
      std::lock_guard lock(mutex);
      delivered_ptrs.insert(d.payload.data());
      deliveries.fetch_add(1);
    });
  }

  gossip::GossipMessage m;
  m.sender = 0;
  const SharedBytes bytes = m.encode_shared();
  for (NodeId target = 1; target <= kFanout; ++target) {
    fabric.send(Datagram{0, target, bytes});
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (deliveries.load() < kFanout &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(deliveries.load(), kFanout);
  std::lock_guard lock(mutex);
  ASSERT_EQ(delivered_ptrs.size(), 1u);
  EXPECT_EQ(*delivered_ptrs.begin(), bytes.data());
}

}  // namespace
}  // namespace agb
