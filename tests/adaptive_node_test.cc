#include "adaptive/adaptive_node.h"

#include <gtest/gtest.h>

#include <memory>

#include "membership/full_membership.h"

namespace agb::adaptive {
namespace {

std::unique_ptr<membership::FullMembership> directory(NodeId self,
                                                      std::size_t n) {
  auto m = std::make_unique<membership::FullMembership>(self, Rng(self + 1));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) m->add(id);
  }
  return m;
}

gossip::GossipParams gossip_params(std::size_t max_events = 10) {
  gossip::GossipParams p;
  p.fanout = 3;
  p.gossip_period = 1000;
  p.max_events = max_events;
  p.max_event_ids = 200;
  p.max_age = 12;
  return p;
}

AdaptiveParams adaptive_params() {
  AdaptiveParams p;
  p.sample_period = 2000;
  p.min_buff_window = 2;
  p.alpha = 0.9;
  p.critical_age = 5.0;
  p.low_age_mark = 4.5;
  p.high_age_mark = 5.5;
  p.initial_rate = 5.0;
  p.bucket_capacity = 3.0;
  p.min_rate = 0.5;
  p.max_rate = 100.0;
  return p;
}

std::unique_ptr<AdaptiveLpbcastNode> make_node(NodeId id,
                                               std::size_t max_events = 10) {
  return std::make_unique<AdaptiveLpbcastNode>(
      id, gossip_params(max_events), adaptive_params(), directory(id, 8),
      Rng(id * 31 + 7));
}

gossip::Payload payload() { return gossip::make_payload({1}); }

TEST(AdaptiveNodeTest, TryBroadcastConsumesTokens) {
  auto node = make_node(0);
  EventId id;
  EXPECT_TRUE(node->try_broadcast(payload(), 0, &id));
  EXPECT_TRUE(node->try_broadcast(payload(), 0));
  EXPECT_TRUE(node->try_broadcast(payload(), 0));  // capacity 3
  EXPECT_FALSE(node->try_broadcast(payload(), 0));
  EXPECT_EQ(node->counters().broadcasts, 3u);
}

TEST(AdaptiveNodeTest, TokensRefillOverTime) {
  auto node = make_node(0);
  while (node->try_broadcast(payload(), 0)) {
  }
  EXPECT_FALSE(node->try_broadcast(payload(), 100));
  EXPECT_TRUE(node->try_broadcast(payload(), 1000));  // 5/s for 1 s
}

TEST(AdaptiveNodeTest, HeaderCarriesPeriodAndRunningMinimum) {
  auto node = make_node(0, 10);
  auto out = node->on_round(5000);  // period = 5000/2000 = 2
  EXPECT_EQ(out.message.period, 2u);
  EXPECT_EQ(out.message.min_buff, 10u);
}

TEST(AdaptiveNodeTest, HeaderAdvertisesRunningNotWindowedMinimum) {
  auto node = make_node(0, 100);
  gossip::GossipMessage m;
  m.sender = 1;
  m.period = 0;
  m.min_buff = 20;
  node->on_gossip(m, 100);
  EXPECT_EQ(node->min_buff(), 20u);  // windowed estimate
  auto out = node->on_round(2100);   // period 1 begins
  // The running minimum for period 1 restarts from local capacity (100) —
  // remote info must be re-learned each period so stale minima can expire.
  EXPECT_EQ(out.message.period, 1u);
  EXPECT_EQ(out.message.min_buff, 100u);
  // But the *operational* estimate still honours the window.
  EXPECT_EQ(node->min_buff(), 20u);
}

TEST(AdaptiveNodeTest, ProcessHeaderUpdatesMinBuff) {
  auto node = make_node(0, 50);
  gossip::GossipMessage m;
  m.sender = 1;
  m.period = 0;
  m.min_buff = 15;
  node->on_gossip(m, 10);
  EXPECT_EQ(node->min_buff(), 15u);
}

TEST(AdaptiveNodeTest, SetCapacityUpdatesAdvertisementAndBuffer) {
  auto node = make_node(0, 50);
  node->set_capacity(8, 0);
  EXPECT_EQ(node->params().max_events, 8u);
  EXPECT_EQ(node->min_buff(), 8u);
  auto out = node->on_round(100);
  EXPECT_EQ(out.message.min_buff, 8u);
}

TEST(AdaptiveNodeTest, CongestionSignalRespondsToOverload) {
  auto node = make_node(0, 10);
  // Tell the node the smallest buffer in the group is tiny.
  gossip::GossipMessage hdr;
  hdr.sender = 1;
  hdr.period = 0;
  hdr.min_buff = 2;
  node->on_gossip(hdr, 10);
  const double before = node->avg_age();
  // Flood young events: the virtual 2-slot buffer overflows with low ages.
  gossip::GossipMessage flood;
  flood.sender = 1;
  flood.period = 0;
  flood.min_buff = 2;
  for (std::uint64_t i = 0; i < 8; ++i) {
    gossip::Event e;
    e.id = EventId{1, i};
    e.age = 1;
    flood.events.push_back(e);
  }
  node->on_gossip(flood, 20);
  EXPECT_LT(node->avg_age(), before);
}

TEST(AdaptiveNodeTest, AllowedRateDecreasesUnderCongestion) {
  auto node = make_node(0, 10);
  gossip::GossipMessage flood;
  flood.sender = 1;
  flood.period = 0;
  flood.min_buff = 2;
  std::uint64_t seq = 0;
  const double initial = node->allowed_rate();
  TimeMs now = 0;
  for (int round = 0; round < 20; ++round) {
    flood.events.clear();
    for (int i = 0; i < 6; ++i) {
      gossip::Event e;
      e.id = EventId{1, seq++};
      e.age = 1;
      flood.events.push_back(e);
    }
    node->on_gossip(flood, now);
    (void)node->on_round(now);
    now += 1000;
    // Keep the bucket drained so the "unused allowance" rule does not fire
    // and attribute the decrease to congestion alone.
    while (node->try_broadcast(payload(), now)) {
    }
  }
  EXPECT_LT(node->allowed_rate(), initial);
}

TEST(AdaptiveNodeTest, UnusedAllowanceDecaysRate) {
  auto node = make_node(0, 10);
  const double initial = node->allowed_rate();
  TimeMs now = 0;
  for (int round = 0; round < 10; ++round) {
    (void)node->on_round(now);  // never broadcasts: bucket stays full
    now += 1000;
  }
  EXPECT_LT(node->allowed_rate(), initial);
}

TEST(AdaptiveNodeTest, SamplePeriodAdvancesWithClock) {
  auto node = make_node(0);
  (void)node->on_round(0);
  EXPECT_EQ(node->sample_period(), 0u);
  (void)node->on_round(4100);
  EXPECT_EQ(node->sample_period(), 2u);
}

TEST(AdaptiveNodeTest, LaterPeriodHeaderFastForwards) {
  auto node = make_node(0, /*max_events=*/100);
  gossip::GossipMessage m;
  m.sender = 1;
  m.period = 9;
  m.min_buff = 33;
  node->on_gossip(m, 10);  // local clock says period 0, peer says 9
  EXPECT_EQ(node->sample_period(), 9u);
  // Skipped periods were filled with the local capacity (100), so the
  // windowed estimate is dominated by the peer's 33.
  EXPECT_EQ(node->min_buff(), 33u);
}

TEST(AdaptiveNodeTest, TwoNodesAgreeOnGroupMinimum) {
  auto a = make_node(0, 100);
  auto b = make_node(1, 30);
  TimeMs now = 0;
  for (int round = 0; round < 3; ++round) {
    auto out_a = a->on_round(now);
    auto out_b = b->on_round(now);
    b->on_gossip(out_a.message, now + 1);
    a->on_gossip(out_b.message, now + 1);
    now += 1000;
  }
  EXPECT_EQ(a->min_buff(), 30u);
  EXPECT_EQ(b->min_buff(), 30u);
}

TEST(AdaptiveNodeTest, BroadcastsStillDeliverLocally) {
  auto node = make_node(0);
  int deliveries = 0;
  node->set_deliver_handler([&](const gossip::Event&, TimeMs) {
    ++deliveries;
  });
  ASSERT_TRUE(node->try_broadcast(payload(), 0));
  EXPECT_EQ(deliveries, 1);
}

}  // namespace
}  // namespace agb::adaptive
