// Group-level tests of the robust k-minimum extension (paper §6): one
// pathological node must not throttle everyone when robust_k > 1, while the
// baseline (k=1) faithfully adapts to it.
#include <gtest/gtest.h>

#include "core/scenario.h"

namespace agb::core {
namespace {

ScenarioParams outlier_params(std::size_t robust_k, std::uint32_t floor) {
  ScenarioParams p;
  p.n = 24;
  p.senders = 3;
  p.offered_rate = 15.0;
  p.adaptive = true;
  p.gossip.fanout = 3;
  p.gossip.gossip_period = 1000;
  p.gossip.max_events = 80;
  p.gossip.max_event_ids = 3000;
  p.gossip.max_age = 12;
  p.adaptation.sample_period = 4000;
  p.adaptation.robust_k = robust_k;
  p.adaptation.robust_floor = floor;
  p.adaptation.initial_rate = 5.0;
  p.warmup = 10'000;
  p.duration = 60'000;
  p.cooldown = 15'000;
  p.seed = 5;
  // One node with a pathologically tiny buffer.
  p.capacity_schedule = {{0, 1.0 / 24.0, 4}};
  return p;
}

TEST(RobustMinScenarioTest, BaselineThrottlesToTheOutlier) {
  Scenario scenario(outlier_params(/*robust_k=*/1, /*floor=*/0));
  auto r = scenario.run();
  // minBuff converges to the outlier's 4 slots and the input collapses.
  EXPECT_LE(r.avg_min_buff, 8.0);
  EXPECT_LT(r.input_rate, 8.0);
}

TEST(RobustMinScenarioTest, K2IgnoresTheOutlier) {
  Scenario scenario(outlier_params(/*robust_k=*/2, /*floor=*/0));
  auto r = scenario.run();
  // The 2nd-smallest buffer is a healthy 80; throughput is preserved.
  EXPECT_GE(r.avg_min_buff, 60.0);
  EXPECT_GT(r.input_rate, 10.0);
  // The healthy majority still gets near-perfect delivery.
  EXPECT_GT(r.delivery.avg_receiver_pct, 90.0);
}

TEST(RobustMinScenarioTest, FloorVariantIgnoresTheOutlier) {
  Scenario scenario(outlier_params(/*robust_k=*/2, /*floor=*/10));
  auto r = scenario.run();
  EXPECT_GE(r.avg_min_buff, 60.0);
  EXPECT_GT(r.input_rate, 10.0);
}

TEST(RobustMinScenarioTest, K2StillAdaptsWhenManyNodesShrink) {
  // Robustness must not mean blindness: if a *fifth* of the group shrinks,
  // the 2nd smallest is small too and the rate must come down.
  auto p = outlier_params(2, 0);
  p.capacity_schedule = {{0, 0.2, 8}};  // ~5 nodes at 8 slots
  Scenario scenario(p);
  auto r = scenario.run();
  EXPECT_LE(r.avg_min_buff, 10.0);
  EXPECT_LT(r.input_rate, 10.0);
}

TEST(RobustMinScenarioTest, MinSetTravelsOnlyWhenEnabled) {
  // robust_k = 1 must keep headers minimal (no min_set bytes).
  Scenario baseline(outlier_params(1, 0));
  (void)baseline.run();
  auto out = baseline.adaptive_nodes().front()->on_round(1'000'000);
  EXPECT_TRUE(out.message.min_set.empty());

  Scenario robust(outlier_params(2, 0));
  (void)robust.run();
  auto robust_out = robust.adaptive_nodes().front()->on_round(1'000'000);
  EXPECT_FALSE(robust_out.message.min_set.empty());
}

}  // namespace
}  // namespace agb::core
