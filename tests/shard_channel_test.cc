// Property tests for the cross-shard window-barrier channel and the
// canonical delivery order the sharded engine rests on:
//   * drain() moves every pushed datagram out in push order, and the
//     canonical sort over a whole window's batch preserves per-(sender,
//     receiver) FIFO (send sequences are monotone per sender);
//   * the lookahead-horizon invariant is enforced on every pop: a datagram
//     timestamped inside the producing window throws, as does a per-sender
//     sequence regression — engine bugs, never recoverable conditions;
//   * canonical_before is a strict total order over distinct datagrams, so
//     sorting a shuffled batch always lands the same sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/shard_channel.h"

namespace agb::sim {
namespace {

SharedBytes payload_of(std::uint8_t tag) {
  return SharedBytes{std::vector<std::uint8_t>{tag}};
}

/// Seeded random batch: `senders` nodes emit `per_sender` datagrams each
/// with nondecreasing timestamps >= horizon and strictly increasing seq.
std::vector<CrossShardDatagram> random_batch(Rng& rng, TimeMs horizon,
                                             NodeId senders,
                                             std::size_t per_sender) {
  std::vector<CrossShardDatagram> out;
  for (NodeId from = 0; from < senders; ++from) {
    TimeMs at = horizon + static_cast<TimeMs>(rng.next_below(4));
    std::uint64_t seq = rng.next_below(100);
    for (std::size_t i = 0; i < per_sender; ++i) {
      const auto to = static_cast<NodeId>(rng.next_below(senders));
      out.push_back(CrossShardDatagram{
          at, from, to, seq, payload_of(static_cast<std::uint8_t>(i))});
      at += static_cast<TimeMs>(rng.next_below(3));
      seq += 1 + rng.next_below(2);
    }
  }
  return out;
}

TEST(ShardChannelTest, DrainMovesEverythingInPushOrder) {
  ShardChannel channel;
  Rng rng(7);
  auto batch = random_batch(rng, /*horizon=*/100, /*senders=*/4,
                            /*per_sender=*/16);
  for (const auto& d : batch) channel.push(d);
  EXPECT_EQ(channel.pending(), batch.size());

  std::vector<CrossShardDatagram> drained;
  channel.drain(/*horizon=*/100, drained);
  EXPECT_EQ(channel.pending(), 0u);
  ASSERT_EQ(drained.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(drained[i].at, batch[i].at) << i;
    EXPECT_EQ(drained[i].from, batch[i].from) << i;
    EXPECT_EQ(drained[i].to, batch[i].to) << i;
    EXPECT_EQ(drained[i].seq, batch[i].seq) << i;
  }
}

TEST(ShardChannelTest, CanonicalSortPreservesPerSenderReceiverFifo) {
  // Many windows of seeded random traffic: after the canonical sort, every
  // (sender, receiver) pair's datagrams appear in strictly increasing seq
  // order (FIFO), and timestamps never run backwards globally.
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    ShardChannel channel;
    const TimeMs horizon = 10 * (round + 1);
    auto batch = random_batch(rng, horizon, /*senders=*/6, /*per_sender=*/12);
    // Emission order within the channel is per-sender interleaved in
    // practice; shuffle across senders to model worker scheduling noise.
    for (std::size_t i = batch.size(); i > 1; --i) {
      std::swap(batch[i - 1], batch[rng.next_below(i)]);
    }
    // Per-sender pushes must stay seq-ordered (that is what the engine's
    // per-shard execution guarantees); restore it sender-by-sender.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const CrossShardDatagram& a,
                        const CrossShardDatagram& b) {
                       if (a.from != b.from) return a.from < b.from;
                       return a.seq < b.seq;
                     });
    for (auto& d : batch) channel.push(std::move(d));

    std::vector<CrossShardDatagram> drained;
    channel.drain(horizon, drained);
    std::sort(drained.begin(), drained.end(), canonical_before);

    TimeMs last_at = 0;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> last_seq;
    for (const auto& d : drained) {
      EXPECT_GE(d.at, last_at) << "timestamps must be nondecreasing";
      EXPECT_GE(d.at, horizon) << "nothing may deliver below the horizon";
      last_at = d.at;
      const auto key = std::make_pair(d.from, d.to);
      auto [it, first] = last_seq.try_emplace(key, d.seq);
      if (!first) {
        EXPECT_LT(it->second, d.seq)
            << "per-(sender,receiver) FIFO violated for " << d.from << "->"
            << d.to;
        it->second = d.seq;
      }
    }
  }
}

TEST(ShardChannelTest, CanonicalOrderIsTotalAndShuffleInvariant) {
  Rng rng(1234);
  auto batch = random_batch(rng, /*horizon=*/50, /*senders=*/5,
                            /*per_sender=*/10);
  auto sorted = batch;
  std::sort(sorted.begin(), sorted.end(), canonical_before);
  // Any shuffle sorts back to the identical sequence: (from, seq) is unique
  // per datagram, so canonical_before is total over the batch.
  for (int round = 0; round < 20; ++round) {
    auto shuffled = batch;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    std::sort(shuffled.begin(), shuffled.end(), canonical_before);
    ASSERT_EQ(shuffled.size(), sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(shuffled[i].from, sorted[i].from) << i;
      EXPECT_EQ(shuffled[i].seq, sorted[i].seq) << i;
      EXPECT_EQ(shuffled[i].at, sorted[i].at) << i;
      EXPECT_EQ(shuffled[i].to, sorted[i].to) << i;
    }
  }
}

TEST(ShardChannelTest, ThrowsOnDatagramBelowTheLookaheadHorizon) {
  ShardChannel channel;
  channel.push(CrossShardDatagram{99, 0, 1, 0, payload_of(1)});
  std::vector<CrossShardDatagram> out;
  EXPECT_THROW(channel.drain(/*horizon=*/100, out), std::logic_error);
}

TEST(ShardChannelTest, AcceptsDatagramExactlyAtTheHorizon) {
  ShardChannel channel;
  channel.push(CrossShardDatagram{100, 0, 1, 0, payload_of(1)});
  std::vector<CrossShardDatagram> out;
  EXPECT_NO_THROW(channel.drain(/*horizon=*/100, out));
  ASSERT_EQ(out.size(), 1u);
}

TEST(ShardChannelTest, ThrowsOnPerSenderSeqRegressionWithinAWindow) {
  ShardChannel channel;
  channel.push(CrossShardDatagram{100, 3, 1, 7, payload_of(1)});
  channel.push(CrossShardDatagram{101, 3, 2, 7, payload_of(2)});  // repeat
  std::vector<CrossShardDatagram> out;
  EXPECT_THROW(channel.drain(/*horizon=*/100, out), std::logic_error);
}

TEST(ShardChannelTest, FifoWitnessSpansWindows) {
  // The per-sender monotone contract holds across drains, not just within
  // one: a later window re-using an old sequence number is an engine bug.
  ShardChannel channel;
  std::vector<CrossShardDatagram> out;
  channel.push(CrossShardDatagram{100, 5, 1, 10, payload_of(1)});
  EXPECT_NO_THROW(channel.drain(/*horizon=*/100, out));
  channel.push(CrossShardDatagram{200, 5, 1, 10, payload_of(2)});
  EXPECT_THROW(channel.drain(/*horizon=*/200, out), std::logic_error);
}

TEST(ShardChannelTest, IndependentSendersDoNotShareSeqSpaces) {
  ShardChannel channel;
  std::vector<CrossShardDatagram> out;
  channel.push(CrossShardDatagram{100, 1, 2, 5, payload_of(1)});
  channel.push(CrossShardDatagram{100, 2, 1, 5, payload_of(2)});
  EXPECT_NO_THROW(channel.drain(/*horizon=*/100, out));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace agb::sim
