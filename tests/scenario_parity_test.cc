// Scenario conformance: every ScenarioRegistry preset runs through THREE
// execution paths — the discrete-event simulator (core::Scenario), the
// multi-core sharded simulator at sim_shards=4 (core::ShardedScenario) and
// real NodeRuntime threads over the sharded InMemoryFabric
// (core::WallclockScenario) — from the same seed on a scaled-down group,
// and the paths must agree on the preset's invariants: delivery-ratio
// floors, the WAN intra/cross traffic split (locality bias must actually
// bias on real threads), failure-schedule suppression (down nodes really
// drop traffic) and membership sizes after churn. Wall-clock timing is not
// deterministic, so the contract is invariant bounds on both paths, not
// bitwise equality — but the bounds are the preset's point: a locality
// preset whose wall-clock run stops biasing, or a churn preset whose
// schedule stops firing, fails here.
//
// The suite enumerates the registry at runtime: a preset added without a
// parity entry still runs with the generic bounds, and the final coverage
// assertion fails if any registered preset was skipped.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/scenario.h"
#include "core/scenario_registry.h"
#include "core/sharded_scenario.h"
#include "core/wallclock_scenario.h"

namespace agb::core {
namespace {

/// Invariant bounds for one preset; the defaults are the generic contract
/// every preset must meet at the scaled-down size.
struct ParityBounds {
  double min_receiver_pct = 85.0;
  double max_cross_share = -1.0;  // < 0: unbounded
  double min_cross_share = -1.0;
  std::vector<std::string> overrides;  // preset-specific scale-down knobs
};

/// Scaled-down run: small group, 50 ms rounds, a 2 s real-time evaluation
/// window — large enough for dozens of gossip rounds, small enough that
/// running every preset twice stays ctest-friendly.
Config make_config(const ParityBounds& bounds) {
  Config cfg;
  std::string error;
  for (const char* pair :
       {"n=12", "senders=3", "rate=30", "quick=1", "period_ms=50",
        "warmup_s=1", "duration_s=2", "cooldown_s=1", "seed=11"}) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  for (const std::string& pair : bounds.overrides) {
    EXPECT_TRUE(cfg.parse_pair(pair, &error)) << error;
  }
  return cfg;
}

/// Preset-specific bounds. WAN presets get 5 nodes per island so the local
/// pool covers the fanout (the same sizing the sim-only WAN test uses);
/// churn schedules are compressed to fit the 2 s window.
const std::map<std::string, ParityBounds>& parity_bounds() {
  static const std::map<std::string, ParityBounds> bounds{
      {"paper60", {}},
      {"fig2", {}},
      {"fig4", {}},
      {"fig6", {}},
      {"fig7", {}},
      {"fig8", {}},
      {"fig9", {85.0, -1.0, -1.0, {"t1_s=1", "t2_s=2"}}},
      {"churn",
       {70.0, -1.0, -1.0,
        {"churn_every_s=1", "churn_down_s=1", "churn_count=2"}}},
      {"burst-loss", {55.0, -1.0, -1.0, {}}},
      {"semantic-streams", {60.0, -1.0, -1.0, {}}},
      // Scale presets run here at the common n=12 override: what the suite
      // pins is their partial-view configuration (bounded views on both
      // paths), not the 10^5 population itself (the scale-smoke ctest
      // covers that).
      {"scale-1e5", {70.0, -1.0, -1.0, {}}},
      {"scale-1e6", {70.0, -1.0, -1.0, {}}},
      // Uniform selection spreads fanout over the whole group: with three
      // islands most datagrams cross. Locality bias must push the cross
      // share under the uniform floor by a wide margin on BOTH paths.
      {"wan-clusters", {85.0, -1.0, 0.5, {"n=15"}}},
      {"wan-directional", {75.0, 0.4, 0.0, {"n=15"}}},
      {"wan-directional-churn",
       {60.0, 0.45, 0.0,
        {"n=15", "churn_every_s=1", "churn_down_s=1", "churn_count=2"}}},
      // The oracle-free presets: liveness is gossiped (GossipMembership),
      // so bridge re-election and rejoin run on suspicion timeouts alone —
      // with failure_detector=false on BOTH paths. Floors sit below the
      // detector-driven churn presets because suspicion has built-in lag
      // (a few silent rounds before anyone reroutes).
      {"churn-blind",
       {55.0, 0.45, 0.0,
        {"n=15", "churn_every_s=1", "churn_down_s=1", "churn_count=2"}}},
      {"host-migration",
       {60.0, -1.0, -1.0,
        {"churn_every_s=1", "churn_down_s=1", "churn_count=2"}}},
      // The self-tuning presets: the control plane actuates p_local and
      // fanout on BOTH paths, so assert_invariants additionally checks the
      // actuators landed inside their clamps and the two paths converged
      // into the same p_local band (see the adaptive block there).
      {"adaptive-wan", {65.0, 0.45, 0.0, {"n=15"}}},
      {"adaptive-backpressure", {60.0, -1.0, -1.0, {"initial_rate=2"}}},
      // The fault-injection presets: chaos-soak mutates datagrams mid-run
      // (the whole-window average absorbs the burst, hence the low floor),
      // asymmetric-partition mutes one direction of two links under
      // gossiped liveness, gray-failure stalls and clock-skews nodes that
      // must stay up. assert_invariants adds the chaos receipts and the
      // post-window self-healing floor for these.
      {"chaos-soak", {55.0, -1.0, -1.0, {}}},
      {"asymmetric-partition", {60.0, -1.0, -1.0, {}}},
      {"gray-failure", {70.0, -1.0, -1.0, {}}},
  };
  return bounds;
}

struct PairResults {
  ScenarioResults sim;
  std::vector<std::size_t> sim_memberships;
  /// Third column: the same preset on the multi-core sharded simulator at
  /// sim_shards=4 — every invariant asserted on the classic sim column is
  /// asserted here too, so a preset cannot regress only on the sharded
  /// engine.
  ShardedScenarioResults sharded;
  WallclockResults wc;
};

PairResults run_pair(const std::string& name, const Config& cfg) {
  const ScenarioParams params = ScenarioRegistry::instance().build(name, cfg);
  PairResults out;
  {
    Scenario scenario(params);
    out.sim = scenario.run();
    for (const auto& node : scenario.nodes()) {
      out.sim_memberships.push_back(node->membership().size());
    }
  }
  {
    ScenarioParams sharded_params = params;
    sharded_params.sim_shards = 4;
    ShardedScenario scenario(sharded_params);
    out.sharded = scenario.run();
  }
  WallclockScenario wallclock(params, WallclockOptions{.shards = 4});
  out.wc = wallclock.run();
  return out;
}

double cross_share(std::uint64_t intra, std::uint64_t cross) {
  const std::uint64_t sent = intra + cross;
  return sent == 0 ? 0.0
                   : static_cast<double>(cross) / static_cast<double>(sent);
}

void assert_invariants(const ScenarioParams& params, const PairResults& r,
                       const ParityBounds& bounds) {
  const ScenarioResults& sh = r.sharded.base;

  // All paths evaluated real traffic and met the preset's delivery floor.
  EXPECT_GT(r.sim.delivery.messages, 0u);
  EXPECT_GT(sh.delivery.messages, 0u);
  EXPECT_GT(r.wc.delivery.messages, 0u);
  EXPECT_GE(r.sim.delivery.avg_receiver_pct, bounds.min_receiver_pct);
  EXPECT_GE(sh.delivery.avg_receiver_pct, bounds.min_receiver_pct);
  EXPECT_GE(r.wc.delivery.avg_receiver_pct, bounds.min_receiver_pct);

  // WAN topology: both paths split traffic by the same cluster rule, and
  // the share lands on the same side of the preset's bound.
  if (params.network.clusters > 1) {
    const double sim_share = cross_share(r.sim.net.sent_intra_cluster,
                                         r.sim.net.sent_cross_cluster);
    const double wc_share =
        cross_share(r.wc.sent_intra_cluster, r.wc.sent_cross_cluster);
    const double sharded_share =
        cross_share(sh.net.sent_intra_cluster, sh.net.sent_cross_cluster);
    EXPECT_GT(r.sim.net.sent_intra_cluster, 0u);
    EXPECT_GT(sh.net.sent_intra_cluster, 0u);
    EXPECT_GT(r.wc.sent_intra_cluster, 0u);
    EXPECT_GT(r.sim.net.sent_cross_cluster, 0u);
    EXPECT_GT(sh.net.sent_cross_cluster, 0u);
    EXPECT_GT(r.wc.sent_cross_cluster, 0u);
    if (bounds.max_cross_share >= 0.0) {
      EXPECT_LE(sim_share, bounds.max_cross_share);
      EXPECT_LE(sharded_share, bounds.max_cross_share);
      EXPECT_LE(wc_share, bounds.max_cross_share);
    }
    if (bounds.min_cross_share >= 0.0) {
      EXPECT_GE(sim_share, bounds.min_cross_share);
      EXPECT_GE(sharded_share, bounds.min_cross_share);
      EXPECT_GE(wc_share, bounds.min_cross_share);
    }
  }

  // Self-tuning control plane: both paths run the same feedback layer, so
  // the actuators must land inside their configured clamps on each, the
  // blocking-BROADCAST queues must respect the pending cap, and locality
  // runs must converge into the same p_local band (wall-clock timing is
  // noisy, so the cross-path contract is a band, not equality).
  if (params.adaptive && params.adaptation.control.enabled) {
    const auto& control = params.adaptation.control;
    EXPECT_LE(r.sim.max_pending_depth, params.pending_cap);
    EXPECT_LE(sh.max_pending_depth, params.pending_cap);
    EXPECT_LE(r.wc.max_pending_depth, params.pending_cap);
    EXPECT_GE(r.sim.avg_effective_fanout, 1.0);
    EXPECT_GE(sh.avg_effective_fanout, 1.0);
    EXPECT_GE(r.wc.avg_effective_fanout, 1.0);
    if (params.locality.enabled) {
      EXPECT_GE(r.sim.avg_p_local, control.p_local_min);
      EXPECT_LE(r.sim.avg_p_local, control.p_local_max);
      EXPECT_GE(sh.avg_p_local, control.p_local_min);
      EXPECT_LE(sh.avg_p_local, control.p_local_max);
      EXPECT_GE(r.wc.avg_p_local, control.p_local_min);
      EXPECT_LE(r.wc.avg_p_local, control.p_local_max);
      EXPECT_NEAR(r.sim.avg_p_local, r.wc.avg_p_local, 0.35);
      EXPECT_NEAR(r.sim.avg_p_local, sh.avg_p_local, 0.35);
    }
  }

  // A failure schedule must actually fire: down nodes suppress traffic on
  // both paths (the wall-clock scheduler thread really detached them).
  if (!params.failure_schedule.empty()) {
    EXPECT_GT(r.sim.net.dropped_down, 0u);
    EXPECT_GT(sh.net.dropped_down, 0u);
    EXPECT_GT(r.wc.fabric_dropped_down, 0u);
  }

  // Fault-plane receipts and self-healing. A preset with a chaos schedule
  // must show the faults actually fired (the injected kinds' counters
  // moved on every path where the kind is live) and that the group healed:
  // delivery over the window starting kChaosRecoveryRounds after the last
  // fault window closes is back above the preset floor on BOTH paths. A
  // preset without one must stay spotless — the null-plane path cannot
  // corrupt, so any decode drop on a clean run is a codec regression.
  if (!params.chaos.empty()) {
    if (params.chaos.corrupts()) {
      // Corruption/truncation reached live decoders and was dropped there
      // without crashing either harness (finishing the run IS the
      // no-crash receipt).
      EXPECT_GT(r.sim.chaos.mutations(), 0u);
      EXPECT_GT(sh.chaos.mutations(), 0u);
      EXPECT_GT(r.wc.chaos.mutations(), 0u);
      EXPECT_GT(r.sim.decode_failures, 0u);
      EXPECT_GT(sh.decode_failures, 0u);
      EXPECT_GT(r.wc.decode_drops, 0u);
    }
    if (params.chaos.asymmetric()) {
      // One-way rules really dropped datagrams (fabric-side counters on
      // both paths) and the suspicion plane noticed the silence; the
      // membership band below is the re-convergence receipt.
      EXPECT_GT(r.sim.net.dropped_chaos, 0u);
      EXPECT_GT(sh.net.dropped_chaos, 0u);
      EXPECT_GT(r.wc.dropped_chaos, 0u);
      EXPECT_GT(r.sim.chaos.dropped_oneway, 0u);
      EXPECT_GT(sh.chaos.dropped_oneway, 0u);
      EXPECT_GT(r.wc.chaos.dropped_oneway, 0u);
      EXPECT_GT(r.sim.membership_transitions.suspicions, 0u);
      EXPECT_GT(sh.membership_transitions.suspicions, 0u);
      EXPECT_GT(r.wc.membership_transitions.suspicions, 0u);
    }
    if (params.chaos.gray()) {
      // Stalls and skewed clock reads are wall-clock phenomena (the
      // simulator runs double as the clean control); the membership
      // contract is the point: slow-but-up nodes never earn a down
      // verdict on any path.
      EXPECT_GT(r.wc.chaos.stalls, 0u);
      EXPECT_GT(r.wc.chaos.skew_reads, 0u);
      EXPECT_EQ(r.sim.membership_transitions.downs, 0u);
      EXPECT_EQ(sh.membership_transitions.downs, 0u);
      EXPECT_EQ(r.wc.membership_transitions.downs, 0u);
    }
    ASSERT_TRUE(r.sim.post_chaos_delivery.has_value());
    ASSERT_TRUE(sh.post_chaos_delivery.has_value());
    ASSERT_TRUE(r.wc.post_chaos_delivery.has_value());
    EXPECT_GT(r.sim.post_chaos_delivery->messages, 0u);
    EXPECT_GT(sh.post_chaos_delivery->messages, 0u);
    EXPECT_GT(r.wc.post_chaos_delivery->messages, 0u);
    EXPECT_GE(r.sim.post_chaos_delivery->avg_receiver_pct,
              bounds.min_receiver_pct);
    EXPECT_GE(sh.post_chaos_delivery->avg_receiver_pct,
              bounds.min_receiver_pct);
    EXPECT_GE(r.wc.post_chaos_delivery->avg_receiver_pct,
              bounds.min_receiver_pct);
  } else {
    EXPECT_EQ(r.sim.chaos.mutations(), 0u);
    EXPECT_EQ(sh.chaos.mutations(), 0u);
    EXPECT_EQ(r.wc.chaos.mutations(), 0u);
    EXPECT_EQ(r.sim.decode_failures, 0u);
    EXPECT_EQ(sh.decode_failures, 0u);
    EXPECT_EQ(r.wc.decode_drops, 0u);
  }

  // Membership after the run. Full-membership groups end at n-1 on every
  // path — churned nodes were re-added on recovery (the failure-detector
  // path), or never left the views at all. Partial views stay bounded.
  ASSERT_EQ(r.sim_memberships.size(), params.n);
  ASSERT_EQ(r.sharded.membership_sizes.size(), params.n);
  ASSERT_EQ(r.wc.membership_sizes.size(), params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    if (params.gossip_membership) {
      // Gossiped liveness counts *up* peers only: nodes the suspicion
      // plane hasn't re-confirmed by run end may still be suspect, so the
      // contract is a band, not equality — but every node must have
      // re-learned most of the group (no mutual-tombstone isolation).
      EXPECT_GE(r.sim_memberships[i], params.n / 2) << "node " << i;
      EXPECT_LE(r.sim_memberships[i], params.n - 1) << "node " << i;
      EXPECT_GE(r.sharded.membership_sizes[i], params.n / 2) << "node " << i;
      EXPECT_LE(r.sharded.membership_sizes[i], params.n - 1) << "node " << i;
      EXPECT_GE(r.wc.membership_sizes[i], params.n / 2) << "node " << i;
      EXPECT_LE(r.wc.membership_sizes[i], params.n - 1) << "node " << i;
    } else if (params.partial_view) {
      EXPECT_GE(r.sim_memberships[i], 1u) << "node " << i;
      EXPECT_LE(r.sim_memberships[i], params.view_params.max_view)
          << "node " << i;
      EXPECT_GE(r.sharded.membership_sizes[i], 1u) << "node " << i;
      EXPECT_LE(r.sharded.membership_sizes[i], params.view_params.max_view)
          << "node " << i;
      EXPECT_GE(r.wc.membership_sizes[i], 1u) << "node " << i;
      EXPECT_LE(r.wc.membership_sizes[i], params.view_params.max_view)
          << "node " << i;
    } else {
      EXPECT_EQ(r.sim_memberships[i], params.n - 1) << "node " << i;
      EXPECT_EQ(r.sharded.membership_sizes[i], params.n - 1) << "node " << i;
      EXPECT_EQ(r.wc.membership_sizes[i], params.n - 1) << "node " << i;
    }
  }
}

TEST(ScenarioParityTest, EveryRegistryPresetRunsOnBothPaths) {
  const auto& registry = ScenarioRegistry::instance();
  std::set<std::string> covered;
  for (const ScenarioPreset* preset : registry.presets()) {
    SCOPED_TRACE("preset " + preset->name);
    ParityBounds bounds;  // generic contract for presets without an entry
    bounds.min_receiver_pct = 70.0;
    if (auto it = parity_bounds().find(preset->name);
        it != parity_bounds().end()) {
      bounds = it->second;
    }
    const Config cfg = make_config(bounds);
    const ScenarioParams params = registry.build(preset->name, cfg);
    const PairResults results = run_pair(preset->name, cfg);
    assert_invariants(params, results, bounds);
    covered.insert(preset->name);
  }
  // The coverage gate: every registered preset ran on all three paths —
  // classic sim, sharded sim (sim_shards=4) and wall-clock — so a new
  // preset cannot silently dodge the conformance contract, and the known
  // catalogue cannot shrink unnoticed. 3 columns x 22+ presets.
  EXPECT_EQ(covered.size(), registry.presets().size());
  EXPECT_GE(covered.size(), 22u);
  EXPECT_GE(3 * covered.size(), 66u);
}

TEST(ScenarioParityTest, PartialViewGroupsAgreeOnBothPaths) {
  // No preset enables lpbcast partial views by default; pin the wall-clock
  // partial-view path (bootstrap sampling, digest exchange over real
  // threads) against the simulator explicitly.
  ParityBounds bounds;
  bounds.overrides = {"partial_view=1"};
  const Config cfg = make_config(bounds);
  const ScenarioParams params =
      ScenarioRegistry::instance().build("paper60", cfg);
  ASSERT_TRUE(params.partial_view);
  const PairResults results = run_pair("paper60", cfg);
  assert_invariants(params, results, bounds);
}

TEST(ScenarioParityTest, LocalityOverPartialViewsRunsOnRealThreads) {
  // The deepest stack: LocalityView decorating a PartialView, on real
  // threads — bridge election out of partial knowledge must still bias
  // traffic onto the local island on both paths.
  ParityBounds bounds;
  bounds.min_receiver_pct = 60.0;
  bounds.max_cross_share = 0.5;
  bounds.overrides = {"n=15", "partial_view=1"};
  const Config cfg = make_config(bounds);
  const ScenarioParams params =
      ScenarioRegistry::instance().build("wan-directional", cfg);
  ASSERT_TRUE(params.partial_view && params.locality.enabled);
  const PairResults results = run_pair("wan-directional", cfg);
  assert_invariants(params, results, bounds);
}

TEST(ScenarioParityTest, WallclockRunsFormerSimulatorOnlyFeatures) {
  // Regression for the two retired validate() rejections: normal (Gaussian)
  // latency models and per-link overrides run on the fabric for real now —
  // both paths price links through the shared sim::DelaySampler — instead
  // of throwing (agb_sim used to translate the throw to exit 2).
  ParityBounds bounds;
  bounds.min_receiver_pct = 70.0;
  bounds.overrides = {"latency=normal:5:2"};
  const Config cfg = make_config(bounds);
  ScenarioParams params = ScenarioRegistry::instance().build("paper60", cfg);
  ASSERT_EQ(params.network.latency.kind, sim::LatencyModel::Kind::kNormal);
  params.network.clusters = 3;
  params.network.wan_latency = sim::LatencyModel::normal(40.0, 10.0);
  params.link_latencies.push_back({0, 1, sim::LatencyModel::fixed(9.0)});
  EXPECT_NO_THROW(WallclockScenario::validate(params));

  WallclockScenario wallclock(params, WallclockOptions{.shards = 4});
  const WallclockResults results = wallclock.run();
  EXPECT_GT(results.delivery.messages, 0u);
  EXPECT_GE(results.delivery.avg_receiver_pct, bounds.min_receiver_pct);
  EXPECT_GT(results.fabric_delivered, 0u);
  // The cluster rule really priced links: both sides of the split moved.
  EXPECT_GT(results.sent_intra_cluster, 0u);
  EXPECT_GT(results.sent_cross_cluster, 0u);
}

TEST(ScenarioParityTest, BackpressureQueuesAreBusyButBoundedOnBothPaths) {
  // The blocking-BROADCAST receipt: pin the allowed rate far below the
  // offered load, so arrivals must queue behind the token bucket — then the
  // pending queues on BOTH paths must have been used (depth > 0) and never
  // exceeded the cap (assert_invariants checks the bound).
  ParityBounds bounds;
  bounds.min_receiver_pct = 60.0;
  bounds.overrides = {"initial_rate=2", "pending_cap=16"};
  const Config cfg = make_config(bounds);
  const ScenarioParams params =
      ScenarioRegistry::instance().build("adaptive-backpressure", cfg);
  ASSERT_TRUE(params.adaptive && params.adaptation.control.enabled);
  ASSERT_EQ(params.pending_cap, 16u);
  const PairResults results = run_pair("adaptive-backpressure", cfg);
  assert_invariants(params, results, bounds);
  EXPECT_GT(results.sim.max_pending_depth, 0u);
  EXPECT_GT(results.wc.max_pending_depth, 0u);
}

/// Peak value of a series, and the last sample (the run-end state).
struct Trajectory {
  double peak = 0.0;
  double last = 0.0;
};

Trajectory summarize(const metrics::TimeSeries& ts) {
  Trajectory out;
  for (const auto& [t, v] : ts.points()) {
    out.peak = std::max(out.peak, v);
    out.last = v;
  }
  return out;
}

TEST(ScenarioParityTest, PLocalRisesUnderSqueezeAndRecoversOnBothPaths) {
  // The acceptance receipt for the control plane: under adaptive-wan's
  // mid-run buffer squeeze the group-mean p_local must RISE above its
  // configured base (the feedback layer pulls traffic onto the LAN
  // islands while drops die young), and after the squeeze heals it must
  // RELAX back toward base — observable as a trajectory on both harnesses.
  // The squeeze is made unmissable at this scale: every node drops to a
  // 6-slot buffer against a 120 msg/s offered load. The age marks are
  // raised to fit the 50 ms quick-scale rounds — WAN hops cost ~1 round
  // here (20-60 ms links), so events arrive several hops old and the
  // drop-age floor sits near 7-8, far above the paper-scale mark of 4.
  // starve_threshold=0 pins the starvation actuator off: with p_local
  // near its max the remote-novelty EWMA legitimately starves, and WHEN
  // that fires is wall-clock-timing-dependent — it would turn the
  // last-sample assertions below into a race. The starvation branch is
  // pinned by tests/control_plane_test.cc instead; this test is about
  // the congestion rise and the post-heal relax.
  ParityBounds bounds;
  bounds.overrides = {"n=15",         "rate=120",      "buf1=6",
                      "fraction=1.0", "duration_s=8",  "bucket_s=1",
                      "low_mark=9.5", "high_mark=11",  "starve_threshold=0"};
  const Config cfg = make_config(bounds);
  const ScenarioParams params =
      ScenarioRegistry::instance().build("adaptive-wan", cfg);
  ASSERT_TRUE(params.adaptive && params.adaptation.control.enabled);
  ASSERT_TRUE(params.locality.enabled);
  ASSERT_EQ(params.capacity_schedule.size(), 2u);  // squeeze, then heal
  const double base = params.locality.p_local;

  const PairResults results = run_pair("adaptive-wan", cfg);

  ASSERT_FALSE(results.sim.p_local_ts.empty());
  ASSERT_FALSE(results.wc.p_local_ts.empty());
  const Trajectory sim_traj = summarize(results.sim.p_local_ts);
  const Trajectory wc_traj = summarize(results.wc.p_local_ts);

  // Rose under congestion…
  EXPECT_GE(sim_traj.peak, base + 0.03);
  EXPECT_GE(wc_traj.peak, base + 0.03);
  // …and recovered after the heal: the run ends near base again, well
  // below the peak (the Nominal regime relaxes p_local toward base).
  EXPECT_LE(sim_traj.last, sim_traj.peak - 0.02);
  EXPECT_LE(wc_traj.last, wc_traj.peak - 0.02);
  EXPECT_NEAR(sim_traj.last, base, 0.05);
  EXPECT_NEAR(wc_traj.last, base, 0.05);
}

}  // namespace
}  // namespace agb::core
