#include "adaptive/robust_min_estimator.h"

#include <gtest/gtest.h>

namespace agb::adaptive {
namespace {

using gossip::MinSetEntry;

TEST(RobustMinEstimatorTest, K1DegeneratesToPlainMinimum) {
  RobustMinEstimator est(1, 0, 2, /*self=*/0, /*local=*/100);
  EXPECT_EQ(est.estimate(), 100u);
  est.on_entries(0, std::vector<MinSetEntry>{{5, 40}, {6, 70}});
  EXPECT_EQ(est.estimate(), 40u);
}

TEST(RobustMinEstimatorTest, K2IgnoresSingleOutlier) {
  RobustMinEstimator est(2, 0, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{5, 4}});  // pathological node
  // Known capacities: {4, 100}; the 2nd smallest is 100.
  EXPECT_EQ(est.estimate(), 100u);
  est.on_entries(0, std::vector<MinSetEntry>{{6, 60}});
  // {4, 60, 100} -> 2nd smallest 60.
  EXPECT_EQ(est.estimate(), 60u);
}

TEST(RobustMinEstimatorTest, DuplicateNodeCountsOnce) {
  RobustMinEstimator est(2, 0, 2, 0, 100);
  // The same constrained node advertised via several paths must not occupy
  // two of the k slots.
  est.on_entries(0, std::vector<MinSetEntry>{{5, 4}});
  est.on_entries(0, std::vector<MinSetEntry>{{5, 4}});
  est.on_entries(0, std::vector<MinSetEntry>{{5, 6}});
  EXPECT_EQ(est.estimate(), 100u);  // {4(node5), 100(self)} -> 2nd is 100
}

TEST(RobustMinEstimatorTest, PerNodeMinimumIsKept) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{5, 50}});
  est.on_entries(0, std::vector<MinSetEntry>{{5, 30}});
  est.on_entries(0, std::vector<MinSetEntry>{{5, 80}});  // higher: ignored
  EXPECT_EQ(est.estimate(), 30u);
}

TEST(RobustMinEstimatorTest, FloorDropsOutliersEntirely) {
  RobustMinEstimator est(1, /*floor=*/10, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{5, 4}, {6, 50}});
  // Node 5's capacity 4 < floor 10: ignored; min of the rest is 50.
  EXPECT_EQ(est.estimate(), 50u);
}

TEST(RobustMinEstimatorTest, HeaderIncludesSelfAndKSmallest) {
  RobustMinEstimator est(2, 0, 2, /*self=*/9, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{1, 10}, {2, 20}, {3, 30}});
  auto header = est.header_entries();
  // k=2 smallest are nodes 1 and 2; self (9,100) must also circulate.
  bool has_self = false, has_1 = false, has_2 = false, has_3 = false;
  for (const auto& e : header) {
    if (e.node == 9) has_self = true;
    if (e.node == 1) has_1 = true;
    if (e.node == 2) has_2 = true;
    if (e.node == 3) has_3 = true;
  }
  EXPECT_TRUE(has_self);
  EXPECT_TRUE(has_1);
  EXPECT_TRUE(has_2);
  EXPECT_FALSE(has_3);  // trimmed: not among the k smallest
}

TEST(RobustMinEstimatorTest, WindowExpiryForgetsDepartedNode) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{5, 10}});
  est.advance_to(1);
  EXPECT_EQ(est.estimate(), 10u);  // still in the completed-period window
  est.advance_to(2);
  EXPECT_EQ(est.estimate(), 100u);  // expired
}

TEST(RobustMinEstimatorTest, StalePeriodsIgnored) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.advance_to(5);
  est.on_entries(2, std::vector<MinSetEntry>{{5, 1}});
  EXPECT_EQ(est.estimate(), 100u);
}

TEST(RobustMinEstimatorTest, LaterPeriodFastForwards) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.on_entries(7, std::vector<MinSetEntry>{{5, 25}});
  EXPECT_EQ(est.period(), 7u);
  EXPECT_EQ(est.estimate(), 25u);
}

TEST(RobustMinEstimatorTest, LocalShrinkImmediateGrowthDeferred) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.set_local_capacity(40);
  EXPECT_EQ(est.estimate(), 40u);
  est.set_local_capacity(100);  // growth: current period keeps 40
  EXPECT_EQ(est.estimate(), 40u);
  est.advance_to(1);
  EXPECT_EQ(est.estimate(), 40u);  // history still holds it
  est.advance_to(2);
  EXPECT_EQ(est.estimate(), 100u);
}

TEST(RobustMinEstimatorTest, InvalidNodeEntriesIgnored) {
  RobustMinEstimator est(1, 0, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{kInvalidNode, 1}});
  EXPECT_EQ(est.estimate(), 100u);
}

TEST(RobustMinEstimatorTest, KLargerThanGroupFallsBackToLargestKnown) {
  RobustMinEstimator est(5, 0, 2, 0, 100);
  est.on_entries(0, std::vector<MinSetEntry>{{1, 10}, {2, 20}});
  // Only 3 capacities known ({10,20,100}); k=5 clamps to the largest.
  EXPECT_EQ(est.estimate(), 100u);
}

}  // namespace
}  // namespace agb::adaptive
