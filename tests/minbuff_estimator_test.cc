#include "adaptive/minbuff_estimator.h"

#include <gtest/gtest.h>

namespace agb::adaptive {
namespace {

TEST(MinBuffEstimatorTest, InitialEstimateIsLocalCapacity) {
  MinBuffEstimator est(2, 90);
  EXPECT_EQ(est.estimate(), 90u);
  EXPECT_EQ(est.period(), 0u);
  EXPECT_EQ(est.running_minimum(), 90u);
}

TEST(MinBuffEstimatorTest, HeaderFromCurrentPeriodLowersRunningMin) {
  MinBuffEstimator est(2, 90);
  est.on_header(0, 45);
  EXPECT_EQ(est.running_minimum(), 45u);
  EXPECT_EQ(est.estimate(), 45u);
  est.on_header(0, 60);  // higher: no effect
  EXPECT_EQ(est.estimate(), 45u);
}

TEST(MinBuffEstimatorTest, StaleHeaderIgnored) {
  MinBuffEstimator est(2, 90);
  est.advance_to(3);
  est.on_header(1, 10);  // two periods old
  EXPECT_EQ(est.estimate(), 90u);
}

TEST(MinBuffEstimatorTest, LaterHeaderFastForwardsPeriod) {
  MinBuffEstimator est(2, 90);
  est.on_header(5, 30);
  EXPECT_EQ(est.period(), 5u);
  EXPECT_EQ(est.running_minimum(), 30u);
}

TEST(MinBuffEstimatorTest, AdvanceResetsRunningToLocal) {
  MinBuffEstimator est(1, 90);  // window 1: history ignored
  est.on_header(0, 30);
  est.advance_to(1);
  EXPECT_EQ(est.running_minimum(), 90u);
  EXPECT_EQ(est.estimate(), 90u);  // W=1 forgets immediately
}

TEST(MinBuffEstimatorTest, WindowKeepsRecentCompletedPeriods) {
  MinBuffEstimator est(2, 90);  // current + 1 completed
  est.on_header(0, 30);
  est.advance_to(1);
  // Period 0's minimum (30) still participates.
  EXPECT_EQ(est.estimate(), 30u);
  est.advance_to(2);
  // Period 0 has left the window; period 1 contributed 90.
  EXPECT_EQ(est.estimate(), 90u);
}

TEST(MinBuffEstimatorTest, ObsoleteConstraintExpiresAfterWindow) {
  // The constrained node "leaves": its minimum must age out after W periods,
  // the property the paper uses to re-grow the allowed rate (§3.1).
  MinBuffEstimator est(3, 120);
  est.on_header(0, 20);
  EXPECT_EQ(est.estimate(), 20u);
  est.advance_to(1);
  EXPECT_EQ(est.estimate(), 20u);
  est.advance_to(2);
  EXPECT_EQ(est.estimate(), 20u);
  est.advance_to(3);  // period 0 out of the 3-period window
  EXPECT_EQ(est.estimate(), 120u);
}

TEST(MinBuffEstimatorTest, SkippedPeriodsFilledWithLocalCapacity) {
  MinBuffEstimator est(3, 80);
  est.on_header(0, 10);
  est.advance_to(5);  // long stall: periods 1..4 never saw remote data
  // Period 0's value is long gone; the filled periods carry 80.
  EXPECT_EQ(est.estimate(), 80u);
}

TEST(MinBuffEstimatorTest, SetLocalCapacityLowersRunningImmediately) {
  MinBuffEstimator est(2, 90);
  est.set_local_capacity(40);
  EXPECT_EQ(est.running_minimum(), 40u);
  EXPECT_EQ(est.estimate(), 40u);
  EXPECT_EQ(est.local_capacity(), 40u);
}

TEST(MinBuffEstimatorTest, CapacityGrowthShowsAfterWindowRollsOver) {
  MinBuffEstimator est(2, 40);
  est.advance_to(1);
  est.set_local_capacity(90);
  // Running minimum of the current period keeps min(40-history, ...) only
  // through the window; after two advances only 90 remains.
  EXPECT_EQ(est.estimate(), 40u);  // previous period still in window
  est.advance_to(2);
  // Period 1 completed with running=min(40,…)=40? No: running was reset to
  // local (40) at advance_to(1), then set_local_capacity(90) does not raise
  // an already-low running minimum. Hence period 1 contributes 40.
  EXPECT_EQ(est.estimate(), 40u);
  est.advance_to(3);
  EXPECT_EQ(est.estimate(), 90u);
}

TEST(MinBuffEstimatorTest, WindowZeroClampsToOne) {
  MinBuffEstimator est(0, 50);
  est.on_header(0, 10);
  est.advance_to(1);
  EXPECT_EQ(est.estimate(), 50u);  // behaves as W=1
}

TEST(MinBuffEstimatorTest, MultipleRemoteMinimaTakeGlobalMin) {
  MinBuffEstimator est(2, 100);
  est.on_header(0, 70);
  est.on_header(0, 40);
  est.on_header(0, 55);
  EXPECT_EQ(est.estimate(), 40u);
}

TEST(MinBuffEstimatorTest, AdvanceToPastPeriodIsNoop) {
  MinBuffEstimator est(2, 100);
  est.advance_to(4);
  est.on_header(4, 25);
  est.advance_to(2);  // backwards: ignored
  EXPECT_EQ(est.period(), 4u);
  EXPECT_EQ(est.estimate(), 25u);
}

}  // namespace
}  // namespace agb::adaptive
