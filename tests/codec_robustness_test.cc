// Fuzz-style robustness tests for the wire codec: whatever arrives off the
// network — truncated, corrupted, forged — decode must answer std::nullopt
// (or std::monostate from decode_any), never throw, never read out of
// bounds, never allocate absurdly. Run under ASan/UBSan in CI for the
// out-of-bounds half of the guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/shared_bytes.h"
#include "fault/fault_plane.h"
#include "gossip/message.h"

namespace agb::gossip {
namespace {

GossipMessage rich_message() {
  GossipMessage m;
  m.sender = 12;
  m.round = 345;
  m.period = 7;
  m.min_buff = 60;
  m.min_set = {{3, 40}, {9, 55}};
  m.membership.subs = {1, 2, 3};
  m.membership.unsubs = {4};
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.id = EventId{static_cast<NodeId>(i), i * 11};
    e.age = static_cast<std::uint32_t>(i);
    e.created_at = static_cast<TimeMs>(1000 + i);
    e.stream = static_cast<std::uint32_t>(i % 2);
    e.payload = make_payload({0xde, 0xad, 0xbe, 0xef});
    m.events.push_back(std::move(e));
  }
  m.seen_ids = {{1, 2}, {3, 4}, {5, 6}};
  membership::MemberRecord record;
  record.node = 9;
  record.revision = 2;
  record.heartbeat = 70;
  record.state = membership::LivenessState::kSuspect;
  record.binding = membership::EndpointBinding{0x0a000001, 9100};
  m.member_records.push_back(record);
  return m;
}

RepairRequest rich_request() {
  RepairRequest r;
  r.sender = 9;
  r.ids = {{1, 2}, {3, 4}};
  return r;
}

RepairReply rich_reply() {
  RepairReply r;
  r.sender = 4;
  Event e;
  e.id = EventId{2, 7};
  e.payload = make_payload({0x01, 0x02});
  r.events.push_back(std::move(e));
  return r;
}

TEST(CodecRobustnessTest, EveryTruncationOfAGossipMessageFailsCleanly) {
  const auto bytes = rich_message().encode();
  ASSERT_TRUE(GossipMessage::decode(bytes).has_value());
  // The member_records section is tail-optional (pre-membership peers just
  // stop before it), so the one cut exactly at its boundary decodes as the
  // same message with an empty digest; every other cut must fail.
  GossipMessage without_digest = rich_message();
  without_digest.member_records.clear();
  const std::size_t tail_boundary = without_digest.encode().size();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    if (len == tail_boundary) {
      auto decoded = GossipMessage::decode(prefix);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_TRUE(decoded->member_records.empty());
      continue;
    }
    EXPECT_FALSE(GossipMessage::decode(prefix).has_value()) << "len " << len;
    EXPECT_TRUE(std::holds_alternative<std::monostate>(decode_any(prefix)))
        << "len " << len;
  }
}

TEST(CodecRobustnessTest, EveryTruncationOfRepairMessagesFailsCleanly) {
  for (const auto& bytes : {rich_request().encode(), rich_reply().encode()}) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
      EXPECT_TRUE(std::holds_alternative<std::monostate>(decode_any(prefix)))
          << "len " << len;
    }
  }
}

TEST(CodecRobustnessTest, TrailingGarbageIsRejected) {
  for (auto bytes : {rich_message().encode(), rich_request().encode(),
                     rich_reply().encode()}) {
    bytes.push_back(0x00);
    EXPECT_TRUE(std::holds_alternative<std::monostate>(decode_any(bytes)));
  }
}

TEST(CodecRobustnessTest, WrongMagicVersionAndTypeAreRejected) {
  const auto good = rich_message().encode();

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(GossipMessage::decode(bad_magic).has_value());

  auto bad_version = good;
  bad_version[2] = kWireVersion + 1;
  EXPECT_FALSE(GossipMessage::decode(bad_version).has_value());
  EXPECT_TRUE(
      std::holds_alternative<std::monostate>(decode_any(bad_version)));

  auto bad_type = good;
  bad_type[3] = 0x77;  // no such MessageType
  EXPECT_TRUE(std::holds_alternative<std::monostate>(decode_any(bad_type)));

  // A gossip frame handed to the wrong decoder must fail the type check.
  EXPECT_FALSE(RepairRequest::decode(good).has_value());
  EXPECT_FALSE(RepairReply::decode(good).has_value());
}

// A forged count must neither allocate terabytes nor walk off the buffer.
TEST(CodecRobustnessTest, OverlongCountsAreRejectedWithoutHugeAllocation) {
  ByteWriter w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(1);  // kGossip
  w.u32(12);
  w.varint(1);  // round
  w.varint(1);  // period
  w.varint(1);  // min_buff
  w.varint(0xffff'ffff'ffffull);  // min_set count: absurd
  auto bytes = std::move(w).take();
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());

  // Same forged count on the event-ids of a repair request.
  ByteWriter r;
  r.u16(kWireMagic);
  r.u8(kWireVersion);
  r.u8(2);  // kRepairRequest
  r.u32(9);
  r.varint(0x7fff'ffff'ffff'ffffull);
  auto request_bytes = std::move(r).take();
  EXPECT_FALSE(RepairRequest::decode(request_bytes).has_value());
}

TEST(CodecRobustnessTest, OverlongPayloadLengthInsideEventIsRejected) {
  ByteWriter w;
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(1);  // kGossip
  w.u32(12);
  w.varint(1);  // round
  w.varint(1);  // period
  w.varint(1);  // min_buff
  w.varint(0);  // min_set
  w.varint(0);  // subs
  w.varint(0);  // unsubs
  w.varint(1);  // one event...
  w.u32(1);     // origin
  w.varint(1);  // sequence
  w.varint(0);  // age
  w.i64(0);     // created_at
  w.varint(0);  // stream
  w.u8(0);      // flags
  w.varint(1'000'000);  // payload length far past the end
  auto bytes = std::move(w).take();
  EXPECT_FALSE(GossipMessage::decode(bytes).has_value());
}

// Random corruption sweep: flip bytes of valid frames and decode. The
// assertions are "does not crash / throw / OOB"; any structurally valid
// result is acceptable.
TEST(CodecRobustnessTest, RandomByteFlipsNeverThrow) {
  Rng rng(2026);
  const auto base = rich_message().encode();
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = base;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.next_below(bytes.size()));
      bytes[pos] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    EXPECT_NO_THROW({ auto result = decode_any(bytes); (void)result; });
  }
}

// The live-bytes regression corpus: run real encoded frames through the
// fault plane's own mutator — the exact corruption/truncation live chaos
// runs inject at the send_batch choke point — and decode every product.
// This is the same code path scenario chaos-soak exercises end-to-end,
// distilled to a deterministic ASan/UBSan-friendly sweep, plus a replay of
// the plane's bounded corpus() sample.
TEST(CodecRobustnessTest, ChaosMutatedFramesNeverThrow) {
  fault::ChaosSchedule schedule;
  schedule.rules = {
      {fault::FaultKind::kCorrupt, 1.0, fault::kAnyNode, fault::kAnyNode, 0,
       0, fault::kNoEnd},
      {fault::FaultKind::kTruncate, 0.5, fault::kAnyNode, fault::kAnyNode, 0,
       0, fault::kNoEnd},
  };
  fault::FaultPlane plane(schedule, fault::chaos_seed(2026));
  const std::vector<SharedBytes> frames = {
      SharedBytes(rich_message().encode()),
      SharedBytes(rich_request().encode()),
      SharedBytes(rich_reply().encode()),
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const auto& frame = frames[static_cast<std::size_t>(trial) % frames.size()];
    const fault::FaultAction action = plane.sample(0, 1, 0);
    ASSERT_TRUE(action.corrupt);  // rate 1.0: every frame gets mutated
    const SharedBytes mutated = plane.mutate(frame, action);
    EXPECT_NO_THROW({ auto result = decode_any(mutated); (void)result; });
  }
  // Replay the plane's retained corpus sample — the exact bytes a live
  // chaos run would hand to this suite.
  const auto corpus = plane.corpus();
  ASSERT_FALSE(corpus.empty());
  for (const auto& entry : corpus) {
    EXPECT_NO_THROW({ auto result = decode_any(entry); (void)result; });
  }
}

TEST(CodecRobustnessTest, RandomGarbageNeverThrows) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    EXPECT_NO_THROW({ auto result = decode_any(bytes); (void)result; });
  }
}

}  // namespace
}  // namespace agb::gossip
