#include "adaptive/rate_adapter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace agb::adaptive {
namespace {

AdaptiveParams base_params() {
  AdaptiveParams p;
  p.low_age_mark = 4.0;
  p.high_age_mark = 6.0;
  p.decrease_factor = 0.1;
  p.increase_factor = 0.2;
  p.increase_probability = 1.0;  // deterministic unless a test overrides
  p.token_low_frac = 0.25;
  p.token_high_frac = 0.75;
  p.bucket_capacity = 8.0;
  p.initial_rate = 10.0;
  p.min_rate = 1.0;
  p.max_rate = 100.0;
  return p;
}

TEST(RateAdapterTest, LowAgeTriggersMultiplicativeDecrease) {
  RateAdapter adapter(base_params(), Rng(1));
  const double rate = adapter.update(/*avg_age=*/3.0, /*avg_tokens=*/0.0);
  EXPECT_DOUBLE_EQ(rate, 9.0);  // 10 * (1 - 0.1)
  EXPECT_EQ(adapter.last_action(), RateAdapter::Action::kDecrease);
}

TEST(RateAdapterTest, UnusedAllowanceTriggersDecreaseEvenWhenAgeHigh) {
  // avgTokens high means the sender is not using its allowance; the paper
  // shrinks it so a burst cannot exploit banked rate (§3.3).
  RateAdapter adapter(base_params(), Rng(1));
  const double rate = adapter.update(/*avg_age=*/9.0, /*avg_tokens=*/7.0);
  EXPECT_DOUBLE_EQ(rate, 9.0);
  EXPECT_EQ(adapter.last_action(), RateAdapter::Action::kDecrease);
}

TEST(RateAdapterTest, HighAgeWithFullUsageIncreases) {
  RateAdapter adapter(base_params(), Rng(1));
  const double rate = adapter.update(/*avg_age=*/7.0, /*avg_tokens=*/1.0);
  EXPECT_DOUBLE_EQ(rate, 12.0);  // 10 * (1 + 0.2)
  EXPECT_EQ(adapter.last_action(), RateAdapter::Action::kIncrease);
}

TEST(RateAdapterTest, HighAgeWithPartialUsageHolds) {
  // avgTokens between the marks: neither congested nor fully used.
  RateAdapter adapter(base_params(), Rng(1));
  const double rate = adapter.update(/*avg_age=*/7.0, /*avg_tokens=*/4.0);
  EXPECT_DOUBLE_EQ(rate, 10.0);
  EXPECT_EQ(adapter.last_action(), RateAdapter::Action::kHold);
}

TEST(RateAdapterTest, DeadBandBetweenMarksHolds) {
  RateAdapter adapter(base_params(), Rng(1));
  const double rate = adapter.update(/*avg_age=*/5.0, /*avg_tokens=*/1.0);
  EXPECT_DOUBLE_EQ(rate, 10.0);
  EXPECT_EQ(adapter.last_action(), RateAdapter::Action::kHold);
}

TEST(RateAdapterTest, GammaZeroNeverIncreases) {
  AdaptiveParams params = base_params();
  params.increase_probability = 0.0;
  RateAdapter adapter(params, Rng(1));
  for (int i = 0; i < 50; ++i) {
    adapter.update(9.0, 0.0);
  }
  EXPECT_DOUBLE_EQ(adapter.rate(), 10.0);
}

TEST(RateAdapterTest, GammaControlsIncreaseFrequency) {
  AdaptiveParams params = base_params();
  params.increase_probability = 0.1;
  params.increase_factor = 0.0;  // keep the rate fixed; count actions
  RateAdapter adapter(params, Rng(7));
  int increases = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    adapter.update(9.0, 0.0);
    if (adapter.last_action() == RateAdapter::Action::kIncrease) ++increases;
  }
  EXPECT_NEAR(static_cast<double>(increases) / rounds, 0.1, 0.01);
}

TEST(RateAdapterTest, RateClampsAtMinimum) {
  RateAdapter adapter(base_params(), Rng(1));
  for (int i = 0; i < 200; ++i) adapter.update(0.0, 0.0);
  EXPECT_DOUBLE_EQ(adapter.rate(), 1.0);
}

TEST(RateAdapterTest, RateClampsAtMaximum) {
  RateAdapter adapter(base_params(), Rng(1));
  for (int i = 0; i < 200; ++i) adapter.update(9.0, 0.0);
  EXPECT_DOUBLE_EQ(adapter.rate(), 100.0);
}

TEST(RateAdapterTest, SetRateClampsToo) {
  RateAdapter adapter(base_params(), Rng(1));
  adapter.set_rate(0.01);
  EXPECT_DOUBLE_EQ(adapter.rate(), 1.0);
  adapter.set_rate(5000.0);
  EXPECT_DOUBLE_EQ(adapter.rate(), 100.0);
}

TEST(RateAdapterTest, ConvergesFromAboveUnderCongestion) {
  // Persistent low age drives the rate down geometrically.
  RateAdapter adapter(base_params(), Rng(1));
  double prev = adapter.rate();
  for (int i = 0; i < 10; ++i) {
    const double next = adapter.update(2.0, 0.0);
    EXPECT_LT(next, prev);
    prev = next;
  }
  EXPECT_NEAR(prev, 10.0 * std::pow(0.9, 10), 1e-9);
}

}  // namespace
}  // namespace agb::adaptive
