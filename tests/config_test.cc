#include "common/config.h"

#include <gtest/gtest.h>

namespace agb {
namespace {

TEST(ConfigTest, ParsePairs) {
  Config c;
  std::string error;
  EXPECT_TRUE(c.parse_pair("n=60", &error));
  EXPECT_TRUE(c.parse_pair("rate=30.5", &error));
  EXPECT_EQ(c.get_int("n", 0), 60);
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 30.5);
}

TEST(ConfigTest, ParseArgsSkipsProgramName) {
  const char* argv[] = {"prog", "a=1", "b=two"};
  Config c;
  std::string error;
  ASSERT_TRUE(c.parse_args(3, argv, &error));
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

TEST(ConfigTest, MalformedTokenRejected) {
  Config c;
  std::string error;
  EXPECT_FALSE(c.parse_pair("novalue", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(c.parse_pair("=value", &error));
}

TEST(ConfigTest, ValueMayContainEquals) {
  Config c;
  std::string error;
  ASSERT_TRUE(c.parse_pair("expr=a=b", &error));
  EXPECT_EQ(c.get_string("expr", ""), "a=b");
}

TEST(ConfigTest, DefaultsWhenAbsent) {
  Config c;
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(c.get_string("missing", "x"), "x");
  EXPECT_TRUE(c.get_bool("missing", true));
}

TEST(ConfigTest, BoolParsing) {
  Config c;
  c.set("a", "true");
  c.set("b", "1");
  c.set("c", "YES");
  c.set("d", "on");
  c.set("e", "false");
  c.set("f", "0");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_TRUE(c.get_bool("d", false));
  EXPECT_FALSE(c.get_bool("e", true));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(ConfigTest, LastSetWins) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(ConfigTest, UnusedKeysReported) {
  Config c;
  c.set("used", "1");
  c.set("typo_key", "1");
  (void)c.get_int("used", 0);
  auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo_key");
}

TEST(ConfigTest, RawReturnsNulloptWhenMissing) {
  Config c;
  EXPECT_FALSE(c.raw("nope").has_value());
}

}  // namespace
}  // namespace agb
