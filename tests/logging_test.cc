#include "common/logging.h"

#include <gtest/gtest.h>

namespace agb {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotCrash) {
  set_log_level(LogLevel::kError);
  log_line(LogLevel::kDebug, "hidden");
  log_fmt(LogLevel::kInfo, "hidden %d", 42);
  AGB_LOG_WARN("hidden %s", "too");
}

TEST_F(LoggingTest, EmittedLevelsDoNotCrash) {
  set_log_level(LogLevel::kOff);  // keep test output clean
  log_line(LogLevel::kError, "visible-if-enabled");
  log_fmt(LogLevel::kError, "value=%d float=%.2f", 7, 1.5);
}

TEST_F(LoggingTest, LongMessagesAreTruncatedSafely) {
  set_log_level(LogLevel::kOff);
  std::string huge(10'000, 'x');
  log_fmt(LogLevel::kError, "%s", huge.c_str());  // must not overflow
}

}  // namespace
}  // namespace agb
