#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace agb {
namespace {

TEST(Splitmix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(Splitmix64Test, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit w.h.p.
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(33.3);
  EXPECT_NEAR(sum / n, 33.3, 1.0);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(5.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, SampleIndicesAreDistinctAndInRange) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.sample_indices(20, 5);
    ASSERT_EQ(sample.size(), 5u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (auto idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(RngTest, SampleIndicesClampsToPopulation) {
  Rng rng(41);
  auto sample = rng.sample_indices(3, 10);
  ASSERT_EQ(sample.size(), 3u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<std::size_t>{0, 1, 2}));
}

TEST(RngTest, SampleIndicesZero) {
  Rng rng(43);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
  EXPECT_TRUE(rng.sample_indices(0, 3).empty());
}

TEST(RngTest, SampleIndicesApproximatelyUniform) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (auto idx : rng.sample_indices(10, 3)) ++counts[idx];
  }
  // Each index is selected with probability 3/10.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(59);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace agb
