#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace agb::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorTest, ClockAdvancesBeforeCallbackRuns) {
  // Regression test: callbacks scheduling relative delays must observe the
  // fire time, not the previous event's time (this bug skewed Poisson
  // arrival rates by ~30% before it was fixed).
  Simulator sim;
  TimeMs observed = -1;
  sim.at(50, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 50);
}

TEST(SimulatorTest, RelativeChainHasExactCadence) {
  Simulator sim;
  std::vector<TimeMs> fire_times;
  std::function<void()> tick = [&] {
    fire_times.push_back(sim.now());
    if (fire_times.size() < 5) sim.after(10, tick);
  };
  sim.after(10, tick);
  sim.run();
  EXPECT_EQ(fire_times, (std::vector<TimeMs>{10, 20, 30, 40, 50}));
}

TEST(SimulatorTest, AtClampsToNow) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 100);
  TimeMs fired_at = -1;
  sim.at(5, [&] { fired_at = sim.now(); });  // in the past: fires "now"
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  TimeMs fired_at = -1;
  sim.after(-50, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(100);  // queue empties; clock still reaches the deadline
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.run_for(25);
  EXPECT_EQ(sim.now(), 25);
  sim.run_for(25);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTimerTest, FiresAtStartThenEveryPeriod) {
  Simulator sim;
  std::vector<TimeMs> fires;
  PeriodicTimer timer(sim, 5, 10, [&](TimeMs t) { fires.push_back(t); });
  sim.run_until(45);
  EXPECT_EQ(fires, (std::vector<TimeMs>{5, 15, 25, 35, 45}));
}

TEST(PeriodicTimerTest, CancelStopsFiring) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 0, 10, [&](TimeMs) { ++fires; });
  sim.run_until(25);
  EXPECT_EQ(fires, 3);  // t = 0, 10, 20
  timer.cancel();
  EXPECT_FALSE(timer.active());
  sim.run_until(100);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 0, 10, [&](TimeMs) { ++fires; });
    sim.run_until(5);
  }
  sim.run_until(100);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimerTest, SetPeriodTakesEffectNextFiring) {
  Simulator sim;
  std::vector<TimeMs> fires;
  PeriodicTimer timer(sim, 0, 10, [&](TimeMs t) { fires.push_back(t); });
  sim.run_until(10);  // fires at 0 and 10; next armed for 20
  timer.set_period(50);
  sim.run_until(120);
  ASSERT_GE(fires.size(), 4u);
  EXPECT_EQ(fires[0], 0);
  EXPECT_EQ(fires[1], 10);
  EXPECT_EQ(fires[2], 20);   // already armed with the old period
  EXPECT_EQ(fires[3], 70);   // 20 + 50
}

TEST(PeriodicTimerTest, CancelFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(sim, 0, 10, [&](TimeMs) {
    ++fires;
    if (fires == 2) self->cancel();
  });
  self = &timer;
  sim.run_until(100);
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace agb::sim
