#include "adaptive/congestion_estimator.h"

#include <gtest/gtest.h>

#include "gossip/event_buffer.h"

namespace agb::adaptive {
namespace {

gossip::Event make_event(std::uint64_t seq, std::uint32_t age) {
  gossip::Event e;
  e.id = EventId{1, seq};
  e.age = age;
  return e;
}

TEST(CongestionEstimatorTest, SeededWithInitialAge) {
  CongestionEstimator est(0.9, 5.0);
  EXPECT_DOUBLE_EQ(est.avg_age(), 5.0);
  EXPECT_EQ(est.observations(), 0u);
}

TEST(CongestionEstimatorTest, NoVirtualDropsWhenUnderMinBuff) {
  CongestionEstimator est(0.9, 5.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 2));
  buf.insert(make_event(2, 3));
  est.observe(buf, 5);
  EXPECT_EQ(est.observations(), 0u);
  EXPECT_TRUE(est.lost().empty());
}

TEST(CongestionEstimatorTest, VirtuallyDropsOldestDownToMinBuff) {
  CongestionEstimator est(0.5, 0.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 10));
  buf.insert(make_event(2, 8));
  buf.insert(make_event(3, 2));
  est.observe(buf, 1);
  // Two virtual drops (ages 10 then 8), oldest first:
  // avg = 0.5*0 + 0.5*10 = 5; avg = 0.5*5 + 0.5*8 = 6.5
  EXPECT_DOUBLE_EQ(est.avg_age(), 6.5);
  EXPECT_EQ(est.observations(), 2u);
  EXPECT_TRUE(est.lost().contains(EventId{1, 1}));
  EXPECT_TRUE(est.lost().contains(EventId{1, 2}));
  EXPECT_FALSE(est.lost().contains(EventId{1, 3}));
  // The real buffer is untouched: virtual drops are pure accounting.
  EXPECT_EQ(buf.size(), 3u);
}

TEST(CongestionEstimatorTest, LostEventsAreNotCountedTwice) {
  CongestionEstimator est(0.5, 0.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 10));
  buf.insert(make_event(2, 8));
  est.observe(buf, 1);
  EXPECT_EQ(est.observations(), 1u);
  est.observe(buf, 1);  // same state: |events - lost| == 1 == minBuff
  EXPECT_EQ(est.observations(), 1u);
}

TEST(CongestionEstimatorTest, NewArrivalsTriggerMoreVirtualDrops) {
  CongestionEstimator est(0.5, 0.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 10));
  buf.insert(make_event(2, 4));
  est.observe(buf, 1);
  EXPECT_EQ(est.observations(), 1u);
  buf.insert(make_event(3, 7));
  est.observe(buf, 1);
  EXPECT_EQ(est.observations(), 2u);
  EXPECT_TRUE(est.lost().contains(EventId{1, 3}));  // age 7 > age 4
}

TEST(CongestionEstimatorTest, MinBuffZeroAccountsEverything) {
  CongestionEstimator est(0.9, 0.0);
  gossip::EventBuffer buf;
  for (std::uint64_t i = 0; i < 5; ++i) buf.insert(make_event(i, 1));
  est.observe(buf, 0);
  EXPECT_EQ(est.observations(), 5u);
  EXPECT_EQ(est.lost().size(), 5u);
}

TEST(CongestionEstimatorTest, PruneDropsIdsNoLongerBuffered) {
  CongestionEstimator est(0.9, 0.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 9));
  buf.insert(make_event(2, 1));
  est.observe(buf, 1);
  EXPECT_EQ(est.lost().size(), 1u);
  buf.shrink_to(1);  // really evicts the age-9 event
  est.prune(buf);
  EXPECT_TRUE(est.lost().empty());
}

TEST(CongestionEstimatorTest, PruneKeepsIdsStillBuffered) {
  CongestionEstimator est(0.9, 0.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 9));
  buf.insert(make_event(2, 1));
  est.observe(buf, 1);
  est.prune(buf);  // nothing evicted yet
  EXPECT_EQ(est.lost().size(), 1u);
}

TEST(CongestionEstimatorTest, EwmaUsesConfiguredAlpha) {
  CongestionEstimator est(0.9, 10.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 4));
  est.observe(buf, 0);
  EXPECT_NEAR(est.avg_age(), 0.9 * 10.0 + 0.1 * 4.0, 1e-12);
}

TEST(CongestionEstimatorTest, ResetReseedsAverage) {
  CongestionEstimator est(0.9, 10.0);
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 4));
  est.observe(buf, 0);
  est.reset(7.0);
  EXPECT_DOUBLE_EQ(est.avg_age(), 7.0);
  EXPECT_EQ(est.observations(), 0u);
}

TEST(CongestionEstimatorTest, CongestedBufferYieldsLowAverage) {
  // Young events being virtually dropped == congestion == low avgAge.
  CongestionEstimator congested(0.0, 99.0);  // alpha 0: tracks last sample
  gossip::EventBuffer buf;
  buf.insert(make_event(1, 1));
  buf.insert(make_event(2, 2));
  congested.observe(buf, 0);
  EXPECT_LE(congested.avg_age(), 2.0);
}

}  // namespace
}  // namespace agb::adaptive
