// membership::GossipMembership — merge convergence, suspicion timeouts,
// rejoin/refutation semantics and the digest byte budget.
//
// The centrepiece is the permutation property: fresher_than is a total
// order, so merging the same record sets in ANY order (and any grouping
// into digests) must converge every replica to the same table. Bindings
// are generated as a pure function of (node, revision) — exactly what the
// protocol guarantees, since set_self_binding always bumps the revision —
// so the convergence claim covers the endpoint plane too.
#include "membership/gossip_membership.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace agb::membership {
namespace {

GossipMembershipParams quick_params() {
  GossipMembershipParams p;
  p.suspect_after = 100;
  p.down_after = 300;
  return p;
}

MemberRecord rec(NodeId node, std::uint64_t revision, std::uint64_t heartbeat,
                 LivenessState state,
                 EndpointBinding binding = EndpointBinding{}) {
  MemberRecord r;
  r.node = node;
  r.revision = revision;
  r.heartbeat = heartbeat;
  r.state = state;
  r.binding = binding;
  return r;
}

// ------------------------------------------------------- freshness order --

TEST(FresherThanTest, RevisionDominatesHeartbeatDominatesState) {
  const auto up = LivenessState::kUp;
  const auto down = LivenessState::kDown;
  EXPECT_TRUE(fresher_than(rec(1, 2, 0, up), rec(1, 1, 99, down)));
  EXPECT_TRUE(fresher_than(rec(1, 1, 5, up), rec(1, 1, 4, down)));
  EXPECT_TRUE(fresher_than(rec(1, 1, 5, down), rec(1, 1, 5, up)));
  EXPECT_FALSE(fresher_than(rec(1, 1, 5, up), rec(1, 1, 5, up)));
}

TEST(FresherThanTest, IsAStrictTotalOrderOnDistinctKeys) {
  // Every pair of distinct (revision, heartbeat, state) keys is ordered
  // exactly one way, and the order is transitive — exhaustively, over a
  // small cube. Totality is what makes the merge commutative.
  std::vector<MemberRecord> keys;
  for (std::uint64_t r = 0; r < 3; ++r) {
    for (std::uint64_t h = 0; h < 3; ++h) {
      for (int s = 0; s < 3; ++s) {
        keys.push_back(rec(1, r, h, static_cast<LivenessState>(s)));
      }
    }
  }
  for (const auto& a : keys) {
    for (const auto& b : keys) {
      if (a == b) {
        EXPECT_FALSE(fresher_than(a, b));
        continue;
      }
      EXPECT_NE(fresher_than(a, b), fresher_than(b, a));
      for (const auto& c : keys) {
        if (fresher_than(a, b) && fresher_than(b, c)) {
          EXPECT_TRUE(fresher_than(a, c));
        }
      }
    }
  }
}

// ------------------------------------------------ permutation convergence --

TEST(GossipMembershipTest, MergeConvergesUnderAnyPermutationAndGrouping) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    // A pile of records about peers 1..8. Bindings are keyed by the
    // announcing revision (port 0 until a node "binds"), matching the
    // protocol invariant that a binding change is a revision bump.
    std::vector<MemberRecord> records;
    const std::size_t count = 20 + rng.next_below(30);
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId node = 1 + static_cast<NodeId>(rng.next_below(8));
      const std::uint64_t revision = rng.next_below(4);
      EndpointBinding binding;
      if (node % 2 == 0 && revision > 0) {  // even nodes bind per revision
        binding.host = node;
        binding.port = static_cast<std::uint16_t>(1000 * node + revision);
      }
      records.push_back(rec(node, revision, rng.next_below(6),
                            static_cast<LivenessState>(rng.next_below(3)),
                            binding));
    }

    std::vector<MemberRecord> reference;
    for (int replica = 0; replica < 6; ++replica) {
      auto shuffled = records;
      rng.shuffle(shuffled);
      GossipMembership m(99, quick_params(), Rng(7));
      // Feed the shuffled pile in random-sized digests — grouping must not
      // matter either.
      std::size_t at = 0;
      while (at < shuffled.size()) {
        const auto take = std::min<std::size_t>(
            shuffled.size() - at, 1 + rng.next_below(5));
        m.apply_digest({shuffled.begin() + at, shuffled.begin() + at + take},
                       0);
        at += take;
      }
      // Idempotence: replaying the whole pile changes nothing.
      m.apply_digest(shuffled, 0);
      if (replica == 0) {
        reference = m.table();
      } else {
        EXPECT_EQ(m.table(), reference) << "trial " << trial;
      }
    }
  }
}

// ------------------------------------------------------ suspicion timeouts --

TEST(GossipMembershipTest, SilentPeerIsSuspectedAtExactlySuspectAfter) {
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.tick(0);   // baseline: silence is counted from the first tick
  m.tick(99);  // suspect_after - 1: still up
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);
  m.tick(100);  // the boundary tick
  EXPECT_EQ(m.state_of(1), LivenessState::kSuspect);
  EXPECT_TRUE(m.contains(1));    // suspects are still members
  EXPECT_EQ(m.size(), 0u);       // ...but not gossip targets
  EXPECT_TRUE(m.snapshot().empty());
}

TEST(GossipMembershipTest, FirstTickGrantsSeedPeersTheFullGracePeriod) {
  // A node started (or restarted) against a wall clock far past zero must
  // not count the time before its first tick as peer silence — otherwise a
  // late joiner declares its whole seed list dead before hearing a single
  // datagram and gossips to nobody.
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.add(2);
  m.tick(50'000);  // first tick, clock nowhere near zero
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);
  EXPECT_EQ(m.state_of(2), LivenessState::kUp);
  m.tick(50'000 + 99);
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);
  m.tick(50'000 + 100);  // grace expires relative to the first tick
  EXPECT_EQ(m.state_of(1), LivenessState::kSuspect);
}

TEST(GossipMembershipTest, SuspectIsDeclaredDownAtDownAfter) {
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.tick(0);
  m.tick(100);
  ASSERT_EQ(m.state_of(1), LivenessState::kSuspect);
  m.tick(299);  // down_after - 1: still suspect
  EXPECT_EQ(m.state_of(1), LivenessState::kSuspect);
  m.tick(300);
  EXPECT_EQ(m.state_of(1), LivenessState::kDown);
  EXPECT_FALSE(m.contains(1));
  m.tick(10'000);  // tombstones persist
  EXPECT_EQ(m.state_of(1), LivenessState::kDown);
}

TEST(GossipMembershipTest, IsolationFallsBackToProbingSuspectsThenTombstones) {
  // The asymmetric-partition escape hatch: with zero up peers, targets()
  // must keep probing (suspects first, tombstones as a last resort) — a
  // node that goes quiet just because it suspects everyone can never be
  // revived, and the group deadlocks in mutual silence. snapshot()/size()
  // keep reporting the honest up-count; only target selection gets the
  // desperation fallback.
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.add(2);
  m.tick(0);
  m.tick(100);  // both suspect
  ASSERT_EQ(m.size(), 0u);
  auto probes = m.targets(4);
  std::sort(probes.begin(), probes.end());
  EXPECT_EQ(probes, (std::vector<NodeId>{1, 2}));

  m.on_heard_from(1, 150);  // one revival: the fallback must stand down
  EXPECT_EQ(m.targets(4), std::vector<NodeId>{1});

  m.tick(400);  // 2: suspect → down; 1 silent since 150: up → suspect
  ASSERT_EQ(m.state_of(1), LivenessState::kSuspect);
  ASSERT_EQ(m.state_of(2), LivenessState::kDown);
  EXPECT_EQ(m.targets(4), std::vector<NodeId>{1});  // suspects before tombs

  m.tick(800);  // 1 down too: only tombstones left — probe them anyway
  probes = m.targets(4);
  std::sort(probes.begin(), probes.end());
  EXPECT_EQ(probes, (std::vector<NodeId>{1, 2}));
}

TEST(GossipMembershipTest, HearingFromASuspectRevivesItButNotADownPeer) {
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.add(2);
  m.tick(0);
  m.tick(100);
  ASSERT_EQ(m.state_of(1), LivenessState::kSuspect);
  m.on_heard_from(1, 150);
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);

  m.tick(300);  // advance 2 through suspect...
  m.tick(600);  // ...to down
  ASSERT_EQ(m.state_of(2), LivenessState::kDown);
  m.on_heard_from(2, 650);
  EXPECT_EQ(m.state_of(2), LivenessState::kDown);  // needs a fresher record
}

TEST(GossipMembershipTest, RevisionBumpRevivesADownPeer) {
  GossipMembership m(0, quick_params(), Rng(1));
  m.tick(0);
  m.apply_digest({rec(1, 0, 5, LivenessState::kUp)}, 0);
  m.tick(100);
  m.tick(400);
  ASSERT_EQ(m.state_of(1), LivenessState::kDown);
  // Stale records from the dead incarnation do nothing...
  m.apply_digest({rec(1, 0, 4, LivenessState::kUp)}, 500);
  EXPECT_EQ(m.state_of(1), LivenessState::kDown);
  // ...the restarted incarnation's bumped revision wins.
  m.apply_digest({rec(1, 1, 0, LivenessState::kUp)}, 500);
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);
}

TEST(GossipMembershipTest, LocalRemoveVerdictPropagatesAgainstSameKey) {
  // remove() marks down at the current freshness key; because ties break
  // towards down, a replica still holding "up" at that key adopts it.
  GossipMembership a(0, quick_params(), Rng(1));
  GossipMembership b(2, quick_params(), Rng(3));
  a.apply_digest({rec(1, 1, 7, LivenessState::kUp)}, 0);
  b.apply_digest({rec(1, 1, 7, LivenessState::kUp)}, 0);
  a.remove(1);
  b.apply_digest(a.table(), 10);
  EXPECT_EQ(b.state_of(1), LivenessState::kDown);
}

// --------------------------------------------------- rejoin / refutation --

TEST(GossipMembershipTest, RefutesFresherClaimsAboutSelf) {
  GossipMembership m(5, quick_params(), Rng(1));
  const auto before = m.self_record();
  // A ghost of a previous incarnation, fresher than this one.
  m.apply_digest({rec(5, 3, 7, LivenessState::kDown)}, 0);
  const auto after = m.self_record();
  EXPECT_EQ(after.revision, 4u);
  EXPECT_EQ(after.heartbeat, 8u);
  EXPECT_EQ(after.state, LivenessState::kUp);
  EXPECT_TRUE(fresher_than(after, rec(5, 3, 7, LivenessState::kDown)));
  EXPECT_TRUE(fresher_than(after, before));
  // Stale claims are ignored.
  m.apply_digest({rec(5, 1, 0, LivenessState::kDown)}, 0);
  EXPECT_EQ(m.self_record(), after);
}

TEST(GossipMembershipTest, RestartWipesLocalVerdictsButNotGroupTombstones) {
  // A node isolated past down_after declares the whole group dead; its
  // restart must reset those local verdicts or it would rejoin with empty
  // targets and never speak again.
  GossipMembership m(0, quick_params(), Rng(1));
  m.add(1);
  m.add(2);
  m.tick(0);
  m.tick(400);
  m.tick(800);
  ASSERT_EQ(m.size(), 0u);  // everybody down from this node's perspective
  m.on_restart();
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.state_of(1), LivenessState::kUp);
  // But the reset stays at the old freshness keys: a genuinely-down peer's
  // gossiped tombstone (same key, state further along) still wins.
  auto table = m.table();
  table[0].state = LivenessState::kDown;
  GossipMembership other(9, quick_params(), Rng(2));
  other.apply_digest({table[0]}, 0);
  m.apply_digest(other.table(), 900);
  EXPECT_EQ(m.state_of(1), LivenessState::kDown);
}

TEST(GossipMembershipTest, SetSelfBindingBumpsRevision) {
  GossipMembership m(5, quick_params(), Rng(1));
  const auto rev0 = m.self_record().revision;
  m.set_self_binding({0x7f000001, 9000});
  EXPECT_EQ(m.self_record().revision, rev0 + 1);
  EXPECT_EQ(m.self_record().binding.port, 9000);
  m.set_self_binding({0x7f000001, 9001});
  EXPECT_EQ(m.self_record().revision, rev0 + 2);
}

TEST(GossipMembershipTest, UnboundRecordNeverErasesAKnownBinding) {
  GossipMembership m(0, quick_params(), Rng(1));
  m.apply_digest({rec(1, 1, 0, LivenessState::kUp, {0x0a000001, 7000})}, 0);
  ASSERT_EQ(m.binding_of(1).port, 7000);
  // A fresher but unbound record (heartbeat progress relayed by a node
  // that never learned the address) keeps the binding.
  m.apply_digest({rec(1, 1, 5, LivenessState::kUp)}, 10);
  EXPECT_EQ(m.binding_of(1).port, 7000);
}

TEST(GossipMembershipTest, BindingListenerFiresOnlyOnChange) {
  GossipMembership m(0, quick_params(), Rng(1));
  std::vector<std::pair<NodeId, std::uint16_t>> calls;
  m.set_binding_listener([&](NodeId node, EndpointBinding binding) {
    calls.emplace_back(node, binding.port);
  });
  m.apply_digest({rec(1, 1, 0, LivenessState::kUp, {1, 7000})}, 0);
  m.apply_digest({rec(1, 1, 1, LivenessState::kUp, {1, 7000})}, 0);  // same
  m.apply_digest({rec(1, 2, 0, LivenessState::kUp, {1, 7001})}, 0);  // moved
  m.apply_digest({rec(2, 1, 0, LivenessState::kUp)}, 0);  // unbound: silent
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], (std::pair<NodeId, std::uint16_t>{1, 7000}));
  EXPECT_EQ(calls[1], (std::pair<NodeId, std::uint16_t>{1, 7001}));
}

// -------------------------------------------------------------- digests --

TEST(GossipMembershipTest, DigestLeadsWithSelfAndRespectsByteBudget) {
  GossipMembershipParams p = quick_params();
  // Records with small varints cost 13 bytes; room for self + 2 peers.
  p.digest_budget_bytes = 40;
  GossipMembership m(9, p, Rng(1));
  for (NodeId id = 1; id <= 6; ++id) m.add(id);
  auto digest = m.make_digest();
  ASSERT_EQ(digest.size(), 3u);
  EXPECT_EQ(digest[0].node, 9u);
  std::size_t bytes = 0;
  for (const auto& r : digest) bytes += encoded_record_size(r);
  EXPECT_LE(bytes, p.digest_budget_bytes);
}

TEST(GossipMembershipTest, DigestPrefersRecentlyRefreshedPeers) {
  GossipMembershipParams p = quick_params();
  p.digest_budget_bytes = 26;  // self + exactly one small peer record
  GossipMembership m(9, p, Rng(1));
  for (NodeId id = 1; id <= 5; ++id) m.add(id);
  m.on_heard_from(3, 50);  // freshest evidence is about node 3
  auto digest = m.make_digest();
  ASSERT_EQ(digest.size(), 2u);
  EXPECT_EQ(digest[1].node, 3u);
}

TEST(GossipMembershipTest, EncodedRecordSizeTracksVarintGrowth) {
  EXPECT_EQ(encoded_record_size(rec(1, 0, 0, LivenessState::kUp)), 13u);
  EXPECT_EQ(encoded_record_size(rec(1, 300, 0, LivenessState::kUp)), 14u);
  EXPECT_EQ(encoded_record_size(rec(1, 300, 1 << 20, LivenessState::kUp)),
            16u);
}

TEST(GossipMembershipTest, TickAdvancesSelfHeartbeat) {
  GossipMembership m(0, quick_params(), Rng(1));
  const auto hb = m.self_record().heartbeat;
  m.tick(10);
  m.tick(20);
  EXPECT_EQ(m.self_record().heartbeat, hb + 2);
}

}  // namespace
}  // namespace agb::membership
