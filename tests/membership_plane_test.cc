// The anti-entropy membership plane over the real UDP stack: suspicion
// promotion with NO failure-detector oracle, rejoin under a bumped
// revision, and gossip-driven endpoint re-resolution through a
// runtime::DynamicDirectory — the end-to-end loop behind the churn-blind
// and host-migration presets, exercised against kernel sockets on
// loopback. Port range: 29'100–29'140.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "gossip/lpbcast_node.h"
#include "membership/gossip_membership.h"
#include "runtime/dynamic_directory.h"
#include "runtime/node_runtime.h"
#include "runtime/udp_transport.h"

namespace agb::runtime {
namespace {

using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& predicate,
                std::chrono::milliseconds deadline = 10'000ms) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

/// A node whose only liveness source is the gossip stream itself: fast
/// rounds, short suspicion timeouts, every peer pre-seeded.
std::unique_ptr<gossip::LpbcastNode> make_gossip_membership_node(
    NodeId self, std::size_t n, std::uint64_t initial_revision = 0,
    membership::EndpointBinding binding = {}) {
  membership::GossipMembershipParams mp;
  mp.suspect_after = 200;
  mp.down_after = 400;
  mp.initial_revision = initial_revision;
  auto members = std::make_unique<membership::GossipMembership>(
      self, mp, Rng(self * 17 + 3));
  for (NodeId id = 0; id < n; ++id) {
    if (id != self) members->add(id);
  }
  if (binding.bound()) members->set_self_binding(binding);
  gossip::GossipParams params;
  params.fanout = 3;
  params.gossip_period = 20;
  params.max_events = 100;
  params.max_event_ids = 1000;
  params.max_age = 15;
  return std::make_unique<gossip::LpbcastNode>(self, params,
                                               std::move(members),
                                               Rng(self + 100));
}

// ------------------------------------------------- DynamicDirectory unit --

TEST(DynamicDirectoryTest, OverridesShadowTheFallbackUntilForgotten) {
  auto fallback = std::make_shared<StaticDirectory>();
  ASSERT_TRUE(fallback->add_spec(1, "10.0.0.1:4000"));
  DynamicDirectory directory(fallback);

  UdpEndpoint out;
  ASSERT_TRUE(directory.resolve(1, &out));
  EXPECT_EQ(out.port, 4000);  // no override yet: fallback answers

  directory.update(1, UdpEndpoint{0x0a000002, 5000});
  ASSERT_TRUE(directory.resolve(1, &out));
  EXPECT_EQ(out, (UdpEndpoint{0x0a000002, 5000}));
  EXPECT_EQ(directory.overrides(), 1u);

  directory.forget(1);
  ASSERT_TRUE(directory.resolve(1, &out));
  EXPECT_EQ(out.port, 4000);
  EXPECT_EQ(directory.overrides(), 0u);
}

TEST(DynamicDirectoryTest, NullFallbackResolvesOnlyLearnedBindings) {
  DynamicDirectory directory(nullptr);
  UdpEndpoint out;
  EXPECT_FALSE(directory.resolve(3, &out));
  directory.update(3, UdpEndpoint{0x7f000001, 6000});
  ASSERT_TRUE(directory.resolve(3, &out));
  EXPECT_EQ(out.port, 6000);
}

TEST(DynamicDirectoryTest, WiredMembershipFeedsLearnedBindings) {
  membership::GossipMembershipParams mp;
  auto gm = std::make_unique<membership::GossipMembership>(0, mp, Rng(1));
  auto directory = std::make_shared<DynamicDirectory>(nullptr);
  wire_membership_bindings(*gm, directory);

  membership::MemberRecord record;
  record.node = 5;
  record.revision = 1;
  record.binding = {0x7f000001, 7100};
  gm->apply_digest({record}, 0);

  UdpEndpoint out;
  ASSERT_TRUE(directory->resolve(5, &out));
  EXPECT_EQ(out, (UdpEndpoint{0x7f000001, 7100}));
}

// ------------------------------------------- churn without any detector --

TEST(MembershipPlaneTest, ChurnBlindSuspicionAndRejoinOverUdp) {
  constexpr std::size_t kNodes = 5;
  constexpr NodeId kVictim = 4;
  UdpTransport transport(29'100);
  std::atomic<int> deliveries{0};
  std::vector<std::unique_ptr<NodeRuntime>> runtimes;
  for (NodeId id = 0; id < kNodes; ++id) {
    auto runtime = std::make_unique<NodeRuntime>(
        make_gossip_membership_node(id, kNodes), transport,
        [&transport] { return transport.now(); });
    runtime->set_deliver_handler(
        [&](const gossip::Event&, TimeMs) { deliveries.fetch_add(1); });
    runtimes.push_back(std::move(runtime));
  }
  for (auto& r : runtimes) r->start();

  // Healthy group: a broadcast reaches everyone.
  runtimes[0]->broadcast(gossip::make_payload({1}));
  ASSERT_TRUE(eventually(
      [&] { return deliveries.load() == static_cast<int>(kNodes); }));

  // Crash the victim — no oracle tells anyone. Survivors must walk it
  // up → suspect → down purely from gossip silence.
  runtimes[kVictim]->stop();
  runtimes[kVictim].reset();
  ASSERT_TRUE(eventually([&] {
    for (NodeId id = 0; id < kNodes - 1; ++id) {
      if (runtimes[id]->peer_state(kVictim) !=
          membership::LivenessState::kDown) {
        return false;
      }
    }
    return true;
  }));

  // Rejoin as a new incarnation: a bumped initial revision beats every
  // down tombstone the survivors hold.
  auto reborn = std::make_unique<NodeRuntime>(
      make_gossip_membership_node(kVictim, kNodes, /*initial_revision=*/1),
      transport, [&transport] { return transport.now(); });
  std::atomic<int> reborn_deliveries{0};
  reborn->set_deliver_handler(
      [&](const gossip::Event&, TimeMs) { reborn_deliveries.fetch_add(1); });
  reborn->start();
  ASSERT_TRUE(eventually([&] {
    for (NodeId id = 0; id < kNodes - 1; ++id) {
      if (runtimes[id]->peer_state(kVictim) !=
          membership::LivenessState::kUp) {
        return false;
      }
    }
    return true;
  }));

  // The revived node is a first-class member again: it receives fresh
  // traffic from the group.
  deliveries.store(0);
  runtimes[0]->broadcast(gossip::make_payload({2}));
  EXPECT_TRUE(eventually([&] {
    return deliveries.load() >= static_cast<int>(kNodes) - 1 &&
           reborn_deliveries.load() >= 1;
  }));

  for (NodeId id = 0; id < kNodes - 1; ++id) runtimes[id]->stop();
  reborn->stop();
}

// ------------------------------------- endpoint re-resolution via gossip --

TEST(MembershipPlaneTest, HostMigrationReResolvesThroughGossipedBinding) {
  // Nodes 0 and 1 resolve peers through a DynamicDirectory whose static
  // fallback pins node 2 at its ORIGINAL port. Node 2 then moves to a new
  // port; nobody edits the fallback. The only path back to connectivity
  // is the gossip plane: node 2 re-announces its binding under a bumped
  // revision, the merge fires the binding listener, the directory learns
  // the override, and traffic flows to the new address.
  constexpr std::uint32_t kLoopback = 0x7f000001;
  constexpr std::uint16_t kPort0 = 29'120;
  constexpr std::uint16_t kPort1 = 29'121;
  constexpr std::uint16_t kOldPort2 = 29'122;
  constexpr std::uint16_t kNewPort2 = 29'123;

  auto fallback = std::make_shared<StaticDirectory>();
  fallback->add(0, {kLoopback, kPort0});
  fallback->add(1, {kLoopback, kPort1});
  fallback->add(2, {kLoopback, kOldPort2});
  auto group_directory = std::make_shared<DynamicDirectory>(fallback);
  UdpTransport group_transport(group_directory);

  std::vector<std::unique_ptr<NodeRuntime>> group;
  std::atomic<int> group_deliveries{0};
  for (NodeId id = 0; id < 2; ++id) {
    auto runtime = std::make_unique<NodeRuntime>(
        make_gossip_membership_node(id, 3), group_transport,
        [&group_transport] { return group_transport.now(); });
    runtime->set_deliver_handler(
        [&](const gossip::Event&, TimeMs) { group_deliveries.fetch_add(1); });
    // Listener wiring happens before start(): every binding these nodes
    // learn from gossip lands in the shared directory.
    wire_membership_bindings(*runtime->gossip_membership(), group_directory);
    group.push_back(std::move(runtime));
  }

  // The mover runs on its own transport (its own directory), as a real
  // remote host would: it can always reach 0 and 1, but they can only
  // reach it where their directory points.
  const auto make_mover_transport = [&](std::uint16_t port2) {
    auto directory = std::make_shared<StaticDirectory>();
    directory->add(0, {kLoopback, kPort0});
    directory->add(1, {kLoopback, kPort1});
    directory->add(2, {kLoopback, port2});
    return std::make_unique<UdpTransport>(directory);
  };
  auto mover_transport = make_mover_transport(kOldPort2);
  auto mover = std::make_unique<NodeRuntime>(
      make_gossip_membership_node(2, 3, /*initial_revision=*/0,
                                  {kLoopback, kOldPort2}),
      *mover_transport, [&] { return mover_transport->now(); });
  std::atomic<int> mover_deliveries{0};
  mover->set_deliver_handler(
      [&](const gossip::Event&, TimeMs) { mover_deliveries.fetch_add(1); });

  for (auto& r : group) r->start();
  mover->start();
  group[0]->broadcast(gossip::make_payload({1}));
  ASSERT_TRUE(eventually([&] {
    return group_deliveries.load() == 2 && mover_deliveries.load() == 1;
  }));

  // Migrate: the node comes back on a NEW port. Its fresh incarnation
  // announces {loopback, new port} under a bumped revision.
  mover->stop();
  mover.reset();
  mover_transport = make_mover_transport(kNewPort2);
  mover = std::make_unique<NodeRuntime>(
      make_gossip_membership_node(2, 3, /*initial_revision=*/1,
                                  {kLoopback, kNewPort2}),
      *mover_transport, [&] { return mover_transport->now(); });
  mover->set_deliver_handler(
      [&](const gossip::Event&, TimeMs) { mover_deliveries.fetch_add(1); });
  mover->start();

  // The group's directory re-resolves node 2 from gossip alone.
  ASSERT_TRUE(eventually([&] {
    UdpEndpoint out;
    return group_directory->resolve(2, &out) && out.port == kNewPort2;
  }));

  // And post-migration traffic reaches the new address end-to-end.
  mover_deliveries.store(0);
  group_deliveries.store(0);
  group[1]->broadcast(gossip::make_payload({2}));
  EXPECT_TRUE(eventually([&] {
    return mover_deliveries.load() >= 1 && group_deliveries.load() >= 1;
  }));

  for (auto& r : group) r->stop();
  mover->stop();
}

}  // namespace
}  // namespace agb::runtime
