// agb_sim — the general experiment driver.
//
// A thin lookup into core::ScenarioRegistry: pick a named preset, override
// any key on the command line, run, report. Downstream users run custom
// experiments without writing C++:
//
//   agb_sim list=1                             # catalogue of presets
//   agb_sim scenario=fig9 adaptive=1 csv=run1
//   agb_sim scenario=burst-loss n=120 duration_s=300
//   agb_sim n=100 rate=40 adaptive=1 buffer=80 loss=0.05   # paper60 base
//
// sweep=<axis>:<lo>:<hi>:<step> reruns the preset once per axis value and
// prints one summary row per run — the registry-driven replacement for the
// hand-rolled per-figure sweep loops:
//   agb_sim scenario=fig2 sweep=rate:10:60:10 quick=1      # fig2's rate axis
//   agb_sim scenario=fig4 sweep=buffer:30:180:30           # fig4's buffer axis
// Any numeric key works as the axis; other overrides apply to every run.
// With csv=prefix the same rows land in <prefix>_sweep.csv.
//
// Keys (defaults in parentheses; presets change some of them — see
// src/core/scenario_registry.cc):
//   scenario(paper60) quick(0)
//   n(60) senders(4) rate(30) adaptive(0) partial_view(0) payload(16)
//   poisson(1) supersede(0) pending_cap(64) view_max/view_subs/view_unsubs
//   fanout(4) period_ms(2000) buffer(120) event_ids(4000) max_age(12)
//   semantic_purge(0)
//   tau_ms(2*period) window(2) alpha(0.9) critical_age(8) low_mark high_mark
//   delta_d(0.1) delta_i(0.1) gamma(0.1) bucket(8) initial_rate robust_k(1)
//   robust_floor(0) idle_age_boost(1)
//   recovery(0) repair_after(2) give_up_after(8) retrieve_rounds(6)
//   latency=fixed:ms | uniform:lo:hi | normal:mean:stddev   (fixed:1)
//   wan_latency=<same grammar>  clusters(1)
//   locality(0) p_local(0.85) bridges_per_cluster(1) failure_detector(0)
//   control_plane(0) control_hysteresis(0.25) p_local_min(0.5)
//   p_local_max(0.98) p_local_step(0.02) fanout_congested_scale(0.75)
//   fanout_spare_scale(1.25) starve_threshold(0.05)
//   gossip_membership(0) suspect_after_ms(4*period) down_after_ms(8*period)
//   membership_budget(256) migrate_on_rejoin(0)
//   loss=p (iid) | burst:pgood:pbad:pgb:pbg                 (0)
//   capacity=at_ms:frac:cap[,...]     failures=at_ms:node:up|down[,...]
//   chaos=rule[,rule...]   deterministic fault injection (fault::FaultPlane)
//       rule = kind:args[@start[s]-end[s]]  (window in seconds, absolute)
//       kinds: corrupt:p truncate:p dup:p reorder:p[:ms] oneway:a:b|*
//              stall:node:ms skew:node:ms
//       e.g. chaos=corrupt:0.05@5s-15s,oneway:3:*@5s-15s — malformed specs
//       exit 2 with a "did you mean" hint; presets chaos-soak /
//       asymmetric-partition / gray-failure carry calibrated schedules
//   sim_shards(1) sim_workers(0=auto) lookahead_ms(0=derive)
//       sim_shards>1 runs the preset on the multi-core sharded simulator
//       (core::ShardedScenario): per-shard event queues + clocks stepped in
//       conservative lookahead windows, all deliveries window-batched.
//       Scenario-visible results are shard- and worker-count invariant;
//       sim_shards<=1 keeps the classic single-queue engine (byte-identical
//       golden traces). lookahead_ms overrides the window length derived
//       from the minimum network delay — raising it coarsens the delay
//       floor.
//   warmup_s(40) duration_s(150) cooldown_s(30) bucket_s(5) seed(42)
//   csv=prefix   (writes <prefix>_series.csv)
//   bench=path.json   (sim fabric: writes a BENCH_sim_scale record —
//                      preset, n, sim_seconds, wall_seconds,
//                      nodes_simulated_per_second, bytes_per_node,
//                      peak_event_queue_len — for the perf trajectory;
//                      pair with scenario=scale-1e5 / scale-1e6.
//                      with chaos active it writes a BENCH_chaos record
//                      instead — recovery-rounds p50/p99 (post-fault
//                      latency over the gossip period), post-chaos
//                      receiver %, injection + decode-drop counters; pair
//                      with scenario=chaos-soak.
//                      inmemory fabric: writes a BENCH_backpressure record —
//                      pending-queue depth p50/p90/p99/max, avg p_local,
//                      avg effective fanout; pair with
//                      scenario=adaptive-backpressure)
//
// fabric=inmemory runs the preset on the wall-clock runtime instead of the
// simulator: real NodeRuntime threads over the sharded InMemoryFabric
// (shards=N receiver shards, default 4), via core::WallclockScenario. The
// full preset runs for real — partial views, locality bias + bridges, WAN
// cluster delays (all latency models, including normal and per-link
// overrides, via the shared sim::DelaySampler), burst loss, failure and
// capacity schedules, and the adaptive control plane with real blocking
// back-pressure. duration_s is then real seconds — keep it small:
//   agb_sim scenario=wan-directional fabric=inmemory n=30 period_ms=50 duration_s=5
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/scenario.h"
#include "core/scenario_registry.h"
#include "core/sharded_scenario.h"
#include "core/wallclock_scenario.h"
#include "metrics/table.h"
#include "metrics/timeseries.h"

namespace {

/// Formats an axis value the way a user would type it: integral values
/// without a decimal point, so integer keys (n, buffer, fanout) parse.
std::string format_axis_value(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// Runs the preset once per axis value and prints one row per run.
int run_sweep(const agb::core::ScenarioPreset& preset, const agb::Config& cfg,
              const agb::core::SweepSpec& sweep,
              const std::string& csv_prefix) {
  using namespace agb;
  const std::vector<std::string> columns{
      sweep.axis,     "input_msg_s",   "output_msg_s", "atomic_pct",
      "avg_recv_pct", "drop_age_hops", "ovf_drops"};
  metrics::Table table(columns);
  std::vector<std::vector<double>> rows;
  for (double value : sweep.values()) {
    Config run_cfg = cfg;  // fresh copy: the axis override must not stick
    run_cfg.set(sweep.axis, format_axis_value(value));
    core::ScenarioParams params;
    try {
      params = preset.build(run_cfg);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "agb_sim: %s\n", e.what());
      return 2;
    }
    if (rows.empty()) {  // typo detection once, on the first resolved run
      for (const auto& key : run_cfg.unused_keys()) {
        std::fprintf(stderr, "agb_sim: warning: unknown key '%s'\n",
                     key.c_str());
      }
    }
    core::Scenario scenario(params);
    auto r = scenario.run();
    rows.push_back({value, r.input_rate, r.output_rate,
                    r.delivery.atomicity_pct, r.delivery.avg_receiver_pct,
                    r.avg_drop_age, static_cast<double>(r.overflow_drops)});
    table.add_numeric_row(rows.back(), 2);
  }
  std::printf("sweep            : %s over %s [%s..%s step %s]\n",
              preset.name.c_str(), sweep.axis.c_str(),
              format_axis_value(sweep.lo).c_str(),
              format_axis_value(sweep.hi).c_str(),
              format_axis_value(sweep.step).c_str());
  table.print(std::cout);
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + "_sweep.csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", path.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      out << (i ? "," : "") << columns[i];
    }
    out << "\n";
    for (const auto& row : rows) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        out << (i ? "," : "") << metrics::fmt(row[i], 4);
      }
      out << "\n";
    }
    std::printf("csv              : %s (%zu rows)\n", path.c_str(),
                rows.size());
  }
  return 0;
}

/// Wall-clock twin of the sim run: the full preset — membership mode,
/// locality, schedules, network model — over runtime::NodeRuntime threads
/// on the sharded InMemoryFabric, via core::WallclockScenario. Reports the
/// same reliability metrics as the simulator path plus end-to-end delivery
/// throughput (datagrams/s), the runtime number BENCH trajectories track.
int run_wallclock(const agb::core::ScenarioParams& p,
                  const agb::core::ScenarioPreset& preset, std::size_t shards,
                  const std::string& bench_path) {
  using namespace agb;

  core::WallclockOptions options;
  options.shards = shards;
  // An unsupported preset feature is a hard error (exit 2), never a
  // silently-ignored note: numbers for a workload the preset does not
  // describe are worse than no numbers.
  core::WallclockResults r;
  try {
    core::WallclockScenario scenario(p, options);
    r = scenario.run();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "agb_sim: %s\n", e.what());
    return 2;
  }

  const std::size_t sender_count =
      std::max<std::size_t>(1, std::min(p.senders, p.n));
  std::printf("scenario         : %s (%s)\n", preset.name.c_str(),
              preset.summary.c_str());
  std::printf("fabric           : inmemory wall-clock, %zu shards, "
              "max_burst %zu\n",
              r.shard_depths.size(), options.max_burst);
  std::printf("algorithm        : %s%s%s%s\n",
              p.adaptive ? "adaptive" : "lpbcast",
              p.gossip.recovery.enabled ? " + recovery" : "",
              p.partial_view ? " + partial views" : "",
              p.locality.enabled ? " + locality bias" : "");
  std::printf("group            : %zu nodes, %zu senders, fanout %zu, "
              "T=%lld ms\n",
              p.n, sender_count, p.gossip.fanout,
              static_cast<long long>(p.gossip.gossip_period));
  std::printf("offered load     : %llu broadcasts (%llu admitted, %llu "
              "refused) over %.1f s\n",
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.refused_broadcasts),
              r.elapsed_s);
  std::printf("reliability      : avg receivers %.2f%%   atomic (>95%%) "
              "%.2f%%   (%llu messages evaluated)\n",
              r.delivery.avg_receiver_pct, r.delivery.atomicity_pct,
              static_cast<unsigned long long>(r.delivery.messages));
  std::printf("delivery throughput: %.0f datagrams/s over the %.1f s "
              "traffic window (%llu delivered, %llu dropped, %llu "
              "down-suppressed)\n",
              r.elapsed_s > 0.0
                  ? static_cast<double>(r.fabric_delivered) / r.elapsed_s
                  : 0.0,
              r.elapsed_s,
              static_cast<unsigned long long>(r.fabric_delivered),
              static_cast<unsigned long long>(r.fabric_dropped),
              static_cast<unsigned long long>(r.fabric_dropped_down));
  std::printf("drops            : overflow %llu   age-limit %llu\n",
              static_cast<unsigned long long>(r.overflow_drops),
              static_cast<unsigned long long>(r.age_limit_drops));
  if (!p.chaos.empty()) {
    std::printf("chaos            : %llu corrupted, %llu truncated, %llu "
                "duplicated, %llu reordered, %llu oneway-dropped, %llu "
                "stalls, %llu skewed clock reads\n",
                static_cast<unsigned long long>(r.chaos.corrupted),
                static_cast<unsigned long long>(r.chaos.truncated),
                static_cast<unsigned long long>(r.chaos.duplicated),
                static_cast<unsigned long long>(r.chaos.reordered),
                static_cast<unsigned long long>(r.chaos.dropped_oneway),
                static_cast<unsigned long long>(r.chaos.stalls),
                static_cast<unsigned long long>(r.chaos.skew_reads));
    std::printf("chaos receipts   : %llu decode drops, membership %llu "
                "suspicions / %llu downs / %llu revivals\n",
                static_cast<unsigned long long>(r.decode_drops),
                static_cast<unsigned long long>(
                    r.membership_transitions.suspicions),
                static_cast<unsigned long long>(
                    r.membership_transitions.downs),
                static_cast<unsigned long long>(
                    r.membership_transitions.revivals));
    if (r.post_chaos_delivery) {
      std::printf("post-chaos       : avg receivers %.2f%%   atomic %.2f%% "
                  "over the recovery window\n",
                  r.post_chaos_delivery->avg_receiver_pct,
                  r.post_chaos_delivery->atomicity_pct);
    }
  }
  if (p.network.clusters > 1) {
    const std::uint64_t sent = r.sent_intra_cluster + r.sent_cross_cluster;
    const double cross_pct =
        sent == 0 ? 0.0
                  : 100.0 * static_cast<double>(r.sent_cross_cluster) /
                        static_cast<double>(sent);
    std::printf("wan traffic      : %llu intra-cluster, %llu cross-cluster "
                "datagrams (%.1f%% cross%s)\n",
                static_cast<unsigned long long>(r.sent_intra_cluster),
                static_cast<unsigned long long>(r.sent_cross_cluster),
                cross_pct, p.locality.enabled ? ", locality-biased" : "");
  }
  if (!p.failure_schedule.empty()) {
    std::printf("failures         : %zu scheduled events replayed%s\n",
                p.failure_schedule.size(),
                p.failure_detector ? " (perfect detector)" : "");
  }
  if (p.adaptive && p.adaptation.control.enabled) {
    std::printf("control plane    : avg p_local %.3f   avg fanout %.2f   "
                "pending depth p50/p90/p99/max %zu/%zu/%zu/%zu (cap %zu)\n",
                r.avg_p_local, r.avg_effective_fanout, r.pending_depth_p50,
                r.pending_depth_p90, r.pending_depth_p99, r.max_pending_depth,
                p.pending_cap);
  }
  std::printf("app deliveries   : %llu events\n",
              static_cast<unsigned long long>(r.app_deliveries));
  std::printf("queue depth      : per shard:");
  for (std::size_t depth : r.shard_depths) std::printf(" %zu", depth);
  std::printf("\n");

  if (!bench_path.empty() && !p.chaos.empty()) {
    // Chaos bench, wall-clock flavour: the same record the sim path
    // writes — healing speed in gossip rounds over the post-fault window.
    const double period = static_cast<double>(p.gossip.gossip_period);
    const double p50_rounds =
        r.post_chaos_delivery ? r.post_chaos_delivery->latency_p50_ms / period
                              : -1.0;
    const double p99_rounds =
        r.post_chaos_delivery ? r.post_chaos_delivery->latency_p99_ms / period
                              : -1.0;
    std::ofstream out(bench_path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    char record[640];
    std::snprintf(
        record, sizeof(record),
        "{\n"
        "  \"bench\": \"chaos\",\n"
        "  \"preset\": \"%s\",\n"
        "  \"n\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"mutations\": %llu,\n"
        "  \"duplicated\": %llu,\n"
        "  \"reordered\": %llu,\n"
        "  \"dropped_oneway\": %llu,\n"
        "  \"decode_drops\": %llu,\n"
        "  \"recovery_rounds_p50\": %.2f,\n"
        "  \"recovery_rounds_p99\": %.2f,\n"
        "  \"post_chaos_avg_receiver_pct\": %.2f\n"
        "}\n",
        preset.name.c_str(), p.n, static_cast<unsigned long long>(p.seed),
        static_cast<unsigned long long>(r.chaos.mutations()),
        static_cast<unsigned long long>(r.chaos.duplicated),
        static_cast<unsigned long long>(r.chaos.reordered),
        static_cast<unsigned long long>(r.chaos.dropped_oneway),
        static_cast<unsigned long long>(r.decode_drops), p50_rounds,
        p99_rounds,
        r.post_chaos_delivery ? r.post_chaos_delivery->avg_receiver_pct
                              : -1.0);
    out << record;
    std::printf("bench record     : %s (recovery rounds p50 %.2f / p99 "
                "%.2f, post-chaos receivers %.2f%%)\n",
                bench_path.c_str(), p50_rounds, p99_rounds,
                r.post_chaos_delivery ? r.post_chaos_delivery->avg_receiver_pct
                                      : -1.0);
  } else if (!bench_path.empty()) {
    std::ofstream out(bench_path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    char record[512];
    std::snprintf(record, sizeof(record),
                  "{\n"
                  "  \"bench\": \"backpressure\",\n"
                  "  \"preset\": \"%s\",\n"
                  "  \"n\": %zu,\n"
                  "  \"pending_cap\": %zu,\n"
                  "  \"pending_depth_p50\": %zu,\n"
                  "  \"pending_depth_p90\": %zu,\n"
                  "  \"pending_depth_p99\": %zu,\n"
                  "  \"max_pending_depth\": %zu,\n"
                  "  \"refused_broadcasts\": %llu,\n"
                  "  \"avg_p_local\": %.4f,\n"
                  "  \"avg_effective_fanout\": %.3f\n"
                  "}\n",
                  preset.name.c_str(), p.n, p.pending_cap,
                  r.pending_depth_p50, r.pending_depth_p90,
                  r.pending_depth_p99, r.max_pending_depth,
                  static_cast<unsigned long long>(r.refused_broadcasts),
                  r.avg_p_local, r.avg_effective_fanout);
    out << record;
    std::printf("bench record     : %s (pending p50/p90/p99/max "
                "%zu/%zu/%zu/%zu, %llu refused)\n",
                bench_path.c_str(), r.pending_depth_p50, r.pending_depth_p90,
                r.pending_depth_p99, r.max_pending_depth,
                static_cast<unsigned long long>(r.refused_broadcasts));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agb;

  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "agb_sim: %s\n(see the header of tools/agb_sim.cc "
                 "for the key reference)\n", error.c_str());
    return 2;
  }

  auto& registry = core::ScenarioRegistry::instance();
  if (cfg.get_bool("list", false)) {
    std::printf("%-22s %9s %-8s %s\n", "scenario", "n", "view", "summary");
    for (const auto* preset : registry.presets()) {
      std::string n_str = "?";
      std::string view = "?";
      try {
        const core::ScenarioParams defaults = preset->build(Config{});
        n_str = std::to_string(defaults.n);
        view = defaults.partial_view ? "partial" : "full";
      } catch (const std::exception&) {
        // A preset that needs config keys to resolve still lists.
      }
      std::printf("%-22s %9s %-8s %s\n", preset->name.c_str(), n_str.c_str(),
                  view.c_str(), preset->summary.c_str());
    }
    std::printf("\nview: full = every node holds the whole directory "
                "(O(n^2) group memory); partial = bounded lpbcast views "
                "(O(n*view), what the scale presets use)\n");
    return 0;
  }

  const std::string name = cfg.get_string("scenario", "paper60");
  const core::ScenarioPreset* preset = registry.find(name);
  if (preset == nullptr) {
    std::fprintf(stderr, "agb_sim: %s (try list=1)\n",
                 registry.unknown_name_message(name).c_str());
    return 2;
  }

  if (auto sweep_raw = cfg.raw("sweep")) {
    core::SweepSpec sweep;
    if (!core::parse_sweep_spec(*sweep_raw, &sweep)) {
      std::fprintf(stderr,
                   "agb_sim: bad sweep spec '%s' (want axis:lo:hi:step, "
                   "step > 0, hi >= lo)\n",
                   sweep_raw->c_str());
      return 2;
    }
    return run_sweep(*preset, cfg, sweep, cfg.get_string("csv", ""));
  }

  core::ScenarioParams p;
  try {
    p = preset->build(cfg);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "agb_sim: %s\n", e.what());
    return 2;
  }

  // Knobs the resolved scenario cannot react to are a warning, not a
  // silent no-op: a run whose flag did nothing reads like a run where the
  // flag mattered.
  if (cfg.raw("failure_detector") && p.failure_schedule.empty()) {
    std::fprintf(stderr,
                 "agb_sim: warning: failure_detector= has no effect: "
                 "scenario '%s' schedules no failures (add failures=... or "
                 "pick a churn preset)\n",
                 name.c_str());
  }
  if (!p.gossip_membership) {
    for (const char* key : {"suspect_after_ms", "down_after_ms",
                            "membership_budget", "migrate_on_rejoin"}) {
      if (cfg.raw(key)) {
        std::fprintf(stderr,
                     "agb_sim: warning: %s= has no effect without "
                     "gossip_membership=1\n",
                     key);
      }
    }
  }
  if (cfg.raw("p_local") && p.adaptive && p.adaptation.control.enabled) {
    std::fprintf(stderr,
                 "agb_sim: warning: p_local= sets only the starting point: "
                 "the control plane drives p_local at runtime (set "
                 "control_plane=0 to pin it)\n");
  }
  if (p.sim_shards <= 1) {
    for (const char* key : {"sim_workers", "lookahead_ms"}) {
      if (cfg.raw(key)) {
        std::fprintf(stderr,
                     "agb_sim: warning: %s= has no effect without "
                     "sim_shards>1 (the classic single-queue engine runs)\n",
                     key);
      }
    }
  }

  const std::string csv_prefix = cfg.get_string("csv", "");
  const std::string bench_path = cfg.get_string("bench", "");
  const bool per_node = cfg.get_bool("per_node", false);
  const std::string fabric = cfg.get_string("fabric", "sim");
  const auto shards = static_cast<std::size_t>(cfg.get_int("shards", 4));

  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "agb_sim: warning: unknown key '%s'\n", key.c_str());
  }

  if (fabric == "inmemory") {
    if (cfg.raw("sim_shards")) {
      std::fprintf(stderr,
                   "agb_sim: warning: sim_shards= has no effect on "
                   "fabric=inmemory (use shards= for receiver shards)\n");
    }
    return run_wallclock(p, *preset, shards, bench_path);
  }
  if (fabric != "sim") {
    std::fprintf(stderr, "agb_sim: unknown fabric '%s' (sim | inmemory)\n",
                 fabric.c_str());
    return 2;
  }

  // sim_shards<=1 keeps the classic single-queue engine — its event traces
  // are the golden fingerprints — while sim_shards>1 dispatches to the
  // sharded engine, whose scenario-visible results are shard/worker-count
  // invariant (tests/sharded_sim_test.cc pins that contract).
  const auto wall_start = std::chrono::steady_clock::now();
  std::optional<core::Scenario> classic;
  core::ScenarioResults r;
  std::size_t run_shards = 1;
  std::size_t run_workers = 1;
  std::uint64_t run_windows = 0;
  if (p.sim_shards > 1) {
    core::ShardedScenario sharded(p);
    auto sr = sharded.run();
    r = std::move(sr.base);
    run_shards = sr.shards;
    run_workers = sr.workers;
    run_windows = sr.windows;
  } else {
    classic.emplace(p);
    r = classic->run();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::printf("scenario         : %s (%s)\n", preset->name.c_str(),
              preset->summary.c_str());
  if (run_shards > 1) {
    std::printf("engine           : sharded sim, %zu shards, %zu workers, "
                "%llu windows\n",
                run_shards, run_workers,
                static_cast<unsigned long long>(run_windows));
  }
  std::printf("algorithm        : %s%s\n",
              p.adaptive ? "adaptive" : "lpbcast",
              p.gossip.recovery.enabled ? " + recovery" : "");
  std::printf("group            : %zu nodes, %zu senders, fanout %zu, "
              "T=%lld ms, buffer %zu\n",
              p.n, p.senders, p.gossip.fanout,
              static_cast<long long>(p.gossip.gossip_period),
              p.gossip.max_events);
  std::printf("offered load     : %.2f msg/s   admitted: %.2f msg/s   "
              "output: %.2f msg/s\n",
              p.offered_rate, r.input_rate, r.output_rate);
  std::printf("reliability      : avg receivers %.2f%%   atomic (>95%%) "
              "%.2f%%\n",
              r.delivery.avg_receiver_pct, r.delivery.atomicity_pct);
  std::printf("latency to atomic: p50 %.0f ms   p99 %.0f ms\n",
              r.delivery.latency_p50_ms, r.delivery.latency_p99_ms);
  std::printf("drops            : overflow %llu (avg age %.2f hops)   "
              "age-limit %llu\n",
              static_cast<unsigned long long>(r.overflow_drops),
              r.avg_drop_age,
              static_cast<unsigned long long>(r.age_limit_drops));
  if (p.adaptive) {
    std::printf("adaptation       : allowed %.2f msg/s (final %.2f)   "
                "minBuff %.1f   avgAge %.2f   refused %llu\n",
                r.avg_allowed_rate, r.final_allowed_rate, r.avg_min_buff,
                r.avg_age_estimate,
                static_cast<unsigned long long>(r.refused_broadcasts));
  }
  if (p.gossip.recovery.enabled) {
    std::printf("recovery         : %llu requests, %llu replies, %llu "
                "events recovered\n",
                static_cast<unsigned long long>(r.repair_requests),
                static_cast<unsigned long long>(r.repair_replies),
                static_cast<unsigned long long>(r.events_recovered));
  }
  std::printf("network          : %llu sent, %llu delivered, %llu lost, "
              "%.1f MB\n",
              static_cast<unsigned long long>(r.net.sent),
              static_cast<unsigned long long>(r.net.delivered),
              static_cast<unsigned long long>(r.net.dropped_loss),
              static_cast<double>(r.net.bytes_delivered) / 1e6);
  if (p.network.clusters > 1) {
    const double cross_pct =
        r.net.sent == 0 ? 0.0
                        : 100.0 * static_cast<double>(r.net.sent_cross_cluster)
                              / static_cast<double>(r.net.sent);
    std::printf("wan traffic      : %llu intra-cluster, %llu cross-cluster "
                "datagrams (%.1f%% cross%s)\n",
                static_cast<unsigned long long>(r.net.sent_intra_cluster),
                static_cast<unsigned long long>(r.net.sent_cross_cluster),
                cross_pct,
                p.locality.enabled ? ", locality-biased" : "");
  }
  if (!p.chaos.empty()) {
    std::printf("chaos            : %llu corrupted, %llu truncated, %llu "
                "duplicated, %llu reordered, %llu oneway-dropped; decode "
                "drops %llu\n",
                static_cast<unsigned long long>(r.chaos.corrupted),
                static_cast<unsigned long long>(r.chaos.truncated),
                static_cast<unsigned long long>(r.chaos.duplicated),
                static_cast<unsigned long long>(r.chaos.reordered),
                static_cast<unsigned long long>(r.chaos.dropped_oneway),
                static_cast<unsigned long long>(r.decode_failures));
    if (p.gossip_membership) {
      std::printf("membership chaos : %llu suspicions / %llu downs / %llu "
                  "revivals\n",
                  static_cast<unsigned long long>(
                      r.membership_transitions.suspicions),
                  static_cast<unsigned long long>(
                      r.membership_transitions.downs),
                  static_cast<unsigned long long>(
                      r.membership_transitions.revivals));
    }
    if (r.post_chaos_delivery) {
      std::printf("post-chaos       : avg receivers %.2f%%   atomic %.2f%% "
                  "over the recovery window\n",
                  r.post_chaos_delivery->avg_receiver_pct,
                  r.post_chaos_delivery->atomicity_pct);
    }
  }

  if (!bench_path.empty() && !p.chaos.empty()) {
    // Chaos bench: how fast did the group heal? Latency percentiles over
    // the post-fault window, expressed in gossip rounds — the
    // recovery-rounds baseline the CI artifact tracks.
    const double period = static_cast<double>(p.gossip.gossip_period);
    const double p50_rounds =
        r.post_chaos_delivery
            ? r.post_chaos_delivery->latency_p50_ms / period
            : -1.0;
    const double p99_rounds =
        r.post_chaos_delivery
            ? r.post_chaos_delivery->latency_p99_ms / period
            : -1.0;
    std::ofstream out(bench_path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    char record[640];
    std::snprintf(
        record, sizeof(record),
        "{\n"
        "  \"bench\": \"chaos\",\n"
        "  \"preset\": \"%s\",\n"
        "  \"n\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"mutations\": %llu,\n"
        "  \"duplicated\": %llu,\n"
        "  \"reordered\": %llu,\n"
        "  \"dropped_oneway\": %llu,\n"
        "  \"decode_drops\": %llu,\n"
        "  \"recovery_rounds_p50\": %.2f,\n"
        "  \"recovery_rounds_p99\": %.2f,\n"
        "  \"post_chaos_avg_receiver_pct\": %.2f\n"
        "}\n",
        preset->name.c_str(), p.n,
        static_cast<unsigned long long>(p.seed),
        static_cast<unsigned long long>(r.chaos.mutations()),
        static_cast<unsigned long long>(r.chaos.duplicated),
        static_cast<unsigned long long>(r.chaos.reordered),
        static_cast<unsigned long long>(r.chaos.dropped_oneway),
        static_cast<unsigned long long>(r.decode_failures),
        p50_rounds, p99_rounds,
        r.post_chaos_delivery ? r.post_chaos_delivery->avg_receiver_pct
                              : -1.0);
    out << record;
    std::printf("bench record     : %s (recovery rounds p50 %.2f / p99 "
                "%.2f, post-chaos receivers %.2f%%)\n",
                bench_path.c_str(), p50_rounds, p99_rounds,
                r.post_chaos_delivery ? r.post_chaos_delivery->avg_receiver_pct
                                      : -1.0);
  } else if (!bench_path.empty()) {
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    const double sim_seconds =
        static_cast<double>(p.warmup + p.duration + p.cooldown) / 1000.0;
    const double nodes_per_second =
        wall_seconds > 0.0
            ? static_cast<double>(p.n) * sim_seconds / wall_seconds
            : 0.0;
    // ru_maxrss is KiB on Linux; whole-process peak RSS is the honest
    // number for "how much memory does a run this size need".
    const double bytes_per_node =
        static_cast<double>(usage.ru_maxrss) * 1024.0 /
        static_cast<double>(p.n);
    std::ofstream out(bench_path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", bench_path.c_str());
      return 1;
    }
    char record[640];
    std::snprintf(record, sizeof(record),
                  "{\n"
                  "  \"bench\": \"sim_scale\",\n"
                  "  \"preset\": \"%s\",\n"
                  "  \"n\": %zu,\n"
                  "  \"sim_shards\": %zu,\n"
                  "  \"sim_workers\": %zu,\n"
                  "  \"windows\": %llu,\n"
                  "  \"sim_seconds\": %.3f,\n"
                  "  \"wall_seconds\": %.3f,\n"
                  "  \"nodes_simulated_per_second\": %.1f,\n"
                  "  \"bytes_per_node\": %.1f,\n"
                  "  \"peak_event_queue_len\": %zu\n"
                  "}\n",
                  preset->name.c_str(), p.n, run_shards, run_workers,
                  static_cast<unsigned long long>(run_windows), sim_seconds,
                  wall_seconds, nodes_per_second, bytes_per_node,
                  r.peak_event_queue_len);
    out << record;
    std::printf("bench record     : %s (%.0f nodes_sim/s, sim %.1f s in "
                "wall %.2f s, %zu shards x %zu workers, %.0f B/node, peak "
                "queue %zu)\n",
                bench_path.c_str(), nodes_per_second, sim_seconds,
                wall_seconds, run_shards, run_workers, bytes_per_node,
                r.peak_event_queue_len);
  }

  if (per_node && !classic) {
    std::fprintf(stderr,
                 "agb_sim: warning: per_node= is not available with "
                 "sim_shards>1 (node storage is torn down with the run)\n");
  } else if (per_node) {
    std::printf("\n%-6s %-8s %-10s %-9s %-9s %-9s %-9s\n", "node", "bcasts",
                "delivered", "dups", "ovf_drop", "age_drop", "minbuff");
    for (const auto& node : classic->nodes()) {
      const auto& c = node->counters();
      std::uint32_t min_buff = 0;
      for (const auto* a : classic->adaptive_nodes()) {
        if (a->id() == node->id()) min_buff = a->min_buff();
      }
      std::printf("%-6u %-8llu %-10llu %-9llu %-9llu %-9llu %-9u\n",
                  node->id(), static_cast<unsigned long long>(c.broadcasts),
                  static_cast<unsigned long long>(c.deliveries),
                  static_cast<unsigned long long>(c.duplicates),
                  static_cast<unsigned long long>(c.drops_overflow),
                  static_cast<unsigned long long>(c.drops_age_limit),
                  min_buff);
    }
  }

  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + "_series.csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", path.c_str());
      return 1;
    }
    std::vector<const metrics::TimeSeries*> series{&r.atomicity_ts,
                                                   &r.input_rate_ts};
    if (p.adaptive) {
      series.push_back(&r.allowed_rate_ts);
      series.push_back(&r.min_buff_ts);
    }
    // atomicity_ts has one point per bucket across the window; use it as
    // the row axis.
    metrics::write_csv(out, series);
    std::printf("csv              : %s (%zu rows)\n", path.c_str(),
                r.atomicity_ts.size());
  }
  return 0;
}
