// agb_sim — the general experiment driver.
//
// Exposes the whole core::Scenario parameter space on the command line, so
// downstream users can run custom experiments without writing C++:
//
//   agb_sim n=100 rate=40 adaptive=1 buffer=80 loss=0.05 duration_s=300
//   agb_sim capacity=150000:0.2:45,300000:0.2:60 csv=run1
//   agb_sim failures=60000:3:down,120000:3:up latency=uniform:1:40
//
// Keys (defaults in parentheses):
//   n(60) senders(4) rate(30) adaptive(0) partial_view(0) payload(16)
//   fanout(4) period_ms(2000) buffer(120) event_ids(4000) max_age(12)
//   tau_ms(2*period) window(2) alpha(0.9) critical_age(8) low_mark high_mark
//   delta_d(0.1) delta_i(0.1) gamma(0.1) bucket(8) initial_rate robust_k(1)
//   robust_floor(0) idle_age_boost(1)
//   recovery(0) repair_after(2) give_up_after(8) retrieve_rounds(6)
//   latency=fixed:ms | uniform:lo:hi | normal:mean:stddev   (fixed:1)
//   loss=p (iid) | burst:pgood:pbad:pgb:pbg                 (0)
//   capacity=at_ms:frac:cap[,...]     failures=at_ms:node:up|down[,...]
//   warmup_s(40) duration_s(150) cooldown_s(30) bucket_s(5) seed(42)
//   csv=prefix   (writes <prefix>_series.csv)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/scenario.h"
#include "metrics/timeseries.h"

namespace {

using namespace agb;

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

bool parse_latency(const std::string& spec, sim::LatencyModel* out) {
  auto parts = split(spec, ':');
  if (parts.empty()) return false;
  if (parts[0] == "fixed" && parts.size() == 2) {
    *out = sim::LatencyModel::fixed(std::stod(parts[1]));
    return true;
  }
  if (parts[0] == "uniform" && parts.size() == 3) {
    *out = sim::LatencyModel::uniform(std::stod(parts[1]),
                                      std::stod(parts[2]));
    return true;
  }
  if (parts[0] == "normal" && parts.size() == 3) {
    *out = sim::LatencyModel::normal(std::stod(parts[1]),
                                     std::stod(parts[2]));
    return true;
  }
  return false;
}

bool parse_loss(const std::string& spec, sim::LossModel* out) {
  auto parts = split(spec, ':');
  if (parts.size() == 1) {
    *out = sim::LossModel::iid(std::stod(parts[0]));
    return true;
  }
  if (parts[0] == "burst" && parts.size() == 5) {
    *out = sim::LossModel::burst(std::stod(parts[1]), std::stod(parts[2]),
                                 std::stod(parts[3]), std::stod(parts[4]));
    return true;
  }
  return false;
}

bool parse_capacity_schedule(const std::string& spec,
                             std::vector<core::CapacityChange>* out) {
  for (const auto& item : split(spec, ',')) {
    auto fields = split(item, ':');
    if (fields.size() != 3) return false;
    out->push_back(core::CapacityChange{
        std::stoll(fields[0]), std::stod(fields[1]),
        static_cast<std::size_t>(std::stoul(fields[2]))});
  }
  return true;
}

bool parse_failures(const std::string& spec,
                    std::vector<core::FailureEvent>* out) {
  for (const auto& item : split(spec, ',')) {
    auto fields = split(item, ':');
    if (fields.size() != 3 || (fields[2] != "up" && fields[2] != "down")) {
      return false;
    }
    out->push_back(core::FailureEvent{
        std::stoll(fields[0]),
        static_cast<NodeId>(std::stoul(fields[1])), fields[2] == "up"});
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "agb_sim: %s\n(see the header of tools/agb_sim.cc "
                 "for the key reference)\n", error.c_str());
    return 2;
  }

  core::ScenarioParams p;
  p.n = static_cast<std::size_t>(cfg.get_int("n", 60));
  p.senders = static_cast<std::size_t>(cfg.get_int("senders", 4));
  p.offered_rate = cfg.get_double("rate", 30.0);
  p.adaptive = cfg.get_bool("adaptive", false);
  p.partial_view = cfg.get_bool("partial_view", false);
  p.payload_size = static_cast<std::size_t>(cfg.get_int("payload", 16));
  p.poisson_arrivals = cfg.get_bool("poisson", true);
  p.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  p.gossip.fanout = static_cast<std::size_t>(cfg.get_int("fanout", 4));
  p.gossip.gossip_period = cfg.get_int("period_ms", 2000);
  p.gossip.max_events = static_cast<std::size_t>(cfg.get_int("buffer", 120));
  p.gossip.max_event_ids =
      static_cast<std::size_t>(cfg.get_int("event_ids", 4000));
  p.gossip.max_age = static_cast<std::uint32_t>(cfg.get_int("max_age", 12));
  p.gossip.recovery.enabled = cfg.get_bool("recovery", false);
  p.gossip.recovery.repair_after_rounds =
      static_cast<Round>(cfg.get_int("repair_after", 2));
  p.gossip.recovery.give_up_after_rounds =
      static_cast<Round>(cfg.get_int("give_up_after", 8));
  p.gossip.recovery.retrieve_rounds =
      static_cast<Round>(cfg.get_int("retrieve_rounds", 6));

  p.adaptation.sample_period =
      cfg.get_int("tau_ms", 2 * p.gossip.gossip_period);
  p.adaptation.min_buff_window =
      static_cast<std::size_t>(cfg.get_int("window", 2));
  p.adaptation.alpha = cfg.get_double("alpha", 0.9);
  p.adaptation.critical_age = cfg.get_double("critical_age", 8.0);
  p.adaptation.low_age_mark =
      cfg.get_double("low_mark", p.adaptation.critical_age - 0.5);
  p.adaptation.high_age_mark =
      cfg.get_double("high_mark", p.adaptation.critical_age + 0.5);
  p.adaptation.decrease_factor = cfg.get_double("delta_d", 0.1);
  p.adaptation.increase_factor = cfg.get_double("delta_i", 0.1);
  p.adaptation.increase_probability = cfg.get_double("gamma", 0.1);
  p.adaptation.bucket_capacity = cfg.get_double("bucket", 8.0);
  p.adaptation.initial_rate = cfg.get_double(
      "initial_rate", p.offered_rate / static_cast<double>(p.senders));
  p.adaptation.robust_k =
      static_cast<std::size_t>(cfg.get_int("robust_k", 1));
  p.adaptation.robust_floor =
      static_cast<std::uint32_t>(cfg.get_int("robust_floor", 0));
  p.adaptation.idle_age_boost = cfg.get_bool("idle_age_boost", true);

  p.warmup = cfg.get_int("warmup_s", 40) * 1000;
  p.duration = cfg.get_int("duration_s", 150) * 1000;
  p.cooldown = cfg.get_int("cooldown_s", 30) * 1000;
  p.series_bucket = cfg.get_int("bucket_s", 5) * 1000;

  if (auto spec = cfg.raw("latency")) {
    if (!parse_latency(*spec, &p.network.latency)) {
      std::fprintf(stderr, "agb_sim: bad latency spec '%s'\n", spec->c_str());
      return 2;
    }
  }
  if (auto spec = cfg.raw("loss")) {
    if (!parse_loss(*spec, &p.network.loss)) {
      std::fprintf(stderr, "agb_sim: bad loss spec '%s'\n", spec->c_str());
      return 2;
    }
  }
  if (auto spec = cfg.raw("capacity")) {
    if (!parse_capacity_schedule(*spec, &p.capacity_schedule)) {
      std::fprintf(stderr, "agb_sim: bad capacity spec '%s'\n",
                   spec->c_str());
      return 2;
    }
  }
  if (auto spec = cfg.raw("failures")) {
    if (!parse_failures(*spec, &p.failure_schedule)) {
      std::fprintf(stderr, "agb_sim: bad failures spec '%s'\n",
                   spec->c_str());
      return 2;
    }
  }
  const std::string csv_prefix = cfg.get_string("csv", "");
  const bool per_node = cfg.get_bool("per_node", false);

  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "agb_sim: warning: unknown key '%s'\n", key.c_str());
  }

  core::Scenario scenario(p);
  auto r = scenario.run();

  std::printf("algorithm        : %s%s\n",
              p.adaptive ? "adaptive" : "lpbcast",
              p.gossip.recovery.enabled ? " + recovery" : "");
  std::printf("group            : %zu nodes, %zu senders, fanout %zu, "
              "T=%lld ms, buffer %zu\n",
              p.n, p.senders, p.gossip.fanout,
              static_cast<long long>(p.gossip.gossip_period),
              p.gossip.max_events);
  std::printf("offered load     : %.2f msg/s   admitted: %.2f msg/s   "
              "output: %.2f msg/s\n",
              p.offered_rate, r.input_rate, r.output_rate);
  std::printf("reliability      : avg receivers %.2f%%   atomic (>95%%) "
              "%.2f%%\n",
              r.delivery.avg_receiver_pct, r.delivery.atomicity_pct);
  std::printf("latency to atomic: p50 %.0f ms   p99 %.0f ms\n",
              r.delivery.latency_p50_ms, r.delivery.latency_p99_ms);
  std::printf("drops            : overflow %llu (avg age %.2f hops)   "
              "age-limit %llu\n",
              static_cast<unsigned long long>(r.overflow_drops),
              r.avg_drop_age,
              static_cast<unsigned long long>(r.age_limit_drops));
  if (p.adaptive) {
    std::printf("adaptation       : allowed %.2f msg/s (final %.2f)   "
                "minBuff %.1f   avgAge %.2f   refused %llu\n",
                r.avg_allowed_rate, r.final_allowed_rate, r.avg_min_buff,
                r.avg_age_estimate,
                static_cast<unsigned long long>(r.refused_broadcasts));
  }
  if (p.gossip.recovery.enabled) {
    std::printf("recovery         : %llu requests, %llu replies, %llu "
                "events recovered\n",
                static_cast<unsigned long long>(r.repair_requests),
                static_cast<unsigned long long>(r.repair_replies),
                static_cast<unsigned long long>(r.events_recovered));
  }
  std::printf("network          : %llu sent, %llu delivered, %llu lost, "
              "%.1f MB\n",
              static_cast<unsigned long long>(r.net.sent),
              static_cast<unsigned long long>(r.net.delivered),
              static_cast<unsigned long long>(r.net.dropped_loss),
              static_cast<double>(r.net.bytes_delivered) / 1e6);

  if (per_node) {
    std::printf("\n%-6s %-8s %-10s %-9s %-9s %-9s %-9s\n", "node", "bcasts",
                "delivered", "dups", "ovf_drop", "age_drop", "minbuff");
    for (const auto& node : scenario.nodes()) {
      const auto& c = node->counters();
      std::uint32_t min_buff = 0;
      for (const auto* a : scenario.adaptive_nodes()) {
        if (a->id() == node->id()) min_buff = a->min_buff();
      }
      std::printf("%-6u %-8llu %-10llu %-9llu %-9llu %-9llu %-9u\n",
                  node->id(), static_cast<unsigned long long>(c.broadcasts),
                  static_cast<unsigned long long>(c.deliveries),
                  static_cast<unsigned long long>(c.duplicates),
                  static_cast<unsigned long long>(c.drops_overflow),
                  static_cast<unsigned long long>(c.drops_age_limit),
                  min_buff);
    }
  }

  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + "_series.csv";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "agb_sim: cannot write %s\n", path.c_str());
      return 1;
    }
    std::vector<const metrics::TimeSeries*> series{&r.atomicity_ts,
                                                   &r.input_rate_ts};
    if (p.adaptive) {
      series.push_back(&r.allowed_rate_ts);
      series.push_back(&r.min_buff_ts);
    }
    // atomicity_ts has one point per bucket across the window; use it as
    // the row axis.
    metrics::write_csv(out, series);
    std::printf("csv              : %s (%zu rows)\n", path.c_str(),
                r.atomicity_ts.size());
  }
  return 0;
}
