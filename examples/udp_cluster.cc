// Real-transport demo: a small adaptive gossip cluster over actual UDP
// sockets on localhost — the runtime counterpart of the simulator examples
// and the closest analogue of the paper's 60-workstation prototype.
//
//   $ ./udp_cluster                 # 8 nodes, ~6 s wall clock
//   $ ./udp_cluster nodes=12 port=31000 seconds=10
//
// One node is started with a much smaller buffer; by the end of the run
// every node's minBuff estimate has converged to it purely through gossip
// headers, and the publisher's allowed rate reflects that budget.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/config.h"
#include "membership/full_membership.h"
#include "runtime/node_runtime.h"
#include "runtime/udp_transport.h"

int main(int argc, char** argv) {
  using namespace agb;
  using namespace std::chrono_literals;

  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "usage: udp_cluster [key=value ...]\n%s\n",
                 error.c_str());
    return 2;
  }
  const auto n = static_cast<std::size_t>(cfg.get_int("nodes", 8));
  const auto port = static_cast<std::uint16_t>(cfg.get_int("port", 30'500));
  const int seconds = static_cast<int>(cfg.get_int("seconds", 6));
  const NodeId constrained = static_cast<NodeId>(n - 1);

  runtime::UdpTransport transport(port);
  std::vector<std::unique_ptr<runtime::NodeRuntime>> nodes;
  std::vector<std::uint64_t> deliveries(n, 0);

  Rng master(99);
  for (NodeId id = 0; id < n; ++id) {
    auto members =
        std::make_unique<membership::FullMembership>(id, master.split());
    for (NodeId peer = 0; peer < n; ++peer) {
      if (peer != id) members->add(peer);
    }
    gossip::GossipParams gp;
    gp.fanout = 3;
    gp.gossip_period = 100;  // 10 rounds/s: quick demo
    gp.max_events = (id == constrained) ? 8 : 64;
    gp.max_event_ids = 2000;
    gp.max_age = 16;
    adaptive::AdaptiveParams ap;
    ap.sample_period = 300;
    ap.critical_age = 6.0;
    ap.low_age_mark = 5.0;
    ap.high_age_mark = 7.0;
    ap.initial_rate = 40.0;
    ap.bucket_capacity = 10.0;
    auto node = std::make_unique<adaptive::AdaptiveLpbcastNode>(
        id, gp, ap, std::move(members), master.split());
    auto runtime = std::make_unique<runtime::NodeRuntime>(
        std::move(node), transport, [&transport] { return transport.now(); });
    runtime->set_deliver_handler(
        [&deliveries, id](const gossip::Event&, TimeMs) { ++deliveries[id]; });
    nodes.push_back(std::move(runtime));
  }

  std::printf("udp cluster: %zu adaptive nodes on 127.0.0.1:%u..%u\n", n,
              port, port + static_cast<unsigned>(n) - 1);
  std::printf("node %u runs with an 8-event buffer; everyone else has 64\n\n",
              constrained);

  for (auto& node : nodes) node->start();

  // Node 0 publishes as fast as its token bucket allows.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::uint64_t published = 0, refused = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (nodes[0]->try_broadcast(gossip::make_payload({0xab, 0xcd}))) {
      ++published;
    } else {
      ++refused;
    }
    std::this_thread::sleep_for(5ms);
  }
  // Let the tail disseminate, then stop.
  std::this_thread::sleep_for(500ms);
  for (auto& node : nodes) node->stop();

  std::printf("published %llu messages (%.1f msg/s), %llu sends throttled\n",
              static_cast<unsigned long long>(published),
              static_cast<double>(published) / seconds,
              static_cast<unsigned long long>(refused));
  std::printf("publisher allowed rate at end: %.1f msg/s\n",
              nodes[0]->allowed_rate());
  std::printf("\n%-6s %-12s %-10s %s\n", "node", "deliveries", "minBuff",
              "buffer");
  for (NodeId id = 0; id < n; ++id) {
    std::printf("%-6u %-12llu %-10u %zu\n", id,
                static_cast<unsigned long long>(deliveries[id]),
                nodes[id]->min_buff(), (id == constrained) ? 8ul : 64ul);
  }
  std::printf("\nall minBuff estimates should read 8 — learned via gossip "
              "headers only.\n");
  return 0;
}
