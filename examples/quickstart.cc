// Quickstart: run an adaptive gossip broadcast group in the deterministic
// simulator and print the reliability report.
//
//   $ ./quickstart            # defaults: 30 nodes, 12 msg/s offered
//   $ ./quickstart n=60 rate=30 buffer=60
//
// This exercises the highest-level API (core::Scenario). For driving the
// protocol over real transports see examples/udp_cluster.cc; for the
// node-level API see examples/pubsub_topics.cc.
#include <cstdio>

#include "common/config.h"
#include "core/scenario.h"

int main(int argc, char** argv) {
  using namespace agb;

  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "usage: quickstart [key=value ...]\n%s\n",
                 error.c_str());
    return 2;
  }

  core::ScenarioParams params;
  params.n = static_cast<std::size_t>(cfg.get_int("n", 30));
  params.senders = static_cast<std::size_t>(cfg.get_int("senders", 3));
  params.offered_rate = cfg.get_double("rate", 12.0);
  params.adaptive = cfg.get_bool("adaptive", true);
  params.gossip.fanout = static_cast<std::size_t>(cfg.get_int("fanout", 4));
  params.gossip.gossip_period = cfg.get_int("period_ms", 1000);
  params.gossip.max_events =
      static_cast<std::size_t>(cfg.get_int("buffer", 40));
  params.gossip.max_age = 20;
  params.adaptation.initial_rate =
      params.offered_rate / static_cast<double>(params.senders);
  params.warmup = 10'000;
  params.duration = cfg.get_int("duration_s", 60) * 1000;
  params.cooldown = 15'000;
  params.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  std::printf("adaptive gossip broadcast quickstart\n");
  std::printf("  group size   : %zu nodes (%zu senders)\n", params.n,
              params.senders);
  std::printf("  offered load : %.1f msg/s aggregate\n", params.offered_rate);
  std::printf("  event buffer : %zu messages per node\n",
              params.gossip.max_events);
  std::printf("  algorithm    : %s\n\n",
              params.adaptive ? "adaptive (paper Fig. 5)"
                              : "lpbcast baseline (paper Fig. 1)");

  core::Scenario scenario(params);
  auto r = scenario.run();

  std::printf("results over a %.0f s evaluation window:\n",
              r.delivery.window_s);
  std::printf("  broadcasts admitted : %llu (%.2f msg/s)\n",
              static_cast<unsigned long long>(r.delivery.messages),
              r.input_rate);
  std::printf("  avg %% of receivers  : %.2f %%\n",
              r.delivery.avg_receiver_pct);
  std::printf("  atomic (>95%%) msgs  : %.2f %%\n", r.delivery.atomicity_pct);
  std::printf("  p50 dissemination   : %.0f ms\n", r.delivery.latency_p50_ms);
  if (params.adaptive) {
    std::printf("  allowed rate (mean) : %.2f msg/s aggregate\n",
                r.avg_allowed_rate);
    std::printf("  group minBuff       : %.0f messages\n", r.avg_min_buff);
  }
  std::printf("  overflow drops      : %llu (mean age %.1f hops)\n",
              static_cast<unsigned long long>(r.overflow_drops),
              r.avg_drop_age);
  std::printf("  network             : %llu datagrams delivered, %llu lost\n",
              static_cast<unsigned long long>(r.net.delivered),
              static_cast<unsigned long long>(r.net.dropped_loss));
  return 0;
}
