// Publish-subscribe with overlapping topic groups — the application the
// paper's introduction motivates the mechanism with.
//
// Two topics ("market-data" and "alerts") each run their own gossip-based
// broadcast group. A block of nodes subscribes to *both* topics halfway
// through the run and must split its fixed buffer budget between the two
// groups. The adaptive mechanism in the market-data group notices the
// shrunken buffers through its gossiped minBuff estimate and throttles the
// publishers — no explicit feedback, no reconfiguration.
//
// This example uses the node-level API directly (AdaptiveLpbcastNode driven
// over a simulated network), which is what an embedding application would
// do; contrast with examples/quickstart.cc, which uses the scenario
// harness.
#include <cstdio>
#include <memory>
#include <vector>

#include "adaptive/adaptive_node.h"
#include "membership/full_membership.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

using namespace agb;

constexpr std::size_t kMembers = 30;     // nodes per topic
constexpr std::size_t kOverlap = 10;     // nodes subscribed to both topics
constexpr std::size_t kBudget = 60;      // per-node buffer budget (events)
constexpr DurationMs kRoundMs = 1000;
constexpr TimeMs kJoinAt = 120'000;      // overlap nodes join topic 2 here
constexpr TimeMs kEndAt = 300'000;

/// Address space: topic T, member i -> NodeId T*1000+i. One simulated
/// network carries both groups.
NodeId address(std::size_t topic, std::size_t member) {
  return static_cast<NodeId>(topic * 1000 + member);
}

struct TopicGroup {
  std::size_t topic;
  std::vector<std::unique_ptr<adaptive::AdaptiveLpbcastNode>> nodes;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  std::uint64_t deliveries = 0;

  double publisher_rate() const {
    return nodes[0]->allowed_rate();  // member 0 publishes
  }
  std::uint32_t group_min_buff() const { return nodes[5]->min_buff(); }
};

std::unique_ptr<TopicGroup> make_topic(std::size_t topic, sim::Simulator& sim,
                                       sim::SimNetwork& net, Rng& master,
                                       double publish_rate) {
  auto group = std::make_unique<TopicGroup>();
  group->topic = topic;
  for (std::size_t i = 0; i < kMembers; ++i) {
    auto members = std::make_unique<membership::FullMembership>(
        address(topic, i), master.split());
    for (std::size_t j = 0; j < kMembers; ++j) {
      if (j != i) members->add(address(topic, j));
    }
    gossip::GossipParams gp;
    gp.fanout = 4;
    gp.gossip_period = kRoundMs;
    gp.max_events = kBudget;
    gp.max_event_ids = 3000;
    gp.max_age = 16;
    adaptive::AdaptiveParams ap;
    ap.sample_period = 2 * kRoundMs;
    ap.critical_age = 6.0;
    ap.low_age_mark = 5.5;
    ap.high_age_mark = 6.5;
    ap.initial_rate = publish_rate;
    auto node = std::make_unique<adaptive::AdaptiveLpbcastNode>(
        address(topic, i), gp, ap, std::move(members), master.split());
    node->set_deliver_handler(
        [raw = group.get()](const gossip::Event&, TimeMs) {
          ++raw->deliveries;
        });
    net.attach(address(topic, i),
               [raw = node.get()](const Datagram& d, TimeMs now) {
                 if (auto m = gossip::GossipMessage::decode(d.payload)) {
                   raw->on_gossip(*m, now);
                 }
               });
    group->nodes.push_back(std::move(node));
  }
  // Round timers with random phases.
  for (auto& node : group->nodes) {
    const auto phase = static_cast<TimeMs>(master.next_below(kRoundMs));
    group->timers.push_back(std::make_unique<sim::PeriodicTimer>(
        sim, phase, kRoundMs, [raw = node.get(), &net](TimeMs now) {
          auto out = raw->on_round(now);
          if (out.targets.empty()) return;
          net.send_batch(std::move(out).to_multicast(raw->id()));
        }));
  }
  return group;
}

void start_publisher(TopicGroup& group, sim::Simulator& sim, Rng& master,
                     double rate) {
  auto* node = group.nodes[0].get();
  auto rng = std::make_shared<Rng>(master.split());
  auto publish = std::make_shared<std::function<void()>>();
  *publish = [node, rng, &sim, rate, publish] {
    (void)node->try_broadcast(gossip::make_payload({0x42}), sim.now());
    sim.after(static_cast<DurationMs>(
                  std::max(1.0, rng->exponential(1000.0 / rate))),
              [publish] { (*publish)(); });
  };
  sim.after(1, [publish] { (*publish)(); });
}

}  // namespace

int main() {
  sim::Simulator sim;
  Rng master(2026);
  sim::SimNetwork net(sim, {}, master.split());

  std::printf("pub/sub with overlapping topic groups\n");
  std::printf("  topic 1 (market-data): %zu subscribers, publisher at 20 "
              "msg/s\n", kMembers);
  std::printf("  topic 2 (alerts)     : %zu subscribers, publisher at 8 "
              "msg/s\n", kMembers);
  std::printf("  at t=%llds, %zu market-data nodes also subscribe to "
              "alerts and split\n  their %zu-event buffer 50/50 between the "
              "topics\n\n",
              static_cast<long long>(kJoinAt / 1000), kOverlap, kBudget);

  auto market = make_topic(1, sim, net, master, 20.0);
  auto alerts = make_topic(2, sim, net, master, 8.0);
  start_publisher(*market, sim, master, 20.0);
  start_publisher(*alerts, sim, master, 8.0);

  // At kJoinAt, the overlap block halves the buffer it devotes to each
  // topic, exactly the "resources are split dynamically between groups"
  // situation of the paper's §1.
  sim.at(kJoinAt, [&] {
    for (std::size_t i = kMembers - kOverlap; i < kMembers; ++i) {
      market->nodes[i]->set_capacity(kBudget / 2, sim.now());
      alerts->nodes[i]->set_capacity(kBudget / 2, sim.now());
    }
    std::printf("t=%4llds  >>> %zu nodes split buffers between topics <<<\n",
                static_cast<long long>(sim.now() / 1000), kOverlap);
  });

  // Progress printout every 30 s.
  sim::PeriodicTimer reporter(sim, 30'000, 30'000, [&](TimeMs now) {
    std::printf(
        "t=%4llds  market: allowed %5.1f msg/s minBuff %3u | alerts: "
        "allowed %4.1f msg/s minBuff %3u\n",
        static_cast<long long>(now / 1000), market->publisher_rate(),
        market->group_min_buff(), alerts->publisher_rate(),
        alerts->group_min_buff());
  });

  sim.run_until(kEndAt);

  std::printf("\nafter the split, the market-data publisher throttles to "
              "what the halved buffers sustain;\nthe alerts topic (8 msg/s "
              "well under capacity) is unaffected.\n");
  std::printf("total deliveries: market %llu, alerts %llu\n",
              static_cast<unsigned long long>(market->deliveries),
              static_cast<unsigned long long>(alerts->deliveries));
  return 0;
}
