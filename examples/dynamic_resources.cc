// Dynamic resources demo: the paper's Figure 9 scenario as a watchable
// timeline. 20% of the group shrinks its buffers mid-run and later grows
// them back partially; the printout shows the adaptive sender rate chasing
// the moving capacity while atomicity stays high.
//
//   $ ./dynamic_resources
//   $ ./dynamic_resources adaptive=0     # watch lpbcast collapse instead
#include <cstdio>

#include "common/config.h"
#include "core/scenario.h"

int main(int argc, char** argv) {
  using namespace agb;

  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "usage: dynamic_resources [key=value ...]\n%s\n",
                 error.c_str());
    return 2;
  }

  core::ScenarioParams p;
  p.n = 40;
  p.senders = 4;
  p.offered_rate = cfg.get_double("rate", 20.0);
  p.adaptive = cfg.get_bool("adaptive", true);
  p.gossip.fanout = 4;
  p.gossip.gossip_period = 1000;
  p.gossip.max_events = 60;
  p.gossip.max_event_ids = 3000;
  p.gossip.max_age = 14;
  p.adaptation.sample_period = 2000;
  p.adaptation.critical_age = cfg.get_double("critical_age", 7.0);
  p.adaptation.low_age_mark = p.adaptation.critical_age - 0.5;
  p.adaptation.high_age_mark = p.adaptation.critical_age + 0.5;
  p.adaptation.initial_rate = p.offered_rate / 4.0;
  p.adaptation.increase_probability = 0.25;
  p.warmup = 20'000;
  p.duration = 240'000;
  p.cooldown = 20'000;
  p.series_bucket = 10'000;
  p.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  // Shrink at +80 s, partial recovery at +160 s (relative to eval start).
  const TimeMs t1 = p.warmup + 80'000;
  const TimeMs t2 = p.warmup + 160'000;
  p.capacity_schedule = {{t1, 0.2, 18}, {t2, 0.2, 36}};

  std::printf("dynamic resources timeline (%s)\n",
              p.adaptive ? "adaptive" : "lpbcast baseline");
  std::printf("  40 nodes, offered %.0f msg/s, buffers 60 events\n",
              p.offered_rate);
  std::printf("  t=+80s : 20%% of nodes shrink 60 -> 18 events\n");
  std::printf("  t=+160s: those nodes grow back 18 -> 36 events\n\n");

  core::Scenario scenario(p);
  auto r = scenario.run();

  std::printf(" t(s) | allowed msg/s | input msg/s | atomicity %%\n");
  std::printf("------+---------------+-------------+------------\n");
  for (const auto& [t, atomicity] : r.atomicity_ts.points()) {
    const auto rel = static_cast<long long>((t - p.warmup) / 1000);
    const double allowed =
        p.adaptive ? r.allowed_rate_ts.value_at(t) : p.offered_rate;
    std::printf("%5lld | %13.1f | %11.1f | %10.1f%s\n", rel, allowed,
                r.input_rate_ts.value_at(t), atomicity,
                (t - p.warmup == 80'000 || t - p.warmup == 160'000)
                    ? "   <- capacity change"
                    : "");
  }

  std::printf("\nwhole-run: input %.1f msg/s, atomicity %.1f%%, avg "
              "receivers %.1f%%\n",
              r.input_rate, r.delivery.atomicity_pct,
              r.delivery.avg_receiver_pct);
  if (p.adaptive) {
    std::printf("the allowed rate steps down after the shrink and climbs "
                "back after the recovery.\n");
  } else {
    std::printf("without adaptation the input never backs off and "
                "atomicity collapses in the\nconstrained phase.\n");
  }
  return 0;
}
