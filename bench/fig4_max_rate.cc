// Reproduces paper Figure 4: "Maximum input rate" vs buffer size, and the
// §2.3 calibration: the average age of dropped messages at the congestion
// knee is (approximately) buffer-size independent — the critical age a_r
// the adaptive mechanism targets (5.3 hops in the paper's substrate,
// ~9-10 hops in ours; see EXPERIMENTS.md).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "core/capacity_search.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::preset_params("fig4", cfg);
  // The search probes many runs; shorten each one.
  const bool quick = cfg.get_bool("quick", false);
  base.duration = cfg.get_int("search_duration_s", quick ? 40 : 90) * 1000;
  base.warmup = 30'000;
  base.cooldown = 25'000;

  bench::print_banner(
      "Figure 4", "maximum sustainable input rate vs buffer size", base);

  const double hi = cfg.get_double("hi", 140.0);
  const double tol = cfg.get_double("tol", 2.0);

  auto sweep = [&](core::CapacitySearchOptions::Criterion criterion,
                   RunningStats& knee_ages) {
    metrics::Table table(
        {"buffer_msgs", "max_rate_msg_s", "knee_drop_age_hops", "metric_pct"});
    for (std::size_t buffer : {30u, 60u, 90u, 120u, 150u, 180u}) {
      auto params = base;
      params.gossip.max_events = buffer;
      core::CapacitySearchOptions options;
      options.lo = 2.0;
      options.hi = hi;
      options.tol = tol;
      options.criterion = criterion;
      auto result = core::find_max_rate(params, options);
      table.add_numeric_row({static_cast<double>(buffer), result.max_rate,
                             result.knee_drop_age, result.metric_at_knee},
                            2);
      if (result.max_rate < hi) knee_ages.add(result.knee_drop_age);
    }
    table.print(std::cout);
  };

  std::printf("criterion 1 (paper Fig. 4): avg receivers >= 95%%\n");
  RunningStats recv_knees;
  sweep(core::CapacitySearchOptions::Criterion::kAvgReceivers, recv_knees);
  std::printf(
      "\ncriterion 2 (bimodal): >=95%% of messages atomic (>95%% receivers) "
      "— the standard the\nshipped adaptive marks target\n");
  RunningStats atom_knees;
  sweep(core::CapacitySearchOptions::Criterion::kAtomicity, atom_knees);

  std::printf(
      "\ncritical age a_r (rows that did not saturate the search bound):\n"
      "  avg-receivers criterion : %.2f hops (stddev %.2f)\n"
      "  atomicity criterion     : %.2f hops (stddev %.2f)\n"
      "(paper: 5.3 hops, buffer-independent; bench_common.h pins "
      "kCriticalAge=%.1f near the\natomicity-criterion value)\n",
      recv_knees.mean(), recv_knees.stddev(), atom_knees.mean(),
      atom_knees.stddev(), bench::kCriticalAge);
  std::printf(
      "paper shape: max rate grows roughly linearly with buffer size; knee "
      "age constant.\n");
  bench::warn_unused(cfg);
  return 0;
}
