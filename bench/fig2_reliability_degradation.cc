// Reproduces paper Figure 2: "Reliability degradation."
//
// Static configuration (buffer fixed, no adaptation); the offered load
// sweeps 10..60 msg/s and we report the percentage of messages delivered to
// more than 95 % of the group, plus the average age of dropped messages the
// paper quotes in the surrounding text (8.5 hops at 10 msg/s falling to 2.7
// at 60 msg/s in their substrate; the same monotone collapse happens here).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::preset_params("fig2", cfg);

  bench::print_banner("Figure 2", "reliability degradation vs input rate",
                      base);

  metrics::Table table({"rate_msg_s", "input_msg_s", "atomic_pct",
                        "avg_recv_pct", "drop_age_hops"});
  for (double rate : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    auto params = base;
    params.offered_rate = rate;
    core::Scenario scenario(params);
    auto r = scenario.run();
    table.add_numeric_row({rate, r.input_rate, r.delivery.atomicity_pct,
                           r.delivery.avg_receiver_pct, r.avg_drop_age},
                          2);
  }
  table.print(std::cout);
  std::printf(
      "\npaper shape: ~100%% of messages atomic at low rate, collapsing as "
      "rate grows;\ndrop age falls monotonically with rate.\n");
  bench::warn_unused(cfg);
  return 0;
}
