// Reproduces paper Figure 6: "Ideal and adaptive rates."
//
// Offered load is fixed at 30 msg/s while every node's buffer shrinks
// progressively. Three series, as in the paper:
//   offered   — what the application tries to send,
//   allowed   — the rate the adaptive mechanism grants (its own estimate),
//   maximum   — the ideal rate measured by exhaustive search (Figure 4).
// Below the capacity knee the allowed rate must approximate the maximum;
// above it, the offered load must be accepted.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/capacity_search.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::preset_params("fig6", cfg);
  const bool quick = cfg.get_bool("quick", false);

  bench::print_banner("Figure 6",
                      "offered vs allowed vs maximum load (adaptive)", base);

  metrics::Table table({"buffer_msgs", "offered_msg_s", "allowed_msg_s",
                        "accepted_msg_s", "maximum_msg_s"});
  for (std::size_t buffer : {30u, 60u, 90u, 120u, 150u, 180u}) {
    // Ideal capacity by search (the paper's dotted "maximum" line).
    auto search_params = base;
    search_params.gossip.max_events = buffer;
    search_params.duration = (quick ? 40 : 90) * 1000;
    core::CapacitySearchOptions options;
    options.lo = 2.0;
    options.hi = 80.0;
    options.tol = cfg.get_double("tol", 2.0);
    // The controller's marks target the bimodal-atomicity standard, so the
    // "maximum" reference line must use the same standard (fig4 prints both).
    options.criterion = core::CapacitySearchOptions::Criterion::kAtomicity;
    const double maximum =
        core::find_max_rate(search_params, options).max_rate;

    // Adaptive run at the fixed offered load.
    auto params = base;
    params.adaptive = true;
    params.gossip.max_events = buffer;
    core::Scenario scenario(params);
    auto r = scenario.run();

    table.add_numeric_row({static_cast<double>(buffer), params.offered_rate,
                           r.avg_allowed_rate, r.input_rate, maximum},
                          2);
  }
  table.print(std::cout);
  std::printf(
      "\npaper shape: allowed tracks maximum below the knee (~120 msgs); "
      "offered load accepted above it.\n");
  bench::warn_unused(cfg);
  return 0;
}
