// Reproduces paper Figure 7: input rate (a), output rate (b) and average
// age of dropped messages (c), for lpbcast vs the adaptive variant, as
// every node's buffer shrinks under a constant 30 msg/s offered load.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::preset_params("fig7", cfg);

  bench::print_banner(
      "Figure 7", "rates and drop ages, lpbcast vs adaptive (30 msg/s)",
      base);

  metrics::Table table({"buffer_msgs",                       //
                        "in_lpbcast", "in_adaptive",         // Fig. 7(a)
                        "out_lpbcast", "out_adaptive",       // Fig. 7(b)
                        "dropage_lpbcast", "dropage_adaptive"});  // Fig. 7(c)
  for (std::size_t buffer : {30u, 60u, 90u, 120u, 150u, 180u}) {
    auto lp = base;
    lp.adaptive = false;
    lp.gossip.max_events = buffer;
    core::Scenario lp_scenario(lp);
    auto lp_r = lp_scenario.run();

    auto ad = base;
    ad.adaptive = true;
    ad.gossip.max_events = buffer;
    core::Scenario ad_scenario(ad);
    auto ad_r = ad_scenario.run();

    table.add_numeric_row({static_cast<double>(buffer),       //
                           lp_r.input_rate, ad_r.input_rate,  //
                           lp_r.output_rate, ad_r.output_rate,
                           lp_r.avg_drop_age, ad_r.avg_drop_age},
                          2);
  }
  table.print(std::cout);
  std::printf(
      "\npaper shape: lpbcast input stays at the offered load and its "
      "output collapses with small buffers\nwhile its drop age falls; the "
      "adaptive variant keeps input == output (no loss) and holds the\n"
      "drop age near the critical value.\n");
  bench::warn_unused(cfg);
  return 0;
}
