// Extension bench (beyond the paper's figures): pull-based repair under
// network loss. The paper's §5/§6 note that the adaptive mechanism prevents
// *future* omissions and that separate techniques must recover *past* ones;
// this bench quantifies how the lpbcast retrieval phase (seen-id digests +
// directed repair, served from a short-lived retrieval store) restores
// reliability as i.i.d. and bursty loss grow.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::paper_params(cfg);
  base.offered_rate = cfg.get_double("rate", 15.0);
  base.gossip.fanout = static_cast<std::size_t>(cfg.get_int("fanout", 3));
  base.gossip.max_events = static_cast<std::size_t>(cfg.get_int("buffer", 400));
  base.gossip.max_age = static_cast<std::uint32_t>(cfg.get_int("max_age", 8));
  base.gossip.recovery.repair_after_rounds = 2;

  bench::print_banner("Recovery extension",
                      "reliability under loss, with and without repair",
                      base);

  metrics::Table table({"loss", "recv_plain", "recv_repair", "atomic_plain",
                        "atomic_repair", "repairs", "recovered"});
  auto run_at = [&](sim::LossModel loss, bool repair) {
    auto p = base;
    p.network.loss = loss;
    p.gossip.recovery.enabled = repair;
    core::Scenario s(p);
    return s.run();
  };

  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    auto plain = run_at(sim::LossModel::iid(loss), false);
    auto repaired = run_at(sim::LossModel::iid(loss), true);
    table.add_numeric_row(
        {loss, plain.delivery.avg_receiver_pct,
         repaired.delivery.avg_receiver_pct, plain.delivery.atomicity_pct,
         repaired.delivery.atomicity_pct,
         static_cast<double>(repaired.repair_requests),
         static_cast<double>(repaired.events_recovered)},
        2);
  }
  table.print(std::cout);

  std::printf("\nbursty loss (Gilbert-Elliott, ~20%% average):\n");
  metrics::Table burst_table({"variant", "recv_pct", "atomic_pct",
                              "recovered"});
  const auto burst = sim::LossModel::burst(0.02, 0.9, 0.05, 0.2);
  auto plain = run_at(burst, false);
  auto repaired = run_at(burst, true);
  burst_table.add_row({"plain", metrics::fmt(plain.delivery.avg_receiver_pct),
                       metrics::fmt(plain.delivery.atomicity_pct), "0"});
  burst_table.add_row(
      {"repair", metrics::fmt(repaired.delivery.avg_receiver_pct),
       metrics::fmt(repaired.delivery.atomicity_pct),
       metrics::fmt(static_cast<double>(repaired.events_recovered), 0)});
  burst_table.print(std::cout);

  std::printf(
      "\nexpected: without repair, reliability falls with loss (faster "
      "under bursts, as the paper\nwarns for correlated loss); with repair "
      "it stays close to the lossless level until loss\noverwhelms the "
      "digest/patience budget.\n");
  bench::warn_unused(cfg);
  return 0;
}
