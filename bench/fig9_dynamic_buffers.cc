// Reproduces paper Figure 9: "Dynamic Buffer Size."
//
// The run starts uncongested; at t1, 20 % of the nodes shrink their buffers
// from 90 to 45 messages; at t2 they grow back — but only to 60, still
// below what the input load needs. Two plots:
//   (a) the aggregate allowed rate over time (with the per-phase ideal
//       rates as reference lines), showing fast convergence after each
//       reconfiguration;
//   (b) atomicity over time for lpbcast vs adaptive: lpbcast collapses when
//       resources shrink, the adaptive variant recovers and holds.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/capacity_search.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  // The fig9 preset carries the whole timeline: load just under the 90-slot
  // capacity knee, eager-recovery gamma, and the 90 -> 45 -> 60 capacity
  // schedule (override with t1_s/t2_s/buf1/buf2/fraction or a raw
  // capacity= spec). For a starker lpbcast collapse, try rate=36 buf1=30
  // fraction=0.3 (see EXPERIMENTS.md).
  auto base = bench::preset_params("fig9", cfg);
  base.gossip.max_events = static_cast<std::size_t>(
      cfg.get_int("buf0", static_cast<long long>(base.gossip.max_events)));
  if (base.capacity_schedule.size() != 2) {
    std::fprintf(stderr,
                 "fig9 needs a two-step capacity schedule (got %zu steps)\n",
                 base.capacity_schedule.size());
    return 2;
  }
  const TimeMs t1 = base.capacity_schedule[0].at - base.warmup;
  const TimeMs t2 = base.capacity_schedule[1].at - base.warmup;
  const auto buf1 = base.capacity_schedule[0].new_capacity;
  const auto buf2 = base.capacity_schedule[1].new_capacity;

  bench::print_banner(
      "Figure 9",
      "dynamic buffers: 20% of nodes 90 -> 45 -> 60 under constant load",
      base);

  // Reference "ideal" rates per phase, from capacity search with the phase's
  // minimum buffer (the constrained nodes bound the whole group).
  auto ideal_for = [&](std::size_t buffer) {
    auto params = base;
    params.capacity_schedule.clear();
    params.gossip.max_events = buffer;
    params.duration = 80'000;
    core::CapacitySearchOptions options;
    options.lo = 2.0;
    options.hi = 60.0;
    options.tol = 2.0;
    options.criterion = core::CapacitySearchOptions::Criterion::kAtomicity;
    return core::find_max_rate(params, options).max_rate;
  };
  const double ideal0 = ideal_for(base.gossip.max_events);
  const double ideal1 = ideal_for(buf1);
  const double ideal2 = ideal_for(buf2);

  auto adaptive = base;
  adaptive.adaptive = true;
  core::Scenario ad_scenario(adaptive);
  auto ad = ad_scenario.run();

  auto lpbcast = base;
  lpbcast.adaptive = false;
  core::Scenario lp_scenario(lpbcast);
  auto lp = lp_scenario.run();

  std::printf("(a) allowed rate over time (adaptive)\n");
  std::printf("ideal per phase: [0,t1)=%.1f  [t1,t2)=%.1f  [t2,end)=%.1f "
              "msg/s; offered %.1f msg/s\n",
              std::min(ideal0, base.offered_rate),
              std::min(ideal1, base.offered_rate),
              std::min(ideal2, base.offered_rate), base.offered_rate);
  metrics::Table rate_table({"t_s", "allowed_msg_s", "input_msg_s",
                             "ideal_msg_s"});
  for (const auto& [t, allowed] : ad.allowed_rate_ts.points()) {
    const TimeMs rel = t - base.warmup;
    if (rel < 0 || rel >= base.duration) continue;
    const double ideal = rel < t1 ? ideal0 : (rel < t2 ? ideal1 : ideal2);
    rate_table.add_numeric_row(
        {static_cast<double>(rel) / 1000.0, allowed,
         ad.input_rate_ts.value_at(t),
         std::min(ideal, base.offered_rate)},
        1);
  }
  rate_table.print(std::cout);

  std::printf("\n(b) atomicity over time, lpbcast vs adaptive\n");
  metrics::Table atom_table({"t_s", "lpbcast_pct", "adaptive_pct"});
  for (const auto& [t, pct] : ad.atomicity_ts.points()) {
    const TimeMs rel = t - base.warmup;
    atom_table.add_numeric_row({static_cast<double>(rel) / 1000.0,
                                lp.atomicity_ts.value_at(t), pct},
                               1);
  }
  atom_table.print(std::cout);

  std::printf(
      "\npaper shape: allowed rate steps down after t1 and partially "
      "recovers after t2, tracking the\nper-phase ideal; lpbcast atomicity "
      "collapses in the constrained phases while the adaptive\nvariant "
      "stays high (and above the homogeneous-simulation value, since "
      "unconstrained nodes\nkeep their full local buffers).\n");
  bench::warn_unused(cfg);
  return 0;
}
