// Reproduces paper Figure 8: average % of receivers per message (a) and
// % of messages delivered to >95 % of the group (b) — "atomicity" — for
// lpbcast vs adaptive under a constant 30 msg/s offered load and shrinking
// buffers.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace agb;
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::preset_params("fig8", cfg);

  bench::print_banner("Figure 8",
                      "reliability, lpbcast vs adaptive (30 msg/s)", base);

  metrics::Table table({"buffer_msgs",                      //
                        "recv_lpbcast", "recv_adaptive",    // Fig. 8(a)
                        "atomic_lpbcast", "atomic_adaptive"});  // Fig. 8(b)
  for (std::size_t buffer : {30u, 60u, 90u, 120u, 150u, 180u}) {
    auto lp = base;
    lp.adaptive = false;
    lp.gossip.max_events = buffer;
    core::Scenario lp_scenario(lp);
    auto lp_r = lp_scenario.run();

    auto ad = base;
    ad.adaptive = true;
    ad.gossip.max_events = buffer;
    core::Scenario ad_scenario(ad);
    auto ad_r = ad_scenario.run();

    table.add_numeric_row(
        {static_cast<double>(buffer), lp_r.delivery.avg_receiver_pct,
         ad_r.delivery.avg_receiver_pct, lp_r.delivery.atomicity_pct,
         ad_r.delivery.atomicity_pct},
        2);
  }
  table.print(std::cout);
  std::printf(
      "\npaper shape: adaptive holds both metrics near 100%% across the "
      "sweep; lpbcast degrades\nbelow the capacity knee, with atomicity "
      "collapsing much faster than average receivers\n(bimodal guarantee "
      "lost first).\n");
  bench::warn_unused(cfg);
  return 0;
}
